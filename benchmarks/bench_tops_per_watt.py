"""E8 -- Sec. III-D: macro efficiency at 4-/6-bit, 30 MC iterations."""

from repro.experiments.tops_per_watt import efficiency_table


def test_tops_per_watt_table(benchmark, table_printer):
    """Paper: 3.04 TOPS/W @ 4-bit, ~2 TOPS/W @ 6-bit (16 nm, 1 GHz,
    0.85 V, 30 iterations).

    Shape criteria: 4-bit beats 6-bit by a factor in the paper's 1.3-1.8
    band, and reuse improves efficiency by > 2x over the reuse-free
    engine.  Absolute system-level numbers carry one documented
    calibration factor (see EXPERIMENTS.md).
    """
    data = benchmark.pedantic(
        efficiency_table,
        kwargs={"weight_bits": (4, 6), "n_iterations": 30},
        rounds=1,
        iterations=1,
    )
    table_printer("Sec III-D: efficiency across precision x (reuse, ordering)", data["rows"])
    by_config = {
        (row["weight_bits"], row["reuse"], row["ordering"]): row for row in data["rows"]
    }
    full_4 = by_config[(4, True, True)]
    full_6 = by_config[(6, True, True)]
    plain_4 = by_config[(4, False, False)]
    ratio_46 = full_4["macro_tops_per_watt"] / full_6["macro_tops_per_watt"]
    reuse_gain = full_4["macro_tops_per_watt"] / plain_4["macro_tops_per_watt"]
    print(
        f"\n4-bit vs 6-bit ratio: {ratio_46:.2f} (paper: {3.04 / 2.0:.2f});  "
        f"reuse gain: {reuse_gain:.2f}x;  "
        f"system-scaled 4-bit: {full_4['system_tops_per_watt']:.2f} TOPS/W "
        f"(paper: 3.04)"
    )
    assert 1.2 < ratio_46 < 1.9
    assert reuse_gain > 2.0
    assert full_4["executed_fraction"] < 0.5
    benchmark.extra_info["ratio_4b_6b"] = ratio_46
    benchmark.extra_info["system_tops_4b"] = full_4["system_tops_per_watt"]
