"""E9 -- Sec. III-C: compute reuse + sample ordering workload ablation."""

from repro.experiments.reuse_ablation import reuse_ablation


def test_reuse_ablation_p05(benchmark, table_printer):
    """Executed-MAC fraction of the four engines at p = 0.5, T = 30.

    Shape criteria: active-only gating halves the work; delta reuse plus
    ordering cuts it further; ordering strictly shrinks the Hamming path.
    """
    data = benchmark.pedantic(
        reuse_ablation,
        kwargs={"n_inputs": 256, "n_outputs": 128, "n_iterations": 30, "n_trials": 5},
        rounds=1,
        iterations=1,
    )
    fractions = data["executed_fraction"]
    table_printer(
        "Sec III-C: executed MAC fraction (vs naive)",
        [{"engine": name, "fraction": value} for name, value in fractions.items()],
    )
    print(f"\nordering Hamming-path reduction: {data['ordering_path_reduction']:.1%}")
    assert fractions["active_only"] < 0.55
    assert fractions["reuse_ordered"] <= fractions["reuse"] + 1e-9
    assert fractions["reuse_ordered"] < 0.52
    assert data["ordering_path_reduction"] > 0.05
    benchmark.extra_info.update(fractions)


def test_reuse_vs_dropout_rate(benchmark, table_printer):
    """Reuse savings as a function of the keep probability."""

    def sweep():
        rows = []
        for keep in (0.2, 0.5, 0.8):
            result = reuse_ablation(
                n_inputs=128, n_outputs=64, n_iterations=20,
                keep_probability=keep, n_trials=3,
            )
            rows.append({"keep_p": keep, **result["executed_fraction"]})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_printer("reuse ablation vs keep probability", rows)
    # Mask-change rate 2p(1-p) peaks at p=0.5: reuse work is maximal there.
    reuse = {row["keep_p"]: row["reuse"] for row in rows}
    assert reuse[0.5] > reuse[0.2]
    assert reuse[0.5] > reuse[0.8]
