"""Design-choice ablations called out in DESIGN.md Sec. 5.

- ADC precision sweep for the likelihood array (extends E4);
- MC iteration count vs uncertainty quality and energy (extends E7/E8);
- RNG calibration on/off effect on dropout-mask quality (extends E5);
- tiling on/off map resolution (extends E3/E10, see bench_map_fidelity).
"""

import numpy as np

from repro.circuits import NODE_16NM, NODE_45NM, VoltageEncoder
from repro.core.codesign import hardware_sigma_menu, program_inverter_array
from repro.experiments.common import build_room_world, build_vo_world
from repro.maps.hmgm import HMGMixture
from repro.bayesian.mc_dropout import MCDropoutPredictor
from repro.bayesian.metrics import error_uncertainty_correlation
from repro.energy.models import cim_mc_dropout_energy
from repro.sram.dropout_gen import DropoutBitGenerator
from repro.sram.macro import MacroConfig
from repro.sram.rng import CrossCoupledInverterRNG
from repro.vo.features import occlude_depth, pose_to_target


def test_adc_precision_sweep(benchmark, table_printer):
    """Likelihood-field fidelity vs log-ADC resolution."""

    def sweep():
        world = build_room_world(seed=7)
        cloud = world.cloud
        rng = np.random.default_rng(0)
        lo, hi = cloud.min(axis=0) - 0.2, cloud.max(axis=0) + 0.2
        encoder = VoltageEncoder(lo=lo, hi=hi, vdd=NODE_45NM.vdd, margin=0.08)
        menu = hardware_sigma_menu(NODE_45NM, encoder)
        mixture = HMGMixture.fit(cloud, 48, rng, sigma_menu=menu)
        points = rng.uniform(lo, hi, size=(600, 3))
        ideal = np.log(mixture.field(points) + 1e-30)
        rows = []
        for bits in (2, 3, 4, 6, 8):
            array, _ = program_inverter_array(
                mixture, encoder, NODE_45NM, total_columns=240, adc_bits=bits
            )
            measured = array.read_log_likelihood(points, encoder)
            rows.append(
                {
                    "adc_bits": bits,
                    "field_correlation": float(np.corrcoef(ideal, measured)[0, 1]),
                    "adc_energy_fJ": NODE_45NM.adc_energy(bits) * 1e15,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_printer("likelihood fidelity vs ADC precision", rows)
    correlations = [row["field_correlation"] for row in rows]
    # Fidelity must increase with resolution and saturate by ~6 bits.
    assert correlations == sorted(correlations)
    assert correlations[2] > 0.8  # 4-bit (the paper's choice) is adequate
    assert correlations[-1] - correlations[3] < 0.05  # 8b barely beats 6b


def test_mc_iteration_sweep(benchmark, table_printer):
    """Uncertainty quality vs MC iteration count, with predicted energy."""

    def sweep():
        world = build_vo_world()
        pairs = world.dataset.frame_pairs(world.val_scene_index)
        encoder = world.train.encoder
        occ_rng = np.random.default_rng(42)
        features, targets = [], []
        for level in (0.0, 0.3, 0.5):
            for previous, current, relative in pairs:
                depth_prev = occlude_depth(previous.depth, level, occ_rng)
                depth_cur = occlude_depth(current.depth, level, occ_rng)
                features.append(encoder.encode_pair(depth_prev, depth_cur))
                targets.append(pose_to_target(relative))
        features = world.train.feature_scaler.transform(np.stack(features))
        targets = np.stack(targets)
        sizes = (world.train.features.shape[1], 128, 64, 6)
        rows = []
        for iterations in (5, 10, 30, 60):
            predictor = MCDropoutPredictor(
                world.model, n_iterations=iterations, rng=np.random.default_rng(1)
            )
            mc = predictor.predict(features)
            predicted = world.train.scaler.inverse(mc.mean)
            errors = np.linalg.norm(predicted[:, :3] - targets[:, :3], axis=1)
            corr = error_uncertainty_correlation(errors, mc.total_uncertainty())
            energy = cim_mc_dropout_energy(
                MacroConfig(weight_bits=4), sizes, n_iterations=iterations
            )
            rows.append(
                {
                    "iterations": iterations,
                    "spearman": corr["spearman"],
                    "mean_error_m": float(errors.mean()),
                    "energy_nJ": energy * 1e9,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_printer("uncertainty quality vs MC iterations", rows)
    by_t = {row["iterations"]: row for row in rows}
    assert by_t[30]["spearman"] > 0.25
    # Energy grows with iterations; quality saturates.
    assert by_t[60]["energy_nJ"] > by_t[5]["energy_nJ"]
    assert by_t[60]["spearman"] - by_t[30]["spearman"] < 0.15


def test_rng_calibration_ablation(benchmark, table_printer):
    """Uncalibrated RNG bias skews the dropout rate; calibration fixes it."""

    def sweep():
        rows = []
        for calibrate in (False, True):
            rates = []
            for seed in range(8):
                cell = CrossCoupledInverterRNG(
                    NODE_16NM, rng=np.random.default_rng(seed)
                )
                run = np.random.default_rng(seed + 100)
                if calibrate:
                    cell.calibrate(run)
                generator = DropoutBitGenerator(cell, keep_probability=0.5)
                rates.append(float(generator.mask(2000, run).mean()))
            rates = np.asarray(rates)
            rows.append(
                {
                    "calibrated": calibrate,
                    "mean_keep_rate": float(rates.mean()),
                    "keep_rate_spread": float(np.abs(rates - 0.5).mean()),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_printer("dropout keep-rate vs RNG calibration", rows)
    uncal, cal = rows[0], rows[1]
    assert cal["keep_rate_spread"] < 0.05
    assert uncal["keep_rate_spread"] > 3 * cal["keep_rate_spread"]
