"""E1/E2 -- Fig. 2(b-d): inverter transfer curves and tail shapes."""

import numpy as np

from repro.experiments.fig2_inverter import inverter_transfer_data


def test_fig2b_switching_current_bells(benchmark, table_printer):
    """Fig. 2(b): Gaussian-like 1D switching-current bells."""
    data = benchmark.pedantic(
        inverter_transfer_data, kwargs={"n_grid": 201}, rounds=1, iterations=1
    )
    rows = []
    for center, current in data["sweeps"].items():
        peak_idx = int(np.argmax(current))
        rows.append(
            {
                "requested_center_v": center,
                "peak_voltage_v": data["sweep_v"][peak_idx],
                "peak_current_uA": current[peak_idx] * 1e6,
                "fwhm_approx_mV": 2.355 * data["sigma_code0_v"] * 1e3,
            }
        )
    table_printer("Fig 2b: switching-current bells (peak follows programmed center)", rows)
    assert data["peak_shift_error"] < 0.04
    benchmark.extra_info["peak_shift_error_v"] = data["peak_shift_error"]


def test_fig2cd_rectilinear_tails(benchmark, table_printer):
    """Fig. 2(c,d): HMG contours have rectilinear tails vs Gaussian ellipses."""
    data = benchmark.pedantic(
        inverter_transfer_data, kwargs={"n_grid": 161}, rounds=1, iterations=1
    )
    hmg_ratio, gauss_ratio = data["rectilinearity"]
    table_printer(
        "Fig 2c/d: iso-contour area / bounding-box area at 1e-3 level",
        [
            {"kernel": "HMG (hardware)", "box_ratio": hmg_ratio},
            {"kernel": "Gaussian product", "box_ratio": gauss_ratio},
            {"kernel": "perfect square", "box_ratio": 1.0},
            {"kernel": "perfect ellipse", "box_ratio": float(np.pi / 4)},
        ],
    )
    assert hmg_ratio > 0.9 > gauss_ratio
    benchmark.extra_info["hmg_box_ratio"] = hmg_ratio
    benchmark.extra_info["gaussian_box_ratio"] = gauss_ratio
