"""E6 -- Fig. 3(c-e): VO trajectory tracking across inference conditions."""

import numpy as np

from repro.experiments.fig3_trajectory import vo_trajectory_experiment


def test_fig3ce_trajectories(benchmark, table_printer):
    """MC-Dropout on the CIM macro tracks ground truth even at low
    precision; deterministic quantised inference is not better.

    Shape criteria: every mode stays within a bounded ATE on the held-out
    scene, and the 4-bit CIM MC mode is within 2.5x of the float
    deterministic reference (paper: "even with very low precision,
    probabilistic inference can accurately track the ground truth").
    """
    data = benchmark.pedantic(
        vo_trajectory_experiment,
        kwargs={
            "modes": (
                "deterministic-float",
                "deterministic-4bit",
                "mc-software",
                "mc-cim-4bit",
                "mc-cim-6bit",
            )
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for mode, result in data["modes"].items():
        report = result["report"]
        rows.append(
            {
                "mode": mode,
                "ate_rmse_m": report["ate_rmse_m"],
                "rpe_trans_mean_m": report["rpe_trans_mean_m"],
                "final_err_m": report["final_position_error_m"],
            }
        )
    table_printer("Fig 3c-e: trajectory metrics on the held-out scene", rows)
    ate = {r["mode"]: r["ate_rmse_m"] for r in rows}
    path_scale = np.linalg.norm(
        np.diff(data["ground_truth"], axis=0), axis=1
    ).sum()
    for mode, value in ate.items():
        assert value < 0.6 * path_scale, f"{mode} diverged (ATE {value:.2f} m)"
    assert ate["mc-cim-4bit"] < 2.5 * ate["deterministic-float"] + 0.05
    for row in rows:
        benchmark.extra_info[row["mode"]] = row["ate_rmse_m"]
