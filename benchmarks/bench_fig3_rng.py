"""E5 -- Fig. 3(b): SRAM-immersed RNG bias/noise statistics."""

from repro.experiments.fig3_rng import rng_statistics


def test_fig3b_rng_calibration(benchmark, table_printer):
    """Mismatch filtering + noise amplification + bias calibration.

    Shape criteria: (a) raw bits are heavily biased before calibration and
    near-Bernoulli(0.5) after; (b) the mismatch-to-noise ratio falls as
    columns are added (the paper's summation argument); (c) calibrated
    bits show negligible lag-1 autocorrelation.
    """
    data = benchmark.pedantic(
        rng_statistics,
        kwargs={
            "column_sweep": (2, 4, 8, 16, 32),
            "n_instances": 10,
            "bits_per_instance": 4096,
        },
        rounds=1,
        iterations=1,
    )
    table_printer("Fig 3b: RNG statistics vs columns per CCI side", data["rows"])
    rows = data["rows"]
    for row in rows:
        assert row["bias_after"] < 0.05
        assert row["bias_after"] <= row["bias_before"] + 0.02
        assert row["abs_autocorr_lag1"] < 0.08
    # Mismatch-to-noise improves (falls) with more columns.
    assert rows[-1]["mismatch_to_noise"] < rows[0]["mismatch_to_noise"]
    benchmark.extra_info["bias_after_32col"] = rows[-1]["bias_after"]
