"""E7 -- Fig. 3(f): error vs predictive-uncertainty correlation."""

import numpy as np

from repro.experiments.fig3_correlation import error_uncertainty_experiment


def test_fig3f_error_uncertainty_correlation(benchmark, table_printer):
    """Paper: "a discernible correlation between error and predictive
    uncertainty" -- uncertainty flags the frames the model gets wrong.

    Shape criteria: positive Pearson and Spearman correlation on the
    mixed-difficulty (clean + occluded) test set, and uncertainty rises
    monotonically with occlusion severity.
    """
    data = benchmark.pedantic(
        error_uncertainty_experiment,
        kwargs={"engine": "software"},
        rounds=1,
        iterations=1,
    )
    rows = []
    for level in sorted(set(data["severity"])):
        mask = data["severity"] == level
        rows.append(
            {
                "occlusion": level,
                "mean_error_m": float(data["errors"][mask].mean()),
                "mean_variance": float(data["uncertainties"][mask].mean()),
            }
        )
    table_printer("Fig 3f: error and uncertainty vs scene disturbance", rows)
    corr = data["correlation"]
    print(
        f"\npearson r = {corr['pearson']:.3f} (p={corr['pearson_p']:.2g}), "
        f"spearman rho = {corr['spearman']:.3f}, AUSE = {data['ause']:.3f}"
    )
    assert corr["pearson"] > 0.3
    assert corr["spearman"] > 0.3
    # Uncertainty must clearly separate clean from disturbed frames (it
    # saturates between high severities, so strict monotonicity is not
    # required).
    variances = [row["mean_variance"] for row in rows]
    assert variances[-1] > 3.0 * variances[0]
    benchmark.extra_info["pearson"] = corr["pearson"]
    benchmark.extra_info["spearman"] = corr["spearman"]


def test_fig3f_cim_engine_preserves_correlation(benchmark):
    """The correlation must survive 4-bit CIM execution (the paper's
    whole point: uncertainty-awareness at edge precision)."""
    data = benchmark.pedantic(
        error_uncertainty_experiment,
        kwargs={"engine": "cim-4bit", "occlusion_levels": (0.0, 0.3, 0.5)},
        rounds=1,
        iterations=1,
    )
    corr = data["correlation"]
    print(
        f"\nCIM 4-bit: pearson r = {corr['pearson']:.3f}, "
        f"spearman rho = {corr['spearman']:.3f}"
    )
    assert corr["pearson"] > 0.25
    benchmark.extra_info["pearson"] = corr["pearson"]
