"""E10 -- Sec. II-C: HMGM map quality vs the conventional GMM."""

from repro.experiments.map_fidelity import map_fidelity


def test_map_fidelity(benchmark, table_printer):
    """Hardware-width HMGM maps vs the free GMM.

    Shape criteria: the tiled hardware menu recovers most of the
    log-field correlation with the GMM map (what the particle filter
    consumes), and strictly beats the single-array menu.
    """
    data = benchmark.pedantic(map_fidelity, rounds=1, iterations=1)
    table_printer(
        "map fidelity (held-out mean log-likelihood)",
        [{"model": k, "held_out_loglik": v} for k, v in data["held_out_loglik"].items()],
    )
    table_printer(
        "log-field correlation vs GMM",
        [
            {"model": k, "correlation": v}
            for k, v in data["field_correlation_vs_gmm"].items()
        ],
    )
    print(
        f"\nmin kernel width: single-array {data['min_width_m']['single']:.2f} m, "
        f"tiled {data['min_width_m']['tiled']:.2f} m"
    )
    corr = data["field_correlation_vs_gmm"]
    assert corr["hmgm_tiled"] > corr["hmgm_single"]
    assert corr["hmgm_tiled"] > 0.55
    assert data["min_width_m"]["tiled"] < data["min_width_m"]["single"]
    benchmark.extra_info.update(corr)
