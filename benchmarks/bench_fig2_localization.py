"""E3 -- Fig. 2(e-h): localization accuracy, HMGM-CIM vs GMM-digital."""

import numpy as np

from repro.experiments.fig2_localization import localization_comparison, summarize


def test_fig2_localization_parity(benchmark, table_printer):
    """The co-designed CIM backend must match digital localization accuracy.

    Paper claim: "the co-designed approach achieves a matching accuracy to
    the conventional approach" -- steady-state error of the 4-bit HMGM
    inverter-array backend within 2x of the 8-bit digital GMM baseline.
    """
    results = benchmark.pedantic(
        localization_comparison,
        kwargs={"n_steps": 25, "n_particles": 400, "n_components": 64},
        rounds=1,
        iterations=1,
    )
    rows = []
    for backend, result in results.items():
        errors = result.errors
        rows.append(
            {
                "backend": backend,
                "err_step0_m": float(errors[0]),
                "err_mid_m": float(errors[len(errors) // 2]),
                "err_final_m": float(errors[-1]),
                "steady_state_m": float(errors[-8:].mean()),
            }
        )
    table_printer("Fig 2f-h: position error over localization steps", rows)
    steady = {r["backend"]: r["steady_state_m"] for r in rows}
    assert steady["cim"] < 2.0 * steady["digital"] + 0.05
    # All backends must actually localize (sub-meter steady state).
    for backend, error in steady.items():
        assert error < 1.0, f"{backend} failed to localize ({error:.2f} m)"
    for row in rows:
        benchmark.extra_info[row["backend"]] = row["steady_state_m"]
