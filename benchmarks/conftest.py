"""Benchmark configuration.

Each benchmark regenerates one paper artifact (figure/table) via the
drivers in :mod:`repro.experiments` and prints the rows the paper reports.
Heavy shared setup (rendered worlds, trained models) is cached in-process
by :mod:`repro.experiments.common`, so the suite stays laptop-fast.
"""

import numpy as np
import pytest


def print_table(title: str, rows: list[dict]) -> None:
    """Uniform table printing for benchmark outputs."""
    print(f"\n=== {title} ===")
    if not rows:
        return
    keys = list(rows[0])
    print(" | ".join(f"{k:>22}" for k in keys))
    for row in rows:
        cells = []
        for key in keys:
            value = row[key]
            if isinstance(value, float):
                cells.append(f"{value:>22.4g}")
            else:
                cells.append(f"{str(value):>22}")
        print(" | ".join(cells))


@pytest.fixture
def table_printer():
    return print_table
