"""E4 -- Fig. 2(i): likelihood energy, 4-bit CIM vs 8-bit digital GMM."""

from repro.experiments.fig2_energy import likelihood_energy_comparison


def test_fig2i_energy_ratio(benchmark, table_printer):
    """Paper: 374 fJ per likelihood at 500 columns / 100 components, ~25x
    below the 8-bit digital GMM processor.  Shape criterion: CIM wins by a
    factor in the 10-60x band with the same workload."""
    data = benchmark.pedantic(
        likelihood_energy_comparison,
        kwargs={"n_components": 100, "total_columns": 500, "n_queries": 2000},
        rounds=1,
        iterations=1,
    )
    table_printer(
        "Fig 2i: energy per likelihood evaluation",
        [
            {
                "engine": "4-bit HMGM inverter CIM",
                "energy_fJ": data["cim_energy_per_query_j"] * 1e15,
                "paper_fJ": data["paper_cim_fj"],
            },
            {
                "engine": "8-bit digital GMM",
                "energy_fJ": data["digital_energy_per_query_j"] * 1e15,
                "paper_fJ": data["paper_cim_fj"] * data["paper_ratio"],
            },
        ],
    )
    table_printer(
        "CIM energy breakdown (per query)",
        [
            {"component": op, "energy_fJ": value * 1e15}
            for op, value in data["cim_breakdown_j"].items()
        ],
    )
    print(
        f"\nmeasured ratio: {data['ratio']:.1f}x   (paper: {data['paper_ratio']:.0f}x)"
    )
    assert 10.0 < data["ratio"] < 60.0
    assert data["physical_columns"] >= 100
    benchmark.extra_info["ratio"] = data["ratio"]
    benchmark.extra_info["cim_fj"] = data["cim_energy_per_query_j"] * 1e15
