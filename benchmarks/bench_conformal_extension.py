"""E11 (extension) -- Sec. IV: conformal inference vs MC-Dropout."""

from repro.experiments.conformal_vo import conformal_vo_experiment


def test_conformal_vs_mc_dropout(benchmark, table_printer):
    """The paper's future-work claim: conformal methods deliver calibrated
    uncertainty without Monte-Carlo iteration.

    Shape criteria: split conformal hits the target coverage within 7
    points using ONE forward pass (vs 30 for MC-Dropout), and adaptive
    conformal restores coverage under the occlusion distribution shift
    where the static quantile under-covers.
    """
    data = benchmark.pedantic(conformal_vo_experiment, rounds=1, iterations=1)
    table_printer("conformal vs MC-Dropout on held-out VO frames", data["rows"])
    shift = data["shift"]
    print(
        f"\nunder occlusion shift: static conformal coverage "
        f"{shift['static_conformal_coverage']:.3f}, adaptive "
        f"{shift['adaptive_conformal_coverage']:.3f} "
        f"(target {shift['target_coverage']:.2f})"
    )
    conformal_row = next(r for r in data["rows"] if "conformal" in r["method"])
    # ~20 calibration / 20 test pairs: finite-sample coverage noise is a
    # few points, so the band is correspondingly loose.
    assert abs(conformal_row["coverage"] - (1 - data["alpha"])) < 0.12
    assert conformal_row["forward_passes"] == 1
    assert (
        shift["adaptive_conformal_coverage"]
        >= shift["static_conformal_coverage"] - 0.02
    )
    benchmark.extra_info["conformal_coverage"] = conformal_row["coverage"]
    benchmark.extra_info["adaptive_shift_coverage"] = shift[
        "adaptive_conformal_coverage"
    ]
