#!/usr/bin/env bash
# Determinism lint gate: `repro lint` (AST rules DET001-DET008) over
# src/repro, gated against the committed lint_baseline.json ratchet.
# Fails on any NEW finding and on STALE baseline entries (a fixed
# finding must be removed from the baseline via --update-baseline so
# the ratchet only ever tightens).
# Runs locally exactly as in CI:  scripts/ci/lint_determinism.sh
set -euo pipefail
cd "$(dirname "$0")/../.."

PYTHONPATH=src python -m repro lint --baseline lint_baseline.json
echo "lint-determinism: ok"
