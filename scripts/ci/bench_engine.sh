#!/usr/bin/env bash
# Engine benchmark gate: `repro bench` exits 1 when the engine fast path
# times slower than the loop at the reference config.  With BENCH_CHECK=1
# it also compares the fresh speedup ratios against the committed
# BENCH_engine.json baseline (read before the fresh file overwrites it)
# and fails on a >30% regression (BENCH_TOLERANCE overrides).
set -euo pipefail
cd "$(dirname "$0")/../.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

EXTRA=()
if [ "${BENCH_CHECK:-0}" = "1" ]; then
  EXTRA+=(--check --tolerance "${BENCH_TOLERANCE:-0.30}")
fi
python -m repro bench --ids E1 --repeats "${BENCH_REPEATS:-3}" \
  --out /tmp/BENCH_runtime.json --engine-out BENCH_engine.json \
  "${EXTRA[@]+"${EXTRA[@]}"}"
