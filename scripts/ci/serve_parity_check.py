"""HTTP bit-parity check against a running `repro serve` instance.

POSTs one /infer per registered substrate and asserts every response is
bit-for-bit equal to a direct pinned-mask session run with the same
seed (values AND energy/ops metering).  Used by scripts/ci/smoke_serve.sh;
works identically against single-process and sharded (--workers N)
servers, because the determinism contract does not depend on the
deployment shape.

Environment:
    SERVE_URL      base URL (default http://127.0.0.1:8731)
    N_ITERATIONS   MC depth the server was started with (default 8)
    WORKERS        shard count the server was started with (default 0);
                   when > 0 the /stats shard rows are also asserted.
"""

import json
import os
import urllib.request

import numpy as np

from repro.api import available_substrates
from repro.serve import (
    InferenceRequest,
    InferenceResponse,
    build_reference_session,
    reference_run,
)
from repro.serve.demo import demo_inputs, demo_model


def main() -> None:
    base_url = os.environ.get("SERVE_URL", "http://127.0.0.1:8731")
    n_iterations = int(os.environ.get("N_ITERATIONS", "8"))
    workers = int(os.environ.get("WORKERS", "0"))

    model, x = demo_model(), demo_inputs()
    for substrate in available_substrates():
        request = InferenceRequest(x, substrate=substrate, seed=3)
        raw = urllib.request.urlopen(
            urllib.request.Request(
                f"{base_url}/infer",
                data=request.to_json().encode(),
                headers={"Content-Type": "application/json"},
            )
        ).read().decode()
        response = InferenceResponse.from_json(raw)
        session = build_reference_session(
            substrate, model, n_iterations=n_iterations
        )
        expected = reference_run(session, x, 3)
        assert np.array_equal(response.result.mean, expected.mean), substrate
        assert response.result.energy_j == expected.energy_j, substrate
        assert response.result.ops_executed == expected.ops_executed, substrate
        print(
            f"{substrate}: bit-parity ok "
            f"(energy_j={response.result.energy_j:.3e})"
        )

    stats = json.loads(urllib.request.urlopen(f"{base_url}/stats").read())
    assert stats["completed"] == len(available_substrates()), stats
    if workers > 0:
        shards = stats["shards"]
        assert shards["workers"] == workers, shards
        assert len(shards["shards"]) == workers, shards
        assert all(row["alive"] for row in shards["shards"]), shards
        print(f"shard stats ok ({workers} worker(s))")


if __name__ == "__main__":
    main()
