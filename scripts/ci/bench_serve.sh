#!/usr/bin/env bash
# Serving benchmark gate: `repro bench --suite serve` exits 1 when
# coalesced serving is not faster than sequential per-request serving,
# when sharded serving (workers>=2) is not faster than single-process
# coalesced serving, or when any served response diverges from the
# pinned-mask reference (values or energy/ops metering).  With
# BENCH_CHECK=1 it also gates the speedup ratios against the committed
# BENCH_serve.json baseline (>30% regression fails; BENCH_TOLERANCE
# overrides).
set -euo pipefail
cd "$(dirname "$0")/../.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

EXTRA=()
if [ "${BENCH_CHECK:-0}" = "1" ]; then
  EXTRA+=(--check --tolerance "${BENCH_TOLERANCE:-0.30}")
fi
python -m repro bench --suite serve --repeats "${BENCH_REPEATS:-3}" \
  --serve-out BENCH_serve.json \
  "${EXTRA[@]+"${EXTRA[@]}"}"
