#!/usr/bin/env bash
# CLI smoke: list + run paths that every PR must keep working.
set -euo pipefail
cd "$(dirname "$0")/../.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

python -m repro list
python -m repro run E1 --json --seed 0 > /dev/null
python -m repro run E9 --json \
  --set n_inputs=32 --set n_outputs=16 \
  --set n_iterations=8 --set n_trials=1 > /dev/null
echo "cli smoke: ok"
