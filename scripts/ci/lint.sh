#!/usr/bin/env bash
# Lint gate: ruff (rule set in pyproject.toml) + a full bytecode compile.
# Runs locally exactly as in CI:  scripts/ci/lint.sh
set -euo pipefail
cd "$(dirname "$0")/../.."

ruff check src tests scripts
python -m compileall -q src
echo "lint: ok"
