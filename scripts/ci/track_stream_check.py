"""Live-HTTP streaming-track check against a running `repro serve --tracks`.

Opens a track, feeds it the demo measurement sequence one step at a
time, closes it, and asserts the streamed responses are bit-for-bit
equal to a one-shot ``LocalizationSession.run()`` over the same sequence
(estimates AND cumulative energy/ops metering) -- the stream determinism
contract.  Used by scripts/ci/smoke_serve.sh; works identically against
single-process and sharded (--workers N) servers.

Environment:
    SERVE_URL   base URL (default http://127.0.0.1:8731)
    N_STEPS     measurement steps to stream (default 3)
"""

import json
import os
import urllib.request

import numpy as np

from repro.api.results import strict_dumps, strict_loads
from repro.serve import TrackInit, TrackStepResponse, reference_track_run
from repro.serve.demo import demo_track_measurements, demo_track_world


def post(base_url: str, path: str, payload: dict) -> dict:
    raw = urllib.request.urlopen(
        urllib.request.Request(
            f"{base_url}{path}",
            data=strict_dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
    ).read().decode()
    return strict_loads(raw)


def main() -> None:
    base_url = os.environ.get("SERVE_URL", "http://127.0.0.1:8731")
    n_steps = int(os.environ.get("N_STEPS", "3"))

    world = demo_track_world()
    controls, depths, truths = demo_track_measurements(n_steps=n_steps)
    init = TrackInit(
        mode="tracking",
        state=truths[0],
        sigma=np.full(truths.shape[1], 0.05),
        z_range=None,
    )

    opened = post(
        base_url,
        "/track/open",
        {"init": init.to_dict(), "substrate": "cim", "seed": 21},
    )
    track_id = opened["track_id"]
    responses = []
    for control, depth, truth in zip(controls, depths, truths):
        payload = post(
            base_url,
            "/track/step",
            {
                "track_id": track_id,
                "control": control.tolist(),
                "depth": depth.tolist(),
                "truth": truth.tolist(),
            },
        )
        responses.append(TrackStepResponse.from_dict(payload))
    closed = post(base_url, "/track/close", {"track_id": track_id})
    assert closed["closed"] is True, closed
    assert closed["steps"] == n_steps, closed

    reference = reference_track_run(
        world, "cim", init, 21, (controls, depths, truths)
    )
    streamed = np.array([r.estimate for r in responses])
    assert np.array_equal(streamed, reference.mean), "estimate mismatch"
    final = responses[-1]
    assert final.energy_j == reference.energy_j, "energy mismatch"
    assert final.ops_executed == reference.ops_executed, "ops mismatch"
    assert final.energy_breakdown_j == reference.energy_breakdown_j, (
        "energy breakdown mismatch"
    )
    assert [r.step_index for r in responses] == list(range(1, n_steps + 1))
    assert not any(r.state_lost for r in responses)

    stats = json.loads(urllib.request.urlopen(f"{base_url}/stats").read())
    assert stats["tracks"]["opened"] >= 1, stats
    assert stats["tracks"]["steps"] >= n_steps, stats
    print(
        f"track stream: bit-parity ok over {n_steps} live-HTTP steps "
        f"(energy_j={final.energy_j:.3e}, ops={final.ops_executed})"
    )


if __name__ == "__main__":
    main()
