#!/usr/bin/env bash
# Parallel sweep + run-store smoke: grid execution over a process pool,
# streamed store, report round-trip.
set -euo pipefail
cd "$(dirname "$0")/../.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

STORE="$(mktemp -d)/repro-store"
python -m repro sweep E9 --seeds 0,1 --workers 2 \
  --store "$STORE" \
  --set n_inputs=32 --set n_outputs=16 \
  --set n_iterations=8 --set n_trials=1
python -m repro report "$STORE"
echo "sweep smoke: ok"
