#!/usr/bin/env bash
# Scenario library smoke: list the stock library, sweep two scenarios
# over two substrates on a process pool (tiny budgets), and round-trip
# the run store through `repro scenarios report`.
set -euo pipefail
cd "$(dirname "$0")/../.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

python -m repro scenarios list

STORE="$(mktemp -d)/repro-scenarios"
python -m repro scenarios run room-baseline sensor-dropout-burst \
  --tiny --substrates digital,cim --seeds 0 --workers 2 \
  --store "$STORE"
python -m repro scenarios report "$STORE"
echo "scenarios smoke: ok"
