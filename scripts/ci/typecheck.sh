#!/usr/bin/env bash
# Typecheck gate for the typed layers (serving + runtime); config in
# pyproject.toml.  Runs locally exactly as in CI:  scripts/ci/typecheck.sh
set -euo pipefail
cd "$(dirname "$0")/../.."

mypy --ignore-missing-imports src/repro/serve src/repro/runtime
echo "typecheck: ok"
