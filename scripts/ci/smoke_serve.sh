#!/usr/bin/env bash
# Serving smoke: start the HTTP service on the demo model with streaming
# tracks enabled, assert per-substrate HTTP bit-parity
# (scripts/ci/serve_parity_check.py) and live-HTTP streaming-track
# bit-parity vs a one-shot run (scripts/ci/track_stream_check.py), then
# shut down with live tracks open and verify the server exits cleanly
# (SIGTERM path must also stop any worker shards -- no orphaned
# children, even mid-stream).
#
# Environment:
#   WORKERS=N      shard count (default 0 = single-process)
#   SERVE_PORT=P   port (default 8731)
set -euo pipefail
cd "$(dirname "$0")/../.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

WORKERS="${WORKERS:-0}"
SERVE_PORT="${SERVE_PORT:-8731}"

python -m repro serve --port "$SERVE_PORT" --n-iterations 8 \
  --workers "$WORKERS" --tracks --track-substrates cim \
  > /tmp/serve.log 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 120); do
  curl -sf "http://127.0.0.1:${SERVE_PORT}/healthz" > /dev/null && break
  sleep 0.5
done
curl -sf "http://127.0.0.1:${SERVE_PORT}/healthz" > /dev/null

SERVE_URL="http://127.0.0.1:${SERVE_PORT}" N_ITERATIONS=8 WORKERS="$WORKERS" \
  python scripts/ci/serve_parity_check.py

SERVE_URL="http://127.0.0.1:${SERVE_PORT}" \
  python scripts/ci/track_stream_check.py

# Leave a live (un-closed) track behind, then SIGTERM: shutdown must not
# hang on open streams or orphan worker shards.
python - <<PY
import json, urllib.request
import numpy as np
import sys
sys.path.insert(0, "src")
from repro.api.results import strict_dumps
from repro.serve import TrackInit
from repro.serve.demo import demo_track_measurements

controls, depths, truths = demo_track_measurements(n_steps=1)
init = TrackInit(mode="tracking", state=truths[0],
                 sigma=np.full(truths.shape[1], 0.05), z_range=None)
req = urllib.request.Request(
    "http://127.0.0.1:${SERVE_PORT}/track/open",
    data=strict_dumps({"init": init.to_dict(), "substrate": "cim",
                       "seed": 5}).encode(),
    headers={"Content-Type": "application/json"})
opened = json.loads(urllib.request.urlopen(req).read())
assert opened["track_id"], opened
print("left live track", opened["track_id"], "open for the SIGTERM path")
PY

kill "$SERVE_PID"
for _ in $(seq 1 60); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.5
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "error: serve process did not exit after SIGTERM" >&2
  cat /tmp/serve.log >&2
  exit 1
fi
trap - EXIT
echo "serve smoke: ok (workers=$WORKERS, streaming tracks)"
