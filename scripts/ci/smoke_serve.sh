#!/usr/bin/env bash
# Serving smoke: start the HTTP service on the demo model, assert
# per-substrate HTTP bit-parity (scripts/ci/serve_parity_check.py), then
# shut down and verify the server exits cleanly (SIGTERM path must also
# stop any worker shards -- no orphaned children).
#
# Environment:
#   WORKERS=N      shard count (default 0 = single-process)
#   SERVE_PORT=P   port (default 8731)
set -euo pipefail
cd "$(dirname "$0")/../.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

WORKERS="${WORKERS:-0}"
SERVE_PORT="${SERVE_PORT:-8731}"

python -m repro serve --port "$SERVE_PORT" --n-iterations 8 \
  --workers "$WORKERS" > /tmp/serve.log 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 120); do
  curl -sf "http://127.0.0.1:${SERVE_PORT}/healthz" > /dev/null && break
  sleep 0.5
done
curl -sf "http://127.0.0.1:${SERVE_PORT}/healthz" > /dev/null

SERVE_URL="http://127.0.0.1:${SERVE_PORT}" N_ITERATIONS=8 WORKERS="$WORKERS" \
  python scripts/ci/serve_parity_check.py

kill "$SERVE_PID"
for _ in $(seq 1 60); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.5
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "error: serve process did not exit after SIGTERM" >&2
  cat /tmp/serve.log >&2
  exit 1
fi
trap - EXIT
echo "serve smoke: ok (workers=$WORKERS)"
