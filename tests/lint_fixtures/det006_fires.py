"""DET006 fixture: json.dumps without allow_nan=False."""
import json


def encode(payload, handle):
    json.dump(payload, handle)
    return json.dumps(payload, indent=2)
