"""DET007 fixture: blocking calls inside async def."""
import time
import urllib.request


async def handler(url):
    time.sleep(0.1)
    return urllib.request.urlopen(url)
