"""DET001 clean: explicit seeds and explicit Generator construction."""
import numpy as np


def sample(seed):
    rng = np.random.default_rng(seed)
    gen = np.random.Generator(np.random.PCG64(seed))
    return rng.normal(size=3), gen.normal(size=3)
