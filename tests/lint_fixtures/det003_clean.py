"""DET003 clean: monotonic durations, threaded Generator draws."""
import time


def duration(rng):
    start = time.perf_counter()
    draw = rng.random()
    return time.perf_counter() - start, draw
