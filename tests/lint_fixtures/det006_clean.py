"""DET006 clean: strict NaN-safe encoding."""
import json


def encode(payload, handle):
    json.dump(payload, handle, allow_nan=False)
    return json.dumps(payload, indent=2, allow_nan=False)
