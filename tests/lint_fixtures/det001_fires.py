"""DET001 fixture: entropy-seeded / hidden-global-state RNG calls."""
import numpy as np


def sample():
    rng = np.random.default_rng()
    noise = np.random.normal(size=3)
    np.random.seed(0)
    return rng, noise
