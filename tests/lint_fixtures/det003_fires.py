"""DET003 fixture: wall-clock and stdlib-global randomness."""
import random
import time
from datetime import datetime


def jitter():
    stamp = time.time()
    noise = random.random()
    now = datetime.now()
    return stamp, noise, now
