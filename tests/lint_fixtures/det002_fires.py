"""DET002 fixture: additive/multiplicative seed arithmetic (the PR 7
scene/dataset.py stream-collision bug class)."""
import numpy as np


def scene_rng(seed, scene_index):
    return np.random.default_rng(seed + 1000 * scene_index)


def worker_rng(seed, worker):
    return np.random.SeedSequence(seed * 7919 + worker)
