"""Suppression fixture: trailing, standalone, reasonless, and absent."""
import json

# repro: ignore[DET006] fixture: standalone comment shields next line
standalone = json.dumps({"x": 1})
inline = json.dumps({"y": 2})  # repro: ignore[DET006] fixture: trailing
reasonless = json.dumps({"z": 3})  # repro: ignore[DET006]
unsuppressed = json.dumps({"w": 4})
