"""DET007 clean: async sleeps; blocking calls only in sync scopes."""
import asyncio
import time


async def handler():
    def helper():
        time.sleep(0.1)

    await asyncio.sleep(0.1)
    return helper


def sync_path():
    time.sleep(0.1)
