"""DET008 clean: None/tuple defaults; private helpers exempt."""


def configure(options=None, tags=()):
    return {} if options is None else options, tags


def _private_cache(cache={}):
    return cache
