"""DET002 clean: keyed SeedSequence spawns; constant-only arithmetic."""
import numpy as np


def scene_rng(seed, scene_index):
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(scene_index,))
    )


def pinned_rng():
    return np.random.default_rng(3 + 4)
