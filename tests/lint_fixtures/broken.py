def oops(:
