"""DET008 fixture: mutable defaults on public functions."""


def configure(options={}, tags=[]):
    return options, tags


async def stream(buffer=set()):
    return buffer
