"""DET005 clean: sorted() normalises the set before the payload."""
import json


def payload(names):
    return json.dumps({"names": sorted(set(names))}, allow_nan=False)
