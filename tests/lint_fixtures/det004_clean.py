"""DET004 clean: every begin_scope is closed by a finally."""


def measure(ledger, work):
    scope = ledger.begin_scope()
    try:
        return work()
    finally:
        ledger.end_scope(scope)
