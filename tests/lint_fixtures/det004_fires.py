"""DET004 fixture: begin_scope without a try/finally end_scope -- the
end_scope on the happy path does not help; a raise in work() leaks."""


def measure(ledger, work):
    scope = ledger.begin_scope()
    result = work()
    ledger.end_scope(scope)
    return result
