"""DET005 fixture: unordered sets feeding a wire payload."""
import json


def payload(names):
    return json.dumps({"names": list({name for name in names})})


def keyword_payload(names):
    return json.dumps({}, default=set(names).union)
