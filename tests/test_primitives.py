"""Tests for repro.scene.primitives and scene SDF composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scene.primitives import Box, Cylinder, Plane, Sphere
from repro.scene.scene import Scene, make_room_scene, make_tabletop_scene

finite_coords = st.floats(-5.0, 5.0)


class TestSphere:
    def test_distance_signs(self):
        sphere = Sphere([0, 0, 0], 1.0)
        assert sphere.distance([[2, 0, 0]])[0] == pytest.approx(1.0)
        assert sphere.distance([[0.5, 0, 0]])[0] == pytest.approx(-0.5)
        assert sphere.distance([[1, 0, 0]])[0] == pytest.approx(0.0)

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            Sphere([0, 0, 0], -1.0)

    def test_surface_samples_on_surface(self, rng):
        sphere = Sphere([1, 2, 3], 0.7)
        pts = sphere.sample_surface(200, rng)
        assert np.allclose(np.abs(sphere.distance(pts)), 0.0, atol=1e-9)


class TestBox:
    def test_distance_outside_face(self):
        box = Box([0, 0, 0], [2, 2, 2])
        assert box.distance([[2, 0, 0]])[0] == pytest.approx(1.0)

    def test_distance_corner(self):
        box = Box([0, 0, 0], [2, 2, 2])
        assert box.distance([[2, 2, 2]])[0] == pytest.approx(np.sqrt(3.0))

    def test_distance_inside_negative(self):
        box = Box([0, 0, 0], [2, 2, 2])
        assert box.distance([[0, 0, 0]])[0] == pytest.approx(-1.0)

    def test_surface_samples_on_surface(self, rng):
        box = Box([0.5, -1, 2], [1.0, 2.0, 0.5])
        pts = box.sample_surface(300, rng)
        assert np.max(np.abs(box.distance(pts))) < 1e-9

    def test_rejects_bad_extents(self):
        with pytest.raises(ValueError):
            Box([0, 0, 0], [1, -1, 1])


class TestCylinder:
    def test_distance_radial(self):
        cyl = Cylinder([0, 0, 0], radius=1.0, height=2.0)
        assert cyl.distance([[2, 0, 0]])[0] == pytest.approx(1.0)

    def test_distance_axial(self):
        cyl = Cylinder([0, 0, 0], radius=1.0, height=2.0)
        assert cyl.distance([[0, 0, 2]])[0] == pytest.approx(1.0)

    def test_inside_negative(self):
        cyl = Cylinder([0, 0, 0], radius=1.0, height=2.0)
        assert cyl.distance([[0, 0, 0]])[0] < 0

    def test_surface_samples_on_surface(self, rng):
        cyl = Cylinder([1, 0, 0.5], radius=0.3, height=0.8)
        pts = cyl.sample_surface(300, rng)
        assert np.max(np.abs(cyl.distance(pts))) < 1e-9


class TestPlane:
    def test_signed_distance(self):
        plane = Plane([0, 0, 1], 0.0)
        assert plane.distance([[0, 0, 2]])[0] == pytest.approx(2.0)
        assert plane.distance([[0, 0, -1]])[0] == pytest.approx(-1.0)

    def test_normalises_normal(self):
        plane = Plane([0, 0, 2], 4.0)
        assert plane.distance([[0, 0, 2]])[0] == pytest.approx(0.0)

    def test_samples_lie_on_plane(self, rng):
        plane = Plane([0, 1, 1], 1.0, patch_radius=3.0)
        pts = plane.sample_surface(100, rng)
        assert np.max(np.abs(plane.distance(pts))) < 1e-9

    def test_rejects_zero_normal(self):
        with pytest.raises(ValueError):
            Plane([0, 0, 0], 1.0)


class TestScene:
    def test_union_is_min(self, rng):
        a = Sphere([0, 0, 0], 1.0)
        b = Sphere([3, 0, 0], 1.0)
        scene = Scene([a, b])
        pts = rng.uniform(-2, 5, size=(50, 3))
        expected = np.minimum(a.distance(pts), b.distance(pts))
        assert np.allclose(scene.distance(pts), expected)

    def test_empty_scene_rejected(self):
        with pytest.raises(ValueError):
            Scene([])

    def test_normals_point_outward_on_sphere(self):
        scene = Scene([Sphere([0, 0, 0], 1.0)])
        pts = np.array([[1.0, 0, 0], [0, 1.0, 0]])
        normals = scene.normals(pts)
        assert np.allclose(normals, pts, atol=1e-3)

    def test_point_cloud_near_surfaces(self, rng):
        scene = make_tabletop_scene(rng, n_objects=3)
        cloud = scene.sample_point_cloud(500, rng)
        assert np.max(np.abs(scene.distance(cloud))) < 1e-6

    def test_point_cloud_noise(self, rng):
        scene = Scene([Sphere([0, 0, 0], 1.0)])
        cloud = scene.sample_point_cloud(500, rng, noise_std=0.01)
        spread = np.abs(scene.distance(cloud))
        assert 0.001 < spread.mean() < 0.05

    def test_bounding_box_contains_centroid(self, rng):
        scene = make_room_scene(rng)
        lo, hi = scene.bounding_box()
        centroid = scene.centroid()
        assert np.all(centroid >= lo) and np.all(centroid <= hi)

    @given(st.integers(0, 6))
    @settings(max_examples=8, deadline=None)
    def test_tabletop_object_count(self, n_objects):
        rng = np.random.default_rng(0)
        scene = make_tabletop_scene(rng, n_objects=n_objects, with_floor=False)
        # table top + pedestal + objects
        assert len(scene.primitives) == 2 + n_objects

    def test_room_scene_has_floor_and_walls(self, rng):
        scene = make_room_scene(rng, n_furniture=0)
        assert len(scene.primitives) == 3
