"""CLI (`python -m repro`) and world-cache behaviour."""

import json

import numpy as np

from repro.api.cli import main

FAST_E9 = [
    "--set", "n_inputs=32",
    "--set", "n_outputs=16",
    "--set", "n_iterations=8",
    "--set", "n_trials=1",
]


class TestListCommand:
    def test_list_plain(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in ("E1", "E4", "E9", "E11"):
            assert eid in out
        assert "cim-reuse" in out

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        ids = [entry["id"] for entry in payload["experiments"]]
        assert ids[0] == "E1" and "E9" in ids
        by_id = {entry["id"]: entry for entry in payload["experiments"]}
        assert "cim-reuse" in by_id["E3"]["substrates"]
        assert by_id["E9"]["substrates"] == []
        assert "digital" in payload["substrates"]


class TestRunCommand:
    def test_run_json_is_machine_readable(self, capsys):
        assert main(["run", "E9", "--json", "--seed", "0", *FAST_E9]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "E9"
        assert payload["seed"] == 0
        assert "executed_fraction" in payload["metrics"]

    def test_run_plain_prints_metrics(self, capsys):
        assert main(["run", "E9", "--seed", "0", *FAST_E9]) == 0
        out = capsys.readouterr().out
        assert "E9" in out and "executed_fraction" in out

    def test_run_multiple_ids_json_list(self, capsys):
        assert main(["run", "E9", "E9", "--json", *FAST_E9]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 2

    def test_unknown_experiment_fails_friendly(self, capsys):
        assert main(["run", "E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err and "E99" in err

    def test_unknown_substrate_fails_friendly(self, capsys):
        assert main(["run", "E3", "--substrate", "tpu"]) == 2
        assert "unknown substrate" in capsys.readouterr().err

    def test_substrate_on_plain_experiment_fails_friendly(self, capsys):
        assert main(["run", "E9", "--substrate", "cim"]) == 2
        assert "does not support" in capsys.readouterr().err

    def test_bad_set_pair_fails_friendly(self, capsys):
        assert main(["run", "E9", "--set", "nonsense"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_bad_set_value_fails_friendly(self, capsys):
        assert main(["run", "E9", "--set", "n_iterations=abc"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "n_iterations" in err

    def test_out_dir_writes_result(self, tmp_path, capsys):
        # Overridden runs get a config-hashed stem (collision fix); the
        # default-config name stays E9-seed1.json.
        assert main(["run", "E9", "--seed", "1", "--out", str(tmp_path), *FAST_E9]) == 0
        capsys.readouterr()
        files = list(tmp_path.glob("E9-seed1-cfg*.json"))
        assert len(files) == 1
        written = json.loads(files[0].read_text())
        assert written["experiment_id"] == "E9"

    def test_out_dir_distinct_overrides_do_not_collide(self, tmp_path, capsys):
        base = ["run", "E9", "--seed", "1", "--out", str(tmp_path)]
        assert main([*base, *FAST_E9]) == 0
        assert main([*base, *FAST_E9[:-2], "--set", "n_trials=2"]) == 0
        capsys.readouterr()
        assert len(list(tmp_path.glob("E9-seed1-cfg*.json"))) == 2

    def test_failing_experiment_does_not_abort_batch(self, capsys):
        # A raising experiment must print its traceback, let the rest of
        # the batch run, and turn into a non-zero exit at the end.
        from repro.api.registry import _REGISTRY, experiment

        @experiment("ETEST-BOOM", title="always raises")
        def boom(ctx):
            raise RuntimeError("kaboom from ETEST-BOOM")

        try:
            code = main(["run", "ETEST-BOOM", "E1", "--seed", "0"])
        finally:
            _REGISTRY.pop("ETEST-BOOM", None)
        assert code == 1
        captured = capsys.readouterr()
        assert "kaboom from ETEST-BOOM" in captured.err  # the traceback
        assert "Traceback" in captured.err
        assert "1 of 2 experiment(s) failed" in captured.err
        assert "E1" in captured.out  # E1 still ran

    def test_failing_experiment_json_still_prints_successes(self, capsys):
        from repro.api.registry import _REGISTRY, experiment

        @experiment("ETEST-BOOM2", title="always raises")
        def boom(ctx):
            raise RuntimeError("kaboom")

        try:
            code = main(["run", "ETEST-BOOM2", "E1", "--json", "--seed", "0"])
        finally:
            _REGISTRY.pop("ETEST-BOOM2", None)
        assert code == 1
        # Two experiments were *requested*, so the shape stays a list
        # even though only one produced a result.
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        assert payload[0]["experiment_id"] == "E1"


class TestSweepCommand:
    def test_seed_sweep_json(self, capsys):
        assert main(["sweep", "E9", "--seeds", "0,1", "--json", *FAST_E9]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["seed"] for entry in payload] == [0, 1]
        assert all(entry["status"] == "ok" for entry in payload)
        assert all(entry["result"]["experiment_id"] == "E9" for entry in payload)

    def test_sweep_unknown_id_friendly(self, capsys):
        assert main(["sweep", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_sweep_bad_seeds_friendly(self, capsys):
        assert main(["sweep", "E9", "--seeds", "0,x"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_parallel_sweep_matches_serial(self, capsys):
        assert main(["sweep", "E9", "--seeds", "0,1", "--json", *FAST_E9]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert (
            main(
                ["sweep", "E9", "--seeds", "0,1", "--workers", "2", "--json", *FAST_E9]
            )
            == 0
        )
        parallel = json.loads(capsys.readouterr().out)
        assert [e["result"]["metrics"] for e in serial] == [
            e["result"]["metrics"] for e in parallel
        ]

    def test_sweep_store_and_report(self, tmp_path, capsys):
        store = tmp_path / "run"
        assert (
            main(
                [
                    "sweep", "E9", "--seeds", "0,1", "--workers", "2",
                    "--store", str(store), *FAST_E9,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 ok" in out and str(store) in out
        assert (store / "manifest.json").exists()
        assert len((store / "results.jsonl").read_text().splitlines()) == 2

        assert main(["report", str(store)]) == 0
        report = capsys.readouterr().out
        assert "status=complete" in report and "E9-seed1" in report

        assert main(["report", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["n_ok"] == 2
        assert len(payload["records"]) == 2

    def test_sweep_failing_cell_exit_code_and_store(self, tmp_path, capsys):
        store = tmp_path / "run"
        code = main(
            [
                "sweep", "E9", "--seeds", "0,1", "--store", str(store),
                *FAST_E9[:-2], "--set", "keep_probability=1.5",
            ]
        )
        assert code == 1  # grid completed, but cells failed
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "2 failed" in out

    def test_sweep_existing_store_friendly(self, tmp_path, capsys):
        store = tmp_path / "run"
        args = ["sweep", "E9", "--store", str(store), *FAST_E9]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 2
        assert "already exists" in capsys.readouterr().err


class TestReportCommand:
    def test_missing_store_friendly(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "manifest" in capsys.readouterr().err


class TestBenchCommand:
    def test_bench_writes_runtime_and_engine_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_runtime.json"
        engine_out = tmp_path / "BENCH_engine.json"
        code = main(
            [
                "bench", "--ids", "E1", "--repeats", "1",
                "--out", str(out), "--engine-out", str(engine_out),
            ]
        )
        assert code in (0, 1)  # 1 only if the fast path times slower
        text = capsys.readouterr().out
        assert "run_batch" in text
        assert "engine-predict-no-reuse" in text
        payload = json.loads(out.read_text())
        assert payload["benchmarks"][0]["experiment_id"] == "E1"
        assert payload["benchmarks"][0]["mean_s"] > 0
        assert payload["batch_session"]["batch_s"] > 0
        engine_payload = json.loads(engine_out.read_text())
        reference = engine_payload["reference"]
        assert reference["case"] == "engine-predict-no-reuse"
        assert reference["reuse"] is False
        assert reference["loop_s"] > 0 and reference["fast_s"] > 0
        assert reference["max_abs_diff"] == 0.0  # fast == loop, bit-for-bit
        assert {c["case"] for c in engine_payload["cases"]} == {
            "engine-predict-no-reuse",
            "engine-predict-reuse-refresh",
            "macro-matvec_many",
        }

    def test_bench_unknown_id_friendly(self, capsys):
        assert main(["bench", "--ids", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bench_suite_serve_writes_serve_json(self, tmp_path, capsys):
        serve_out = tmp_path / "BENCH_serve.json"
        code = main(
            [
                "bench", "--suite", "serve", "--repeats", "1",
                "--serve-out", str(serve_out),
            ]
        )
        assert code in (0, 1)  # 1 only if coalescing timed slower
        text = capsys.readouterr().out
        assert "serve-coalescing" in text
        payload = json.loads(serve_out.read_text())
        entry = payload["serve"]
        assert entry["case"] == "serve-coalescing"
        assert entry["direct_rps"] > 0
        assert entry["service_batch1_rps"] > 0
        assert entry["service_coalesced_rps"] > 0
        # Coalescing must never change bits, whatever the timings did.
        assert entry["parity_max_abs_diff"] == 0.0
        # The historical outputs are untouched by the serve suite.
        assert not (tmp_path / "BENCH_runtime.json").exists()


class TestWorldCaches:
    def test_clear_world_caches_empties_memory(self):
        from repro.experiments.common import (
            _ROOM_CACHE,
            build_room_world,
            clear_world_caches,
            world_cache_stats,
        )

        build_room_world(seed=3, n_steps=3, n_cloud_points=500, image=(16, 12))
        assert world_cache_stats()["room_entries"] >= 1
        evicted = clear_world_caches()
        assert evicted["room"] >= 1
        assert len(_ROOM_CACHE) == 0
        assert world_cache_stats()["room_entries"] == 0

    def test_disk_cache_round_trip(self, tmp_path):
        from repro.experiments.common import (
            build_room_world,
            clear_world_caches,
            enable_disk_cache,
            world_cache_stats,
        )

        enable_disk_cache(tmp_path)
        try:
            clear_world_caches()
            first = build_room_world(
                seed=13, n_steps=2, n_cloud_points=200, image=(8, 6)
            )
            stats = world_cache_stats()
            assert stats["disk_files"] == 1
            assert stats["disk_bytes"] > 0

            clear_world_caches()  # drop memory tier; disk survives
            hits_before = world_cache_stats()["disk_hits"]
            second = build_room_world(
                seed=13, n_steps=2, n_cloud_points=200, image=(8, 6)
            )
            assert world_cache_stats()["disk_hits"] == hits_before + 1
            assert second is not first
            assert np.array_equal(first.states, second.states)
            assert np.array_equal(first.cloud, second.cloud)
            assert np.array_equal(
                first.depths[0], second.depths[0], equal_nan=True
            )

            evicted = clear_world_caches(disk=True)
            assert evicted["disk_files"] == 1
            assert world_cache_stats()["disk_files"] == 0
        finally:
            enable_disk_cache(None)
            clear_world_caches()

    def test_vo_world_disk_cache(self, tmp_path):
        from repro.experiments.common import (
            build_vo_world,
            clear_world_caches,
            enable_disk_cache,
            world_cache_stats,
        )

        enable_disk_cache(tmp_path)
        try:
            clear_world_caches()
            first = build_vo_world(
                seed=19, n_scenes=2, frames_per_scene=6, hidden=(8,), epochs=2
            )
            clear_world_caches()
            second = build_vo_world(
                seed=19, n_scenes=2, frames_per_scene=6, hidden=(8,), epochs=2
            )
            assert world_cache_stats()["disk_hits"] >= 1
            assert np.array_equal(first.train.features, second.train.features)
            # the restored model predicts identically
            x = first.val.features
            first.model.eval()
            second.model.eval()
            assert np.array_equal(first.model.forward(x), second.model.forward(x))
        finally:
            clear_world_caches(disk=True)
            enable_disk_cache(None)

    def test_disabled_disk_cache_writes_nothing(self, tmp_path):
        from repro.experiments.common import (
            build_room_world,
            clear_world_caches,
            enable_disk_cache,
        )

        enable_disk_cache(None)
        clear_world_caches()
        build_room_world(seed=17, n_steps=2, n_cloud_points=200, image=(8, 6))
        assert list(tmp_path.glob("*.pkl")) == []

    def test_enable_none_overrides_env_var(self, tmp_path, monkeypatch):
        # Regression: enable_disk_cache(None) must disable the disk tier
        # even when REPRO_WORLD_CACHE_DIR is exported.
        import repro.experiments.common as common

        monkeypatch.setenv("REPRO_WORLD_CACHE_DIR", str(tmp_path))
        common._disk_cache_override = common._ENV_FALLBACK
        try:
            assert common._disk_cache_dir() == tmp_path
            common.enable_disk_cache(None)
            assert common._disk_cache_dir() is None
            common.clear_world_caches()
            common.build_room_world(
                seed=23, n_steps=2, n_cloud_points=200, image=(8, 6)
            )
            assert list(tmp_path.glob("*.pkl")) == []
        finally:
            common._disk_cache_override = common._ENV_FALLBACK
            common.clear_world_caches()
