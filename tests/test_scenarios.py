"""Scenario library: spec round-trip, overrides, library properties,
Plan compilation, executor bit-identity, traffic mixes, and the
`repro scenarios` CLI."""

import dataclasses
import json

import numpy as np
import pytest

from repro.api.cli import main
from repro.runtime import ParallelExecutor
from repro.scenarios import (
    ScenarioMix,
    ScenarioSpec,
    TrajectorySpec,
    apply_overrides,
    build_session,
    compile_scenarios,
    get_scenario,
    list_scenarios,
    run_scenario,
    scenario_names,
    scenario_track_setup,
    scenario_world,
    serving_profile,
    summarize_rows,
)
from repro.serve import reference_track_run

TINY = ["--tiny", "--substrates", "digital", "--seeds", "0"]


class TestSpec:
    def test_defaults_validate(self):
        spec = ScenarioSpec(name="t", description="d")
        assert spec.validate() is spec

    def test_validation_points_at_field(self):
        spec = ScenarioSpec(name="t", description="d", n_particles=0)
        with pytest.raises(ValueError, match="'n_particles' must be >= 1"):
            spec.validate()
        bad_map = dataclasses.replace(
            get_scenario("room-baseline"),
            map=dataclasses.replace(get_scenario("room-baseline").map, size=-1.0),
        )
        with pytest.raises(ValueError, match="'map.size' must be > 0"):
            bad_map.validate()

    def test_json_round_trip_is_bit_exact(self):
        spec = get_scenario("sensor-dropout-burst")
        text = spec.to_json()
        again = ScenarioSpec.from_json(text)
        assert again == spec
        assert again.to_json() == text

    def test_strict_parse_rejects_unknown_fields(self):
        payload = get_scenario("room-baseline").to_jsonable()
        payload["banana"] = 1
        with pytest.raises(ValueError, match=r"unknown scenario spec field\(s\)"):
            ScenarioSpec.from_jsonable(payload)
        nested = get_scenario("room-baseline").to_jsonable()
        nested["trajectory"]["warp"] = 9
        with pytest.raises(ValueError, match="trajectory"):
            ScenarioSpec.from_jsonable(nested)

    def test_from_json_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            ScenarioSpec.from_json("{not json")

    def test_tiny_is_valid_and_small(self):
        for name in scenario_names():
            tiny = get_scenario(name).tiny()
            tiny.validate()
            assert tiny.n_particles <= 48
            assert tiny.trajectory.n_steps <= 4
            assert tiny.map.cloud_points <= 300


class TestOverrides:
    def test_nested_override(self):
        spec = apply_overrides(
            get_scenario("room-baseline"),
            {"trajectory.n_steps": "8", "noise.depth_noise_std": "0.02"},
        )
        assert spec.trajectory.n_steps == 8
        assert spec.noise.depth_noise_std == 0.02
        # untouched sections survive the frozen rebuild
        assert spec.map == get_scenario("room-baseline").map

    def test_unknown_field_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'n_steps'"):
            apply_overrides(
                get_scenario("room-baseline"), {"trajectory.n_stepz": "8"}
            )

    def test_section_is_not_a_value(self):
        with pytest.raises(ValueError, match="section, not a value"):
            apply_overrides(get_scenario("room-baseline"), {"trajectory": "8"})

    def test_type_mismatch_rejected(self):
        with pytest.raises(ValueError, match="expects int"):
            apply_overrides(
                get_scenario("room-baseline"), {"trajectory.n_steps": "hi"}
            )

    def test_result_is_revalidated(self):
        with pytest.raises(ValueError, match="'trajectory.n_steps' must be"):
            apply_overrides(
                get_scenario("room-baseline"), {"trajectory.n_steps": "0"}
            )


class TestLibrary:
    def test_at_least_twenty_scenarios(self):
        assert len(scenario_names()) >= 20

    def test_unknown_name_suggests(self):
        with pytest.raises(KeyError, match="did you mean 'room-baseline'"):
            get_scenario("room-basline")

    def test_tag_filter(self):
        tagged = list_scenarios(tag="serving")
        assert tagged and all("serving" in s.tags for s in tagged)

    def test_every_stock_scenario_round_trips_and_compiles(self):
        # The library-wide property: each spec validates, survives a
        # bit-exact JSON round-trip, and compiles onto the Plan runtime.
        for name in scenario_names():
            spec = get_scenario(name)
            spec.validate()
            text = spec.to_json()
            assert ScenarioSpec.from_json(text).to_json() == text
            plan = compile_scenarios([name], substrates=["digital"], seeds=[0])
            assert len(plan) == 1
            assert plan[0].experiment_id == "SCN"
            assert json.loads(plan[0].overrides["spec"]) == spec.to_jsonable()

    @pytest.mark.parametrize("name", sorted(set(scenario_names())))
    def test_every_stock_scenario_runs_tiny(self, name):
        metrics = run_scenario(get_scenario(name).tiny(), "digital", seed=0)
        assert metrics["scenario"] == name
        assert metrics["n_steps"] >= 1
        assert np.isfinite(metrics["final_error_m"])
        assert metrics["energy_j"] > 0


class TestSweep:
    def test_compile_grid_shape(self):
        plan = compile_scenarios(
            ["room-baseline", "clean-oracle"],
            substrates=["digital", "cim"],
            seeds=[0, 1],
        )
        assert len(plan) == 8
        assert [job.index for job in plan] == list(range(8))
        assert len({job.job_id for job in plan}) == 8

    def test_serial_equals_parallel(self):
        plan = compile_scenarios(
            ["room-baseline", "adc-low-precision"],
            substrates=["digital", "cim"],
            seeds=[0, 1],
            tiny=True,
        )
        serial = ParallelExecutor(workers=1).execute(plan)
        parallel = ParallelExecutor(workers=2).execute(plan)
        assert serial.n_failed == 0 and parallel.n_failed == 0
        for a, b in zip(serial.results, parallel.results):
            assert a.metrics == b.metrics

    def test_summarize_rows_groups(self):
        rows = [
            run_scenario(get_scenario("room-baseline").tiny(), "digital", seed=s)
            for s in (0, 1)
        ]
        summary = summarize_rows(rows)
        assert len(summary) == 1
        assert summary[0]["runs"] == 2
        assert summary[0]["scenario"] == "room-baseline"


class TestTraffic:
    def test_mix_validates(self):
        with pytest.raises(ValueError):
            ScenarioMix(entries=())
        with pytest.raises(ValueError):
            ScenarioMix(entries=(("a", 0.5), ("a", 0.5)))
        with pytest.raises(ValueError):
            ScenarioMix(entries=(("a", 0.0),))

    def test_counts_sum_and_proportion(self):
        mix = ScenarioMix(entries=(("a", 0.5), ("b", 0.3), ("c", 0.2)))
        counts = mix.counts(10)
        assert sum(counts.values()) == 10
        assert counts == {"a": 5, "b": 3, "c": 2}

    def test_assign_is_deterministic(self):
        mix = ScenarioMix(entries=(("a", 2.0), ("b", 1.0)))
        assignment = mix.assign(9, seed=3)
        assert len(assignment) == 9
        assert assignment.count("a") == 6 and assignment.count("b") == 3
        assert assignment == mix.assign(9, seed=3)
        assert assignment != mix.assign(9, seed=4)

    def test_serving_profile_is_tiny(self):
        spec = serving_profile(get_scenario("room-baseline"), n_steps=2)
        assert spec.trajectory.n_steps == 2
        assert spec.n_particles <= 48

    def test_streamed_track_matches_one_shot_scenario_session(self):
        # The scenario_mix bench contract: a TrackWorld built from a
        # scenario replays the exact session the scenario builder makes,
        # so streamed steps equal the one-shot oracle bit-for-bit.
        spec = serving_profile(get_scenario("sensor-dropout-burst"), n_steps=3)
        world, init, measurements = scenario_track_setup(spec)
        reference = reference_track_run(world, "digital", init, 0, measurements)

        source = scenario_world(spec)
        session = build_session(spec, "digital", world=source)
        rng = np.random.default_rng(0)  # the track seed drives init + run
        init.apply(session, rng)
        result = session.run(measurements, rng=rng)
        assert np.array_equal(reference.mean, result.mean)
        assert reference.energy_j == result.energy_j
        assert reference.ops_executed == result.ops_executed


class TestScenariosCli:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "room-baseline" in out and "24 scenario(s)" in out

    def test_list_json_tagged(self, capsys):
        assert main(["scenarios", "list", "--tag", "serving", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [s["name"] for s in payload["scenarios"]]
        assert "sensor-dropout-burst" in names

    def test_run_report_round_trip(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert (
            main(
                ["scenarios", "run", "room-baseline", *TINY, "--store", store]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 run(s), 1 ok, 0 failed" in out
        assert main(["scenarios", "report", store]) == 0
        out = capsys.readouterr().out
        assert "room-baseline" in out and "ok=1" in out

    def test_run_json(self, capsys):
        assert main(["scenarios", "run", "clean-oracle", *TINY, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert records[0]["status"] == "ok"
        assert records[0]["result"]["metrics"]["scenario"] == "clean-oracle"

    def test_run_with_override(self, capsys):
        assert (
            main(
                [
                    "scenarios", "run", "room-baseline", *TINY,
                    "--set", "trajectory.n_steps=2", "--json",
                ]
            )
            == 0
        )
        records = json.loads(capsys.readouterr().out)
        assert records[0]["result"]["metrics"]["n_steps"] == 2

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["scenarios", "run", "room-basline", *TINY]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'room-baseline'" in err

    def test_bad_override_exits_2(self, capsys):
        assert (
            main(
                [
                    "scenarios", "run", "room-baseline", *TINY,
                    "--set", "trajectory.n_stepz=2",
                ]
            )
            == 2
        )
        assert "did you mean 'n_steps'" in capsys.readouterr().err


def test_trajectory_spec_profiles_are_closed():
    # Guard against silently accepting an unknown profile.
    spec = ScenarioSpec(
        name="t",
        description="d",
        trajectory=TrajectorySpec(profile="zigzag"),
    )
    with pytest.raises(ValueError, match="trajectory.profile"):
        spec.validate()
