"""Tests for repro.vo: features, models, training, odometry, evaluation."""

import numpy as np
import pytest

from repro.nn import Sequential
from repro.scene.dataset import SyntheticRGBDScenes
from repro.scene.se3 import Pose
from repro.vo import (
    FrameEncoder,
    TargetScaler,
    VODataset,
    VOTrainer,
    ate_rmse,
    build_vo_lstm,
    build_vo_mlp,
    increments_from_predictions,
    integrate_increments,
    relative_pose_errors,
    trajectory_report,
)
from repro.vo.features import occlude_depth, pose_to_target, target_to_pose


@pytest.fixture(scope="module")
def tiny_dataset():
    ds = SyntheticRGBDScenes(n_scenes=2, frames_per_scene=6, seed=11)
    return VODataset.from_scenes(ds, [0, 1])


class TestFrameEncoder:
    def test_feature_dim(self):
        encoder = FrameEncoder(grid=(4, 6))
        assert encoder.feature_dim == 4 * 6 * 3

    def test_nan_filled_with_max_range(self):
        encoder = FrameEncoder(grid=(2, 2), max_range=5.0)
        depth = np.full((8, 8), np.nan)
        features = encoder.encode_depth(depth)
        assert np.allclose(features, 1.0)

    def test_pair_difference_channel(self):
        encoder = FrameEncoder(grid=(2, 2), max_range=4.0)
        d1 = np.full((8, 8), 2.0)
        d2 = np.full((8, 8), 3.0)
        features = encoder.encode_pair(d1, d2)
        cells = 4
        assert np.allclose(features[:cells], 0.5)
        assert np.allclose(features[cells : 2 * cells], 0.75)
        assert np.allclose(features[2 * cells :], 0.25)

    def test_intensity_requires_frames(self):
        encoder = FrameEncoder(include_intensity=True)
        with pytest.raises(ValueError):
            encoder.encode_pair(np.ones((9, 12)), np.ones((9, 12)))

    def test_occlude_depth_coverage(self, rng):
        depth = np.full((30, 40), 3.0)
        occluded = occlude_depth(depth, 0.25, rng)
        frac = np.mean(occluded < 1.0)
        assert 0.1 < frac < 0.5

    def test_occlude_zero_fraction_is_copy(self, rng):
        depth = np.full((10, 10), 2.0)
        assert np.allclose(occlude_depth(depth, 0.0, rng), depth)


class TestTargets:
    def test_pose_target_round_trip(self):
        pose = Pose.from_euler([0.1, -0.2, 0.05], roll=0.02, pitch=-0.04, yaw=0.3)
        recovered = target_to_pose(pose_to_target(pose))
        assert np.allclose(recovered.as_matrix(), pose.as_matrix(), atol=1e-10)

    def test_scaler_round_trip(self, rng):
        data = rng.normal(loc=3.0, scale=2.0, size=(100, 6))
        scaler = TargetScaler.fit(data)
        assert np.allclose(scaler.inverse(scaler.transform(data)), data)
        scaled = scaler.transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_variance_inverse(self):
        scaler = TargetScaler(mean=np.zeros(2), std=np.array([2.0, 3.0]))
        variance = scaler.inverse_variance(np.ones(2))
        assert np.allclose(variance, [4.0, 9.0])


class TestDatasetAndTraining:
    def test_dataset_shapes(self, tiny_dataset):
        assert tiny_dataset.features.shape[0] == tiny_dataset.targets.shape[0]
        assert tiny_dataset.targets.shape[1] == 6
        assert len(tiny_dataset) == sum(tiny_dataset.frame_pairs_per_scene)

    def test_features_standardised(self, tiny_dataset):
        assert abs(tiny_dataset.features.mean()) < 0.1

    def test_training_reduces_loss(self, tiny_dataset, rng):
        model = build_vo_mlp(tiny_dataset.features.shape[1], rng, hidden=(32,))
        trainer = VOTrainer(model, lr=1e-3, batch_size=8)
        history = trainer.fit(tiny_dataset, epochs=15, rng=rng)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_validation_history(self, tiny_dataset, rng):
        model = build_vo_mlp(tiny_dataset.features.shape[1], rng, hidden=(16,))
        trainer = VOTrainer(model, lr=1e-3)
        history = trainer.fit(tiny_dataset, epochs=3, rng=rng, validation=tiny_dataset)
        assert len(history.val_loss) == 3

    def test_mlp_has_dropout(self, rng):
        model = build_vo_mlp(10, rng, hidden=(8, 8))
        assert len(model.dropout_layers()) == 2

    def test_lstm_model_forward(self, rng):
        model = build_vo_lstm(12, rng, hidden_size=8)
        out = model.forward(rng.normal(size=(3, 5, 12)))
        assert out.shape == (3, 6)
        assert isinstance(model, Sequential)
        assert len(model.dropout_layers()) == 1


class TestOdometry:
    def test_integration_matches_ground_truth(self):
        poses = [
            Pose.from_euler([0.1 * k, 0.05 * k, 0.0], yaw=0.1 * k) for k in range(6)
        ]
        increments = [
            poses[k].relative_to(poses[k - 1]) for k in range(1, 6)
        ]
        integrated = integrate_increments(poses[0], increments)
        assert ate_rmse(integrated, poses) < 1e-9

    def test_increments_from_predictions_decoding(self, rng):
        scaler = TargetScaler(mean=np.zeros(6), std=np.ones(6))
        raw = np.array([[0.1, 0.0, 0.0, 0.0, 0.0, 0.2]])
        increments = increments_from_predictions(raw, scaler)
        assert increments[0].translation[0] == pytest.approx(0.1)
        assert increments[0].euler()[2] == pytest.approx(0.2)

    def test_ate_length_mismatch(self):
        with pytest.raises(ValueError):
            ate_rmse([Pose.identity()], [Pose.identity(), Pose.identity()])

    def test_rpe_zero_for_identical(self):
        poses = [Pose.from_euler([k, 0, 0], yaw=0.1 * k) for k in range(4)]
        t_err, r_err = relative_pose_errors(poses, poses)
        assert np.allclose(t_err, 0.0)
        assert np.allclose(r_err, 0.0, atol=1e-7)

    def test_trajectory_report_keys(self):
        poses = [Pose.from_euler([k, 0, 0]) for k in range(4)]
        noisy = [Pose.from_euler([k + 0.1, 0, 0]) for k in range(4)]
        report = trajectory_report(noisy, poses)
        assert set(report) >= {
            "ate_rmse_m",
            "rpe_trans_mean_m",
            "rpe_rot_mean_rad",
            "final_position_error_m",
        }
        assert report["ate_rmse_m"] == pytest.approx(0.1, abs=1e-9)
