"""Tests for repro.energy: analytic models validated against metered ledgers."""

import numpy as np
import pytest

from repro.circuits.technology import NODE_16NM, NODE_45NM
from repro.energy import (
    EnergyComparison,
    cim_likelihood_energy,
    cim_mc_dropout_energy,
    comparison_table,
    digital_gmm_energy,
    digital_nn_energy,
)
from repro.energy.report import format_energy


class TestDigitalGMMModel:
    def test_matches_metered_backend(self, rng):
        from repro.filtering.measurement import DigitalGMMBackend
        from repro.maps.gmm import GaussianMixture

        gmm = GaussianMixture(
            np.ones(10) / 10, rng.normal(size=(10, 3)), np.full((10, 3), 0.5)
        )
        backend = DigitalGMMBackend(gmm, NODE_45NM, bits=8)
        backend.field_log(rng.normal(size=(25, 3)))
        metered = backend.ledger.total_energy_j()
        analytic = digital_gmm_energy(NODE_45NM, n_components=10, bits=8, n_queries=25)
        assert analytic == pytest.approx(metered, rel=1e-9)

    def test_scales_linearly(self):
        one = digital_gmm_energy(NODE_45NM, 50, n_queries=1)
        many = digital_gmm_energy(NODE_45NM, 50, n_queries=17)
        assert many == pytest.approx(17 * one)

    def test_higher_precision_costs_more(self):
        assert digital_gmm_energy(NODE_45NM, 50, bits=16) > digital_gmm_energy(
            NODE_45NM, 50, bits=8
        )


class TestCIMLikelihoodModel:
    def test_component_sum(self):
        energy = cim_likelihood_energy(
            NODE_45NM, adc_bits=4, n_axes=3, mean_array_current_a=1e-5
        )
        expected = (
            3 * NODE_45NM.dac_energy_j
            + NODE_45NM.adc_energy(4)
            + 1e-5 * NODE_45NM.vdd * 1e-8
        )
        assert energy == pytest.approx(expected)

    def test_matches_paper_band(self):
        energy = cim_likelihood_energy(NODE_45NM)
        assert 2e-13 < energy < 6e-13  # a few hundred fJ

    def test_beats_digital_by_paper_factor(self):
        digital = digital_gmm_energy(NODE_45NM, n_components=100, bits=8)
        cim = cim_likelihood_energy(NODE_45NM)
        assert 10 < digital / cim < 60


class TestNNModels:
    def test_digital_nn_counts_weights(self):
        energy = digital_nn_energy(NODE_16NM, (10, 20, 5), bits=8)
        macs = 10 * 20 + 20 * 5
        expected = macs * (
            NODE_16NM.mac_energy(8) + 8 * NODE_16NM.sram_read_energy_per_bit_j
        )
        assert energy == pytest.approx(expected)

    def test_cim_mc_reuse_cheaper(self):
        from repro.sram.macro import MacroConfig

        config = MacroConfig(weight_bits=4)
        sizes = (324, 128, 64, 6)
        with_reuse = cim_mc_dropout_energy(config, sizes, reuse=True)
        without = cim_mc_dropout_energy(config, sizes, reuse=False)
        assert with_reuse < 0.5 * without

    def test_cim_mc_tracks_engine_within_factor(self, rng):
        """The expectation model should land within ~2x of a metered run."""
        from repro.core.cim_mc_dropout import CIMMCDropoutEngine
        from repro.nn import Dense, Dropout, ReLU, Sequential
        from repro.sram.macro import MacroConfig

        model = Sequential(
            [
                Dense(32, 48, rng),
                ReLU(),
                Dropout(0.5, rng=rng),
                Dense(48, 8, rng),
            ]
        )
        config = MacroConfig(weight_bits=4)
        engine = CIMMCDropoutEngine(
            model, config, n_iterations=30, use_hardware_rng=False,
            rng=np.random.default_rng(0),
        )
        result = engine.predict(rng.normal(size=(1, 32)))
        metered = result.energy.total_energy_j()
        analytic = cim_mc_dropout_energy(config, (32, 48, 8), n_iterations=30)
        assert 0.4 < analytic / metered < 2.5

    def test_validation(self):
        from repro.sram.macro import MacroConfig

        with pytest.raises(ValueError):
            digital_nn_energy(NODE_16NM, (10,))
        with pytest.raises(ValueError):
            cim_mc_dropout_energy(MacroConfig(), (10, 5), keep_probability=0.0)


class TestReport:
    def test_ratio(self):
        comparison = EnergyComparison("a vs b", baseline_j=1e-11, proposed_j=4e-13)
        assert comparison.ratio == pytest.approx(25.0)

    def test_table_contains_rows(self):
        table = comparison_table(
            [
                EnergyComparison("likelihood", 1e-11, 4e-13),
                EnergyComparison("inference", 3e-9, 1e-9),
            ]
        )
        assert "likelihood" in table and "inference" in table

    def test_empty_table(self):
        assert "no comparisons" in comparison_table([])

    def test_format_energy_roundtrip_units(self):
        assert format_energy(374e-15).endswith("fJ")


class TestDigitalMCDropoutModel:
    def test_is_iterations_times_single_pass(self):
        sizes = (32, 16, 4)
        from repro.energy import digital_mc_dropout_energy

        single = digital_nn_energy(NODE_16NM, sizes, bits=8, n_inferences=1)
        total = digital_mc_dropout_energy(
            NODE_16NM, sizes, bits=8, n_iterations=30, batch=2
        )
        assert total == pytest.approx(60 * single)

    def test_rejects_bad_counts(self):
        from repro.energy import digital_mc_dropout_energy

        with pytest.raises(ValueError):
            digital_mc_dropout_energy(NODE_16NM, (8, 4), n_iterations=0)
