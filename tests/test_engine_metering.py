"""Per-call metering, the sample-major fast path, and ledger scoping.

The headline figures of the paper are *ratios of per-inference* ops and
energy, so `predict()` must report strictly per-call numbers no matter how
many times the engine has run before -- and the vectorised fast path must
be indistinguishable (bit-for-bit) from the reference loop it replaces.
"""

import numpy as np
import pytest

from repro.circuits.energy import EnergyLedger
from repro.core.cim_mc_dropout import CIMMCDropoutEngine
from repro.core.cim_particle_filter import LocalizationResult
from repro.nn import Dense, Dropout, ReLU, Sequential
from repro.sram.macro import MacroConfig


def make_model(seed: int = 3) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Dense(12, 16, rng),
            ReLU(),
            Dropout(0.5, rng=np.random.default_rng(11)),
            Dense(16, 4, rng),
        ]
    )


def make_engine(
    reuse: bool = True,
    ordering: bool = True,
    fast_path: bool = True,
    use_hardware_rng: bool = False,
    n_iterations: int = 12,
    **kwargs,
) -> CIMMCDropoutEngine:
    return CIMMCDropoutEngine(
        make_model(),
        MacroConfig(),
        n_iterations=n_iterations,
        reuse=reuse,
        ordering=ordering,
        fast_path=fast_path,
        use_hardware_rng=use_hardware_rng,
        rng=np.random.default_rng(7),
        **kwargs,
    )


@pytest.fixture(scope="module")
def inputs():
    return np.random.default_rng(4).normal(size=(3, 12))


class TestPerCallMetering:
    @pytest.mark.parametrize(
        "reuse, ordering, hw",
        [(True, True, True), (True, False, False), (False, False, False)],
    )
    def test_predict_twice_reports_identical_per_call_figures(
        self, inputs, reuse, ordering, hw
    ):
        # Regression: ops/energy used to come from cumulative macro
        # ledgers, so the second call on one engine double-counted.
        engine = make_engine(reuse=reuse, ordering=ordering, use_hardware_rng=hw)
        first = engine.predict(inputs, rng=np.random.default_rng(5))
        second = engine.predict(inputs, rng=np.random.default_rng(5))
        assert first.ops_executed == second.ops_executed
        assert first.ops_naive == second.ops_naive
        assert first.energy.total_energy_j() == second.energy.total_energy_j()
        assert first.reuse_savings == second.reuse_savings
        assert first.tops_per_watt() == second.tops_per_watt()
        assert 0.0 <= second.reuse_savings <= 1.0

    def test_second_call_matches_fresh_engine(self, inputs):
        # What a session got via reset_energy() before: per-call figures
        # equal to a fresh engine's single call.
        fresh = make_engine().predict(inputs, rng=np.random.default_rng(5))
        warm_engine = make_engine()
        warm_engine.predict(inputs, rng=np.random.default_rng(9))
        warm = warm_engine.predict(inputs, rng=np.random.default_rng(5))
        assert warm.ops_executed == fresh.ops_executed
        assert warm.energy.total_energy_j() == fresh.energy.total_energy_j()
        assert warm.reuse_savings == fresh.reuse_savings
        assert warm.tops_per_watt() == fresh.tops_per_watt()

    def test_macro_ledgers_stay_cumulative(self, inputs):
        engine = make_engine()
        engine.predict(inputs, rng=np.random.default_rng(5))
        after_one = sum(layer.macro.ops_count() for layer in engine.layers)
        engine.predict(inputs, rng=np.random.default_rng(5))
        after_two = sum(layer.macro.ops_count() for layer in engine.layers)
        assert after_two == 2 * after_one  # odometer keeps running

    def test_mask_generation_energy_is_per_call(self, inputs):
        engine = make_engine(use_hardware_rng=True)
        first = engine.predict(inputs, rng=np.random.default_rng(5))
        second = engine.predict(inputs, rng=np.random.default_rng(5))
        key = "dropout_bit_generation"
        assert first.energy.energy(key) > 0
        assert second.energy.energy(key) == first.energy.energy(key)

    def test_pinned_streams_charge_no_generation_energy(self, inputs):
        engine = make_engine(use_hardware_rng=True)
        streams = engine.draw_mask_streams(np.random.default_rng(3))
        order = engine.order_mask_streams(streams)
        result = engine.predict(
            inputs,
            rng=np.random.default_rng(5),
            mask_streams=streams,
            mask_order=order,
        )
        assert result.energy.energy("dropout_bit_generation") == 0.0


class TestFastPathParity:
    @pytest.mark.parametrize(
        "reuse, ordering",
        [(False, False), (False, True), (True, False), (True, True)],
    )
    def test_fast_path_matches_loop_bit_for_bit(self, inputs, reuse, ordering):
        fast = make_engine(reuse=reuse, ordering=ordering, fast_path=True)
        loop = make_engine(reuse=reuse, ordering=ordering, fast_path=False)
        a = fast.predict(inputs, rng=np.random.default_rng(5))
        b = loop.predict(inputs, rng=np.random.default_rng(5))
        assert np.array_equal(a.mask_order, b.mask_order)
        assert np.array_equal(a.samples, b.samples)
        assert np.array_equal(a.mean, b.mean)
        assert np.array_equal(a.variance, b.variance)
        assert a.ops_executed == b.ops_executed
        assert a.energy.total_energy_j() == pytest.approx(
            b.energy.total_energy_j(), rel=1e-12
        )

    def test_fast_path_matches_loop_under_refresh_one(self, inputs):
        # refresh_every=1 degenerates reuse into all-refresh: the whole
        # run goes sample-major and must still match the loop.
        fast = make_engine(reuse=True, fast_path=True, refresh_every=1)
        loop = make_engine(reuse=True, fast_path=False, refresh_every=1)
        a = fast.predict(inputs, rng=np.random.default_rng(5))
        b = loop.predict(inputs, rng=np.random.default_rng(5))
        assert np.array_equal(a.samples, b.samples)
        assert a.ops_executed == b.ops_executed

    def test_fast_path_matches_loop_noiseless(self, inputs):
        config = MacroConfig(adc_noise_lsb=0.0)
        common = dict(n_iterations=10, use_hardware_rng=False, reuse=False)
        fast = CIMMCDropoutEngine(
            make_model(), config, fast_path=True,
            rng=np.random.default_rng(7), **common,
        )
        loop = CIMMCDropoutEngine(
            make_model(), config, fast_path=False,
            rng=np.random.default_rng(7), **common,
        )
        a = fast.predict(inputs, rng=np.random.default_rng(5))
        b = loop.predict(inputs, rng=np.random.default_rng(5))
        assert np.array_equal(a.samples, b.samples)

    def test_pinned_masks_and_order_respected(self, inputs):
        engine = make_engine(reuse=False)
        streams = engine.draw_mask_streams(np.random.default_rng(3))
        order = engine.order_mask_streams(streams)
        a = engine.predict(
            inputs, rng=np.random.default_rng(5),
            mask_streams=streams, mask_order=order,
        )
        b = engine.predict(
            inputs, rng=np.random.default_rng(5),
            mask_streams=streams, mask_order=order,
        )
        assert np.array_equal(a.mask_order, order)
        assert np.array_equal(a.samples, b.samples)


class TestStreamValidation:
    def test_all_none_pinned_streams_rejected(self, inputs):
        # Regression: an all-None pin used to slip through validation and
        # explode later as AttributeError on `joint.masks`.
        engine = make_engine()
        streams = [None] * len(engine.layers)
        with pytest.raises(ValueError, match="all None"):
            engine.predict(inputs, mask_streams=streams)

    def test_order_mask_streams_rejects_all_none(self):
        engine = make_engine(ordering=True)
        with pytest.raises(ValueError, match="every stream is None"):
            engine.order_mask_streams([None] * len(engine.layers))


def _localization_result(errors) -> LocalizationResult:
    errors = np.asarray(errors, dtype=float)
    return LocalizationResult(
        estimates=np.zeros((errors.size, 4)),
        errors=errors,
        diagnostics=[],
        energy=EnergyLedger(),
        backend="cim",
    )


class TestLocalizationResultEdgeCases:
    def test_never_converged(self):
        result = _localization_result([2.0, 1.5, 0.9, 0.8])
        assert result.converged_step(threshold=0.5) is None

    def test_immediately_converged(self):
        result = _localization_result([0.1, 0.2, 0.3])
        assert result.converged_step(threshold=0.5) == 0

    def test_late_convergence_ignores_transient_dip(self):
        # Early below-threshold blip must not count: the error must stay
        # below the threshold for the remainder of the run.
        result = _localization_result([2.0, 0.4, 1.2, 0.3, 0.2, 0.1])
        assert result.converged_step(threshold=0.5) == 3

    def test_convergence_on_last_step_only(self):
        result = _localization_result([2.0, 1.0, 0.4])
        assert result.converged_step(threshold=0.5) == 2

    def test_empty_trajectory(self):
        result = _localization_result([])
        assert result.converged_step() is None
        assert np.isnan(result.final_error)
        row = result.summary_row()
        assert np.isnan(row["initial_error_m"])
        assert np.isnan(row["final_error_m"])
        assert np.isnan(row["steady_state_error_m"])

    def test_matches_reference_scan(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            errors = rng.uniform(0.0, 1.0, size=rng.integers(1, 12))
            result = _localization_result(errors)
            below = errors < 0.5
            expected = None
            for t in range(len(below)):
                if below[t:].all():
                    expected = t
                    break
            assert result.converged_step(threshold=0.5) == expected


class TestScopeExceptionSafety:
    """DET004 contract: a raising forward must detach every scope.

    Leaked scopes would double-charge every subsequent predict on the
    same engine (the child keeps accumulating inside the cumulative
    ledger), so the engine must stay metering-exact after an exception.
    """

    def test_raising_forward_detaches_all_scopes(self, inputs, monkeypatch):
        engine = make_engine()

        def boom(*args, **kwargs):
            raise RuntimeError("forward exploded")

        monkeypatch.setattr(engine, "_forward_stacked", boom)
        monkeypatch.setattr(engine, "_forward_loop", boom)
        with pytest.raises(RuntimeError, match="forward exploded"):
            engine.predict(inputs, rng=np.random.default_rng(5))
        for layer in engine.layers:
            assert layer.macro.ledger._scopes == []

    def test_raising_scope_open_detaches_partial_scopes(self, inputs):
        # begin_scope failing on layer k must still close the scopes
        # layers 0..k-1 already opened.
        engine = make_engine()
        victim = engine.layers[-1].macro.ledger

        def refuse(label=None):
            raise RuntimeError("scope open refused")

        victim.begin_scope = refuse
        try:
            with pytest.raises(RuntimeError, match="scope open refused"):
                engine.predict(inputs, rng=np.random.default_rng(5))
        finally:
            del victim.begin_scope
        for layer in engine.layers:
            assert layer.macro.ledger._scopes == []

    def test_predict_after_exception_matches_fresh_engine(
        self, inputs, monkeypatch
    ):
        engine = make_engine()

        def boom(*args, **kwargs):
            raise RuntimeError("forward exploded")

        with monkeypatch.context() as patched:
            patched.setattr(engine, "_forward_stacked", boom)
            patched.setattr(engine, "_forward_loop", boom)
            with pytest.raises(RuntimeError):
                engine.predict(inputs, rng=np.random.default_rng(5))

        survivor = engine.predict(inputs, rng=np.random.default_rng(9))
        fresh = make_engine().predict(inputs, rng=np.random.default_rng(9))
        assert np.array_equal(survivor.mean, fresh.mean)
        assert survivor.energy.total_energy_j() == fresh.energy.total_energy_j()
        assert survivor.ops_executed == fresh.ops_executed
