"""repro.serve.workers: sharded serving, crash recovery, shutdown."""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from types import SimpleNamespace

import numpy as np
import pytest

from repro.runtime import BatchPolicy, ShardPolicy
from repro.serve import (
    InferenceRequest,
    InferenceService,
    ServiceOverloaded,
    WorkerCrashed,
    WorkerPool,
    WorkerSpec,
    build_reference_session,
    reference_run,
)
from repro.serve.demo import demo_inputs, demo_model
from repro.serve.http import serve_http

N_ITER = 6


@pytest.fixture(scope="module")
def model():
    return demo_model()


@pytest.fixture(scope="module")
def inputs():
    return demo_inputs()


def make_sharded(model, substrates, workers=2, **kwargs):
    kwargs.setdefault("n_iterations", N_ITER)
    kwargs.setdefault("batch", BatchPolicy(max_batch=4, max_wait_ms=20.0))
    return InferenceService(
        model,
        substrates=substrates,
        shard=ShardPolicy(workers=workers),
        **kwargs,
    )


def assert_result_equal(actual, expected):
    """Bit-for-bit equality of two InferenceResults (values + metering)."""
    assert np.array_equal(actual.mean, expected.mean)
    if expected.variance is None:
        assert actual.variance is None
    else:
        assert np.array_equal(actual.variance, expected.variance)
    if expected.samples is not None:
        assert np.array_equal(actual.samples, expected.samples)
    assert actual.ops_executed == expected.ops_executed
    assert actual.ops_naive == expected.ops_naive
    assert actual.energy_j == expected.energy_j
    assert actual.energy_breakdown_j == expected.energy_breakdown_j


def wait_dead(pids, timeout_s=10.0):
    """Wait until every pid is gone (reaped or reparented-and-exited)."""
    deadline = time.monotonic() + timeout_s
    pending = list(pids)
    while pending and time.monotonic() < deadline:
        still = []
        for pid in pending:
            try:
                os.kill(pid, 0)
                still.append(pid)
            except (ProcessLookupError, PermissionError):
                pass
        pending = still
        if pending:
            time.sleep(0.05)
    return pending


class TestShardPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ShardPolicy(workers=-1)
        with pytest.raises(ValueError, match="join_timeout_s"):
            ShardPolicy(join_timeout_s=0)
        with pytest.raises(ValueError, match="spawn_timeout_s"):
            ShardPolicy(spawn_timeout_s=-1)
        assert ShardPolicy().workers == 0  # default stays in-process

    def test_worker_pool_rejects_in_process_policy(self, model):
        spec = WorkerSpec(models={"default": model}, substrates=("cim",))
        with pytest.raises(ValueError, match="workers >= 1"):
            WorkerPool(spec, ShardPolicy(workers=0))


class TestRouting:
    """_pick is pure over handle attributes: unit-test it with fakes."""

    def make_pool(self, model, affinity=True):
        spec = WorkerSpec(models={"default": model}, substrates=("cim",))
        return WorkerPool(spec, ShardPolicy(workers=2, affinity=affinity))

    def fake(self, index, inflight_requests=0, substrates=()):
        return SimpleNamespace(
            index=index,
            alive=True,
            ready=True,
            inflight_requests=inflight_requests,
            substrates=set(substrates),
        )

    def test_least_loaded_wins(self, model):
        pool = self.make_pool(model)
        pool._handles = [
            self.fake(0, inflight_requests=3, substrates=("cim",)),
            self.fake(1, inflight_requests=0),
        ]
        assert asyncio.run(pool._pick("cim")).index == 1

    def test_affinity_breaks_ties(self, model):
        pool = self.make_pool(model)
        pool._handles = [
            self.fake(0),
            self.fake(1, substrates=("cim",)),
        ]
        assert asyncio.run(pool._pick("cim")).index == 1
        assert asyncio.run(pool._pick("digital")).index == 0

    def test_affinity_off_falls_back_to_index(self, model):
        pool = self.make_pool(model, affinity=False)
        pool._handles = [
            self.fake(0),
            self.fake(1, substrates=("cim",)),
        ]
        assert asyncio.run(pool._pick("cim")).index == 0

    def test_execute_requires_start(self, model):
        pool = self.make_pool(model)
        with pytest.raises(RuntimeError, match="not started"):
            asyncio.run(pool.execute(("cim", "default"), []))


class TestShardedParity:
    """Acceptance: responses bit-for-bit regardless of shard or batching."""

    @pytest.fixture(scope="class")
    def sharded_run(self, model, inputs):
        service = make_sharded(model, ["cim", "digital"], workers=2)
        requests = [
            InferenceRequest(inputs, substrate=name, seed=seed)
            for name in ("cim", "digital")
            for seed in (0, 11)
        ] * 2

        async def drive():
            async with service:
                responses = await asyncio.gather(
                    *(service.submit(r) for r in requests)
                )
                return responses, service.stats_snapshot()

        responses, snapshot = asyncio.run(drive())
        return service, requests, responses, snapshot

    def test_every_response_matches_reference(self, sharded_run):
        service, requests, responses, _ = sharded_run
        sessions = {}
        for request, response in zip(requests, responses):
            if request.substrate not in sessions:
                sessions[request.substrate] = service.reference_session(
                    request.substrate
                )
            expected = reference_run(
                sessions[request.substrate], request.inputs, request.seed
            )
            assert response.substrate == request.substrate
            assert response.seed == request.seed
            assert_result_equal(response.result, expected)

    def test_stats_expose_per_shard_rows(self, sharded_run):
        _, _, _, snapshot = sharded_run
        shards = snapshot["shards"]
        assert shards["workers"] == 2
        rows = shards["shards"]
        assert [row["index"] for row in rows] == [0, 1]
        for row in rows:
            assert row["ready"] is True
            assert row["queue_depth"] == 0  # all drained
            assert "oldest_inflight_age_s" in row
            assert "last_dispatch_age_s" in row
        assert sum(row["dispatched_batches"] for row in rows) >= 2
        assert snapshot["completed"] == 8

    def test_describe_reports_shard_policy(self, sharded_run):
        service, _, _, _ = sharded_run
        described = service.describe()
        assert described["shard"]["workers"] == 2
        assert described["shard"]["respawn"] is True

    def test_workers_terminated_after_stop(self, sharded_run):
        _, _, _, snapshot = sharded_run
        pids = [row["pid"] for row in snapshot["shards"]["shards"]]
        assert wait_dead(pids) == []


class TestCrashRecovery:
    """Kill a shard mid-flight: 503, respawn, then bit-parity again."""

    def test_midflight_kill_503_respawn_parity(self, model, inputs):
        service = make_sharded(model, ["cim"], workers=1)

        async def drive():
            async with service:
                victim = service._worker_pool._handles[0]
                victim_pid = victim.process.pid
                # Freeze the shard first so it provably cannot answer
                # before the kill: the batch stays in flight until
                # SIGKILL closes the pipe (deterministic, no race).
                os.kill(victim_pid, signal.SIGSTOP)
                task = asyncio.ensure_future(
                    service.submit(
                        InferenceRequest(inputs, substrate="cim", seed=5)
                    )
                )
                for _ in range(5000):
                    if victim.inflight:
                        break
                    await asyncio.sleep(0.001)
                assert victim.inflight, "request never reached the shard"
                victim.process.kill()
                with pytest.raises(ServiceOverloaded) as excinfo:
                    await task
                assert isinstance(excinfo.value, WorkerCrashed)
                assert excinfo.value.shard == 0
                # The replacement shard serves the same request with the
                # same bits -- sessions are rebuilt from session_seed.
                response = await service.submit(
                    InferenceRequest(inputs, substrate="cim", seed=5)
                )
                respawned = service._worker_pool._handles[0]
                return victim_pid, respawned.process.pid, response

        victim_pid, respawned_pid, response = asyncio.run(drive())
        assert respawned_pid != victim_pid
        assert service._worker_pool.respawns == 1
        assert service.stats.failed == 1
        session = build_reference_session("cim", model, n_iterations=N_ITER)
        assert_result_equal(response.result, reference_run(session, inputs, 5))

    def test_idle_crash_respawns_cleanly(self, model, inputs):
        service = make_sharded(model, ["digital"], workers=1)

        async def drive():
            async with service:
                victim = service._worker_pool._handles[0]
                victim.process.kill()
                for _ in range(200):
                    replacement = service._worker_pool._handles[0]
                    if replacement is not victim and replacement.ready:
                        break
                    await asyncio.sleep(0.05)
                return await service.submit(
                    InferenceRequest(inputs, substrate="digital", seed=2)
                )

        response = asyncio.run(drive())
        assert service.stats.failed == 0  # nothing was in flight
        session = build_reference_session(
            "digital", model, n_iterations=N_ITER
        )
        assert_result_equal(response.result, reference_run(session, inputs, 2))


class TestShardedHTTP:
    def test_http_parity_and_shard_stats(self, model, inputs):
        service = make_sharded(model, ["cim"], workers=1)
        with serve_http(service, port=0) as context:
            request = InferenceRequest(inputs, substrate="cim", seed=8)
            raw = urllib.request.urlopen(
                urllib.request.Request(
                    f"http://127.0.0.1:{context.port}/infer",
                    data=request.to_json().encode(),
                    headers={"Content-Type": "application/json"},
                )
            ).read()
            from repro.serve import InferenceResponse

            response = InferenceResponse.from_json(raw.decode())
            session = service.reference_session("cim")
            assert_result_equal(
                response.result, reference_run(session, inputs, 8)
            )
            stats = json.loads(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{context.port}/stats"
                ).read()
            )
            assert stats["shards"]["workers"] == 1
            assert len(stats["shards"]["shards"]) == 1


class TestCLIShutdown:
    """`repro serve --workers N` must never leak orphaned children."""

    def test_sigterm_stops_workers(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.getcwd(), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "1",
                "--n-iterations", "4", "--substrates", "digital",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            port = None
            deadline = time.monotonic() + 60
            assert process.stdout is not None
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if "http://" in line:
                    port = int(line.split("http://")[1].split()[0].split(":")[1])
                    break
            assert port, "server never printed its address"
            stats = json.loads(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/stats", timeout=30
                ).read()
            )
            worker_pids = [row["pid"] for row in stats["shards"]["shards"]]
            assert worker_pids
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
            assert wait_dead(worker_pids) == []
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
