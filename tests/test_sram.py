"""Tests for repro.sram: cell, bit line, RNG, dropout generator, macro."""

import numpy as np
import pytest

from repro.circuits.technology import NODE_16NM
from repro.sram import (
    BitLineModel,
    CrossCoupledInverterRNG,
    DropoutBitGenerator,
    EightTransistorCell,
    MacroConfig,
    SRAMCIMMacro,
)


class TestCell:
    def test_write_and_product(self):
        cell = EightTransistorCell(NODE_16NM)
        cell.write(1)
        assert cell.product_current(1) == pytest.approx(cell.unit_current)
        assert cell.product_current(0) == pytest.approx(cell.leakage)
        cell.write(0)
        assert cell.product_current(1) == pytest.approx(cell.leakage)

    def test_row_gating(self):
        cell = EightTransistorCell(NODE_16NM)
        cell.write(1)
        assert cell.product_current(1, row_active=False) == pytest.approx(cell.leakage)

    def test_vt_offset_modulates_leakage(self):
        lo = EightTransistorCell(NODE_16NM, vt_offset=0.05)
        hi = EightTransistorCell(NODE_16NM, vt_offset=-0.05)
        assert hi.leakage > lo.leakage

    def test_validation(self):
        cell = EightTransistorCell(NODE_16NM)
        with pytest.raises(ValueError):
            cell.write(2)
        with pytest.raises(ValueError):
            cell.product_current(3)


class TestBitLine:
    def test_mismatch_filtering_with_ports(self):
        few_list, many_list = [], []
        for inst in range(30):
            few = BitLineModel.sample(NODE_16NM, 16, np.random.default_rng(inst))
            many = BitLineModel.sample(NODE_16NM, 1024, np.random.default_rng(inst + 500))
            few_list.append(few.relative_mismatch())
            many_list.append(many.relative_mismatch())
        assert np.mean(many_list) < np.mean(few_list)

    def test_integrated_charge_mean(self, rng):
        line = BitLineModel.sample(NODE_16NM, 256, rng)
        charges = [line.integrated_charge(1e-9, rng) for _ in range(200)]
        expected = line.total_leakage() * 1e-9
        assert np.mean(charges) == pytest.approx(expected, rel=0.05)

    def test_window_validation(self, rng):
        line = BitLineModel.sample(NODE_16NM, 8, rng)
        with pytest.raises(ValueError):
            line.integrated_charge(0.0, rng)


class TestCCIRNG:
    def test_bias_improves_with_calibration(self):
        befores, afters = [], []
        for seed in range(10):
            cell = CrossCoupledInverterRNG(NODE_16NM, rng=np.random.default_rng(seed))
            cal = cell.calibrate(np.random.default_rng(seed + 100))
            befores.append(abs(cal.ones_rate_before - 0.5))
            afters.append(abs(cal.ones_rate_after - 0.5))
        assert np.mean(afters) < np.mean(befores)
        assert np.mean(afters) < 0.05

    def test_bits_are_binary(self, rng):
        cell = CrossCoupledInverterRNG(NODE_16NM, rng=rng)
        bits = cell.generate(500, rng)
        assert set(np.unique(bits)) <= {0, 1}

    def test_low_autocorrelation_after_calibration(self):
        cell = CrossCoupledInverterRNG(NODE_16NM, rng=np.random.default_rng(1))
        run = np.random.default_rng(2)
        cell.calibrate(run)
        bits = cell.generate(8000, run).astype(float)
        autocorr = np.corrcoef(bits[:-1], bits[1:])[0, 1]
        assert abs(autocorr) < 0.05

    def test_analytic_probability_matches_empirical(self):
        cell = CrossCoupledInverterRNG(NODE_16NM, rng=np.random.default_rng(3))
        run = np.random.default_rng(4)
        empirical = cell.generate(20000, run).mean()
        assert empirical == pytest.approx(cell.ideal_ones_probability(), abs=0.02)

    def test_more_columns_more_noise(self):
        small = CrossCoupledInverterRNG(
            NODE_16NM, n_columns_per_side=4, rng=np.random.default_rng(0)
        )
        large = CrossCoupledInverterRNG(
            NODE_16NM, n_columns_per_side=32, rng=np.random.default_rng(0)
        )
        assert large.noise_sigma() > small.noise_sigma()

    def test_bias_decomposition_keys(self):
        cell = CrossCoupledInverterRNG(NODE_16NM, rng=np.random.default_rng(0))
        decomposition = cell.bias_decomposition()
        assert set(decomposition) == {
            "mismatch_volts",
            "comparator_offset_volts",
            "trim_volts",
            "noise_sigma_volts",
        }


class TestDropoutGenerator:
    @pytest.fixture(scope="class")
    def generator(self):
        cell = CrossCoupledInverterRNG(NODE_16NM, rng=np.random.default_rng(7))
        cell.calibrate(np.random.default_rng(8))
        return DropoutBitGenerator(cell, keep_probability=0.5)

    def test_mask_rate_near_half(self, generator):
        mask = generator.mask(5000, np.random.default_rng(9))
        assert mask.mean() == pytest.approx(0.5, abs=0.03)

    def test_arbitrary_probability(self):
        cell = CrossCoupledInverterRNG(NODE_16NM, rng=np.random.default_rng(7))
        cell.calibrate(np.random.default_rng(8))
        generator = DropoutBitGenerator(cell, keep_probability=0.75)
        mask = generator.mask(4000, np.random.default_rng(9))
        assert mask.mean() == pytest.approx(0.75, abs=0.04)

    def test_cycle_accounting(self, generator):
        generator.cycles_used = 0
        generator.mask(100, np.random.default_rng(0))
        assert generator.cycles_used == 100
        assert generator.generation_energy() > 0

    def test_iteration_masks_shapes(self, generator):
        input_masks, output_masks = generator.iteration_masks(
            5, 16, 8, np.random.default_rng(1)
        )
        assert input_masks.shape == (5, 16)
        assert output_masks.shape == (5, 8)

    def test_probability_validation(self):
        cell = CrossCoupledInverterRNG(NODE_16NM, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            DropoutBitGenerator(cell, keep_probability=1.0)


class TestMacro:
    @pytest.fixture(scope="class")
    def macro(self):
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(32, 16))
        return SRAMCIMMacro(weight, MacroConfig(weight_bits=6, adc_noise_lsb=0.0), rng=rng), weight

    def test_ideal_matvec_matches_quantised_weights(self, macro, rng):
        m, weight = macro
        x = rng.normal(size=(4, 32))
        assert np.allclose(m.ideal_matvec(x), x @ m.stored_weight)

    def test_matvec_close_to_ideal(self, macro, rng):
        m, _ = macro
        x = rng.normal(size=(4, 32))
        out = m.matvec(x, rng=rng)
        ref = m.ideal_matvec(x)
        # quantisation error bounded by ~ADC step scale
        assert np.max(np.abs(out - ref)) < 5 * m.adc_step

    def test_input_mask_zeroes_columns(self, macro, rng):
        m, _ = macro
        x = rng.normal(size=(2, 32))
        mask = np.zeros(32)
        mask[:8] = 1
        out = m.matvec(x, input_mask=mask, rng=rng)
        ref = m.ideal_matvec(x * mask)
        assert np.max(np.abs(out - ref)) < 5 * m.adc_step

    def test_output_mask_zeroes_rows(self, macro, rng):
        m, _ = macro
        x = rng.normal(size=(2, 32))
        mask = np.zeros(16)
        mask[0] = 1
        out = m.matvec(x, output_mask=mask, rng=rng)
        assert np.allclose(out[:, 1:], 0.0)

    def test_delta_read_consistency(self, rng):
        weight = rng.normal(size=(24, 12))
        macro = SRAMCIMMacro(weight, MacroConfig(adc_noise_lsb=0.0, adc_bits=12), rng=rng)
        x0 = rng.normal(size=(3, 24))
        x1 = x0.copy()
        x1[:, 3] += 1.0
        p0 = macro.matvec(x0, rng=rng)
        changed = np.zeros(24, dtype=bool)
        changed[3] = True
        p1 = macro.matvec_delta(p0, x1 - x0, changed, rng=rng)
        ref = macro.matvec(x1, rng=rng)
        assert np.max(np.abs(p1 - ref)) < 6 * macro.adc_step

    def test_delta_no_change_free(self, rng):
        weight = rng.normal(size=(8, 4))
        macro = SRAMCIMMacro(weight, rng=rng)
        macro.ledger.reset()
        p = np.zeros((1, 4))
        out = macro.matvec_delta(p, np.zeros((1, 8)), np.zeros(8, dtype=bool), rng=rng)
        assert np.allclose(out, p)
        assert macro.ledger.count("cim_mac") == 0

    def test_energy_scales_with_active_inputs(self, rng):
        weight = rng.normal(size=(32, 16))
        macro = SRAMCIMMacro(weight, rng=rng)
        macro.ledger.reset()
        macro.matvec(rng.normal(size=(1, 32)), rng=rng)
        full = macro.ledger.count("cim_mac")
        macro.ledger.reset()
        mask = np.zeros(32)
        mask[:16] = 1
        macro.matvec(rng.normal(size=(1, 32)), input_mask=mask, rng=rng)
        half = macro.ledger.count("cim_mac")
        assert half == full // 2

    def test_lower_precision_larger_error(self, rng):
        weight = rng.normal(size=(32, 16))
        x = rng.normal(size=(8, 32))
        errors = {}
        for bits in (4, 8):
            macro = SRAMCIMMacro(
                weight, MacroConfig(weight_bits=bits, adc_noise_lsb=0.0), rng=rng
            )
            out = macro.matvec(x, rng=rng)
            errors[bits] = np.abs(out - x @ weight).mean()
        assert errors[4] > errors[8]

    def test_weight_shape_validation(self, rng):
        with pytest.raises(ValueError):
            SRAMCIMMacro(np.zeros(5), rng=rng)


class TestMacEnergyOffTable:
    def test_exact_table_hit(self):
        assert MacroConfig(weight_bits=6).mac_energy() == 2.6e-15

    def test_off_table_scales_from_nearest(self):
        # 7 bits ties between 6 and 8; the tie must break low (6).
        assert MacroConfig(weight_bits=7).mac_energy() == pytest.approx(
            2.6e-15 * 7 / 6
        )

    def test_tie_breaks_to_lower_precision(self):
        # 5 bits is equidistant from 4 and 6 -> must pick 4.
        assert MacroConfig(weight_bits=5).mac_energy() == pytest.approx(
            1.6e-15 * 5 / 4
        )

    def test_independent_of_table_insertion_order(self):
        # Regression: nearest-key selection used to follow dict insertion
        # order on ties, so a reordered table changed the answer.
        forward = MacroConfig(
            weight_bits=5, mac_energy_j={4: 1.6e-15, 6: 2.6e-15, 8: 4.5e-15}
        )
        reverse = MacroConfig(
            weight_bits=5, mac_energy_j={8: 4.5e-15, 6: 2.6e-15, 4: 1.6e-15}
        )
        assert forward.mac_energy() == reverse.mac_energy()


class TestPinnedInputSpec:
    def test_spec_pinned_on_first_drive(self, rng):
        macro = SRAMCIMMacro(rng.normal(size=(16, 8)), rng=rng)
        assert macro.input_spec is None
        x = rng.normal(size=(2, 16))
        macro.matvec(x, rng=rng)
        spec = macro.input_spec
        assert spec is not None
        assert spec.max_value == pytest.approx(np.max(np.abs(x)))
        macro.matvec(10.0 * x, rng=rng)  # later inputs do not re-fit the DAC
        assert macro.input_spec is spec

    def test_recalibrate_pins_with_headroom(self, rng):
        macro = SRAMCIMMacro(rng.normal(size=(16, 8)), rng=rng)
        sample = rng.normal(size=(32, 16))
        macro.recalibrate(sample, input_headroom=2.0)
        assert macro.input_spec.max_value == pytest.approx(
            2.0 * np.max(np.abs(sample))
        )
        with pytest.raises(ValueError):
            macro.recalibrate(sample, input_headroom=0.0)

    def test_delta_port_uses_full_read_grid(self, rng):
        # The delta used to be quantised against its own (small) range;
        # now it shares the pinned DAC grid, so a delta read reconstructs
        # the full read exactly in a noise-free, fine-ADC macro.
        config = MacroConfig(adc_noise_lsb=0.0, adc_bits=14, input_bits=6)
        macro = SRAMCIMMacro(
            rng.normal(size=(12, 6)), config, rng=rng, gain_mismatch_sigma=0.0
        )
        spec = macro.pin_input_range(4.0)
        x0 = rng.normal(size=(2, 12))
        x1 = x0.copy()
        x1[:, 5] += 2.0 * spec.scale  # an exact number of DAC steps
        p0 = macro.matvec(x0, rng=rng)
        changed = np.zeros(12, dtype=bool)
        changed[5] = True
        p1 = macro.matvec_delta(p0, x1 - x0, changed, rng=rng)
        ref = macro.matvec(x1, rng=rng)
        assert np.max(np.abs(p1 - ref)) <= macro.adc_step + 1e-12


class TestMatvecMany:
    def test_matches_sequential_matvec_bit_for_bit(self, rng):
        weight = np.random.default_rng(0).normal(size=(20, 10))
        fused = SRAMCIMMacro(weight, rng=np.random.default_rng(1))
        looped = SRAMCIMMacro(weight, rng=np.random.default_rng(1))
        x = rng.normal(size=(6, 3, 20))
        masks = (rng.random((6, 20)) < 0.5).astype(np.uint8)
        out_fused = fused.matvec_many(
            x, input_masks=masks, rng=np.random.default_rng(2)
        )
        seq_rng = np.random.default_rng(2)
        out_loop = np.stack(
            [
                looped.matvec(x[t], input_mask=masks[t], rng=seq_rng)
                for t in range(6)
            ]
        )
        assert np.array_equal(out_fused, out_loop)

    def test_accounting_matches_sequential_calls(self, rng):
        weight = np.random.default_rng(0).normal(size=(20, 10))
        fused = SRAMCIMMacro(weight, rng=np.random.default_rng(1))
        looped = SRAMCIMMacro(weight, rng=np.random.default_rng(1))
        x = rng.normal(size=(5, 2, 20))
        masks = (rng.random((5, 20)) < 0.7).astype(np.uint8)
        fused.matvec_many(x, input_masks=masks, rng=rng)
        for t in range(5):
            looped.matvec(x[t], input_mask=masks[t], rng=rng)
        for operation in ("cim_mac", "column_adc", "input_dac"):
            assert fused.ledger.count(operation) == looped.ledger.count(operation)
            assert fused.ledger.energy(operation) == pytest.approx(
                looped.ledger.energy(operation), rel=1e-12
            )

    def test_accepts_predrawn_noise(self, rng):
        weight = np.random.default_rng(0).normal(size=(8, 4))
        macro = SRAMCIMMacro(weight, rng=np.random.default_rng(1))
        x = rng.normal(size=(3, 2, 8))
        noise = np.random.default_rng(9).normal(size=(3, 2, 4))
        a = macro.matvec_many(x, noise=noise)
        b = macro.matvec_many(x, noise=noise)
        assert np.array_equal(a, b)

    def test_shape_validation(self, rng):
        macro = SRAMCIMMacro(rng.normal(size=(8, 4)), rng=rng)
        with pytest.raises(ValueError, match="inputs"):
            macro.matvec_many(rng.normal(size=(3, 2, 9)), rng=rng)
        with pytest.raises(ValueError, match="input masks"):
            macro.matvec_many(
                rng.normal(size=(3, 2, 8)),
                input_masks=np.ones((2, 8), dtype=np.uint8),
                rng=rng,
            )
