"""Experiment registry: resolution, typed configs, results, sweeps."""

import dataclasses

import numpy as np
import pytest

from repro.api import (
    ExperimentContext,
    ExperimentResult,
    experiment,
    get_experiment,
    list_experiments,
    run_experiment,
    sweep_experiment,
)

FAST_E9 = {"n_inputs": 32, "n_outputs": 16, "n_iterations": 8, "n_trials": 1}


class TestResolution:
    def test_all_seed_experiments_registered(self):
        ids = [spec.id for spec in list_experiments()]
        # Paper experiments first in numeric order, then letter-only ids
        # (the scenario library's SCN runner).
        assert ids == [
            "E1", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11",
            "SCN",
        ]

    def test_numeric_ordering(self):
        ids = [spec.id for spec in list_experiments()]
        assert ids.index("E9") < ids.index("E10")

    def test_case_insensitive(self):
        assert get_experiment("e9").id == "E9"

    def test_unknown_id_raises_keyerror_with_options(self):
        with pytest.raises(KeyError, match="options"):
            get_experiment("E99")

    def test_substrate_declarations(self):
        for eid in ("E3", "E6"):
            spec = get_experiment(eid)
            for name in ("digital", "cim", "cim-reuse"):
                assert name in spec.substrates
        assert get_experiment("E9").substrates == ()

    def test_every_spec_has_config_and_title(self):
        for spec in list_experiments():
            assert spec.title
            assert spec.config_cls is not None
            assert dataclasses.is_dataclass(spec.config_cls)
            assert callable(spec.fn)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @experiment("E9", title="duplicate")
            def duplicate(ctx):
                return {}


class TestRunExperiment:
    def test_returns_structured_result(self):
        result = run_experiment("E9", seed=3, overrides=FAST_E9)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "E9"
        assert result.seed == 3
        assert result.substrate is None
        assert result.config["n_inputs"] == 32
        assert result.config["seed"] == 3
        assert "executed_fraction" in result.metrics
        assert result.runtime_s > 0

    def test_seed_overrides_config_default(self):
        result = run_experiment("E9", seed=5, overrides=FAST_E9)
        assert result.config["seed"] == 5

    def test_string_overrides_coerced(self):
        result = run_experiment(
            "E9",
            overrides={
                "n_inputs": "32",
                "n_outputs": "16",
                "n_iterations": "8",
                "n_trials": "1",
                "keep_probability": "0.25",
            },
        )
        assert result.config["keep_probability"] == 0.25
        assert result.config["n_inputs"] == 32

    def test_unknown_override_field_rejected(self):
        with pytest.raises(ValueError, match="unknown config field"):
            run_experiment("E9", overrides={"bogus": "1"})

    def test_type_mismatched_override_rejected(self):
        # Regression: a non-numeric string used to flow into the
        # experiment and explode as a raw TypeError mid-run.
        with pytest.raises(ValueError, match="expects int"):
            run_experiment("E9", overrides={"n_trials": "zzz"})
        with pytest.raises(ValueError, match="expects float"):
            run_experiment("E9", overrides={"keep_probability": "high"})

    def test_substrate_rejected_for_plain_experiment(self):
        with pytest.raises(ValueError, match="does not support substrate"):
            run_experiment("E9", substrate="cim")

    def test_unsupported_substrate_rejected(self):
        with pytest.raises(ValueError, match="supports substrates"):
            run_experiment("E6", substrate="digital-float")

    def test_deterministic_given_seed(self):
        a = run_experiment("E9", seed=1, overrides=FAST_E9)
        b = run_experiment("E9", seed=1, overrides=FAST_E9)
        assert a.metrics == b.metrics

    def test_out_dir_writes_json(self, tmp_path):
        # Overridden runs get a config-hashed stem so different --set
        # values never overwrite each other.
        run_experiment("E9", seed=2, overrides=FAST_E9, out_dir=tmp_path)
        paths = list(tmp_path.glob("E9-seed2-cfg*.json"))
        assert len(paths) == 1
        back = ExperimentResult.from_json(paths[0].read_text())
        assert back.experiment_id == "E9"
        assert back.seed == 2

    def test_result_json_round_trip(self):
        result = run_experiment("E9", seed=0, overrides=FAST_E9)
        back = ExperimentResult.from_json(result.to_json())
        assert back.metrics == result.metrics
        assert back.config == result.config
        assert back.seed == result.seed


class TestSubstrateOverride:
    """E6 on explicit substrates through a tiny VO world."""

    TINY_VO = {
        "epochs": 3,
        "n_iterations": 4,
        "n_scenes": 2,
        "frames_per_scene": 8,
        "hidden": (16,),
    }

    @pytest.fixture(scope="class", autouse=True)
    def tiny_world(self):
        # Pre-build the small world once so all runs share the cache.
        from repro.experiments.common import build_vo_world

        build_vo_world(seed=0, n_scenes=2, frames_per_scene=8, hidden=(16,), epochs=3)

    @pytest.mark.parametrize("substrate", ["digital", "cim-reuse"])
    def test_e6_runs_on_substrate(self, substrate):
        result = run_experiment(
            "E6", seed=0, substrate=substrate, overrides=self.TINY_VO
        )
        assert result.substrate == substrate
        assert substrate in result.metrics["ate_rmse_m"]
        assert result.metrics["ate_rmse_m"][substrate] > 0
        assert result.metrics["ops_executed"] > 0

    def test_e3_runs_on_substrate(self):
        result = run_experiment(
            "E3",
            seed=3,
            substrate="cim",
            overrides={
                "n_steps": 3,
                "n_cloud_points": 500,
                "image": (16, 12),
                "n_particles": 40,
                "n_components": 8,
            },
        )
        assert result.substrate == "cim"
        (row,) = result.metrics["rows"]
        assert row["substrate"] == "cim"
        assert row["backend"] == "cim"
        assert row["final_error_m"] >= 0
        assert row["energy_j"] > 0

    def test_e7_substrates_are_distinct_runs(self):
        # cim vs cim-reuse must differ (regression: engine-string mapping
        # used to collapse every cim* substrate into one configuration).
        tiny = {**self.TINY_VO, "occlusion_levels": (0.0, 0.3)}
        plain = run_experiment("E7", seed=0, substrate="cim", overrides=tiny)
        reused = run_experiment("E7", seed=0, substrate="cim-reuse", overrides=tiny)
        assert plain.metrics["engine"] == "cim"
        assert reused.metrics["engine"] == "cim-reuse"
        assert plain.metrics["ause"] != reused.metrics["ause"]

    def test_e6_reuse_cheaper_than_plain_cim(self):
        plain = run_experiment("E6", seed=0, substrate="cim", overrides=self.TINY_VO)
        reused = run_experiment(
            "E6", seed=0, substrate="cim-reuse", overrides=self.TINY_VO
        )
        assert reused.metrics["ops_executed"] < plain.metrics["ops_executed"]
        assert reused.metrics["reuse_savings"] > 0


class TestSweep:
    def test_seed_sweep(self):
        results = sweep_experiment("E9", seeds=[0, 1], overrides=FAST_E9)
        assert [r.seed for r in results] == [0, 1]
        assert all(r.experiment_id == "E9" for r in results)

    def test_sweep_writes_distinct_files(self, tmp_path):
        sweep_experiment("E9", seeds=[0, 1], overrides=FAST_E9, out_dir=tmp_path)
        assert len(list(tmp_path.glob("E9-seed0-cfg*.json"))) == 1
        assert len(list(tmp_path.glob("E9-seed1-cfg*.json"))) == 1


class TestContext:
    def test_context_rng_is_seeded(self):
        captured = {}

        @experiment("ETEST-CTX", title="context probe")
        def probe(ctx: ExperimentContext):
            captured["seed"] = ctx.seed
            captured["draw"] = float(ctx.rng.random())
            return {"ok": True}

        try:
            run_experiment("ETEST-CTX", seed=42)
            assert captured["seed"] == 42
            assert captured["draw"] == pytest.approx(
                float(np.random.default_rng(42).random())
            )
        finally:
            from repro.api.registry import _REGISTRY

            _REGISTRY.pop("ETEST-CTX", None)


class TestNonFiniteRoundTrips:
    """NaN/Inf results must survive JSON round-trips (and the strict wire).

    Localization's ``final_error`` is NaN on empty trajectories, so
    non-finite payloads are a normal production case, not a corner.
    """

    def make_result(self):
        from repro.api import InferenceResult

        return InferenceResult(
            substrate="cim",
            workload="localization",
            mean=np.array([[np.nan, 1.0], [np.inf, -np.inf]]),
            variance=None,
            energy_j=1.5e-9,
            extras={"final_error": float("nan"), "peak": float("inf")},
        )

    def test_inference_result_preserves_nonfinite(self):
        from repro.api import InferenceResult

        back = InferenceResult.from_json(self.make_result().to_json())
        assert np.array_equal(back.mean, self.make_result().mean, equal_nan=True)
        assert np.isnan(back.extras["final_error"])
        assert back.extras["peak"] == float("inf")

    def test_batch_result_preserves_nonfinite(self):
        from repro.api import BatchResult

        batch = BatchResult(
            substrate="cim",
            workload="localization",
            results=[self.make_result(), self.make_result()],
            extras={"worst": float("-inf")},
        )
        back = BatchResult.from_json(batch.to_json())
        assert len(back) == 2
        for item in back:
            assert np.array_equal(item.mean, self.make_result().mean, equal_nan=True)
            assert np.isnan(item.extras["final_error"])
        assert back.extras["worst"] == float("-inf")

    def test_strict_wire_encoding_round_trips_results(self):
        # The HTTP path must emit valid JSON: bare NaN/Infinity tokens are
        # forbidden; tagged sentinels round-trip the values exactly.
        import json

        from repro.api import InferenceResult
        from repro.api.results import strict_dumps, strict_loads

        text = strict_dumps(self.make_result().to_dict())

        def reject(token):
            raise AssertionError(f"bare non-finite token {token!r}")

        json.loads(text, parse_constant=reject)
        back = InferenceResult.from_dict(strict_loads(text))
        assert np.array_equal(back.mean, self.make_result().mean, equal_nan=True)
        assert np.isnan(back.extras["final_error"])


class TestKeyedRngStreams:
    """E3/E6 derive their RNG streams via keyed SeedSequence spawns.

    Pinned first draws: experiment outputs are reproduced from (id,
    seed) alone, so the stream derivation is part of the public
    contract.  These constants changed exactly once -- at the migration
    off additive seed offsets (the DET002 bug class) -- and must never
    change again.
    """

    def test_streams_pinned(self):
        from repro.api.experiments import _E3_RUN, _E3_SESSION, _E6_SESSION, _keyed_rng

        assert float(_keyed_rng(0, _E3_SESSION).random()) == 0.26594389956428566
        assert float(_keyed_rng(0, _E3_RUN).random()) == 0.11721174817852253
        assert float(_keyed_rng(0, _E6_SESSION).random()) == 0.2007793516394134

    def test_no_collision_across_base_seeds(self):
        # Additive offsets alias streams across base seeds (seed=0 with
        # offset k equals seed=k with offset 0); keyed spawns must keep
        # every (seed, spawn_key) stream distinct.
        from repro.api.experiments import _E3_RUN, _E3_SESSION, _E6_SESSION, _keyed_rng

        keys = (_E3_SESSION, _E3_RUN, _E6_SESSION)
        draws = {
            (seed, key): tuple(_keyed_rng(seed, key).random(4))
            for seed in range(6)
            for key in keys
        }
        assert len(set(draws.values())) == len(draws)

    def test_e3_deterministic_after_migration(self):
        small = {
            "n_steps": 3,
            "n_particles": 40,
            "n_components": 6,
            "n_cloud_points": 300,
            "image": (16, 12),
            "substrates": ("digital-float",),
        }
        first = run_experiment("E3", seed=3, overrides=small)
        second = run_experiment("E3", seed=3, overrides=small)
        assert first.metrics == second.metrics
