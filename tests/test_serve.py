"""repro.serve: request-level service, micro-batching, parity, HTTP."""

import asyncio
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import available_substrates
from repro.api.results import (
    restore_nonfinite,
    sanitize_nonfinite,
    strict_dumps,
    strict_loads,
)
from repro.runtime import BatchPolicy, QueuePolicy
from repro.serve import (
    InferenceRequest,
    InferenceResponse,
    InferenceService,
    ServiceOverloaded,
    SessionPool,
    reference_run,
)
from repro.serve.demo import demo_inputs, demo_model
from repro.serve.http import serve_http

N_ITER = 6


@pytest.fixture(scope="module")
def model():
    return demo_model()

@pytest.fixture(scope="module")
def inputs():
    return demo_inputs()


def make_service(model, substrates, **kwargs):
    kwargs.setdefault("n_iterations", N_ITER)
    return InferenceService(model, substrates=substrates, **kwargs)


def assert_result_equal(actual, expected):
    """Bit-for-bit equality of two InferenceResults (values + metering)."""
    assert np.array_equal(actual.mean, expected.mean)
    if expected.variance is None:
        assert actual.variance is None
    else:
        assert np.array_equal(actual.variance, expected.variance)
    if expected.samples is not None:
        assert np.array_equal(actual.samples, expected.samples)
    assert actual.ops_executed == expected.ops_executed
    assert actual.ops_naive == expected.ops_naive
    assert actual.energy_j == expected.energy_j
    assert actual.energy_breakdown_j == expected.energy_breakdown_j


class TestPolicies:
    def test_batch_policy_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            BatchPolicy(max_wait_ms=-1)
        assert BatchPolicy(max_wait_ms=250.0).max_wait_s == 0.25

    def test_queue_policy_validation(self):
        with pytest.raises(ValueError, match="max_pending"):
            QueuePolicy(max_pending=0)


class TestRequestResponseTypes:
    def test_request_round_trip(self, inputs):
        request = InferenceRequest(
            inputs, substrate="cim-reuse", seed=7, request_id="r-1"
        )
        back = InferenceRequest.from_json(request.to_json())
        assert np.array_equal(back.inputs, request.inputs)
        assert back.substrate == "cim-reuse"
        assert back.seed == 7
        assert back.request_id == "r-1"

    def test_request_accepts_plain_lists(self):
        request = InferenceRequest.from_dict(
            {"inputs": [[1.0, 2.0], [3.0, 4.0]], "seed": 3}
        )
        assert request.inputs.shape == (2, 2)
        assert request.seed == 3

    def test_request_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown request field"):
            InferenceRequest.from_dict({"inputs": [[1.0]], "bogus": 1})

    def test_request_requires_inputs(self):
        with pytest.raises(ValueError, match="inputs"):
            InferenceRequest.from_dict({"seed": 1})

    def test_request_promotes_1d_inputs(self):
        assert InferenceRequest([1.0, 2.0]).inputs.shape == (1, 2)

    def test_overloaded_exception_carries_counts(self):
        error = ServiceOverloaded(5, 4)
        assert error.pending == 5 and error.max_pending == 4
        assert "overloaded" in str(error)


class TestStrictEncoding:
    """Wire format: non-finite floats must survive as *valid* JSON."""

    def test_sanitize_restore_round_trip(self):
        tree = {
            "a": float("nan"),
            "b": [float("inf"), float("-inf"), 1.5],
            "c": {"nested": float("nan")},
        }
        sanitized = sanitize_nonfinite(tree)
        text = json.dumps(sanitized, allow_nan=False)  # must not raise
        back = restore_nonfinite(json.loads(text))
        assert np.isnan(back["a"])
        assert back["b"][0] == float("inf")
        assert back["b"][1] == float("-inf")
        assert back["b"][2] == 1.5
        assert np.isnan(back["c"]["nested"])

    def test_strict_dumps_emits_no_bare_nan_tokens(self):
        text = strict_dumps({"x": np.array([np.nan, np.inf, 1.0])})

        def reject(token):
            raise AssertionError(f"bare non-finite token {token!r} on the wire")

        payload = json.loads(text, parse_constant=reject)
        restored = restore_nonfinite(payload)
        values = restored["x"]["__ndarray__"]
        assert np.isnan(values[0]) and np.isinf(values[1])

    def test_strict_loads_restores_arrays_via_from_jsonable(self):
        from repro.api.results import from_jsonable

        array = np.array([[np.nan, 2.0], [np.inf, -np.inf]])
        restored = from_jsonable(strict_loads(strict_dumps(array)))
        assert restored.shape == array.shape
        assert np.array_equal(restored, array, equal_nan=True)

    def test_unknown_nonfinite_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown non-finite tag"):
            restore_nonfinite({"__nonfinite__": "huge"})


class TestSessionPool:
    def test_clone_is_bit_identical(self, model, inputs):
        pool = SessionPool("cim-ordered", model, n_iterations=N_ITER)
        original = pool.reference_session()
        clone = original.clone()
        first = reference_run(original, inputs, 5)
        second = reference_run(clone, inputs, 5)
        assert_result_equal(second, first)

    def test_pool_prewarms_requested_size(self, model):
        pool = SessionPool("cim", model, n_iterations=N_ITER, size=3)
        assert pool.idle == 3
        assert pool.describe()["size"] == 3

    def test_pool_rejects_bad_size(self, model):
        with pytest.raises(ValueError, match="size"):
            SessionPool("cim", model, size=0)

    def test_reference_session_matches_pool_member(self, model, inputs):
        pool = SessionPool("cim-reuse", model, n_iterations=N_ITER)
        member = asyncio.run(pool.acquire())
        reference = pool.reference_session()
        assert_result_equal(
            reference_run(member, inputs, 2), reference_run(reference, inputs, 2)
        )


class TestServiceParity:
    """Acceptance: every response == direct pinned-mask run, per substrate."""

    @pytest.fixture(scope="class")
    def service_and_responses(self, model, inputs):
        substrates = available_substrates()
        service = make_service(
            model,
            substrates,
            batch=BatchPolicy(max_batch=4, max_wait_ms=20.0),
        )
        requests = [
            InferenceRequest(inputs, substrate=name, seed=seed)
            for name in substrates
            for seed in (0, 11)
        ]
        responses = service.infer_many(requests)
        return service, requests, responses

    def test_every_substrate_every_seed_bit_for_bit(
        self, service_and_responses
    ):
        service, requests, responses = service_and_responses
        for request, response in zip(requests, responses):
            session = service.reference_session(request.substrate)
            expected = reference_run(session, request.inputs, request.seed)
            assert response.substrate == request.substrate
            assert response.seed == request.seed
            assert_result_equal(response.result, expected)

    def test_responses_arrive_in_request_order(self, service_and_responses):
        _, requests, responses = service_and_responses
        assert [r.substrate for r in responses] == [
            r.substrate for r in requests
        ]
        assert [r.seed for r in responses] == [r.seed for r in requests]

    def test_metering_is_per_request_not_cumulative(self, model, inputs):
        # Two same-substrate requests in one coalesced batch: identical
        # work must report identical (not accumulating) energy/ops.
        service = make_service(
            model, ["cim-reuse"], batch=BatchPolicy(max_batch=2, max_wait_ms=50)
        )
        requests = [
            InferenceRequest(inputs, substrate="cim-reuse", seed=3)
            for _ in range(2)
        ]
        first, second = service.infer_many(requests)
        assert first.batch_size == 2  # actually coalesced
        assert first.result.energy_j == second.result.energy_j
        assert first.result.ops_executed == second.result.ops_executed

    def test_response_json_round_trip(self, service_and_responses):
        _, _, responses = service_and_responses
        response = responses[0]
        back = InferenceResponse.from_json(response.to_json())
        assert back.substrate == response.substrate
        assert back.batch_size == response.batch_size
        assert np.array_equal(back.result.mean, response.result.mean)
        assert back.result.energy_j == response.result.energy_j


class TestBatching:
    def run_async(self, coro):
        return asyncio.run(coro)

    def test_concurrent_same_seed_requests_coalesce(self, model, inputs):
        service = make_service(
            model, ["cim"], batch=BatchPolicy(max_batch=4, max_wait_ms=100)
        )

        async def drive():
            async with service:
                return await asyncio.gather(
                    *(
                        service.submit(
                            InferenceRequest(inputs, substrate="cim", seed=0)
                        )
                        for _ in range(4)
                    )
                )

        responses = self.run_async(drive())
        assert [r.batch_size for r in responses] == [4] * 4
        assert [r.group_size for r in responses] == [4] * 4
        assert service.stats.batches == 1
        assert service.stats.batched_requests == 4

    def test_mixed_seeds_grouped_within_batch(self, model, inputs):
        service = make_service(
            model, ["cim"], batch=BatchPolicy(max_batch=4, max_wait_ms=100)
        )

        async def drive():
            async with service:
                return await asyncio.gather(
                    *(
                        service.submit(
                            InferenceRequest(inputs, substrate="cim", seed=seed)
                        )
                        for seed in (0, 0, 9, 0)
                    )
                )

        responses = self.run_async(drive())
        assert [r.batch_size for r in responses] == [4] * 4
        assert [r.group_size for r in responses] == [3, 3, 1, 3]
        for seed, response in zip((0, 0, 9, 0), responses):
            session = service.reference_session("cim")
            assert_result_equal(
                response.result, reference_run(session, inputs, seed)
            )

    def test_max_batch_one_disables_coalescing(self, model, inputs):
        service = make_service(
            model, ["cim"], batch=BatchPolicy(max_batch=1, max_wait_ms=0)
        )
        responses = service.infer_many(
            [InferenceRequest(inputs, substrate="cim") for _ in range(3)]
        )
        assert [r.batch_size for r in responses] == [1, 1, 1]
        assert service.stats.batches == 3

    def test_stats_snapshot_counts(self, model, inputs):
        service = make_service(model, ["cim"])
        service.infer_many(
            [InferenceRequest(inputs, substrate="cim") for _ in range(2)]
        )
        snapshot = service.stats_snapshot()
        assert snapshot["received"] == 2
        assert snapshot["completed"] == 2
        assert snapshot["failed"] == 0
        assert snapshot["per_substrate"] == {"cim": 2}
        assert snapshot["pools"]["cim/default"]["idle"] == 1


class TestBackpressure:
    def test_overload_rejected_not_queued(self, model, inputs):
        service = make_service(
            model,
            ["cim"],
            batch=BatchPolicy(max_batch=8, max_wait_ms=300.0),
            queue=QueuePolicy(max_pending=2),
        )

        async def drive():
            async with service:
                request = InferenceRequest(inputs, substrate="cim", seed=0)
                first = asyncio.ensure_future(service.submit(request))
                second = asyncio.ensure_future(service.submit(request))
                await asyncio.sleep(0)  # both admitted, window still open
                with pytest.raises(ServiceOverloaded) as excinfo:
                    await service.submit(request)
                assert excinfo.value.pending == 2
                assert excinfo.value.max_pending == 2
                return await asyncio.gather(first, second)

        responses = drive()
        responses = asyncio.run(responses)
        assert len(responses) == 2
        assert service.stats.rejected == 1
        assert service.stats.completed == 2

    def test_unknown_substrate_rejected_at_submit(self, model, inputs):
        service = make_service(model, ["cim"])

        async def drive():
            async with service:
                with pytest.raises(KeyError, match="unknown substrate"):
                    await service.submit(
                        InferenceRequest(inputs, substrate="tpu")
                    )
                with pytest.raises(KeyError, match="no pool"):
                    await service.submit(
                        InferenceRequest(inputs, substrate="digital")
                    )

        asyncio.run(drive())

    def test_width_mismatch_rejected_at_submit(self, model):
        service = make_service(model, ["cim"])

        async def drive():
            async with service:
                with pytest.raises(ValueError, match="width"):
                    await service.submit(
                        InferenceRequest(np.ones((2, 3)), substrate="cim")
                    )

        asyncio.run(drive())

    def test_submit_requires_started_service(self, model, inputs):
        service = make_service(model, ["cim"])
        with pytest.raises(RuntimeError, match="not started"):
            asyncio.run(
                service.submit(InferenceRequest(inputs, substrate="cim"))
            )

    def test_infer_many_refuses_running_service(self, model, inputs):
        service = make_service(model, ["cim"])

        async def drive():
            async with service:
                with pytest.raises(RuntimeError, match="already started"):
                    service.infer_many(
                        [InferenceRequest(inputs, substrate="cim")]
                    )

        asyncio.run(drive())

    def test_service_reusable_across_infer_many_calls(self, model, inputs):
        service = make_service(model, ["cim"])
        request = [InferenceRequest(inputs, substrate="cim", seed=4)]
        first = service.infer_many(request)
        second = service.infer_many(request)  # fresh event loop, warm pools
        assert_result_equal(second[0].result, first[0].result)

    def test_execution_failure_wrapped_as_execution_error(
        self, model, inputs, monkeypatch
    ):
        from repro.serve import RequestExecutionError

        def boom(session, substrate, model_name, items):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr("repro.serve.service.run_grouped", boom)
        service = make_service(model, ["cim"])

        async def drive():
            async with service:
                with pytest.raises(
                    RequestExecutionError, match="engine exploded"
                ):
                    await service.submit(
                        InferenceRequest(inputs, substrate="cim")
                    )

        asyncio.run(drive())
        assert service.stats.failed == 1

    def test_shutdown_fails_requests_stuck_behind_sentinel(
        self, model, inputs
    ):
        from repro.serve import RequestExecutionError
        from repro.serve.service import _SHUTDOWN, _Pending

        service = make_service(model, ["cim"])

        async def drive():
            await service.start()
            batcher = service._batchers[("cim", "default")]
            loop = asyncio.get_running_loop()
            straggler = _Pending(
                request=InferenceRequest(inputs, substrate="cim"),
                future=loop.create_future(),
                admitted_at=loop.time(),
            )
            # A request that lands in the queue after shutdown began must
            # be failed explicitly, never abandoned to hang its awaiter.
            batcher._queue.put_nowait(_SHUTDOWN)
            batcher.put(straggler)
            await batcher.close()
            with pytest.raises(RequestExecutionError, match="stopped"):
                await straggler.future
            await service.stop()

        asyncio.run(drive())


class TestHTTP:
    @pytest.fixture(scope="class")
    def server(self, model):
        service = make_service(
            model,
            ["cim", "digital"],
            batch=BatchPolicy(max_batch=4, max_wait_ms=5.0),
        )
        with serve_http(service, port=0) as context:
            yield context

    def url(self, server, path):
        return f"http://127.0.0.1:{server.port}{path}"

    def post(self, server, path, body: bytes):
        request = urllib.request.Request(
            self.url(server, path),
            data=body,
            headers={"Content-Type": "application/json"},
        )
        return urllib.request.urlopen(request)

    def test_healthz(self, server):
        payload = json.loads(
            urllib.request.urlopen(self.url(server, "/healthz")).read()
        )
        assert payload["status"] == "ok"
        assert payload["substrates"] == ["cim", "digital"]
        assert payload["started"] is True

    def test_infer_round_trip_parity(self, server, model, inputs):
        request = InferenceRequest(inputs, substrate="cim", seed=8)
        raw = self.post(server, "/infer", request.to_json().encode()).read()

        def reject(token):
            raise AssertionError(f"bare non-finite token {token!r}")

        json.loads(raw.decode(), parse_constant=reject)  # valid JSON only
        response = InferenceResponse.from_json(raw.decode())
        session = server.service.reference_session("cim")
        assert_result_equal(
            response.result, reference_run(session, inputs, 8)
        )

    def test_stats_endpoint(self, server):
        payload = json.loads(
            urllib.request.urlopen(self.url(server, "/stats")).read()
        )
        assert payload["received"] >= 1
        assert "pools" in payload and "cim/default" in payload["pools"]

    def test_malformed_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(server, "/infer", b"{not json")
        assert excinfo.value.code == 400

    def test_unknown_substrate_is_400(self, server, inputs):
        body = InferenceRequest(inputs, substrate="tpu").to_json().encode()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(server, "/infer", body)
        assert excinfo.value.code == 400
        assert "unknown substrate" in json.loads(excinfo.value.read())["error"]

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(self.url(server, "/nope"))
        assert excinfo.value.code == 404

    def test_missing_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(server, "/infer", b"")
        assert excinfo.value.code == 400

    def test_execution_failure_is_500_not_400(self, model, inputs, monkeypatch):
        # Server-side faults must not masquerade as client errors.
        def boom(session, substrate, model_name, items):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr("repro.serve.service.run_grouped", boom)
        service = make_service(model, ["cim"])
        with serve_http(service, port=0) as context:
            body = InferenceRequest(inputs, substrate="cim").to_json().encode()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.post(context, "/infer", body)
            assert excinfo.value.code == 500
            assert "engine exploded" in json.loads(excinfo.value.read())["error"]


class TestDemoSeedStreams:
    """The demo streams are keyed SeedSequence spawns (DET002 fix).

    Pinned first draws: the demo model is rebuilt byte-identically by
    client processes (CI parity, README curl example), so a silent
    change to the stream derivation would break every remote parity
    check.  These constants changed exactly once -- at the migration
    off additive seed offsets -- and must never change again.
    """

    def test_dropout_stream_pinned(self):
        from repro.serve.demo import _STREAM_DROPOUT, _demo_rng

        draw = float(_demo_rng(0, _STREAM_DROPOUT).random())
        assert draw == 0.9429375528828794

    def test_inputs_stream_pinned(self):
        assert float(demo_inputs(0)[0, 0]) == 0.8050894723742356

    def test_streams_distinct_within_seed(self):
        from repro.serve.demo import _STREAM_DROPOUT, _STREAM_INPUTS, _demo_rng

        dropout = _demo_rng(0, _STREAM_DROPOUT).random(8)
        inputs = _demo_rng(0, _STREAM_INPUTS).random(8)
        assert not np.array_equal(dropout, inputs)

    def test_no_collision_across_base_seeds(self):
        # The old additive derivation (seed + k) aliased streams across
        # base seeds: seed=0 purpose-k collided with seed=k purpose-0.
        # Keyed spawns must keep every (seed, purpose) stream distinct.
        from repro.serve.demo import _demo_rng

        draws = {}
        for seed in range(4):
            for purpose in range(4):
                draws[(seed, purpose)] = tuple(_demo_rng(seed, purpose).random(4))
        assert len(set(draws.values())) == len(draws)

    def test_old_additive_derivation_would_collide(self):
        # Documents the bug class the migration removed: with additive
        # offsets the "different" streams below were the same stream.
        legacy_a = np.random.default_rng(0 + 100).random(4)
        legacy_b = np.random.default_rng(99 + 1).random(4)
        assert np.array_equal(legacy_a, legacy_b)
