"""Substrate registry, uniform sessions, and engine-parity guarantees."""

import copy

import numpy as np
import pytest

from repro.api import (
    InferenceResult,
    InferenceSession,
    MacroOptions,
    ReusePolicy,
    Substrate,
    SubstrateConfig,
    available_substrates,
    get_substrate,
    register_substrate,
)
from repro.bayesian.mc_dropout import MCDropoutPredictor
from repro.core.cim_mc_dropout import CIMMCDropoutEngine
from repro.core.cim_particle_filter import CIMParticleFilterLocalizer
from repro.nn import Dense, Dropout, ReLU, Sequential
from repro.sram.macro import MacroConfig


def make_model(seed: int = 3) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Dense(6, 8, rng),
            ReLU(),
            Dropout(0.5, rng=np.random.default_rng(11)),
            Dense(8, 2, rng),
        ]
    )


@pytest.fixture(scope="module")
def inputs():
    return np.random.default_rng(4).normal(size=(4, 6))


class TestRegistry:
    def test_builtins_registered(self):
        names = available_substrates()
        for expected in ("digital", "digital-float", "cim", "cim-reuse", "cim-ordered"):
            assert expected in names

    def test_get_is_case_insensitive_and_passthrough(self):
        config = get_substrate("CIM-Reuse")
        assert config.name == "cim-reuse"
        assert get_substrate(config) is config

    def test_unknown_substrate_lists_options(self):
        with pytest.raises(KeyError, match="options"):
            get_substrate("tpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_substrate(SubstrateConfig(name="cim", kind="cim"))

    def test_mixed_case_registration_resolvable(self):
        from repro.api.substrates import _SUBSTRATES

        try:
            register_substrate(SubstrateConfig(name="MyCim", kind="cim"))
            assert get_substrate("MyCim").name == "MyCim"
            assert get_substrate("mycim").name == "MyCim"
        finally:
            _SUBSTRATES.pop("mycim", None)

    def test_register_custom_and_overwrite(self):
        config = SubstrateConfig(
            name="cim-6bit-test",
            kind="cim",
            macro=MacroOptions(weight_bits=6),
            reuse=ReusePolicy(reuse=True, ordering=True),
        )
        try:
            register_substrate(config)
            assert get_substrate("cim-6bit-test").macro.weight_bits == 6
            register_substrate(config, overwrite=True)
        finally:
            from repro.api.substrates import _SUBSTRATES

            _SUBSTRATES.pop("cim-6bit-test", None)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SubstrateConfig(name="bad", kind="quantum")

    def test_protocol_conformance(self):
        assert isinstance(get_substrate("cim"), Substrate)

    def test_with_macro(self):
        six_bit = get_substrate("cim").with_macro(weight_bits=6)
        assert six_bit.macro.weight_bits == 6
        assert get_substrate("cim").macro.weight_bits == 4


class TestMCDropoutParity:
    """The substrates must reproduce the seed engines bit-for-bit."""

    @pytest.mark.parametrize(
        "name, reuse, ordering",
        [("cim", False, False), ("cim-reuse", True, False), ("cim-ordered", True, True)],
    )
    def test_cim_substrates_match_engine(self, inputs, name, reuse, ordering):
        model = make_model()
        direct = CIMMCDropoutEngine(
            model,
            MacroConfig(),
            n_iterations=8,
            reuse=reuse,
            ordering=ordering,
            rng=np.random.default_rng(5),
        ).predict(inputs)
        session = get_substrate(name).mc_dropout_session(
            model, n_iterations=8, rng=np.random.default_rng(5)
        )
        assert isinstance(session, InferenceSession)
        via = session.run(inputs)
        assert np.array_equal(direct.mean, via.mean)
        assert np.array_equal(direct.variance, via.variance)
        assert np.array_equal(direct.samples, via.samples)
        assert direct.ops_executed == via.ops_executed
        assert direct.ops_naive == via.ops_naive
        assert via.energy_j == pytest.approx(direct.energy.total_energy_j())

    def test_digital_substrate_matches_software_predictor(self, inputs):
        model = make_model()
        reference, session_model = copy.deepcopy(model), copy.deepcopy(model)
        direct = MCDropoutPredictor(
            reference, n_iterations=8, rng=np.random.default_rng(7)
        ).predict(inputs)
        via = get_substrate("digital").mc_dropout_session(
            session_model, n_iterations=8, rng=np.random.default_rng(7)
        ).run(inputs)
        assert np.array_equal(direct.mean, via.mean)
        assert np.array_equal(direct.variance, via.variance)

    def test_digital_run_honours_per_call_rng(self, inputs):
        # Regression: the digital path used to ignore `rng`, so seeded
        # calls were irreproducible while CIM calls were deterministic.
        session = get_substrate("digital").mc_dropout_session(
            make_model(), n_iterations=8
        )
        first = session.run(inputs, rng=np.random.default_rng(31))
        second = session.run(inputs, rng=np.random.default_rng(31))
        other = session.run(inputs, rng=np.random.default_rng(32))
        assert np.array_equal(first.mean, second.mean)
        assert np.array_equal(first.variance, second.variance)
        assert not np.array_equal(first.mean, other.mean)

    def test_digital_ops_and_energy_accounting(self, inputs):
        via = get_substrate("digital").mc_dropout_session(
            make_model(), n_iterations=8, rng=np.random.default_rng(7)
        ).run(inputs)
        # 8 iterations x 4 inputs x (6*8 + 8*2) weights
        assert via.ops_executed == 8 * 4 * (6 * 8 + 8 * 2)
        assert via.ops_naive == via.ops_executed
        assert via.reuse_savings == 0.0
        assert via.energy_j > 0
        assert via.workload == "mc-dropout"

    def test_reuse_substrate_saves_work(self, inputs):
        plain = get_substrate("cim").mc_dropout_session(
            make_model(), n_iterations=8, rng=np.random.default_rng(5)
        ).run(inputs)
        reused = get_substrate("cim-reuse").mc_dropout_session(
            make_model(), n_iterations=8, rng=np.random.default_rng(5)
        ).run(inputs)
        assert reused.ops_executed < plain.ops_executed
        assert reused.reuse_savings > 0

    def test_energy_is_per_run_not_cumulative(self, inputs):
        session = get_substrate("cim").mc_dropout_session(
            make_model(), n_iterations=4, rng=np.random.default_rng(5)
        )
        first = session.run(inputs)
        second = session.run(inputs)
        assert second.energy_j == pytest.approx(first.energy_j, rel=0.5)
        assert second.energy_j < 1.5 * first.energy_j

    def test_per_call_metering_is_exact_with_pinned_rng(self, inputs):
        # Now engine-native (ledger scoping), not a session-side reset:
        # identical calls report identical ops/energy/derived ratios.
        session = get_substrate("cim-ordered").mc_dropout_session(
            make_model(), n_iterations=8, rng=np.random.default_rng(5)
        )
        first = session.run(inputs, rng=np.random.default_rng(21))
        second = session.run(inputs, rng=np.random.default_rng(21))
        assert second.ops_executed == first.ops_executed
        assert second.energy_j == first.energy_j
        assert second.reuse_savings == first.reuse_savings
        assert second.extras["tops_per_watt"] == first.extras["tops_per_watt"]

    def test_raw_engine_needs_no_reset_between_calls(self, inputs):
        # Regression for the double-count bug: raw engine users (no
        # session, no reset_energy) get per-call figures too.
        engine = CIMMCDropoutEngine(
            make_model(), MacroConfig(), n_iterations=8,
            rng=np.random.default_rng(5),
        )
        first = engine.predict(inputs, rng=np.random.default_rng(3))
        second = engine.predict(inputs, rng=np.random.default_rng(3))
        assert second.ops_executed == first.ops_executed
        assert second.energy.total_energy_j() == first.energy.total_energy_j()
        assert second.reuse_savings == first.reuse_savings


class TestLocalizationSession:
    @pytest.fixture(scope="class")
    def world(self):
        from repro.experiments.common import build_room_world

        return build_room_world(seed=3, n_steps=3, n_cloud_points=500, image=(16, 12))

    def test_parity_with_bare_localizer(self, world):
        kwargs = dict(
            camera_mount=world.mount, n_components=8, n_particles=40, tiles=(1, 1, 1)
        )
        direct = CIMParticleFilterLocalizer(
            world.cloud, world.camera, backend="cim",
            rng=np.random.default_rng(9), **kwargs,
        )
        run_rng = np.random.default_rng(21)
        direct.initialize_tracking(world.states[0] + 0.2, np.full(4, 0.3), run_rng)
        expected = direct.run(world.controls, world.depths, world.states, run_rng)

        session = get_substrate("cim").localization_session(
            world.cloud, world.camera, rng=np.random.default_rng(9), **kwargs
        )
        run_rng = np.random.default_rng(21)
        session.initialize_tracking(world.states[0] + 0.2, np.full(4, 0.3), run_rng)
        via = session.run((world.controls, world.depths, world.states), rng=run_rng)

        assert np.array_equal(expected.estimates, via.mean)
        assert np.array_equal(expected.errors, via.extras["errors"])
        assert via.energy_j == pytest.approx(expected.energy.total_energy_j())
        assert via.extras["summary"]["backend"] == "cim"
        assert via.workload == "localization"

    def test_digital_substrate_selects_digital_backend(self, world):
        session = get_substrate("digital").localization_session(
            world.cloud,
            world.camera,
            camera_mount=world.mount,
            n_components=8,
            n_particles=40,
            tiles=(1, 1, 1),
            rng=np.random.default_rng(9),
        )
        assert session.localizer.backend_name == "digital"

    def test_localization_energy_is_per_run(self, world):
        # The backend ledger accumulates across runs; each result's
        # energy must cover its own sequence only.
        session = get_substrate("cim").localization_session(
            world.cloud,
            world.camera,
            camera_mount=world.mount,
            n_components=8,
            n_particles=40,
            tiles=(1, 1, 1),
            rng=np.random.default_rng(9),
        )
        inputs = (world.controls, world.depths, world.states)
        session.initialize_tracking(
            world.states[0] + 0.2, np.full(4, 0.3), np.random.default_rng(21)
        )
        batch = session.run_batch([inputs, inputs], rng=np.random.default_rng(7))
        first, second = batch[0], batch[1]
        assert second.energy_j == pytest.approx(first.energy_j, rel=0.2)
        assert second.energy_j < 1.5 * first.energy_j
        cumulative = session.localizer.field_backend.ledger.total_energy_j()
        assert cumulative > 1.5 * first.energy_j  # odometer kept both runs


class TestInferenceResultJSON:
    def test_round_trip_preserves_arrays(self):
        result = InferenceResult(
            substrate="cim",
            workload="mc-dropout",
            mean=np.arange(6, dtype=np.float64).reshape(2, 3),
            variance=np.ones((2, 3)),
            samples=np.zeros((4, 2, 3)),
            ops_executed=10,
            ops_naive=40,
            energy_j=1.5e-12,
            energy_breakdown_j={"adc": 1.0e-12, "mac": 0.5e-12},
            extras={"mask_order": np.array([2, 0, 1, 3])},
        )
        back = InferenceResult.from_json(result.to_json())
        assert np.array_equal(back.mean, result.mean)
        assert back.mean.dtype == result.mean.dtype
        assert back.mean.shape == result.mean.shape
        assert np.array_equal(back.samples, result.samples)
        assert np.array_equal(back.extras["mask_order"], result.extras["mask_order"])
        assert back.ops_executed == 10
        assert back.reuse_savings == pytest.approx(0.75)
        assert back.energy_breakdown_j == result.energy_breakdown_j

    def test_round_trip_none_fields(self):
        result = InferenceResult(
            substrate="digital", workload="localization", mean=np.zeros((3, 4))
        )
        back = InferenceResult.from_json(result.to_json())
        assert back.variance is None
        assert back.samples is None
        assert back.ops_naive is None
        assert back.reuse_savings == 0.0
