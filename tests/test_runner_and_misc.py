"""Tests for the experiment registry plus assorted integration details."""

import numpy as np
import pytest

from repro.experiments.runner import EXPERIMENTS, run


class TestRunnerRegistry:
    def test_all_ids_have_descriptions(self):
        for key, (description, fn) in EXPERIMENTS.items():
            assert key.startswith("E")
            assert description
            assert callable(fn)

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run("E99")

    def test_fast_experiment_runs(self):
        result = run("E9")
        assert "executed_fraction" in result

    def test_list_mode(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E4" in out and "E9" in out

    def test_main_unknown_id_friendly(self, capsys):
        # Regression: main() used to index EXPERIMENTS directly and leak a
        # raw KeyError instead of run()'s friendly message.
        from repro.experiments.runner import main

        assert main(["E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err and "E99" in err

    def test_main_runs_lowercase_id(self, capsys):
        from repro.experiments.runner import main

        assert main(["e9"]) == 0
        out = capsys.readouterr().out
        assert "E9" in out and "executed_fraction" in out


class TestWorldCaching:
    def test_room_world_cached(self):
        from repro.experiments.common import build_room_world

        a = build_room_world(seed=3, n_steps=3, n_cloud_points=500, image=(16, 12))
        b = build_room_world(seed=3, n_steps=3, n_cloud_points=500, image=(16, 12))
        assert a is b

    def test_different_config_not_cached(self):
        from repro.experiments.common import build_room_world

        a = build_room_world(seed=3, n_steps=3, n_cloud_points=500, image=(16, 12))
        b = build_room_world(seed=4, n_steps=3, n_cloud_points=500, image=(16, 12))
        assert a is not b


class TestStandardizerClip:
    def test_clip_bounds_transform(self, rng):
        from repro.vo.features import Standardizer

        data = rng.normal(size=(100, 4))
        scaler = Standardizer.fit(data, clip=2.0)
        wild = scaler.transform(np.full((1, 4), 1e6))
        assert np.all(np.abs(wild) <= 2.0)

    def test_no_clip_by_default(self, rng):
        from repro.vo.features import Standardizer

        data = rng.normal(size=(50, 2))
        scaler = Standardizer.fit(data)
        wild = scaler.transform(np.full((1, 2), 1e6))
        assert np.all(np.abs(wild) > 100)


class TestMacroRecalibration:
    def test_recalibrate_changes_full_scale(self, rng):
        from repro.sram.macro import SRAMCIMMacro

        macro = SRAMCIMMacro(rng.normal(size=(16, 8)), rng=rng)
        before = macro.adc_full_scale
        macro.recalibrate(10.0 * rng.normal(size=(32, 16)))
        assert macro.adc_full_scale > 2 * before

    def test_engine_calibration_propagates(self, rng):
        from repro.core.cim_mc_dropout import CIMMCDropoutEngine
        from repro.nn import Dense, Dropout, ReLU, Sequential

        model = Sequential(
            [Dense(8, 12, rng), ReLU(), Dropout(0.5, rng=rng), Dense(12, 3, rng)]
        )
        engine = CIMMCDropoutEngine(model, use_hardware_rng=False, rng=rng)
        scales_before = [layer.macro.adc_full_scale for layer in engine.layers]
        engine.calibrate_adc_ranges(5.0 * rng.normal(size=(64, 8)))
        scales_after = [layer.macro.adc_full_scale for layer in engine.layers]
        assert all(a != b for a, b in zip(scales_before, scales_after))


class TestLocalizationResult:
    def test_converged_step(self):
        from repro.core.cim_particle_filter import LocalizationResult
        from repro.circuits.energy import EnergyLedger

        errors = np.array([2.0, 1.0, 0.4, 0.3, 0.2])
        result = LocalizationResult(
            estimates=np.zeros((5, 4)),
            errors=errors,
            diagnostics=[],
            energy=EnergyLedger(),
            backend="cim",
        )
        assert result.converged_step(threshold=0.5) == 2
        assert result.converged_step(threshold=0.1) is None
        assert result.final_error == pytest.approx(0.2)


class TestEnergyLedgerEdgeCases:
    def test_reset_clears(self):
        from repro.circuits.energy import EnergyLedger

        ledger = EnergyLedger()
        ledger.add("op", 5, 1e-12)
        ledger.reset()
        assert ledger.total_count() == 0
        assert ledger.total_energy_j() == 0.0

    def test_scaled_rejects_negative(self):
        from repro.circuits.energy import EnergyLedger

        with pytest.raises(ValueError):
            EnergyLedger().scaled(-1.0)


class TestDatasetJitterDefault:
    def test_speed_jitter_varies_increments(self):
        from repro.scene.dataset import SyntheticRGBDScenes

        dataset = SyntheticRGBDScenes(n_scenes=1, frames_per_scene=12, seed=5)
        trajectory = dataset.trajectory(0)
        steps = np.linalg.norm(np.diff(trajectory.positions(), axis=0), axis=1)
        assert steps.std() / steps.mean() > 0.1
