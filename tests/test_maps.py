"""Tests for repro.maps: point clouds, GMM, HMG kernels, HMGM co-design."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maps import (
    GaussianMixture,
    HMGMixture,
    PointCloud,
    diag_gaussian_logpdf,
    diag_gaussian_pdf,
    hmg_kernel,
    hmg_unit_integral,
    kmeans,
    kmeans_plus_plus_init,
)
from repro.maps.hmg import HMG_UNIT_INTEGRALS, hmg_log_kernel, tail_rectilinearity


class TestPointCloud:
    def test_rejects_empty_and_bad_shape(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            PointCloud(np.zeros((5, 2)))

    def test_subsample(self, rng):
        cloud = PointCloud(rng.normal(size=(100, 3)))
        sub = cloud.subsampled(10, rng)
        assert len(sub) == 10

    def test_subsample_noop_when_small(self, rng):
        cloud = PointCloud(rng.normal(size=(5, 3)))
        assert len(cloud.subsampled(10, rng)) == 5

    def test_bounds_contain_points(self, rng):
        cloud = PointCloud(rng.normal(size=(50, 3)))
        lo, hi = cloud.bounds()
        assert np.all(cloud.points >= lo) and np.all(cloud.points <= hi)

    def test_voxel_downsample_reduces(self, rng):
        cloud = PointCloud(rng.uniform(0, 1, size=(1000, 3)))
        down = cloud.voxel_downsampled(0.5)
        assert len(down) <= 8

    def test_transform(self, rng):
        from repro.scene.se3 import Pose

        cloud = PointCloud(rng.normal(size=(20, 3)))
        pose = Pose.from_euler([1, 2, 3], yaw=0.5)
        assert np.allclose(
            cloud.transformed(pose).points, pose.transform_points(cloud.points)
        )


class TestDiagGaussian:
    def test_matches_scipy(self, rng):
        from scipy.stats import multivariate_normal

        points = rng.normal(size=(10, 3))
        mean = np.array([0.5, -0.2, 1.0])
        sigma = np.array([0.5, 1.0, 2.0])
        ours = diag_gaussian_logpdf(points, mean[None], sigma[None])[:, 0]
        ref = multivariate_normal(mean, np.diag(sigma**2)).logpdf(points)
        assert np.allclose(ours, ref)

    def test_pdf_positive(self, rng):
        values = diag_gaussian_pdf(
            rng.normal(size=(5, 2)), np.zeros((3, 2)), np.ones((3, 2))
        )
        assert values.shape == (5, 3)
        assert np.all(values > 0)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            diag_gaussian_logpdf(np.zeros((1, 2)), np.zeros((1, 2)), np.zeros((1, 2)))


class TestKMeans:
    def test_separated_clusters_recovered(self, rng):
        points = np.concatenate(
            [rng.normal(loc=c, scale=0.1, size=(50, 2)) for c in ([0, 0], [5, 5], [0, 5])]
        )
        centers, labels = kmeans(points, 3, rng)
        found = np.sort(centers[:, 0] + centers[:, 1])
        assert np.allclose(found, [0, 5, 10], atol=0.5)

    def test_init_validates_k(self, rng):
        with pytest.raises(ValueError):
            kmeans_plus_plus_init(np.zeros((5, 2)), 6, rng)

    def test_labels_cover_all_points(self, rng):
        points = rng.normal(size=(40, 3))
        _, labels = kmeans(points, 4, rng)
        assert labels.shape == (40,)
        assert set(labels) <= set(range(4))


class TestGMM:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(0)
        truth = GaussianMixture(
            weights=[0.6, 0.4],
            means=[[0.0, 0.0, 0.0], [4.0, 4.0, 4.0]],
            sigmas=[[0.5, 0.5, 0.5], [0.8, 0.8, 0.8]],
        )
        data = truth.sample(1500, rng)
        model = GaussianMixture.fit(data, 2, rng)
        return truth, model, data

    def test_weights_normalised(self):
        model = GaussianMixture([2.0, 2.0], np.zeros((2, 2)), np.ones((2, 2)))
        assert model.weights.sum() == pytest.approx(1.0)

    def test_fit_recovers_means(self, fitted):
        truth, model, _ = fitted
        order = np.argsort(model.means[:, 0])
        assert np.allclose(model.means[order], truth.means, atol=0.2)

    def test_fit_recovers_weights(self, fitted):
        truth, model, _ = fitted
        order = np.argsort(model.means[:, 0])
        assert np.allclose(model.weights[order], truth.weights, atol=0.05)

    def test_loglik_reasonable(self, fitted):
        truth, model, data = fitted
        assert model.mean_loglik(data) >= truth.mean_loglik(data) - 0.05

    def test_em_increases_likelihood(self, rng):
        data = rng.normal(size=(200, 3))
        model1 = GaussianMixture.fit(data, 3, np.random.default_rng(1), max_iters=1)
        model50 = GaussianMixture.fit(data, 3, np.random.default_rng(1), max_iters=50)
        assert model50.mean_loglik(data) >= model1.mean_loglik(data) - 1e-9

    def test_responsibilities_sum_to_one(self, fitted, rng):
        _, model, _ = fitted
        resp = model.responsibilities(rng.normal(size=(10, 3)))
        assert np.allclose(resp.sum(axis=1), 1.0)

    def test_pdf_integrates_on_grid(self):
        model = GaussianMixture([1.0], [[0.0]], [[1.0]])
        x = np.linspace(-8, 8, 2001)[:, None]
        integral = np.trapezoid(model.pdf(x), x[:, 0])
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_sample_shape_and_stats(self, rng):
        model = GaussianMixture([1.0], [[2.0, 0.0]], [[0.5, 0.5]])
        samples = model.sample(2000, rng)
        assert samples.shape == (2000, 2)
        assert samples.mean(axis=0) == pytest.approx([2.0, 0.0], abs=0.05)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            GaussianMixture([1.0], [[0.0]], [[0.0]])
        with pytest.raises(ValueError):
            GaussianMixture([-1.0, 2.0], np.zeros((2, 1)), np.ones((2, 1)))


class TestHMGKernel:
    def test_peak_normalised(self):
        value = hmg_kernel(np.zeros((1, 3)), np.zeros((1, 3)), np.ones((1, 3)))
        assert value[0, 0] == pytest.approx(1.0)

    def test_1d_equals_gaussian(self, rng):
        x = rng.normal(size=(50, 1))
        kernel = hmg_kernel(x, np.zeros((1, 1)), np.ones((1, 1)))[:, 0]
        assert np.allclose(kernel, np.exp(-0.5 * x[:, 0] ** 2))

    def test_heavier_tails_than_gaussian_product(self):
        point = np.array([[3.0, 3.0]])
        hmg = hmg_kernel(point, np.zeros((1, 2)), np.ones((1, 2)))[0, 0]
        gauss = np.exp(-0.5 * 18.0)
        assert hmg > gauss

    def test_unit_integrals_match_table(self):
        assert hmg_unit_integral(1, n_grid=4001) == pytest.approx(
            HMG_UNIT_INTEGRALS[1], rel=1e-4
        )
        assert hmg_unit_integral(2, n_grid=801) == pytest.approx(
            HMG_UNIT_INTEGRALS[2], rel=1e-3
        )
        assert hmg_unit_integral(3, n_grid=161) == pytest.approx(
            HMG_UNIT_INTEGRALS[3], rel=5e-3
        )

    def test_log_kernel_stable_far_away(self):
        log_val = hmg_log_kernel(
            np.array([[100.0, 100.0, 100.0]]), np.zeros((1, 3)), np.ones((1, 3))
        )
        assert np.isfinite(log_val).all()

    def test_rectilinearity_orders(self):
        hmg_ratio, gauss_ratio = tail_rectilinearity()
        assert gauss_ratio == pytest.approx(np.pi / 4, abs=0.02)
        assert hmg_ratio > 0.9

    @given(st.floats(0.2, 3.0), st.floats(-2.0, 2.0))
    @settings(max_examples=30)
    def test_kernel_bounded(self, sigma, x):
        value = hmg_kernel(
            np.array([[x, -x, 0.5 * x]]),
            np.zeros((1, 3)),
            np.full((1, 3), sigma),
        )
        assert 0.0 <= value[0, 0] <= 1.0


class TestHMGMixture:
    @pytest.fixture(scope="class")
    def cloud(self):
        rng = np.random.default_rng(3)
        gmm = GaussianMixture(
            [0.5, 0.5],
            [[0, 0, 0], [3, 3, 1]],
            [[0.4, 0.4, 0.4], [0.6, 0.6, 0.3]],
        )
        return gmm, gmm.sample(1200, rng)

    def test_pdf_integrates_to_one_1d_style(self):
        # 3D grid integration over a single wide component.
        model = HMGMixture([1.0], [[0.0, 0.0, 0.0]], [[1.0, 1.0, 1.0]])
        x = np.linspace(-8, 8, 81)
        grid = np.stack(np.meshgrid(x, x, x, indexing="ij"), axis=-1).reshape(-1, 3)
        values = model.pdf(grid)
        integral = values.sum() * (x[1] - x[0]) ** 3
        assert integral == pytest.approx(1.0, rel=0.05)

    def test_field_is_weighted_kernels(self, rng):
        model = HMGMixture(
            [0.3, 0.7], rng.normal(size=(2, 3)), np.full((2, 3), 0.5)
        )
        pts = rng.normal(size=(10, 3))
        expected = model.kernel_values(pts) @ model.weights
        assert np.allclose(model.field(pts), expected)

    def test_fit_recovers_structure(self, cloud):
        _, data = cloud
        model = HMGMixture.fit(data, 2, np.random.default_rng(0))
        order = np.argsort(model.means[:, 0])
        assert np.allclose(model.means[order][0], [0, 0, 0], atol=0.3)
        assert np.allclose(model.means[order][1], [3, 3, 1], atol=0.3)

    def test_menu_quantisation_sigma_on_menu(self, cloud):
        _, data = cloud
        menu = np.array([0.3, 0.5, 0.9])
        model = HMGMixture.fit(data, 3, np.random.default_rng(0), sigma_menu=menu)
        assert np.isin(model.sigmas, menu).all()

    def test_per_axis_menu(self, cloud):
        _, data = cloud
        menu = np.array([[0.3, 0.6], [0.4, 0.8], [0.2, 0.5]])
        model = HMGMixture.fit(data, 2, np.random.default_rng(0), sigma_menu=menu)
        for axis in range(3):
            assert np.isin(model.sigmas[:, axis], menu[axis]).all()

    def test_from_gmm_keeps_means(self, cloud):
        gmm, data = cloud
        fitted = GaussianMixture.fit(data, 2, np.random.default_rng(0))
        converted = HMGMixture.from_gmm(fitted)
        assert np.allclose(converted.means, fitted.means)

    def test_refined_weights_improve_match(self, cloud):
        gmm, data = cloud
        fitted = GaussianMixture.fit(data, 4, np.random.default_rng(0))
        menu = np.array([0.5, 0.9])
        probe = data[:300]
        raw = HMGMixture.from_gmm(fitted, sigma_menu=menu)
        refined = HMGMixture.from_gmm(fitted, sigma_menu=menu, refine_points=probe)
        target = fitted.pdf(probe)
        assert refined.field_rmse(target, probe) <= raw.field_rmse(target, probe) + 1e-12

    def test_amplitudes_shape(self, cloud):
        _, data = cloud
        model = HMGMixture.fit(data, 3, np.random.default_rng(0))
        amps = model.amplitudes()
        assert amps.shape == (3,)
        assert np.all(amps > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HMGMixture([1.0], [[0, 0]], [[1.0]])
        with pytest.raises(ValueError):
            HMGMixture([0.0], [[0, 0]], [[1.0, 1.0]])
