"""Shared fixtures."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def session_rng():
    return np.random.default_rng(999)
