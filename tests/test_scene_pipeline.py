"""Tests for camera, renderer, trajectories, and the synthetic dataset."""

import numpy as np
import pytest

from repro.scene.camera import PinholeCamera, body_camera_mount
from repro.scene.dataset import SyntheticRGBDScenes
from repro.scene.render import DepthRenderer
from repro.scene.scene import Scene, make_room_scene
from repro.scene.primitives import Plane, Sphere
from repro.scene.trajectory import (
    Trajectory,
    drone_orbit_states,
    lissajous_trajectory,
    look_at,
    orbit_trajectory,
    states_to_controls,
)
from repro.filtering.measurement import state_to_pose


@pytest.fixture(scope="module")
def camera():
    return PinholeCamera.from_fov(32, 24, fov_x_deg=60.0)


class TestCamera:
    def test_from_fov_focal(self, camera):
        expected = (32 / 2) / np.tan(np.deg2rad(30))
        assert camera.fx == pytest.approx(expected)

    def test_project_backproject_round_trip(self, camera, rng):
        depth = rng.uniform(1.0, 3.0, size=(camera.height, camera.width))
        points = camera.backproject(depth)
        pixels, valid = camera.project(points)
        assert valid.all()
        u, v = camera.pixel_grid()
        expected = np.stack([u.reshape(-1), v.reshape(-1)], axis=-1)
        assert np.allclose(pixels, expected, atol=1e-9)

    def test_backproject_skips_invalid(self, camera):
        depth = np.full((camera.height, camera.width), np.nan)
        depth[0, 0] = 2.0
        points = camera.backproject(depth)
        assert points.shape == (1, 3)
        assert points[0, 2] == pytest.approx(2.0)

    def test_project_negative_depth_invalid(self, camera):
        _, valid = camera.project(np.array([[0.0, 0.0, -1.0]]))
        assert not valid[0]

    def test_backproject_shape_check(self, camera):
        with pytest.raises(ValueError):
            camera.backproject(np.zeros((5, 5)))

    def test_mount_forward_axis(self):
        mount = body_camera_mount(0.0)
        # Optical axis (+Z cam) must map to body +X.
        assert np.allclose(mount.rotation @ [0, 0, 1], [1, 0, 0], atol=1e-12)

    def test_mount_pitch_down(self):
        mount = body_camera_mount(np.deg2rad(30))
        forward = mount.rotation @ np.array([0, 0, 1.0])
        assert forward[2] == pytest.approx(-0.5, abs=1e-9)


class TestRenderer:
    def test_sphere_depth(self, camera):
        scene = Scene([Sphere([3.0, 0.0, 1.0], 0.5)])
        pose = look_at([0.0, 0.0, 1.0], [3.0, 0.0, 1.0])
        depth = DepthRenderer(scene, camera).render(pose)
        center = depth[camera.height // 2, camera.width // 2]
        assert center == pytest.approx(2.5, abs=0.01)

    def test_miss_is_nan(self, camera):
        scene = Scene([Sphere([100.0, 0.0, 0.0], 0.5)])
        pose = look_at([0.0, 0.0, 0.0], [-1.0, 0.0, 0.0])
        depth = DepthRenderer(scene, camera, max_range=5.0).render(pose)
        assert np.isnan(depth).all()

    def test_scan_points_on_surface(self, camera, rng):
        scene = make_room_scene(rng)
        pose = look_at([1.0, 1.0, 1.2], [-1.0, -1.0, 0.5])
        depth = DepthRenderer(scene, camera).render(pose)
        pts = camera.scan_to_world(depth, pose)
        assert pts.shape[0] > 50
        assert np.percentile(np.abs(scene.distance(pts)), 95) < 5e-3

    def test_depth_noise_requires_rng(self, camera, rng):
        scene = Scene([Plane([0, 0, 1], 0.0)])
        renderer = DepthRenderer(scene, camera)
        pose = look_at([0, 0, 2.0], [1.0, 0, 0.0])
        with pytest.raises(ValueError):
            renderer.render(pose, depth_noise_std=0.01)
        noisy = renderer.render(pose, depth_noise_std=0.01, rng=rng)
        clean = renderer.render(pose)
        mask = np.isfinite(clean) & np.isfinite(noisy)
        assert mask.any()
        assert not np.allclose(noisy[mask], clean[mask])

    def test_intensity_in_unit_range(self, camera, rng):
        scene = make_room_scene(rng)
        pose = look_at([1.0, 1.0, 1.2], [-1.0, -1.0, 0.5])
        depth, intensity = DepthRenderer(scene, camera).render_with_normals(pose)
        assert intensity.min() >= 0.0 and intensity.max() <= 1.0
        assert intensity[np.isfinite(depth)].max() > 0.2


class TestTrajectories:
    def test_look_at_points_at_target(self):
        pose = look_at([0, 0, 1], [5, 5, 1])
        direction = pose.rotation @ np.array([0, 0, 1.0])
        expected = np.array([1, 1, 0]) / np.sqrt(2)
        assert np.allclose(direction, expected, atol=1e-9)

    def test_look_at_rejects_coincident(self):
        with pytest.raises(ValueError):
            look_at([1, 1, 1], [1, 1, 1])

    def test_orbit_length_and_validity(self):
        traj = orbit_trajectory([0, 0, 0.5], radius=1.5, height=1.0, n_poses=12)
        assert len(traj) == 12
        assert all(p.is_valid() for p in traj)

    def test_orbit_speed_jitter_changes_steps(self, rng):
        smooth = orbit_trajectory([0, 0, 0], 1.0, 1.0, 20)
        jittered = orbit_trajectory([0, 0, 0], 1.0, 1.0, 20, speed_jitter=0.4, rng=rng)
        step_smooth = np.linalg.norm(np.diff(smooth.positions(), axis=0), axis=1)
        step_jit = np.linalg.norm(np.diff(jittered.positions(), axis=0), axis=1)
        assert step_jit.std() > 3 * step_smooth.std()

    def test_relative_increments_recompose(self):
        traj = orbit_trajectory([0, 0, 0], 1.0, 0.8, 8)
        poses = [traj[0]]
        for inc in traj.relative_increments():
            poses.append(poses[-1].compose(inc))
        assert np.allclose(poses[-1].as_matrix(), traj[7].as_matrix(), atol=1e-9)

    def test_lissajous_shape(self):
        traj = lissajous_trajectory([0, 0, 1], [1, 1, 0.3], 15)
        assert len(traj) == 15
        assert traj.total_length() > 0

    def test_drone_states_controls_round_trip(self):
        states = drone_orbit_states([0, 0, 0], 1.2, 1.0, 10)
        controls = states_to_controls(states)
        # replay controls noiselessly
        current = states[0].copy()
        for t, control in enumerate(controls):
            yaw = current[3]
            c, s = np.cos(yaw), np.sin(yaw)
            current[0] += c * control[0] - s * control[1]
            current[1] += s * control[0] + c * control[1]
            current[2] += control[2]
            current[3] = np.mod(current[3] + control[3] + np.pi, 2 * np.pi) - np.pi
            assert np.allclose(current[:3], states[t + 1, :3], atol=1e-9)

    def test_state_to_pose_heading(self):
        state = np.array([1.0, 2.0, 3.0, np.pi / 2])
        pose = state_to_pose(state)
        assert np.allclose(pose.rotation @ [1, 0, 0], [0, 1, 0], atol=1e-12)
        assert np.allclose(pose.translation, [1, 2, 3])

    def test_timestamps_must_increase(self):
        poses = list(orbit_trajectory([0, 0, 0], 1.0, 1.0, 3))
        with pytest.raises(ValueError, match="strictly increasing"):
            Trajectory(poses, timestamps=[0.0, 1.0, 1.0])
        with pytest.raises(ValueError, match="strictly increasing"):
            Trajectory(poses, timestamps=[0.0, 2.0, 1.0])

    def test_timestamps_must_be_finite(self):
        poses = list(orbit_trajectory([0, 0, 0], 1.0, 1.0, 3))
        with pytest.raises(ValueError, match="finite"):
            Trajectory(poses, timestamps=[0.0, np.nan, 2.0])
        with pytest.raises(ValueError, match="finite"):
            Trajectory(poses, timestamps=[0.0, 1.0, np.inf])

    def test_timestamps_must_match_poses(self):
        poses = list(orbit_trajectory([0, 0, 0], 1.0, 1.0, 3))
        with pytest.raises(ValueError, match="matching the 3 pose"):
            Trajectory(poses, timestamps=[0.0, 1.0])
        with pytest.raises(ValueError, match="1-D"):
            Trajectory(poses, timestamps=np.zeros((3, 1)))


class TestDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return SyntheticRGBDScenes(n_scenes=2, frames_per_scene=5, seed=3)

    def test_scene_caching(self, dataset):
        assert dataset.scene(0) is dataset.scene(0)

    def test_index_bounds(self, dataset):
        with pytest.raises(IndexError):
            dataset.scene(2)

    def test_frames_have_poses_and_depth(self, dataset):
        frames = dataset.frames(0)
        assert len(frames) == 5
        assert frames[0].depth.shape == (dataset.camera.height, dataset.camera.width)
        assert frames[2].valid_fraction > 0.3

    def test_frame_pairs_relative_pose(self, dataset):
        pairs = dataset.frame_pairs(0)
        previous, current, relative = pairs[0]
        assert np.allclose(
            previous.pose.compose(relative).as_matrix(),
            current.pose.as_matrix(),
            atol=1e-9,
        )

    def test_point_cloud_reproducible(self, dataset):
        a = dataset.point_cloud(1, n_points=200)
        b = dataset.point_cloud(1, n_points=200)
        assert np.allclose(a, b)

    def test_scenes_differ(self, dataset):
        a = dataset.point_cloud(0, n_points=300)
        b = dataset.point_cloud(1, n_points=300)
        assert not np.allclose(a.mean(axis=0), b.mean(axis=0), atol=1e-3)

    def test_rng_streams_pinned(self):
        # Pins the SeedSequence spawn-key derivation: these exact values
        # changed (once) when the old ``seed + 1000 * scene_index``
        # offsets were replaced, and must never drift again.
        dataset = SyntheticRGBDScenes(n_scenes=2, frames_per_scene=5, seed=0)
        cloud = dataset.point_cloud(0, n_points=8, noise_std=0.0)
        assert np.allclose(
            cloud[0],
            [-2.077435247451518, -1.0640767589235995, 0.0],
            atol=1e-12,
        )
        assert np.allclose(
            dataset.trajectory(0).positions()[0],
            [0.1583543359664071, 1.7612363103859676, 1.7110248857060408],
            atol=1e-12,
        )

    def test_rng_streams_do_not_collide_across_base_seeds(self):
        # The old offset scheme made (seed=0, scene 1) share streams with
        # (seed=1000, scene 0); keyed derivation must not.
        a = SyntheticRGBDScenes(n_scenes=2, frames_per_scene=5, seed=0)
        b = SyntheticRGBDScenes(n_scenes=2, frames_per_scene=5, seed=1000)
        pa = a.point_cloud(1, n_points=64, noise_std=0.0)
        pb = b.point_cloud(0, n_points=64, noise_std=0.0)
        assert not np.allclose(pa, pb)

    def test_rng_streams_order_independent(self):
        # Artefact streams are keyed by purpose, so the order lazily
        # cached artefacts are first built in cannot change them.
        first = SyntheticRGBDScenes(n_scenes=1, frames_per_scene=4, seed=5)
        cloud_first = first.point_cloud(0, n_points=50)
        second = SyntheticRGBDScenes(n_scenes=1, frames_per_scene=4, seed=5)
        second.trajectory(0)  # build another artefact before the cloud
        assert np.allclose(cloud_first, second.point_cloud(0, n_points=50))
