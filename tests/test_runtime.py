"""Batch runtime: plans, parallel execution, run stores, batch sessions."""

import json

import numpy as np
import pytest

from repro.api import (
    BatchResult,
    config_hash,
    get_substrate,
    result_stem,
    run_experiment,
    sweep_experiment,
)
from repro.nn import Dense, Dropout, ReLU, Sequential
from repro.runtime import JobSpec, ParallelExecutor, Plan, RunStore

FAST_E9 = {"n_inputs": 32, "n_outputs": 16, "n_iterations": 8, "n_trials": 1}
# keep_probability=1.5 type-checks (float) but fails inside the job, so it
# exercises the runtime's failure capture rather than plan validation.
BROKEN_E9 = {**FAST_E9, "keep_probability": 1.5}


def make_model(seed: int = 3) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Dense(6, 8, rng),
            ReLU(),
            Dropout(0.5, rng=np.random.default_rng(11)),
            Dense(8, 2, rng),
        ]
    )


class TestPlan:
    def test_grid_compiles_in_order(self):
        plan = Plan.compile(
            "E3", substrates=["digital", "cim"], seeds=[0, 1]
        )
        assert len(plan) == 4
        cells = [(job.substrate, job.seed) for job in plan]
        assert cells == [("digital", 0), ("digital", 1), ("cim", 0), ("cim", 1)]
        assert [job.index for job in plan] == [0, 1, 2, 3]

    def test_default_seed_resolved_from_config(self):
        # E3's config default seed is 7; the plan makes it explicit.
        plan = Plan.compile("E3")
        assert plan[0].seed == 7
        assert plan[0].job_id == "E3-seed7"

    def test_job_id_carries_config_hash(self):
        plain = Plan.compile("E9", seeds=[1])[0]
        tweaked = Plan.compile("E9", seeds=[1], overrides=FAST_E9)[0]
        assert plain.job_id == "E9-seed1"
        assert tweaked.job_id == f"E9-seed1-cfg{config_hash(FAST_E9)}"
        assert plain.job_id != tweaked.job_id

    def test_unknown_experiment_rejected_at_compile(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            Plan.compile("E99")

    def test_unsupported_substrate_rejected_at_compile(self):
        with pytest.raises(ValueError, match="does not support"):
            Plan.compile("E9", substrates=["cim"])

    def test_bad_override_field_rejected_at_compile(self):
        with pytest.raises(ValueError, match="unknown config field"):
            Plan.compile("E9", overrides={"nonsense": 1})

    def test_jsonable_round_trip(self):
        plan = Plan.compile("E9", seeds=[0, 1], overrides=FAST_E9)
        back = Plan.from_jsonable(json.loads(json.dumps(plan.to_jsonable())))
        assert [job.job_id for job in back] == [job.job_id for job in plan]
        assert back[1].overrides == plan[1].overrides


class TestExecutor:
    def test_parallel_matches_serial_bit_for_bit(self):
        plan = Plan.compile("E9", seeds=[0, 1], overrides=FAST_E9)
        serial = ParallelExecutor(workers=1).execute(plan)
        parallel = ParallelExecutor(workers=4).execute(plan)
        assert serial.n_ok == parallel.n_ok == 2
        for a, b in zip(serial.records, parallel.records):
            assert a.job.job_id == b.job.job_id
            assert a.result.to_dict()["metrics"] == b.result.to_dict()["metrics"]

    def test_failing_job_does_not_abort_grid(self):
        plan = Plan(
            jobs=(
                JobSpec(0, "E9", seed=0, overrides=dict(BROKEN_E9)),
                JobSpec(1, "E9", seed=0, overrides=dict(FAST_E9)),
                JobSpec(2, "E9", seed=1, overrides=dict(FAST_E9)),
            )
        )
        report = ParallelExecutor(workers=1).execute(plan)
        assert report.n_failed == 1 and report.n_ok == 2
        assert "keep_probability" in report.errors[0].error
        assert [record.job.index for record in report.records] == [0, 1, 2]
        with pytest.raises(RuntimeError, match="E9-seed0"):
            report.raise_on_error()

    def test_failing_job_captured_in_parallel_too(self):
        plan = Plan(
            jobs=(
                JobSpec(0, "E9", seed=0, overrides=dict(BROKEN_E9)),
                JobSpec(1, "E9", seed=1, overrides=dict(FAST_E9)),
            )
        )
        report = ParallelExecutor(workers=2).execute(plan)
        assert report.n_failed == 1 and report.n_ok == 1
        assert not report.records[0].ok
        assert report.records[1].ok

    def test_report_summary(self):
        plan = Plan.compile("E9", overrides=FAST_E9)
        report = ParallelExecutor(workers=1).execute(plan)
        summary = report.summary()
        assert summary["n_jobs"] == 1
        assert summary["n_failed"] == 0
        assert summary["wall_time_s"] > 0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelExecutor(workers=0)


class TestRunStore:
    def test_execute_into_store_and_load(self, tmp_path):
        plan = Plan.compile("E9", seeds=[0, 1], overrides=FAST_E9)
        store = RunStore.create(tmp_path / "run", plan=plan, command="test")
        report = ParallelExecutor(workers=1).execute(plan, store=store)

        loaded = RunStore.load(tmp_path / "run")
        assert loaded.manifest["status"] == "complete"
        assert loaded.manifest["command"] == "test"
        assert loaded.manifest["n_jobs"] == 2
        assert len(loaded.results()) == 2
        for stored, live in zip(loaded.records(), report.records):
            assert stored.job.job_id == live.job.job_id
            assert stored.result.metrics == live.result.to_dict()["metrics"]
        restored_plan = loaded.plan
        assert [job.job_id for job in restored_plan] == [
            job.job_id for job in plan
        ]

    def test_store_keeps_error_rows_and_partial_status(self, tmp_path):
        plan = Plan(
            jobs=(
                JobSpec(0, "E9", seed=0, overrides=dict(BROKEN_E9)),
                JobSpec(1, "E9", seed=0, overrides=dict(FAST_E9)),
            )
        )
        ParallelExecutor(workers=1).execute(plan, store=tmp_path / "run")
        loaded = RunStore.load(tmp_path / "run")
        assert loaded.manifest["status"] == "partial"
        assert len(loaded.errors()) == 1
        assert "keep_probability" in loaded.errors()[0].error
        assert len(loaded.results()) == 1

    def test_query_filters(self, tmp_path):
        plan = Plan.compile("E9", seeds=[0, 1], overrides=FAST_E9)
        ParallelExecutor(workers=1).execute(plan, store=tmp_path / "run")
        loaded = RunStore.load(tmp_path / "run")
        assert len(loaded.query(seed=1)) == 1
        assert loaded.query(seed=1)[0].job.seed == 1
        assert len(loaded.query(experiment_id="e9")) == 2
        assert loaded.query(substrate="cim") == []
        assert len(loaded.query(status="ok")) == 2

    def test_create_refuses_existing_store(self, tmp_path):
        RunStore.create(tmp_path / "run")
        with pytest.raises(FileExistsError, match="already exists"):
            RunStore.create(tmp_path / "run")

    def test_load_missing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            RunStore.load(tmp_path / "nope")

    def _store_with_truncated_tail(self, tmp_path):
        """A complete 2-record store whose writer died mid-third-line."""
        plan = Plan.compile("E9", seeds=[0, 1], overrides=FAST_E9)
        ParallelExecutor(workers=1).execute(plan, store=tmp_path / "run")
        results = tmp_path / "run" / "results.jsonl"
        with results.open("a") as handle:
            handle.write('{"job": {"index": 2, "experiment_id": "E9", "se')
        return tmp_path / "run"

    def test_load_skips_truncated_trailing_line(self, tmp_path):
        path = self._store_with_truncated_tail(tmp_path)
        with pytest.warns(UserWarning, match="truncated trailing line"):
            loaded = RunStore.load(path)
        assert len(loaded.records()) == 2
        assert len(loaded.results()) == 2
        assert len(loaded.query(experiment_id="E9")) == 2

    def test_load_strict_raises_on_truncated_tail(self, tmp_path):
        path = self._store_with_truncated_tail(tmp_path)
        with pytest.raises(json.JSONDecodeError):
            RunStore.load(path, strict=True)

    def test_load_raises_on_corrupt_middle_line(self, tmp_path):
        plan = Plan.compile("E9", seeds=[0, 1], overrides=FAST_E9)
        ParallelExecutor(workers=1).execute(plan, store=tmp_path / "run")
        results = tmp_path / "run" / "results.jsonl"
        lines = results.read_text().splitlines()
        lines[0] = lines[0][:40]  # corruption *before* the tail
        results.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            RunStore.load(results.parent)


class TestSweepExperimentRebased:
    def test_sweep_keeps_serial_contract(self):
        results = sweep_experiment("E9", seeds=[0, 1], overrides=FAST_E9)
        assert [result.seed for result in results] == [0, 1]
        direct = run_experiment("E9", seed=0, overrides=FAST_E9)
        assert results[0].metrics == direct.metrics

    def test_sweep_workers_match_serial(self):
        serial = sweep_experiment("E9", seeds=[0, 1], overrides=FAST_E9)
        parallel = sweep_experiment(
            "E9", seeds=[0, 1], overrides=FAST_E9, workers=2
        )
        for a, b in zip(serial, parallel):
            assert a.to_dict()["metrics"] == b.to_dict()["metrics"]

    def test_sweep_failure_raises_but_store_keeps_grid(self, tmp_path):
        with pytest.raises(RuntimeError, match="failed"):
            sweep_experiment(
                "E9",
                seeds=[0, 1],
                overrides=BROKEN_E9,
                store=tmp_path / "run",
            )
        loaded = RunStore.load(tmp_path / "run")
        assert len(loaded.records()) == 2  # both cells ran and were recorded

    def test_out_dir_uses_hashed_stems(self, tmp_path):
        sweep_experiment("E9", seeds=[1], overrides=FAST_E9, out_dir=tmp_path)
        expected = tmp_path / f"E9-seed1-cfg{config_hash(FAST_E9)}.json"
        assert expected.exists()

    def test_failing_cell_still_persists_successful_results(self, tmp_path, monkeypatch):
        # Successful cells must reach out_dir before the failure raises.
        import repro.runtime.executor as executor_mod

        original = executor_mod.run_job_payload

        def fail_seed_1(payload):
            if payload["seed"] == 1:
                return {
                    "status": "error",
                    "result": None,
                    "error": "boom",
                    "duration_s": 0.0,
                }
            return original(payload)

        monkeypatch.setattr(executor_mod, "run_job_payload", fail_seed_1)
        with pytest.raises(RuntimeError, match="boom"):
            sweep_experiment(
                "E9", seeds=[0, 1], overrides=FAST_E9, out_dir=tmp_path
            )
        assert len(list(tmp_path.glob("E9-seed0-cfg*.json"))) == 1


class TestFilenameCollisions:
    """Satellite: different --set overrides must not overwrite each other."""

    def test_distinct_overrides_distinct_files(self, tmp_path):
        small = dict(FAST_E9)
        smaller = {**FAST_E9, "n_iterations": 4}
        run_experiment("E9", seed=1, overrides=small, out_dir=tmp_path)
        run_experiment("E9", seed=1, overrides=smaller, out_dir=tmp_path)
        files = sorted(p.name for p in tmp_path.glob("E9-seed1-cfg*.json"))
        assert len(files) == 2
        payloads = [json.loads((tmp_path / f).read_text()) for f in files]
        iterations = sorted(p["config"]["n_iterations"] for p in payloads)
        assert iterations == [4, 8]

    def test_no_overrides_keeps_historical_name(self, tmp_path):
        run_experiment("E9", seed=1, overrides=FAST_E9, out_dir=tmp_path)
        run_experiment("E1", seed=0, out_dir=tmp_path)
        assert (tmp_path / "E1-seed0.json").exists()

    def test_result_stem_shape(self):
        assert result_stem("E3", "cim", 1) == "E3-cim-seed1"
        hashed = result_stem("E3", "cim", 1, {"n_steps": 5})
        assert hashed.startswith("E3-cim-seed1-cfg")
        assert hashed != result_stem("E3", "cim", 1, {"n_steps": 6})


class TestBatchSessions:
    """run_batch must equal a run() loop bit-for-bit, per item."""

    @pytest.fixture(scope="class")
    def items(self):
        rng = np.random.default_rng(4)
        return [rng.normal(size=(3, 6)) for _ in range(4)]

    @pytest.mark.parametrize("name", ["cim", "cim-reuse", "cim-ordered", "digital"])
    def test_run_batch_matches_run_loop(self, items, name):
        batch_session = get_substrate(name).mc_dropout_session(
            make_model(), n_iterations=8, rng=np.random.default_rng(5)
        )
        batch = batch_session.run_batch(items, rng=np.random.default_rng(9))

        loop_session = get_substrate(name).mc_dropout_session(
            make_model(), n_iterations=8, rng=np.random.default_rng(5)
        )
        base = np.random.default_rng(9)
        masks = loop_session.draw_masks(base)
        item_rngs = base.spawn(len(items))
        for index, (item, item_rng) in enumerate(zip(items, item_rngs)):
            expected = loop_session.run(item, rng=item_rng, masks=masks)
            got = batch[index]
            assert np.array_equal(expected.mean, got.mean)
            assert np.array_equal(expected.variance, got.variance)
            assert np.array_equal(expected.samples, got.samples)
            assert expected.ops_executed == got.ops_executed
            assert expected.energy_j == got.energy_j

    def test_batch_items_share_masks(self, items):
        session = get_substrate("cim-ordered").mc_dropout_session(
            make_model(), n_iterations=8, rng=np.random.default_rng(5)
        )
        batch = session.run_batch(items, rng=np.random.default_rng(9))
        orders = [result.extras["mask_order"] for result in batch]
        for order in orders[1:]:
            assert np.array_equal(orders[0], order)

    def test_batch_level_accounting(self, items):
        session = get_substrate("cim").mc_dropout_session(
            make_model(), n_iterations=8, rng=np.random.default_rng(5)
        )
        batch = session.run_batch(items, rng=np.random.default_rng(9))
        assert len(batch) == 4
        assert batch.extras["n_items"] == 4
        assert batch.mask_generation_energy_j > 0  # hardware RNG cost, paid once
        assert batch.total_energy_j > sum(r.energy_j for r in batch)
        assert batch.total_ops_executed == sum(r.ops_executed for r in batch)
        assert batch.stacked_means().shape == (12, 2)

    def test_digital_batch_has_no_mask_generation_energy(self, items):
        session = get_substrate("digital").mc_dropout_session(
            make_model(), n_iterations=8, rng=np.random.default_rng(5)
        )
        batch = session.run_batch(items, rng=np.random.default_rng(9))
        assert batch.mask_generation_energy_j == 0.0

    def test_pinned_masks_reproduce_single_runs(self, items):
        # Any cell of a batch is reproducible standalone with the same plan.
        session = get_substrate("cim").mc_dropout_session(
            make_model(), n_iterations=8, rng=np.random.default_rng(5)
        )
        masks = session.draw_masks(np.random.default_rng(3))
        first = session.run(items[0], rng=np.random.default_rng(1), masks=masks)
        again = session.run(items[0], rng=np.random.default_rng(1), masks=masks)
        assert np.array_equal(first.samples, again.samples)

    def test_batch_result_json_round_trip(self, items):
        session = get_substrate("cim").mc_dropout_session(
            make_model(), n_iterations=4, rng=np.random.default_rng(5)
        )
        batch = session.run_batch(items[:2], rng=np.random.default_rng(9))
        back = BatchResult.from_json(batch.to_json())
        assert back.substrate == "cim"
        assert len(back) == 2
        assert np.array_equal(back[0].mean, batch[0].mean)
        assert back.mask_generation_energy_j == batch.mask_generation_energy_j
        assert back.extras["n_items"] == 2

    def test_localization_run_batch_matches_loop(self):
        from repro.experiments.common import build_room_world

        world = build_room_world(
            seed=3, n_steps=3, n_cloud_points=500, image=(16, 12)
        )
        kwargs = dict(
            camera_mount=world.mount, n_components=8, n_particles=40,
            tiles=(1, 1, 1),
        )
        sequence = (world.controls, world.depths, world.states)

        def fresh_session():
            session = get_substrate("cim").localization_session(
                world.cloud, world.camera, rng=np.random.default_rng(9), **kwargs
            )
            session.initialize_tracking(
                world.states[0] + 0.2, np.full(4, 0.3), np.random.default_rng(21)
            )
            return session

        batch = fresh_session().run_batch(
            [sequence, sequence], rng=np.random.default_rng(33)
        )
        # Each item must match a freshly initialised session running only
        # that sequence with the matching spawned generator.
        item_rngs = np.random.default_rng(33).spawn(2)
        for index, item_rng in enumerate(item_rngs):
            expected = fresh_session().run(sequence, rng=item_rng)
            assert np.array_equal(expected.mean, batch[index].mean)
            assert np.array_equal(
                expected.extras["errors"], batch[index].extras["errors"]
            )
        assert batch.workload == "localization"
        assert batch.extras["n_items"] == 2


class TestMaskStreamPinning:
    """Engine-level contract behind the session batch path."""

    def test_wrong_stream_count_rejected(self):
        from repro.core.cim_mc_dropout import CIMMCDropoutEngine

        engine = CIMMCDropoutEngine(
            make_model(), n_iterations=4, rng=np.random.default_rng(5)
        )
        with pytest.raises(ValueError, match="mask streams"):
            engine.predict(np.zeros((1, 6)), mask_streams=[])

    def test_wrong_order_rejected(self):
        from repro.core.cim_mc_dropout import CIMMCDropoutEngine

        engine = CIMMCDropoutEngine(
            make_model(), n_iterations=4, rng=np.random.default_rng(5)
        )
        streams = engine.draw_mask_streams(np.random.default_rng(1))
        with pytest.raises(ValueError, match="permutation"):
            engine.predict(
                np.zeros((1, 6)), mask_streams=streams, mask_order=[0, 0, 1, 2]
            )

    def test_iteration_count_mismatch_rejected(self):
        from repro.core.cim_mc_dropout import CIMMCDropoutEngine

        engine = CIMMCDropoutEngine(
            make_model(), n_iterations=4, rng=np.random.default_rng(5)
        )
        other = CIMMCDropoutEngine(
            make_model(), n_iterations=6, rng=np.random.default_rng(5)
        )
        streams = other.draw_mask_streams(np.random.default_rng(1))
        with pytest.raises(ValueError, match="iterations"):
            engine.predict(np.zeros((1, 6)), mask_streams=streams)
