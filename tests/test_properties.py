"""Cross-module property-based tests (hypothesis).

Invariants that must hold for *any* valid input, spanning the library's
load-bearing algebra: pose composition, converter monotonicity, mask
ordering, conformal quantiles, and energy accounting.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesian.conformal import conformal_quantile
from repro.bayesian.ordering import mask_hamming_path_length, optimal_mask_order
from repro.circuits import DAC, LinearADC, LogarithmicADC, NODE_45NM
from repro.circuits.energy import EnergyLedger
from repro.maps.hmg import hmg_kernel
from repro.nn.quantization import QuantizationSpec, dequantize, quantize
from repro.scene.se3 import Pose, euler_to_matrix

angles = st.floats(-3.0, 3.0)
coords = st.floats(-5.0, 5.0)


class TestPoseAlgebra:
    @given(angles, angles, angles, coords, coords, coords)
    @settings(max_examples=40)
    def test_compose_associative(self, a, b, c, x, y, z):
        p = Pose.from_euler([x, 0, 0], yaw=a)
        q = Pose.from_euler([0, y, 0], roll=b)
        r = Pose.from_euler([0, 0, z], pitch=c)
        left = (p @ q) @ r
        right = p @ (q @ r)
        assert np.allclose(left.as_matrix(), right.as_matrix(), atol=1e-9)

    @given(angles, coords, coords)
    @settings(max_examples=40)
    def test_double_inverse_is_identity(self, yaw, x, y):
        p = Pose.from_euler([x, y, 1.0], yaw=yaw)
        assert np.allclose(p.inverse().inverse().as_matrix(), p.as_matrix(), atol=1e-10)

    @given(angles, angles)
    @settings(max_examples=40)
    def test_rotation_preserves_norm(self, roll, yaw):
        rotation = euler_to_matrix(roll, 0.4, yaw)
        vector = np.array([1.0, -2.0, 0.5])
        assert np.linalg.norm(rotation @ vector) == pytest.approx(
            np.linalg.norm(vector)
        )


class TestConverterProperties:
    @given(st.integers(2, 10))
    @settings(max_examples=20)
    def test_log_adc_monotone_any_bits(self, bits):
        adc = LogarithmicADC(NODE_45NM, bits=bits, i_min=1e-9, i_max=1e-4)
        currents = np.logspace(-10, -3, 200)
        codes = adc.convert(currents)
        assert np.all(np.diff(codes) >= 0)

    @given(st.integers(2, 10), st.floats(0.1, 10.0))
    @settings(max_examples=20)
    def test_linear_adc_error_bounded_by_half_lsb(self, bits, full_scale):
        adc = LinearADC(NODE_45NM, bits=bits, full_scale=full_scale)
        values = np.linspace(0, full_scale, 57)
        decoded = adc.decode(adc.convert(values))
        assert np.max(np.abs(decoded - values)) <= adc.lsb / 2 + 1e-12

    @given(st.integers(2, 8))
    @settings(max_examples=15)
    def test_dac_idempotent(self, bits):
        dac = DAC(NODE_45NM, bits=bits)
        voltages = np.linspace(0, dac.v_max, 33)
        once = dac.convert(voltages)
        twice = dac.convert(once)
        assert np.allclose(once, twice)

    @given(st.integers(2, 12), st.floats(0.01, 1e3))
    @settings(max_examples=30)
    def test_quantization_idempotent(self, bits, max_value):
        spec = QuantizationSpec(bits=bits, max_value=max_value)
        rng = np.random.default_rng(bits)
        tensor = rng.normal(scale=max_value / 2, size=20)
        once = dequantize(quantize(tensor, spec), spec)
        twice = dequantize(quantize(once, spec), spec)
        assert np.allclose(once, twice)


class TestKernelProperties:
    @given(
        st.floats(-3, 3), st.floats(-3, 3), st.floats(0.2, 2.0), st.floats(0.2, 2.0)
    )
    @settings(max_examples=40)
    def test_hmg_maximum_at_center(self, mx, my, sx, sy):
        means = np.array([[mx, my]])
        sigmas = np.array([[sx, sy]])
        at_center = hmg_kernel(means, means, sigmas)[0, 0]
        rng = np.random.default_rng(0)
        elsewhere = hmg_kernel(
            means + rng.normal(size=(10, 2)), means, sigmas
        )
        assert at_center == pytest.approx(1.0)
        assert np.all(elsewhere <= 1.0 + 1e-12)

    @given(st.floats(0.3, 3.0))
    @settings(max_examples=20)
    def test_hmg_scale_invariance(self, scale):
        # f((x - mu)/sigma) depends only on the z-score.
        point = np.array([[1.0, -0.5, 0.3]])
        base = hmg_kernel(point, np.zeros((1, 3)), np.ones((1, 3)))
        scaled = hmg_kernel(
            point * scale, np.zeros((1, 3)), np.full((1, 3), scale)
        )
        assert scaled[0, 0] == pytest.approx(base[0, 0], rel=1e-9)


class TestOrderingProperties:
    @given(st.integers(3, 15), st.integers(4, 40))
    @settings(max_examples=20, deadline=None)
    def test_never_worse_than_identity(self, n_iter, width):
        rng = np.random.default_rng(n_iter * 97 + width)
        masks = (rng.random((n_iter, width)) < 0.5).astype(np.uint8)
        order = optimal_mask_order(masks)
        assert mask_hamming_path_length(masks, order) <= mask_hamming_path_length(
            masks
        )

    @given(st.integers(3, 12))
    @settings(max_examples=15, deadline=None)
    def test_order_is_permutation(self, n_iter):
        rng = np.random.default_rng(n_iter)
        masks = (rng.random((n_iter, 16)) < 0.5).astype(np.uint8)
        order = optimal_mask_order(masks)
        assert sorted(order.tolist()) == list(range(n_iter))


class TestConformalProperties:
    @given(st.integers(30, 300))
    @settings(max_examples=20)
    def test_quantile_monotone_in_alpha(self, n):
        rng = np.random.default_rng(n)
        scores = rng.exponential(size=n)
        q_tight = conformal_quantile(scores, alpha=0.05)
        q_loose = conformal_quantile(scores, alpha=0.3)
        assert q_tight >= q_loose


class TestLedgerProperties:
    @given(st.lists(st.tuples(st.integers(0, 100), st.floats(0, 1e-9)), max_size=20))
    @settings(max_examples=25)
    def test_total_energy_is_sum(self, entries):
        ledger = EnergyLedger()
        expected = 0.0
        for index, (count, energy) in enumerate(entries):
            ledger.add(f"op{index % 3}", count, energy)
            expected += count * energy
        assert ledger.total_energy_j() == pytest.approx(expected, rel=1e-9)

    @given(st.floats(0.0, 10.0))
    @settings(max_examples=20)
    def test_scaling_linear(self, factor):
        ledger = EnergyLedger()
        ledger.add("op", 10, 1e-12)
        scaled = ledger.scaled(factor)
        assert scaled.total_energy_j() == pytest.approx(1e-11 * factor)
