"""Tests for repro.bayesian.evidential (deep evidential regression)."""

import numpy as np
import pytest

from repro.bayesian.evidential import (
    EvidentialLoss,
    evidential_prediction,
    split_evidential_outputs,
)
from repro.nn import Adam, Dense, ReLU, Sequential


class TestOutputSplit:
    def test_constraints(self, rng):
        raw = rng.normal(scale=3.0, size=(10, 8))
        gamma, nu, alpha, beta = split_evidential_outputs(raw)
        assert gamma.shape == (10, 2)
        assert np.all(nu > 0)
        assert np.all(alpha > 1)
        assert np.all(beta > 0)

    def test_width_validation(self, rng):
        with pytest.raises(ValueError):
            split_evidential_outputs(rng.normal(size=(3, 7)))

    def test_prediction_keys(self, rng):
        pred = evidential_prediction(rng.normal(size=(4, 8)))
        assert set(pred) == {"mean", "aleatoric", "epistemic"}
        assert np.all(pred["aleatoric"] > 0)
        assert np.all(pred["epistemic"] > 0)

    def test_epistemic_shrinks_with_evidence(self):
        # Larger nu (more virtual observations) -> less epistemic
        # uncertainty at the same beta/alpha.
        raw_low = np.array([[0.0, -2.0, 1.0, 0.0]])
        raw_high = np.array([[0.0, 5.0, 1.0, 0.0]])
        low = evidential_prediction(raw_low)["epistemic"][0, 0]
        high = evidential_prediction(raw_high)["epistemic"][0, 0]
        assert high < low


class TestEvidentialLoss:
    def test_gradient_matches_finite_differences(self, rng):
        loss_fn = EvidentialLoss(regularizer=0.05)
        raw = rng.normal(size=(3, 8))
        targets = rng.normal(size=(3, 2))
        _, grad = loss_fn(raw, targets)
        eps = 1e-6
        for idx in [(0, 0), (1, 2), (2, 5), (0, 7), (1, 4), (2, 6)]:
            raw[idx] += eps
            up, _ = loss_fn(raw, targets)
            raw[idx] -= 2 * eps
            down, _ = loss_fn(raw, targets)
            raw[idx] += eps
            numeric = (up - down) / (2 * eps)
            assert grad[idx] == pytest.approx(numeric, abs=2e-5), idx

    def test_loss_decreases_on_correct_mean(self):
        loss_fn = EvidentialLoss(regularizer=0.0)
        target = np.array([[1.0]])
        good = np.array([[1.0, 0.0, 0.0, 0.0]])
        bad = np.array([[3.0, 0.0, 0.0, 0.0]])
        assert loss_fn(good, target)[0] < loss_fn(bad, target)[0]

    def test_width_validation(self, rng):
        loss_fn = EvidentialLoss()
        with pytest.raises(ValueError):
            loss_fn(rng.normal(size=(2, 6)), rng.normal(size=(2, 2)))

    def test_regularizer_validation(self):
        with pytest.raises(ValueError):
            EvidentialLoss(regularizer=-1.0)


class TestEvidentialTraining:
    def test_learns_heteroscedastic_noise(self, rng):
        """Aleatoric uncertainty must track the input-dependent noise."""
        n = 600
        x = rng.uniform(-2, 2, size=(n, 1))
        noise_scale = 0.05 + 0.5 * (x[:, 0] > 0)
        y = (np.sin(x) + rng.normal(size=(n, 1)) * noise_scale[:, None])

        model = Sequential(
            [Dense(1, 32, rng), ReLU(), Dense(32, 32, rng), ReLU(), Dense(32, 4, rng)]
        )
        loss_fn = EvidentialLoss(regularizer=0.01)
        optimizer = Adam(model.parameters(), lr=5e-3)
        for _ in range(300):
            raw = model.forward(x)
            _, grad = loss_fn(raw, y)
            optimizer.zero_grad()
            model.backward(grad)
            optimizer.step()

        prediction = evidential_prediction(model.forward(x))
        noisy_side = prediction["aleatoric"][x[:, 0] > 0.5].mean()
        quiet_side = prediction["aleatoric"][x[:, 0] < -0.5].mean()
        assert noisy_side > 3.0 * quiet_side
        # And the mean must actually fit the function.
        errors = np.abs(prediction["mean"] - np.sin(x))
        assert errors[x[:, 0] < -0.5].mean() < 0.15

    def test_epistemic_aleatoric_identity(self, rng):
        """epistemic = aleatoric / nu is an algebraic NIG identity."""
        raw = rng.normal(scale=2.0, size=(20, 12))
        prediction = evidential_prediction(raw)
        _, nu, _, _ = split_evidential_outputs(raw)
        assert np.allclose(
            prediction["epistemic"], prediction["aleatoric"] / nu, rtol=1e-12
        )

    def test_noisy_training_gives_positive_uncertainties(self, rng):
        """With noisy data the head must report non-degenerate variance of
        both kinds (the OOD extrapolation of epistemic uncertainty is a
        known fragility of DER and is deliberately not asserted)."""
        n = 400
        x = rng.uniform(-1, 1, size=(n, 1))
        y = x**2 + rng.normal(scale=0.2, size=(n, 1))
        model = Sequential(
            [Dense(1, 32, rng), ReLU(), Dense(32, 4, rng)]
        )
        loss_fn = EvidentialLoss(regularizer=0.02)
        optimizer = Adam(model.parameters(), lr=5e-3)
        for _ in range(200):
            raw = model.forward(x)
            _, grad = loss_fn(raw, y)
            optimizer.zero_grad()
            model.backward(grad)
            optimizer.step()
        prediction = evidential_prediction(model.forward(x))
        # Aleatoric must land near the true noise variance (0.04).
        assert 0.01 < prediction["aleatoric"].mean() < 0.2
        assert prediction["epistemic"].mean() > 0.0
