"""Fast tests of the experiment drivers (tiny configurations)."""

import numpy as np
import pytest

from repro.experiments.fig2_inverter import inverter_transfer_data
from repro.experiments.fig3_rng import rng_statistics
from repro.experiments.reuse_ablation import reuse_ablation


class TestInverterExperiment:
    @pytest.fixture(scope="class")
    def data(self):
        return inverter_transfer_data(n_grid=101)

    def test_sweeps_are_bells(self, data):
        for center, current in data["sweeps"].items():
            peak = current.max()
            assert current[0] < 0.05 * peak
            assert current[-1] < 0.05 * peak

    def test_peak_shift_within_fg_lsb(self, data):
        # 4-bit floating gate over a 1 V window: LSB/2 = 33 mV.
        assert data["peak_shift_error"] < 0.04

    def test_rectilinearity_ordering(self, data):
        hmg_ratio, gauss_ratio = data["rectilinearity"]
        assert hmg_ratio > gauss_ratio
        assert gauss_ratio == pytest.approx(np.pi / 4, abs=0.03)

    def test_width_menu_monotone(self, data):
        assert np.all(np.diff(data["width_menu_v"]) > 0)

    def test_2d_grid_peak_interior(self, data):
        grid = data["grid_2d"]
        idx = np.unravel_index(np.argmax(grid), grid.shape)
        assert 0 < idx[0] < grid.shape[0] - 1
        assert 0 < idx[1] < grid.shape[1] - 1


class TestRNGExperiment:
    def test_calibration_always_helps(self):
        stats = rng_statistics(column_sweep=(4, 16), n_instances=4, bits_per_instance=1024)
        for row in stats["rows"]:
            assert row["bias_after"] <= row["bias_before"] + 0.02
            assert row["bias_after"] < 0.08

    def test_mismatch_to_noise_reported(self):
        stats = rng_statistics(column_sweep=(8,), n_instances=3, bits_per_instance=512)
        assert stats["rows"][0]["mismatch_to_noise"] > 0


class TestReuseAblation:
    @pytest.fixture(scope="class")
    def ablation(self):
        return reuse_ablation(n_inputs=64, n_outputs=32, n_iterations=12, n_trials=2)

    def test_orderings(self, ablation):
        fractions = ablation["executed_fraction"]
        assert fractions["naive"] == 1.0
        assert fractions["active_only"] < 1.0
        assert fractions["reuse_ordered"] <= fractions["reuse"] + 1e-9

    def test_path_reduction_positive(self, ablation):
        assert ablation["ordering_path_reduction"] > 0.0

    def test_keep_probability_sweep(self):
        sparse = reuse_ablation(
            n_inputs=64, n_outputs=16, n_iterations=10, keep_probability=0.2, n_trials=2
        )
        dense = reuse_ablation(
            n_inputs=64, n_outputs=16, n_iterations=10, keep_probability=0.8, n_trials=2
        )
        # sparse masks -> fewer active ops
        assert (
            sparse["executed_fraction"]["active_only"]
            < dense["executed_fraction"]["active_only"]
        )
