"""Tests for repro.scene.se3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scene.se3 import (
    Pose,
    euler_to_matrix,
    matrix_to_euler,
    matrix_to_quaternion,
    quaternion_to_matrix,
    rotation_angle,
    rotation_x,
    rotation_y,
    rotation_z,
)

angles = st.floats(-np.pi + 1e-3, np.pi - 1e-3)
small_angles = st.floats(-1.4, 1.4)
coords = st.floats(-10.0, 10.0)


class TestRotations:
    def test_rotation_x_maps_y_to_z(self):
        assert np.allclose(rotation_x(np.pi / 2) @ [0, 1, 0], [0, 0, 1], atol=1e-12)

    def test_rotation_y_maps_z_to_x(self):
        assert np.allclose(rotation_y(np.pi / 2) @ [0, 0, 1], [1, 0, 0], atol=1e-12)

    def test_rotation_z_maps_x_to_y(self):
        assert np.allclose(rotation_z(np.pi / 2) @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    @given(angles)
    @settings(max_examples=30)
    def test_rotations_are_orthonormal(self, angle):
        for rot in (rotation_x(angle), rotation_y(angle), rotation_z(angle)):
            assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-12)
            assert np.linalg.det(rot) == pytest.approx(1.0)

    @given(angles, small_angles, angles)
    @settings(max_examples=50)
    def test_euler_round_trip(self, roll, pitch, yaw):
        rotation = euler_to_matrix(roll, pitch, yaw)
        recovered = euler_to_matrix(*matrix_to_euler(rotation))
        assert np.allclose(rotation, recovered, atol=1e-9)

    def test_euler_gimbal_lock_is_valid_rotation(self):
        rotation = euler_to_matrix(0.3, np.pi / 2, -0.2)
        recovered = euler_to_matrix(*matrix_to_euler(rotation))
        assert np.allclose(rotation, recovered, atol=1e-6)

    @given(angles, small_angles, angles)
    @settings(max_examples=50)
    def test_quaternion_round_trip(self, roll, pitch, yaw):
        rotation = euler_to_matrix(roll, pitch, yaw)
        quat = matrix_to_quaternion(rotation)
        assert np.isclose(np.linalg.norm(quat), 1.0)
        assert quat[0] >= 0
        assert np.allclose(quaternion_to_matrix(quat), rotation, atol=1e-9)

    def test_quaternion_rejects_zero(self):
        with pytest.raises(ValueError):
            quaternion_to_matrix([0, 0, 0, 0])

    def test_rotation_angle_identity_is_zero(self):
        assert rotation_angle(np.eye(3)) == pytest.approx(0.0)

    @given(angles)
    @settings(max_examples=30)
    def test_rotation_angle_matches_axis_angle(self, angle):
        assert rotation_angle(rotation_z(angle)) == pytest.approx(abs(angle), abs=1e-9)


class TestPose:
    def test_identity(self):
        pose = Pose.identity()
        pts = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(pose.transform_points(pts), pts)

    @given(angles, coords, coords, coords)
    @settings(max_examples=40)
    def test_inverse_composes_to_identity(self, yaw, x, y, z):
        pose = Pose.from_euler([x, y, z], yaw=yaw)
        identity = pose.compose(pose.inverse())
        assert np.allclose(identity.rotation, np.eye(3), atol=1e-10)
        assert np.allclose(identity.translation, 0.0, atol=1e-9)

    @given(angles, angles, coords, coords)
    @settings(max_examples=40)
    def test_compose_matches_matrix_product(self, yaw1, yaw2, x, y):
        a = Pose.from_euler([x, y, 0.0], yaw=yaw1)
        b = Pose.from_euler([y, x, 1.0], yaw=yaw2)
        composed = a.compose(b)
        assert np.allclose(composed.as_matrix(), a.as_matrix() @ b.as_matrix(), atol=1e-10)

    def test_matmul_operator(self):
        a = Pose.from_euler([1, 0, 0], yaw=0.3)
        b = Pose.from_euler([0, 1, 0], yaw=-0.1)
        assert np.allclose((a @ b).as_matrix(), a.compose(b).as_matrix())

    def test_relative_to_round_trip(self):
        a = Pose.from_euler([1, 2, 3], roll=0.1, pitch=0.2, yaw=0.3)
        b = Pose.from_euler([-1, 0, 2], roll=-0.2, pitch=0.1, yaw=1.0)
        rel = b.relative_to(a)
        assert np.allclose(a.compose(rel).as_matrix(), b.as_matrix(), atol=1e-10)

    def test_transform_points_inverse(self, rng):
        pose = Pose.from_euler([0.5, -1.0, 2.0], roll=0.2, pitch=-0.3, yaw=1.1)
        pts = rng.normal(size=(20, 3))
        world = pose.transform_points(pts)
        assert np.allclose(pose.inverse_transform_points(world), pts, atol=1e-10)

    def test_from_matrix_round_trip(self):
        pose = Pose.from_euler([1, 2, 3], yaw=0.7)
        assert np.allclose(Pose.from_matrix(pose.as_matrix()).as_matrix(), pose.as_matrix())

    def test_from_matrix_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Pose.from_matrix(np.eye(3))

    def test_orthonormalized_restores_validity(self):
        pose = Pose(np.eye(3) + 1e-4 * np.ones((3, 3)), np.zeros(3))
        assert not pose.is_valid(tolerance=1e-6)
        assert pose.orthonormalized().is_valid(tolerance=1e-8)

    def test_distance_to(self):
        a = Pose.identity()
        b = Pose.from_euler([3.0, 4.0, 0.0], yaw=np.pi / 2)
        trans, rot = a.distance_to(b)
        assert trans == pytest.approx(5.0)
        assert rot == pytest.approx(np.pi / 2)

    def test_rotate_vectors_no_translation(self):
        pose = Pose.from_euler([5, 5, 5], yaw=np.pi / 2)
        assert np.allclose(pose.rotate_vectors([[1, 0, 0]]), [[0, 1, 0]], atol=1e-12)

    def test_quaternion_euler_consistency(self):
        pose = Pose.from_euler([0, 0, 0], roll=0.1, pitch=0.2, yaw=0.3)
        assert np.allclose(
            quaternion_to_matrix(pose.quaternion()), pose.rotation, atol=1e-10
        )
        assert pose.euler() == pytest.approx((0.1, 0.2, 0.3))
