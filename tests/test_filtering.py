"""Tests for repro.filtering: particles, resampling, motion, PF, EKF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filtering import (
    DepthScanMeasurementModel,
    DigitalGMMBackend,
    ExtendedKalmanFilter,
    OdometryMotionModel,
    ParticleFilter,
    ParticleSet,
    RandomWalkMotionModel,
    effective_sample_size,
    multinomial_resample,
    residual_resample,
    stratified_resample,
    systematic_resample,
)
from repro.circuits.technology import NODE_45NM
from repro.filtering.motion import wrap_angle
from repro.maps.gmm import GaussianMixture


class TestParticleSet:
    def test_uniform_within_bounds(self, rng):
        particles = ParticleSet.uniform([0, 0, 0, -1], [1, 2, 3, 1], 100, rng)
        assert particles.states.shape == (100, 4)
        assert particles.states.min() >= -1
        assert np.all(particles.states[:, 2] <= 3)

    def test_default_weights_uniform(self, rng):
        particles = ParticleSet.uniform([0], [1], 10, rng)
        assert np.allclose(particles.normalized_weights(), 0.1)

    def test_ess_uniform_equals_n(self, rng):
        particles = ParticleSet.uniform([0], [1], 50, rng)
        assert particles.effective_sample_size() == pytest.approx(50.0)

    def test_ess_degenerate_equals_one(self, rng):
        particles = ParticleSet.uniform([0], [1], 50, rng)
        lw = np.full(50, -1e9)
        lw[3] = 0.0
        particles = ParticleSet(particles.states, lw)
        assert particles.effective_sample_size() == pytest.approx(1.0)

    def test_mean_estimate_circular_yaw(self):
        states = np.array(
            [[0, 0, 0, np.pi - 0.1], [0, 0, 0, -np.pi + 0.1]]
        )
        particles = ParticleSet(states)
        yaw = particles.mean_estimate()[3]
        assert abs(abs(yaw) - np.pi) < 0.05

    def test_map_estimate_picks_heaviest(self, rng):
        particles = ParticleSet.uniform([0, 0, 0, 0], [1, 1, 1, 1], 20, rng)
        lw = np.zeros(20)
        lw[7] = 5.0
        particles = ParticleSet(particles.states, lw)
        assert np.allclose(particles.map_estimate(), particles.states[7])

    def test_reweight_shifts_weights(self, rng):
        particles = ParticleSet.uniform([0], [1], 10, rng)
        delta = np.zeros(10)
        delta[0] = 10.0
        updated = particles.reweighted(delta)
        assert updated.normalized_weights()[0] > 0.99

    def test_resampled_uniform_weights(self, rng):
        particles = ParticleSet.uniform([0], [1], 10, rng)
        resampled = particles.resampled(np.zeros(10, dtype=int))
        assert np.allclose(resampled.states, particles.states[0])
        assert np.allclose(resampled.normalized_weights(), 0.1)

    def test_position_spread_positive(self, rng):
        particles = ParticleSet.uniform([0, 0, 0, 0], [1, 1, 1, 1], 100, rng)
        assert particles.position_spread() > 0.1


RESAMPLERS = [
    systematic_resample,
    multinomial_resample,
    stratified_resample,
    residual_resample,
]


class TestResampling:
    @pytest.mark.parametrize("resampler", RESAMPLERS)
    def test_output_size_and_range(self, resampler, rng):
        weights = rng.uniform(size=30)
        indices = resampler(weights / weights.sum(), rng)
        assert indices.shape == (30,)
        assert indices.min() >= 0 and indices.max() < 30

    @pytest.mark.parametrize("resampler", RESAMPLERS)
    def test_heavy_weight_dominates(self, resampler, rng):
        weights = np.full(20, 1e-9)
        weights[5] = 1.0
        indices = resampler(weights / weights.sum(), rng)
        assert np.mean(indices == 5) > 0.9

    @pytest.mark.parametrize("resampler", RESAMPLERS)
    def test_unbiasedness(self, resampler):
        rng = np.random.default_rng(0)
        weights = np.array([0.5, 0.3, 0.2])
        counts = np.zeros(3)
        for _ in range(400):
            indices = resampler(weights, rng, n_out=30)
            counts += np.bincount(indices, minlength=3)
        frequencies = counts / counts.sum()
        assert np.allclose(frequencies, weights, atol=0.02)

    def test_ess_function(self):
        assert effective_sample_size(np.full(10, 0.1)) == pytest.approx(10.0)
        weights = np.zeros(10)
        weights[0] = 1.0
        assert effective_sample_size(weights) == pytest.approx(1.0)

    @pytest.mark.parametrize("resampler", RESAMPLERS)
    def test_rejects_bad_weights(self, resampler, rng):
        with pytest.raises(ValueError):
            resampler(np.array([-0.1, 1.1]), rng)
        with pytest.raises(ValueError):
            resampler(np.zeros(5), rng)

    @given(st.integers(2, 50))
    @settings(max_examples=20)
    def test_systematic_preserves_big_weights(self, n):
        rng = np.random.default_rng(n)
        weights = rng.uniform(size=n)
        weights /= weights.sum()
        indices = systematic_resample(weights, rng)
        counts = np.bincount(indices, minlength=n)
        # systematic resampling copies every weight at least floor(N*w).
        assert np.all(counts >= np.floor(n * weights))


class TestMotionModels:
    def test_wrap_angle(self):
        assert wrap_angle(np.pi + 0.1) == pytest.approx(-np.pi + 0.1)
        assert wrap_angle(-np.pi - 0.1) == pytest.approx(np.pi - 0.1)

    def test_odometry_moves_mean(self, rng):
        particles = ParticleSet(np.tile([0.0, 0.0, 1.0, 0.0], (500, 1)))
        model = OdometryMotionModel(translation_noise=0.01, yaw_noise=0.005)
        moved = model.propagate(particles, np.array([1.0, 0.0, 0.1, 0.0]), rng)
        mean = moved.states.mean(axis=0)
        assert mean[0] == pytest.approx(1.0, abs=0.01)
        assert mean[2] == pytest.approx(1.1, abs=0.01)

    def test_odometry_heading_rotates_increment(self, rng):
        particles = ParticleSet(np.tile([0.0, 0.0, 0.0, np.pi / 2], (500, 1)))
        model = OdometryMotionModel(translation_noise=0.01)
        moved = model.propagate(particles, np.array([1.0, 0.0, 0.0, 0.0]), rng)
        mean = moved.states.mean(axis=0)
        assert mean[1] == pytest.approx(1.0, abs=0.02)
        assert abs(mean[0]) < 0.02

    def test_noise_grows_with_motion(self, rng):
        particles = ParticleSet(np.tile([0.0, 0.0, 0.0, 0.0], (2000, 1)))
        model = OdometryMotionModel(translation_noise=0.01, proportional_noise=0.2)
        small = model.propagate(particles, np.array([0.1, 0, 0, 0]), rng)
        large = model.propagate(particles, np.array([2.0, 0, 0, 0]), rng)
        assert large.states[:, 0].std() > small.states[:, 0].std()

    def test_random_walk_diffuses(self, rng):
        particles = ParticleSet(np.zeros((200, 4)))
        model = RandomWalkMotionModel(translation_sigma=0.1)
        moved = model.propagate(particles, np.zeros(4), rng)
        assert moved.states[:, 0].std() == pytest.approx(0.1, rel=0.3)

    def test_control_shape_validated(self, rng):
        model = OdometryMotionModel()
        with pytest.raises(ValueError):
            model.propagate(ParticleSet(np.zeros((2, 4))), np.zeros(3), rng)


def _simple_backend():
    gmm = GaussianMixture(
        [0.5, 0.5],
        [[0, 0, 1], [2, 0, 1]],
        [[0.3, 0.3, 0.3], [0.3, 0.3, 0.3]],
    )
    return DigitalGMMBackend(gmm, NODE_45NM, bits=None), gmm


class TestMeasurementModel:
    def test_requires_floor_calibration(self, rng):
        backend, _ = _simple_backend()
        model = DepthScanMeasurementModel(backend)
        with pytest.raises(RuntimeError):
            model.log_likelihoods(ParticleSet(np.zeros((1, 4))), np.zeros((3, 3)), rng)

    def test_true_pose_scores_higher(self, rng):
        backend, gmm = _simple_backend()
        model = DepthScanMeasurementModel(backend, temperature=1.0, max_pixels=32)
        model.calibrate_floor(gmm.sample(200, rng))
        # scan points: surface points expressed in the frame of state A
        scan_world = gmm.sample(30, rng)
        state_true = np.array([0.0, 0.0, 0.0, 0.0])
        scan_cam = scan_world  # camera at origin, identity yaw
        states = np.array([state_true, [1.0, 1.0, 0.5, 0.4]])
        ll = model.log_likelihoods(ParticleSet(states), scan_cam, rng)
        assert ll[0] > ll[1]

    def test_yaw_rotation_applied(self, rng):
        backend, gmm = _simple_backend()
        model = DepthScanMeasurementModel(backend, temperature=1.0)
        model.calibrate_floor(gmm.sample(200, rng))
        scan_cam = np.array([[2.0, 0.0, 1.0]])
        # with yaw=pi the point lands at (-2, 0, 1): far from both modes
        states = np.array([[0, 0, 0, 0.0], [0, 0, 0, np.pi]])
        ll = model.log_likelihoods(ParticleSet(states), scan_cam, rng)
        assert ll[0] > ll[1]

    def test_subsampling_bounds_pixels(self, rng):
        backend, gmm = _simple_backend()
        model = DepthScanMeasurementModel(backend, max_pixels=8)
        scan = rng.normal(size=(100, 3))
        assert model.subsample_scan(scan, rng).shape == (8, 3)

    def test_temperature_softens(self, rng):
        backend, gmm = _simple_backend()
        scan = gmm.sample(30, rng)
        states = ParticleSet(np.array([[0, 0, 0, 0.0], [3, 3, 1, 1.0]]))
        lls = {}
        for temp in (1.0, 10.0):
            model = DepthScanMeasurementModel(backend, temperature=temp)
            model.calibrate_floor(gmm.sample(200, rng))
            ll = model.log_likelihoods(states, scan, np.random.default_rng(0))
            lls[temp] = ll[0] - ll[1]
        assert lls[1.0] > lls[10.0]

    def test_parameter_validation(self):
        backend, _ = _simple_backend()
        with pytest.raises(ValueError):
            DepthScanMeasurementModel(backend, outlier_fraction=1.5)
        with pytest.raises(ValueError):
            DepthScanMeasurementModel(backend, temperature=0.0)


class TestParticleFilter:
    def test_tracks_static_target(self, rng):
        backend, gmm = _simple_backend()
        model = DepthScanMeasurementModel(backend, temperature=2.0)
        model.calibrate_floor(gmm.sample(300, rng))
        pf = ParticleFilter(RandomWalkMotionModel(0.02, 0.01), model)
        pf.initialize(
            ParticleSet.gaussian([0, 0, 0, 0], [0.4, 0.4, 0.2, 0.2], 300, rng)
        )
        scan = gmm.sample(40, rng)
        for _ in range(5):
            diag = pf.step(np.zeros(4), scan, rng)
        assert np.linalg.norm(diag.estimate[:3]) < 0.4

    def test_history_and_errors(self, rng):
        backend, gmm = _simple_backend()
        model = DepthScanMeasurementModel(backend, temperature=2.0)
        model.calibrate_floor(gmm.sample(300, rng))
        pf = ParticleFilter(RandomWalkMotionModel(0.02, 0.01), model)
        pf.initialize(ParticleSet.gaussian([0, 0, 0, 0], [0.2] * 4, 100, rng))
        scan = gmm.sample(20, rng)
        for _ in range(3):
            pf.step(np.zeros(4), scan, rng)
        errors = pf.position_errors(np.zeros((3, 4)))
        assert errors.shape == (3,)

    def test_requires_initialisation(self, rng):
        backend, _ = _simple_backend()
        model = DepthScanMeasurementModel(backend)
        pf = ParticleFilter(RandomWalkMotionModel(), model)
        with pytest.raises(RuntimeError):
            pf.step(np.zeros(4), np.zeros((3, 3)), rng)

    def test_unknown_resampler_rejected(self):
        backend, _ = _simple_backend()
        model = DepthScanMeasurementModel(backend)
        with pytest.raises(ValueError):
            ParticleFilter(RandomWalkMotionModel(), model, resampler="bogus")


class TestEKF:
    def test_converges_on_linear_system(self, rng):
        # 1D constant position observed with noise.
        def f(x, u):
            return x

        def f_jac(x, u):
            return np.eye(1)

        def h(x):
            return x

        def h_jac(x):
            return np.eye(1)

        ekf = ExtendedKalmanFilter(
            f, f_jac, h, h_jac, process_noise=np.eye(1) * 1e-6, measurement_noise=np.eye(1) * 0.1
        )
        ekf.initialize(np.array([5.0]), np.eye(1) * 10.0)
        for _ in range(50):
            ekf.predict(np.zeros(1))
            ekf.update(np.array([1.0]) + rng.normal(scale=0.3, size=1) * 0)
        assert ekf.state[0] == pytest.approx(1.0, abs=0.05)
        assert ekf.covariance[0, 0] < 0.1

    def test_covariance_stays_symmetric(self, rng):
        def f(x, u):
            return x + u

        def f_jac(x, u):
            return np.eye(2)

        def h(x):
            return x[:1]

        def h_jac(x):
            return np.array([[1.0, 0.0]])

        ekf = ExtendedKalmanFilter(
            f, f_jac, h, h_jac, np.eye(2) * 0.01, np.eye(1) * 0.1
        )
        ekf.initialize(np.zeros(2), np.eye(2))
        for k in range(10):
            ekf.predict(np.array([0.1, -0.05]))
            ekf.update(np.array([0.1 * (k + 1)]))
        assert np.allclose(ekf.covariance, ekf.covariance.T, atol=1e-12)

    def test_requires_initialisation(self):
        ekf = ExtendedKalmanFilter(
            lambda x, u: x,
            lambda x, u: np.eye(1),
            lambda x: x,
            lambda x: np.eye(1),
            np.eye(1),
            np.eye(1),
        )
        with pytest.raises(RuntimeError):
            ekf.predict(np.zeros(1))
