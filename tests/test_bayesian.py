"""Tests for repro.bayesian: masks, MC-dropout, reuse, ordering, metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesian import (
    DeltaReuseEngine,
    MaskStream,
    MCDropoutPredictor,
    area_under_sparsification_error,
    error_uncertainty_correlation,
    greedy_mask_order,
    interval_coverage,
    mask_hamming_path_length,
    optimal_mask_order,
)
from repro.bayesian.reuse import masked_input_sequence
from repro.nn import Dense, Dropout, ReLU, Sequential


class TestMaskStream:
    def test_bernoulli_rate(self, rng):
        stream = MaskStream.bernoulli(50, 200, 0.7, rng)
        assert stream.empirical_keep_rate() == pytest.approx(0.7, abs=0.03)

    def test_reorder_is_permutation(self, rng):
        stream = MaskStream.bernoulli(10, 5, 0.5, rng)
        order = np.array([9, 8, 7, 6, 5, 4, 3, 2, 1, 0])
        reordered = stream.reordered(order)
        assert np.array_equal(reordered.masks, stream.masks[::-1])

    def test_reorder_validates(self, rng):
        stream = MaskStream.bernoulli(5, 3, 0.5, rng)
        with pytest.raises(ValueError):
            stream.reordered(np.array([0, 0, 1, 2, 3]))

    def test_concatenate_widths(self, rng):
        a = MaskStream.bernoulli(5, 3, 0.5, rng)
        b = MaskStream.bernoulli(5, 4, 0.5, rng)
        assert a.concatenate(b).width == 7

    def test_hamming_distances(self):
        masks = np.array([[0, 0], [1, 0], [1, 1]], dtype=np.uint8)
        stream = MaskStream(masks, 0.5)
        assert np.array_equal(stream.hamming_distances(), [1, 1])

    def test_binary_validation(self):
        with pytest.raises(ValueError):
            MaskStream(np.array([[0, 2]]), 0.5)


def _toy_model(rng):
    return Sequential(
        [
            Dense(6, 16, rng),
            ReLU(),
            Dropout(0.5, rng=rng),
            Dense(16, 3, rng),
        ]
    )


class TestMCDropout:
    def test_statistics_shapes(self, rng):
        model = _toy_model(rng)
        predictor = MCDropoutPredictor(model, n_iterations=20, rng=rng)
        prediction = predictor.predict(rng.normal(size=(5, 6)))
        assert prediction.mean.shape == (5, 3)
        assert prediction.variance.shape == (5, 3)
        assert prediction.samples.shape == (20, 5, 3)
        assert np.all(prediction.variance >= 0)

    def test_variance_positive_with_dropout(self, rng):
        model = _toy_model(rng)
        predictor = MCDropoutPredictor(model, n_iterations=30, rng=rng)
        prediction = predictor.predict(rng.normal(size=(3, 6)))
        assert prediction.variance.mean() > 0

    def test_deterministic_is_repeatable(self, rng):
        model = _toy_model(rng)
        predictor = MCDropoutPredictor(model, rng=rng)
        x = rng.normal(size=(2, 6))
        assert np.allclose(predictor.deterministic(x), predictor.deterministic(x))

    def test_pinned_streams_reproduce(self, rng):
        model = _toy_model(rng)
        predictor = MCDropoutPredictor(model, n_iterations=8, rng=rng)
        stream = MaskStream.bernoulli(8, 16, 0.5, rng)
        x = rng.normal(size=(2, 6))
        a = predictor.predict(x, mask_streams=[stream])
        b = predictor.predict(x, mask_streams=[stream])
        assert np.allclose(a.samples, b.samples)

    def test_rejects_model_without_dropout(self, rng):
        model = Sequential([Dense(3, 2, rng)])
        with pytest.raises(ValueError):
            MCDropoutPredictor(model)

    def test_mc_mode_restored_after_predict(self, rng):
        model = _toy_model(rng)
        predictor = MCDropoutPredictor(model, n_iterations=3, rng=rng)
        predictor.predict(rng.normal(size=(1, 6)))
        assert not model.dropout_layers()[0].mc_mode


class TestDeltaReuse:
    def test_exactness_against_direct(self, rng):
        weight = rng.normal(size=(40, 16))
        stream = MaskStream.bernoulli(20, 40, 0.5, rng)
        x = rng.normal(size=40)
        inputs = masked_input_sequence(x, stream.masks)
        products, stats = DeltaReuseEngine(weight).run(inputs)
        assert np.allclose(products, inputs @ weight, atol=1e-9)
        assert stats.ops_executed < stats.ops_naive

    def test_savings_vs_active_only(self, rng):
        weight = rng.normal(size=(100, 30))
        stream = MaskStream.bernoulli(30, 100, 0.5, rng)
        x = rng.normal(size=100)
        _, stats = DeltaReuseEngine(weight).run(masked_input_sequence(x, stream.masks))
        # reuse touches ~p(1-p)*2 = 0.5 of inputs per step; active-only
        # touches p = 0.5 -- they tie in expectation for p=0.5, but the
        # first full pass makes reuse strictly better than naive.
        assert stats.savings_vs_naive > 0.3

    def test_identical_masks_cost_one_pass(self, rng):
        weight = rng.normal(size=(20, 8))
        masks = np.ones((10, 20), dtype=np.uint8)
        x = rng.normal(size=20)
        _, stats = DeltaReuseEngine(weight).run(masked_input_sequence(x, masks))
        assert stats.columns_touched == 20  # only iteration 0

    def test_stats_properties(self):
        from repro.bayesian.reuse import ReuseStats

        stats = ReuseStats(ops_executed=50, ops_naive=100, ops_active_only=80, columns_touched=5)
        assert stats.savings_vs_naive == pytest.approx(0.5)
        assert stats.savings_vs_active == pytest.approx(1 - 50 / 80)

    def test_tolerance_validation(self, rng):
        with pytest.raises(ValueError):
            DeltaReuseEngine(rng.normal(size=(4, 4)), tolerance=-1.0)

    @given(st.integers(2, 12), st.integers(2, 20))
    @settings(max_examples=15, deadline=None)
    def test_exactness_property(self, n_iter, width):
        rng = np.random.default_rng(n_iter * 100 + width)
        weight = rng.normal(size=(width, 3))
        masks = (rng.random((n_iter, width)) < 0.5).astype(np.uint8)
        x = rng.normal(size=width)
        inputs = masked_input_sequence(x, masks)
        products, _ = DeltaReuseEngine(weight).run(inputs)
        assert np.allclose(products, inputs @ weight, atol=1e-9)


class TestOrdering:
    def test_greedy_reduces_path(self, rng):
        masks = (rng.random((25, 64)) < 0.5).astype(np.uint8)
        base = mask_hamming_path_length(masks)
        order = greedy_mask_order(masks)
        assert mask_hamming_path_length(masks, order) <= base

    @pytest.mark.parametrize("method", ["greedy", "greedy-2opt", "tsp"])
    def test_methods_return_permutations(self, method, rng):
        masks = (rng.random((12, 32)) < 0.5).astype(np.uint8)
        order = optimal_mask_order(masks, method=method)
        assert sorted(order.tolist()) == list(range(12))

    def test_two_opt_not_worse_than_greedy(self, rng):
        masks = (rng.random((20, 48)) < 0.5).astype(np.uint8)
        greedy = mask_hamming_path_length(masks, optimal_mask_order(masks, "greedy"))
        polished = mask_hamming_path_length(
            masks, optimal_mask_order(masks, "greedy-2opt")
        )
        assert polished <= greedy

    def test_trivial_sizes(self):
        assert np.array_equal(optimal_mask_order(np.zeros((1, 4))), [0])
        assert np.array_equal(optimal_mask_order(np.zeros((2, 4))), [0, 1])

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            optimal_mask_order(np.zeros((5, 2)), method="magic")

    def test_clustered_masks_get_big_reduction(self, rng):
        # two tight clusters interleaved: optimal order should visit each
        # cluster contiguously.
        a = np.zeros((10, 50), dtype=np.uint8)
        b = np.ones((10, 50), dtype=np.uint8)
        masks = np.empty((20, 50), dtype=np.uint8)
        masks[0::2] = a
        masks[1::2] = b
        base = mask_hamming_path_length(masks)
        order = optimal_mask_order(masks)
        assert mask_hamming_path_length(masks, order) <= base // 10


class TestMetrics:
    def test_correlation_perfect_monotone(self):
        errors = np.linspace(0, 1, 50)
        stats = error_uncertainty_correlation(errors, errors**2)
        assert stats["spearman"] == pytest.approx(1.0)

    def test_correlation_requires_samples(self):
        with pytest.raises(ValueError):
            error_uncertainty_correlation([1.0], [1.0])

    def test_interval_coverage_calibrated_gaussian(self, rng):
        stds = np.full(5000, 1.0)
        errors = rng.normal(size=5000)
        assert interval_coverage(errors, stds, k=2.0) == pytest.approx(0.954, abs=0.02)

    def test_ause_perfect_ranking_near_zero(self):
        errors = np.linspace(0.1, 1.0, 100)
        assert area_under_sparsification_error(errors, errors) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_ause_random_ranking_positive(self, rng):
        errors = rng.uniform(size=200)
        uncertainties = rng.uniform(size=200)
        assert area_under_sparsification_error(errors, uncertainties) > 0.01
