"""Tests for repro.nn: layers, gradients, optimizers, quantisation, I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    SGD,
    Adam,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GaussianNLLLoss,
    L1Loss,
    LSTM,
    LeakyReLU,
    MaxPool2d,
    MSELoss,
    QuantizationSpec,
    ReLU,
    Sequential,
    Sigmoid,
    SoftmaxCrossEntropyLoss,
    Tanh,
    dequantize,
    he_normal,
    load_state,
    quantize,
    quantize_model_weights,
    save_state,
    xavier_uniform,
)
from repro.nn.quantization import quantization_error


def numeric_gradient(f, parameter, indices, eps=1e-6):
    grads = []
    for idx in indices:
        parameter.value[idx] += eps
        up = f()
        parameter.value[idx] -= 2 * eps
        down = f()
        parameter.value[idx] += eps
        grads.append((up - down) / (2 * eps))
    return np.array(grads)


class TestGradients:
    """Finite-difference checks for every layer's backward pass."""

    def _check(self, net, x, y, n_checks=6):
        loss_fn = MSELoss()

        def forward():
            return loss_fn(net.forward(x), y)[0]

        _, grad = loss_fn(net.forward(x), y)
        net.zero_grad()
        net.backward(grad)
        rng = np.random.default_rng(0)
        for parameter in net.parameters():
            flat = [
                tuple(rng.integers(0, s) for s in parameter.value.shape)
                for _ in range(n_checks)
            ]
            numeric = numeric_gradient(forward, parameter, flat)
            analytic = np.array([parameter.grad[idx] for idx in flat])
            assert np.allclose(numeric, analytic, atol=1e-6), parameter.name

    def test_dense(self, rng):
        net = Sequential([Dense(4, 3, rng)])
        self._check(net, rng.normal(size=(5, 4)), rng.normal(size=(5, 3)))

    @pytest.mark.parametrize("act", [ReLU, Tanh, Sigmoid, LeakyReLU])
    def test_activations(self, act, rng):
        net = Sequential([Dense(4, 6, rng), act(), Dense(6, 2, rng)])
        self._check(net, rng.normal(size=(3, 4)) + 0.05, rng.normal(size=(3, 2)))

    def test_conv_pool_flatten(self, rng):
        net = Sequential(
            [
                Conv2d(2, 3, 3, rng, padding=1),
                ReLU(),
                MaxPool2d(2),
                Flatten(),
            ]
        )
        x = rng.normal(size=(2, 2, 6, 6))
        y = rng.normal(size=net.forward(x).shape)
        self._check(net, x, y)

    def test_conv_stride(self, rng):
        net = Sequential([Conv2d(1, 2, 3, rng, stride=2), Flatten()])
        x = rng.normal(size=(2, 1, 7, 7))
        y = rng.normal(size=net.forward(x).shape)
        self._check(net, x, y)

    def test_lstm(self, rng):
        lstm = LSTM(3, 5, rng, return_sequence=False)
        head = Dense(5, 2, rng)
        loss_fn = MSELoss()
        x = rng.normal(size=(2, 4, 3))
        y = rng.normal(size=(2, 2))

        def forward():
            return loss_fn(head.forward(lstm.forward(x)), y)[0]

        _, grad = loss_fn(head.forward(lstm.forward(x)), y)
        lstm.zero_grad()
        head.zero_grad()
        lstm.backward(head.backward(grad))
        check_rng = np.random.default_rng(1)
        for parameter in lstm.parameters():
            flat = [
                tuple(check_rng.integers(0, s) for s in parameter.value.shape)
                for _ in range(5)
            ]
            numeric = numeric_gradient(forward, parameter, flat)
            analytic = np.array([parameter.grad[idx] for idx in flat])
            assert np.allclose(numeric, analytic, atol=1e-6)

    def test_dropout_gradient_uses_mask(self, rng):
        dropout = Dropout(0.5, rng=rng)
        x = rng.normal(size=(4, 6))
        out = dropout.forward(x)
        mask = dropout.last_mask()
        grad_in = dropout.backward(np.ones_like(out))
        assert np.allclose(grad_in, mask / dropout.keep_probability)


class TestLayerBehaviour:
    def test_dense_shape_validation(self, rng):
        layer = Dense(4, 3, rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 5)))

    def test_relu_zeroes_negative(self):
        relu = ReLU()
        assert np.allclose(relu.forward(np.array([[-1.0, 2.0]])), [[0.0, 2.0]])

    def test_maxpool_values(self):
        pool = MaxPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_flatten_round_trip(self, rng):
        flatten = Flatten()
        x = rng.normal(size=(3, 2, 4, 5))
        out = flatten.forward(x)
        assert out.shape == (3, 40)
        assert flatten.backward(out).shape == x.shape

    def test_dropout_eval_mode_identity(self, rng):
        dropout = Dropout(0.5, rng=rng)
        dropout.eval()
        x = rng.normal(size=(3, 4))
        assert np.allclose(dropout.forward(x), x)

    def test_dropout_mc_mode_active_in_eval(self, rng):
        dropout = Dropout(0.5, rng=rng, mc_mode=True)
        dropout.eval()
        x = np.ones((1, 1000))
        out = dropout.forward(x)
        assert (out == 0).mean() == pytest.approx(0.5, abs=0.06)

    def test_dropout_pinned_mask(self, rng):
        dropout = Dropout(0.5, rng=rng)
        mask = np.array([1, 0, 1, 0])
        dropout.pin_mask(mask)
        out = dropout.forward(np.ones((2, 4)))
        assert np.allclose(out, [[2, 0, 2, 0], [2, 0, 2, 0]])

    def test_dropout_mask_validation(self, rng):
        dropout = Dropout(0.5, rng=rng)
        with pytest.raises(ValueError):
            dropout.pin_mask(np.array([0.5, 1.0]))

    def test_dropout_inverted_scaling_preserves_mean(self, rng):
        dropout = Dropout(0.5, rng=rng)
        x = np.ones((1, 20000))
        out = dropout.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.03)

    def test_sequential_train_eval_propagates(self, rng):
        net = Sequential([Dense(2, 2, rng), Dropout(0.5, rng=rng)])
        net.eval()
        assert not net.layers[1].training
        net.train()
        assert net.layers[1].training

    def test_sequential_utilities(self, rng):
        net = Sequential([Dense(2, 3, rng), ReLU(), Dropout(0.5), Dense(3, 1, rng)])
        assert len(net.dense_layers()) == 2
        assert len(net.dropout_layers()) == 1
        assert len(net) == 4
        assert isinstance(net[1], ReLU)


class TestLosses:
    def test_mse_zero_at_target(self, rng):
        y = rng.normal(size=(3, 2))
        loss, grad = MSELoss()(y, y)
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_l1_gradient_sign(self):
        loss, grad = L1Loss()(np.array([[2.0]]), np.array([[1.0]]))
        assert loss == pytest.approx(1.0)
        assert grad[0, 0] > 0

    def test_gaussian_nll_gradient_numeric(self, rng):
        loss_fn = GaussianNLLLoss()
        predictions = rng.normal(size=(4, 6))
        targets = rng.normal(size=(4, 3))
        loss, grad = loss_fn(predictions, targets)
        eps = 1e-6
        for idx in [(0, 0), (1, 4), (3, 2), (2, 5)]:
            predictions[idx] += eps
            up, _ = loss_fn(predictions, targets)
            predictions[idx] -= 2 * eps
            down, _ = loss_fn(predictions, targets)
            predictions[idx] += eps
            assert grad[idx] == pytest.approx((up - down) / (2 * eps), abs=1e-6)

    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 0.0, -1.0]])
        loss, grad = SoftmaxCrossEntropyLoss()(logits, np.array([0]))
        probs = np.exp(logits) / np.exp(logits).sum()
        assert loss == pytest.approx(-np.log(probs[0, 0]))
        assert grad.sum() == pytest.approx(0.0, abs=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros((2, 2)), np.zeros((2, 3)))


class TestOptimizers:
    def _quadratic_problem(self, optimizer_factory, steps=200):
        rng = np.random.default_rng(0)
        net = Sequential([Dense(3, 1, rng)])
        target_w = np.array([[1.0], [-2.0], [0.5]])
        x = rng.normal(size=(64, 3))
        y = x @ target_w
        optimizer = optimizer_factory(net.parameters())
        loss_fn = MSELoss()
        for _ in range(steps):
            out = net.forward(x)
            _, grad = loss_fn(out, y)
            optimizer.zero_grad()
            net.backward(grad)
            optimizer.step()
        return net.parameters()[0].value, target_w

    def test_sgd_converges(self):
        w, target = self._quadratic_problem(lambda p: SGD(p, lr=0.05), steps=400)
        assert np.allclose(w, target, atol=0.02)

    def test_sgd_momentum_converges(self):
        w, target = self._quadratic_problem(lambda p: SGD(p, lr=0.02, momentum=0.9))
        assert np.allclose(w, target, atol=0.02)

    def test_adam_converges(self):
        w, target = self._quadratic_problem(lambda p: Adam(p, lr=0.05))
        assert np.allclose(w, target, atol=0.02)

    def test_weight_decay_shrinks(self, rng):
        net = Sequential([Dense(2, 2, rng)])
        net.parameters()[0].value[:] = 10.0
        optimizer = SGD(net.parameters(), lr=0.1, weight_decay=1.0)
        net.zero_grad()
        optimizer.step()
        assert np.all(np.abs(net.parameters()[0].value) < 10.0)

    def test_lr_validation(self, rng):
        with pytest.raises(ValueError):
            SGD([], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([], lr=0.0)


class TestInit:
    def test_xavier_bounds(self, rng):
        w = xavier_uniform((100, 100), rng)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= limit

    def test_he_scale(self, rng):
        w = he_normal((400, 100), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.1)


class TestQuantization:
    def test_round_trip_error_bounded(self, rng):
        tensor = rng.normal(size=(20, 20))
        spec = QuantizationSpec.for_tensor(tensor, 8)
        reconstructed = dequantize(quantize(tensor, spec), spec)
        assert np.max(np.abs(reconstructed - tensor)) <= spec.scale / 2 + 1e-12

    def test_error_decreases_with_bits(self, rng):
        tensor = rng.normal(size=(50,))
        errors = [
            quantization_error(tensor, QuantizationSpec.for_tensor(tensor, b))
            for b in (3, 5, 8)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_clipping_symmetric(self):
        spec = QuantizationSpec(bits=4, max_value=1.0)
        codes = quantize(np.array([10.0, -10.0]), spec)
        assert codes[0] == spec.levels and codes[1] == -spec.levels

    @given(st.integers(2, 10), st.floats(0.1, 100.0))
    @settings(max_examples=30)
    def test_levels_formula(self, bits, max_value):
        spec = QuantizationSpec(bits=bits, max_value=max_value)
        assert spec.levels == 2 ** (bits - 1) - 1

    def test_quantize_model_in_place(self, rng):
        net = Sequential([Dense(4, 4, rng)])
        original = net.parameters()[0].value.copy()
        specs = quantize_model_weights(net, 4)
        assert len(specs) == 2  # weight + bias
        assert not np.allclose(net.parameters()[0].value, original)


class TestSerialization:
    def test_save_load_round_trip(self, rng, tmp_path):
        net = Sequential([Dense(3, 5, rng), Tanh(), Dense(5, 2, rng)])
        path = str(tmp_path / "model.npz")
        save_state(net, path)
        net2 = Sequential([Dense(3, 5, rng), Tanh(), Dense(5, 2, rng)])
        load_state(net2, path)
        x = rng.normal(size=(4, 3))
        assert np.allclose(net.forward(x), net2.forward(x))

    def test_shape_mismatch_rejected(self, rng, tmp_path):
        net = Sequential([Dense(3, 5, rng)])
        path = str(tmp_path / "model.npz")
        save_state(net, path)
        other = Sequential([Dense(3, 6, rng)])
        with pytest.raises(ValueError):
            load_state(other, path)
