"""Tests for repro.circuits: devices, inverters, converters, noise, energy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    DAC,
    MOSFET,
    NODE_16NM,
    NODE_45NM,
    EnergyLedger,
    FloatingGate,
    InverterArray,
    InverterColumn,
    LikelihoodInverter,
    LinearADC,
    LogarithmicADC,
    MismatchSampler,
    NoiseModel,
    SwitchingCurrentCell,
    VoltageEncoder,
    ekv_current,
    gaussian_equivalent_sigma,
)
from repro.circuits.energy import format_energy
from repro.circuits.inverter import WIDTH_SCALES, width_code_sigmas


class TestTechnology:
    def test_thermal_voltage_room_temp(self):
        assert NODE_45NM.thermal_voltage == pytest.approx(0.02585, abs=1e-4)

    def test_energy_interpolation_quadratic(self):
        exact = NODE_45NM.mac_energy(8)
        interp = NODE_45NM.mac_energy(12)
        assert interp > exact
        # quadratic scaling against nearest tabulated bits
        assert interp == pytest.approx(NODE_45NM.mac_energy_j[8] * (12 / 8) ** 2)

    def test_adc_energy_monotone(self):
        assert NODE_16NM.adc_energy(6) > NODE_16NM.adc_energy(4)


class TestMOSFET:
    def test_subthreshold_exponential(self):
        node = NODE_45NM
        dev = MOSFET.from_node(node, "n")
        v = np.array([0.1, 0.1 + node.thermal_voltage * node.subthreshold_slope_factor])
        i = dev.current(v)
        assert i[1] / i[0] == pytest.approx(np.e, rel=0.05)

    def test_strong_inversion_quadratic(self):
        dev = MOSFET.from_node(NODE_45NM, "n")
        i1 = dev.current(np.array([1.0]))[0]
        i2 = dev.current(np.array([1.62]))[0]
        overdrive_ratio = (1.62 - dev.vt) / (1.0 - dev.vt)
        assert i2 / i1 == pytest.approx(overdrive_ratio**2, rel=0.15)

    def test_pmos_mirror(self):
        dev_n = MOSFET.from_node(NODE_45NM, "n")
        dev_p = MOSFET.from_node(NODE_45NM, "p")
        vdd = 1.0
        assert dev_p.current(np.array([0.3]), vdd=vdd)[0] == pytest.approx(
            dev_n.current(np.array([vdd - 0.3]))[0]
        )

    def test_invalid_polarity(self):
        with pytest.raises(ValueError):
            MOSFET("x", 0.3, 1e-7, 1.3, 0.0259)

    def test_ekv_stable_large_inputs(self):
        i = ekv_current(np.array([100.0]), 0.3, 1e-7, 1.3, 0.0259)
        assert np.isfinite(i).all()


class TestFloatingGate:
    def test_quantisation_levels(self):
        gate = FloatingGate(-0.5, 0.5, bits=4)
        assert gate.levels == 16
        assert gate.lsb == pytest.approx(1.0 / 15)

    def test_program_clips_to_window(self):
        gate = FloatingGate(-0.5, 0.5, bits=4)
        assert gate.program(2.0) == pytest.approx(0.5)
        assert gate.program(-2.0) == pytest.approx(-0.5)

    def test_program_error_within_half_lsb(self):
        gate = FloatingGate(-0.5, 0.5, bits=6)
        for target in np.linspace(-0.5, 0.5, 17):
            assert gate.programming_error(target) <= gate.lsb / 2 + 1e-12

    def test_noise_requires_rng(self):
        with pytest.raises(ValueError):
            FloatingGate(-0.5, 0.5, program_noise_std=0.1)

    def test_code_round_trip(self):
        gate = FloatingGate(0.0, 1.0, bits=3)
        for code in range(gate.levels):
            assert gate.quantize(gate.code_to_vt(code)) == code


class TestSwitchingCell:
    def test_bell_peaks_at_achieved_center(self):
        cell = SwitchingCurrentCell(NODE_45NM, v_center=0.6, width_code=1)
        v = np.linspace(0, 1, 2001)
        i = cell.current(v)
        peak_v = v[int(np.argmax(i))]
        assert peak_v == pytest.approx(cell.achieved_center, abs=2e-3)

    def test_bell_decays_at_rails(self):
        cell = SwitchingCurrentCell(NODE_45NM, v_center=0.5, width_code=0)
        peak = cell.peak_current()
        assert cell.current(np.array([0.0]))[0] < 1e-3 * peak
        assert cell.current(np.array([1.0]))[0] < 1e-3 * peak

    def test_width_codes_broaden(self):
        sigmas = width_code_sigmas(NODE_45NM)
        assert np.all(np.diff(sigmas) > 0)

    def test_width_code_bounds(self):
        with pytest.raises(ValueError):
            SwitchingCurrentCell(NODE_45NM, 0.5, width_code=len(WIDTH_SCALES))

    def test_gaussian_equivalent_sigma_positive(self):
        cell = SwitchingCurrentCell(NODE_45NM, 0.5)
        assert 0.01 < gaussian_equivalent_sigma(cell) < 0.5

    def test_center_offset_shifts_peak(self):
        base = SwitchingCurrentCell(NODE_45NM, 0.5, width_code=1)
        shifted = SwitchingCurrentCell(NODE_45NM, 0.5, width_code=1, center_offset=0.05)
        assert shifted.achieved_center - base.achieved_center == pytest.approx(0.05)


class TestLikelihoodInverter:
    def test_harmonic_combination(self):
        inv = LikelihoodInverter.from_centers(NODE_45NM, [0.4, 0.6], width_codes=[1, 1])
        v = np.array([[0.45, 0.55]])
        per_axis = [cell.current(v[:, k]) for k, cell in enumerate(inv.cells)]
        expected = 1.0 / (1.0 / per_axis[0] + 1.0 / per_axis[1])
        assert inv.current(v)[0] == pytest.approx(expected[0])

    def test_peak_is_lower_than_single_axis(self):
        inv = LikelihoodInverter.from_centers(NODE_45NM, [0.5, 0.5, 0.5])
        single = inv.cells[0].peak_current()
        assert inv.peak_current() == pytest.approx(single / 3, rel=0.05)

    def test_axis_count_enforced(self):
        inv = LikelihoodInverter.from_centers(NODE_45NM, [0.5, 0.5])
        with pytest.raises(ValueError):
            inv.current(np.zeros((1, 3)))


class TestADCs:
    def test_log_adc_monotone(self, rng):
        adc = LogarithmicADC(NODE_45NM, bits=4, i_min=1e-9, i_max=1e-5)
        currents = np.logspace(-9, -5, 64)
        codes = adc.convert(currents)
        assert np.all(np.diff(codes) >= 0)
        assert codes.min() == 0 and codes.max() == adc.levels - 1

    def test_log_adc_decode_inverse(self):
        adc = LogarithmicADC(NODE_45NM, bits=6, i_min=1e-9, i_max=1e-5)
        codes = np.arange(adc.levels)
        assert np.allclose(adc.convert(adc.decode(codes)), codes)

    def test_log_likelihood_affine_in_log_current(self):
        adc = LogarithmicADC(NODE_45NM, bits=8, i_min=1e-9, i_max=1e-5)
        i = np.array([1e-8, 1e-7, 1e-6])
        ll = adc.log_likelihood(adc.convert(i))
        ratios = np.diff(ll)
        assert np.allclose(ratios, np.log(10), atol=0.1)

    def test_log_adc_clips(self):
        adc = LogarithmicADC(NODE_45NM, bits=4, i_min=1e-9, i_max=1e-5)
        assert adc.convert(np.array([1e-12]))[0] == 0
        assert adc.convert(np.array([1.0]))[0] == adc.levels - 1

    def test_linear_adc_round_trip(self):
        adc = LinearADC(NODE_45NM, bits=6, full_scale=2.0)
        values = np.linspace(0, 2, 10)
        decoded = adc.decode(adc.convert(values))
        assert np.max(np.abs(decoded - values)) <= adc.lsb / 2 + 1e-12

    def test_noise_requires_rng(self):
        adc = LinearADC(NODE_45NM, bits=4, noise_lsb=0.5)
        with pytest.raises(ValueError):
            adc.convert(np.array([0.5]))

    def test_bad_ranges_rejected(self):
        with pytest.raises(ValueError):
            LogarithmicADC(NODE_45NM, i_min=1e-5, i_max=1e-9)
        with pytest.raises(ValueError):
            LinearADC(NODE_45NM, full_scale=-1.0)


class TestDAC:
    def test_round_trip_within_lsb(self):
        dac = DAC(NODE_45NM, bits=6)
        v = np.linspace(0, dac.v_max, 23)
        out = dac.convert(v)
        assert np.max(np.abs(out - v)) <= dac.lsb / 2 + 1e-12

    def test_inl_is_static(self, rng):
        dac = DAC(NODE_45NM, bits=4, inl_lsb=0.3, rng=rng)
        a = dac.convert(np.array([0.4]))
        b = dac.convert(np.array([0.4]))
        assert a == b

    def test_inl_requires_rng(self):
        with pytest.raises(ValueError):
            DAC(NODE_45NM, inl_lsb=0.5)


class TestNoiseAndMismatch:
    def test_shot_noise_scaling(self):
        model = NoiseModel(NODE_45NM, bandwidth_hz=1e8)
        sigma1 = model.shot_sigma(np.array([1e-6]))[0]
        sigma4 = model.shot_sigma(np.array([4e-6]))[0]
        assert sigma4 / sigma1 == pytest.approx(2.0)

    def test_total_sigma_exceeds_parts(self):
        model = NoiseModel(NODE_45NM, flicker_coefficient=0.01)
        current = np.array([1e-6])
        assert model.total_sigma(current)[0] >= model.shot_sigma(current)[0]

    def test_sample_perturbs(self, rng):
        model = NoiseModel(NODE_45NM)
        current = np.full(100, 1e-6)
        noisy = model.sample(current, rng)
        assert not np.allclose(noisy, current)

    def test_pelgrom_scaling(self):
        small = MismatchSampler(NODE_45NM, area_factor=1.0)
        big = MismatchSampler(NODE_45NM, area_factor=4.0)
        assert big.vt_sigma == pytest.approx(small.vt_sigma / 2.0)

    def test_leakage_lognormal_positive(self, rng):
        sampler = MismatchSampler(NODE_45NM)
        leak = sampler.subthreshold_leakage((500,), rng)
        assert np.all(leak > 0)
        assert leak.std() / leak.mean() > 0.1

    def test_current_factors_mean_near_one(self, rng):
        sampler = MismatchSampler(NODE_45NM, current_factor_sigma=0.05)
        factors = sampler.current_factors((5000,), rng)
        assert factors.mean() == pytest.approx(1.0, abs=0.01)


class TestEnergyLedger:
    def test_accumulation(self):
        ledger = EnergyLedger()
        ledger.add("mac", 10, 1e-15)
        ledger.add("mac", 5, 1e-15)
        assert ledger.count("mac") == 15
        assert ledger.energy("mac") == pytest.approx(15e-15)

    def test_merge_and_scale(self):
        a = EnergyLedger()
        a.add("op", 2, 1.0)
        b = EnergyLedger()
        b.add("op", 3, 1.0)
        a.merge(b)
        assert a.count("op") == 5
        assert a.scaled(2.0).count("op") == 10

    def test_rejects_negative(self):
        ledger = EnergyLedger()
        with pytest.raises(ValueError):
            ledger.add("op", -1, 1.0)
        with pytest.raises(ValueError):
            ledger.add("op", 1, -1.0)

    def test_format_energy_units(self):
        assert "fJ" in format_energy(2e-13)
        assert "pJ" in format_energy(5e-12)
        assert "nJ" in format_energy(3e-9)

    def test_table_contains_total(self):
        ledger = EnergyLedger(label="x")
        ledger.add("op", 1, 1e-12)
        assert "TOTAL" in ledger.table()

    def test_scope_collects_only_scoped_region(self):
        ledger = EnergyLedger()
        ledger.add("op", 2, 1.0)
        scope = ledger.begin_scope()
        ledger.add("op", 3, 1.0)
        ledger.add_energy("extra", 0.5)
        ledger.end_scope(scope)
        ledger.add("op", 7, 1.0)  # after end_scope: not mirrored
        assert scope.count("op") == 3
        assert scope.energy("extra") == 0.5
        assert ledger.count("op") == 12  # cumulative undisturbed

    def test_scopes_nest_independently(self):
        ledger = EnergyLedger()
        outer = ledger.begin_scope()
        ledger.add("op", 1, 1.0)
        inner = ledger.begin_scope()
        ledger.add("op", 2, 1.0)
        ledger.end_scope(inner)
        ledger.end_scope(outer)
        assert inner.count("op") == 2
        assert outer.count("op") == 3

    def test_scope_sees_merges(self):
        ledger = EnergyLedger()
        scope = ledger.begin_scope()
        other = EnergyLedger()
        other.add("op", 4, 2.0)
        ledger.merge(other)
        ledger.end_scope(scope)
        assert scope.count("op") == 4
        assert scope.energy("op") == pytest.approx(8.0)

    def test_end_scope_rejects_foreign_child(self):
        ledger = EnergyLedger()
        with pytest.raises(ValueError, match="not active"):
            ledger.end_scope(EnergyLedger())

    def test_snapshot_since_diffs(self):
        ledger = EnergyLedger(label="m")
        ledger.add("op", 2, 1.0)
        mark = ledger.snapshot()
        ledger.add("op", 3, 1.0)
        ledger.add("new", 1, 0.25)
        diff = ledger.since(mark)
        assert diff.count("op") == 3
        assert diff.energy("op") == pytest.approx(3.0)
        assert diff.count("new") == 1
        assert diff.label == "m"
        assert "untouched" not in diff.operations

    def test_since_clamps_after_reset(self):
        ledger = EnergyLedger()
        ledger.add("op", 5, 1.0)
        mark = ledger.snapshot()
        ledger.reset()
        ledger.add("op", 2, 1.0)
        diff = ledger.since(mark)
        assert diff.count("op") == 0  # clamped, never negative


class TestInverterArray:
    @pytest.fixture(scope="class")
    def array(self):
        rng = np.random.default_rng(0)
        columns = [
            InverterColumn(rng.uniform(0.2, 0.8, 3), [1, 1, 1], replication=2)
            for _ in range(10)
        ]
        return InverterArray(NODE_45NM, columns)

    def test_matches_single_inverter(self):
        column = InverterColumn([0.4, 0.5, 0.6], [2, 2, 2])
        array = InverterArray(NODE_45NM, [column])
        inverter = LikelihoodInverter.from_centers(
            NODE_45NM, [0.4, 0.5, 0.6], width_codes=[2, 2, 2]
        )
        v = np.random.default_rng(1).uniform(0, 1, size=(20, 3))
        assert np.allclose(array.column_currents(v)[:, 0], inverter.current(v))

    def test_replication_scales_current(self):
        base = InverterArray(NODE_45NM, [InverterColumn([0.5, 0.5, 0.5], [1, 1, 1])])
        doubled = InverterArray(
            NODE_45NM, [InverterColumn([0.5, 0.5, 0.5], [1, 1, 1], replication=2)]
        )
        v = np.array([[0.5, 0.5, 0.5]])
        assert doubled.total_current(v)[0] == pytest.approx(2 * base.total_current(v)[0])

    def test_total_is_sum_of_columns(self, array, rng):
        v = rng.uniform(0, 1, size=(5, 3))
        expected = array.column_currents(v) @ array.replication
        assert np.allclose(array.total_current(v), expected)

    def test_read_accounts_energy(self, array, rng):
        encoder = VoltageEncoder(lo=np.zeros(3), hi=np.ones(3), vdd=1.0)
        array.ledger.reset()
        array.read_log_likelihood(rng.uniform(0, 1, size=(7, 3)), encoder)
        assert array.ledger.count("adc_conversion") == 7
        assert array.ledger.count("dac_conversion") == 21
        assert array.energy_per_query() > 0

    def test_mismatch_requires_rng(self):
        with pytest.raises(ValueError):
            InverterArray(
                NODE_45NM,
                [InverterColumn([0.5, 0.5, 0.5], [0, 0, 0])],
                mismatch=MismatchSampler(NODE_45NM),
            )


class TestVoltageEncoder:
    def test_round_trip(self, rng):
        encoder = VoltageEncoder(lo=np.array([-2.0, -2.0, 0.0]), hi=np.array([2.0, 2.0, 3.0]), vdd=1.0)
        points = rng.uniform([-2, -2, 0], [2, 2, 3], size=(30, 3))
        assert np.allclose(encoder.decode(encoder.encode(points)), points, atol=1e-12)

    def test_bounds_map_to_margins(self):
        encoder = VoltageEncoder(lo=np.zeros(3), hi=np.ones(3), vdd=1.0, margin=0.1)
        assert np.allclose(encoder.encode(np.zeros((1, 3))), 0.1)
        assert np.allclose(encoder.encode(np.ones((1, 3))), 0.9)

    def test_sigma_round_trip(self):
        encoder = VoltageEncoder(lo=np.zeros(3), hi=np.array([4.0, 2.0, 1.0]), vdd=1.0)
        sigma = np.array([0.5, 0.2, 0.1])
        assert np.allclose(encoder.volts_to_sigma(encoder.sigma_to_volts(sigma)), sigma)

    @given(st.floats(0.0, 0.4))
    @settings(max_examples=20)
    def test_margin_validation(self, margin):
        VoltageEncoder(lo=np.zeros(3), hi=np.ones(3), vdd=1.0, margin=margin)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            VoltageEncoder(lo=np.ones(3), hi=np.zeros(3), vdd=1.0)
