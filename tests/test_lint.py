"""repro.analysis: the determinism linter (rules, suppressions, baseline,
CLI gate) plus the self-hosting check over src/repro."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    PARSE_ERROR,
    RULES,
    SUPPRESSION_NEEDS_REASON,
    Baseline,
    all_rules,
    compare,
    lint_paths,
    lint_source,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"
DET_CODES = sorted(code for code in RULES if code.startswith("DET"))


def lint_fixture(name: str, code: str):
    """Lint one fixture file with exactly one rule active."""
    path = FIXTURES / name
    return lint_source(path.read_text(), name, rules={code: RULES[code]})


class TestRuleRegistry:
    def test_all_eight_det_rules_registered(self):
        assert DET_CODES == [f"DET00{n}" for n in range(1, 9)]

    def test_every_rule_carries_metadata(self):
        for rule in all_rules():
            assert rule.code and rule.name and rule.rationale and rule.hint


class TestRuleFixtures:
    """Each rule must fire on its anti-pattern fixture and stay silent on
    the corrected twin -- the executable spec of what the rule means."""

    @pytest.mark.parametrize("code", DET_CODES)
    def test_rule_fires_on_anti_pattern(self, code):
        findings = lint_fixture(f"det{code[-3:]}_fires.py", code)
        assert findings, f"{code} did not fire on its fixture"
        assert {finding.rule for finding in findings} == {code}
        for finding in findings:
            assert finding.line > 0
            assert finding.text
            assert finding.hint

    @pytest.mark.parametrize("code", DET_CODES)
    def test_rule_silent_on_corrected_code(self, code):
        assert lint_fixture(f"det{code[-3:]}_clean.py", code) == []

    def test_det002_catches_the_pr7_collision_pattern(self):
        # The exact bug class that motivated the rule: scene/dataset.py
        # once derived per-scene streams as seed + 1000 * scene_index.
        source = (
            "import numpy as np\n"
            "def rng(seed, scene_index):\n"
            "    return np.random.default_rng(seed + 1000 * scene_index)\n"
        )
        findings = lint_source(source, "dataset.py")
        assert [finding.rule for finding in findings] == ["DET002"]

    def test_det002_allows_keyed_spawns(self):
        source = (
            "import numpy as np\n"
            "def rng(seed, scene_index):\n"
            "    return np.random.default_rng(\n"
            "        np.random.SeedSequence(seed, spawn_key=(scene_index,))\n"
            "    )\n"
        )
        assert lint_source(source, "dataset.py") == []


class TestSuppressions:
    def fixture_findings(self):
        path = FIXTURES / "suppressed.py"
        return lint_source(
            path.read_text(), "suppressed.py",
            rules={"DET006": RULES["DET006"]},
        )

    def test_trailing_and_standalone_comments_suppress(self):
        findings = self.fixture_findings()
        flagged = {f.line for f in findings if f.rule == "DET006"}
        lines = (FIXTURES / "suppressed.py").read_text().splitlines()
        assert lines[4].startswith("standalone")  # shielded by line above
        assert "inline" in lines[5]  # shielded by trailing comment
        assert not any("standalone" in lines[line - 1] for line in flagged)
        assert not any(
            "inline" in lines[line - 1] and "reasonless" not in lines[line - 1]
            for line in flagged
        )

    def test_reasonless_suppression_does_not_suppress(self):
        findings = self.fixture_findings()
        lnt = [f for f in findings if f.rule == SUPPRESSION_NEEDS_REASON]
        assert len(lnt) == 1
        # ...and the DET006 on that same line still fires.
        assert any(
            f.rule == "DET006" and f.line == lnt[0].line for f in findings
        )

    def test_unsuppressed_line_still_fires(self):
        findings = self.fixture_findings()
        assert any(
            f.rule == "DET006" and "unsuppressed" in f.text for f in findings
        )

    def test_suppression_only_covers_named_codes(self):
        source = "import json\nx = json.dumps({})  # repro: ignore[DET001] wrong code\n"
        findings = lint_source(source, "f.py", rules={"DET006": RULES["DET006"]})
        assert [f.rule for f in findings] == ["DET006"]

    def test_parse_error_yields_lnt002(self):
        findings = lint_source(
            (FIXTURES / "broken.py").read_text(), "broken.py"
        )
        assert [f.rule for f in findings] == [PARSE_ERROR]


class TestBaseline:
    def findings(self):
        return lint_fixture("det006_fires.py", "DET006")

    def test_round_trip(self, tmp_path):
        baseline = Baseline.from_findings(self.findings(), notes=["note"])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.notes == ["note"]
        assert [e.key() for e in loaded.entries] == [
            e.key() for e in baseline.entries
        ]
        new, stale = compare(self.findings(), loaded)
        assert new == [] and stale == []

    def test_new_finding_detected(self):
        findings = self.findings()
        baseline = Baseline.from_findings(findings[:-1])
        new, stale = compare(findings, baseline)
        assert [f.key() for f in new] == [findings[-1].key()]
        assert stale == []

    def test_stale_entry_detected(self):
        findings = self.findings()
        baseline = Baseline.from_findings(findings)
        new, stale = compare(findings[:-1], baseline)
        assert new == []
        assert [e.key() for e in stale] == [findings[-1].key()]

    def test_line_number_drift_does_not_break_match(self):
        findings = self.findings()
        shifted = [
            type(f)(
                rule=f.rule, path=f.path, line=f.line + 40, col=f.col,
                message=f.message, hint=f.hint, text=f.text,
            )
            for f in findings
        ]
        new, stale = compare(shifted, Baseline.from_findings(findings))
        assert new == [] and stale == []

    def test_multiset_counting(self):
        # One baselined occurrence of a duplicated line covers exactly one
        # fresh occurrence; the duplicate is new.
        findings = self.findings()
        doubled = findings + findings
        new, _ = compare(doubled, Baseline.from_findings(findings))
        assert len(new) == len(findings)

    def test_rejects_non_baseline_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"rows": []}))
        with pytest.raises(ValueError, match="not a lint baseline"):
            Baseline.load(path)


class TestSelfHosting:
    """src/repro must lint clean modulo the committed baseline -- the
    linter's own acceptance criterion."""

    def test_src_repro_clean_modulo_baseline(self):
        findings = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
        new, stale = compare(findings, baseline)
        assert new == [], [f.render() for f in new]
        assert stale == [], [e.render() for e in stale]

    def test_baseline_carries_tracking_notes(self):
        baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
        assert any("DET006" in note for note in baseline.notes)
        assert any("DET002" in note for note in baseline.notes)


class TestLintCLI:
    def run_cli(self, *argv, cwd=None):
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *argv],
            capture_output=True,
            text=True,
            cwd=str(cwd or REPO_ROOT),
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "PATH": "/usr/bin:/bin",
            },
        )

    def test_gate_passes_on_repo(self):
        result = self.run_cli()
        assert result.returncode == 0, result.stdout + result.stderr
        assert "-- ok" in result.stdout

    def test_reintroduced_pr7_pattern_fails_gate(self, tmp_path):
        bad = tmp_path / "dataset.py"
        bad.write_text(
            "import numpy as np\n"
            "def rng(seed, scene_index):\n"
            "    return np.random.default_rng(seed + 1000 * scene_index)\n"
        )
        result = self.run_cli(str(bad), "--no-baseline")
        assert result.returncode == 1
        assert "DET002" in result.stdout
        assert "determinism lint gate failed" in result.stderr

    def test_json_output(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import json\nx = json.dumps({})\n")
        result = self.run_cli(str(bad), "--no-baseline", "--json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["n_findings"] == 1
        assert payload["new"][0]["rule"] == "DET006"
        assert payload["stale"] == []

    def test_update_baseline_preserves_notes(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import json\nx = json.dumps({})\n")
        baseline_path = tmp_path / "baseline.json"
        Baseline(entries=[], notes=["keep me"]).save(baseline_path)
        update = self.run_cli(
            str(bad), "--baseline", str(baseline_path), "--update-baseline"
        )
        assert update.returncode == 0, update.stdout + update.stderr
        refreshed = Baseline.load(baseline_path)
        assert refreshed.notes == ["keep me"]
        assert len(refreshed.entries) == 1
        gated = self.run_cli(str(bad), "--baseline", str(baseline_path))
        assert gated.returncode == 0

    def test_rules_listing(self):
        result = self.run_cli("--rules", "--json")
        assert result.returncode == 0
        listed = json.loads(result.stdout)
        assert [rule["code"] for rule in listed] == sorted(RULES)
        assert all(rule["rationale"] for rule in listed)
