"""repro.serve.tracks: streaming tracks, eviction, crash recovery."""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api.results import strict_dumps, strict_loads
from repro.api.substrates import available_substrates
from repro.runtime import BatchPolicy, ShardPolicy, TrackPolicy
from repro.serve import (
    InferenceService,
    ServiceOverloaded,
    TrackError,
    TrackInit,
    TrackOpenRequest,
    TrackStepRequest,
    TrackStepResponse,
    reference_track_run,
)
from repro.serve.demo import (
    demo_model,
    demo_track_measurements,
    demo_track_world,
)
from repro.serve.http import serve_http

N_STEPS = 3


@pytest.fixture(scope="module")
def world():
    return demo_track_world()


@pytest.fixture(scope="module")
def measurements():
    return demo_track_measurements(n_steps=N_STEPS)


@pytest.fixture(scope="module")
def init(measurements):
    _, _, truths = measurements
    return TrackInit(
        mode="tracking",
        state=truths[0],
        sigma=np.full(truths.shape[1], 0.05),
        z_range=None,
    )


def make_service(world, workers=0, tracks=None, track_substrates=("cim",)):
    """A track-serving service; the /infer side is kept minimal (one
    cheap substrate, shallow MC depth) so tests pay for tracks only."""
    return InferenceService(
        demo_model(),
        substrates=["digital"],
        n_iterations=4,
        batch=BatchPolicy(max_batch=8, max_wait_ms=20.0),
        shard=ShardPolicy(workers=workers),
        track_world=world,
        tracks=tracks,
        track_substrates=list(track_substrates),
    )


def assert_stream_matches_reference(responses, reference):
    """The stream determinism contract: per-step estimates and the
    cumulative scoped metering equal the one-shot run bit-for-bit."""
    streamed = np.array([r.estimate for r in responses])
    assert np.array_equal(streamed, reference.mean)
    final = responses[-1]
    assert final.energy_j == reference.energy_j
    assert final.ops_executed == reference.ops_executed
    assert final.energy_breakdown_j == reference.energy_breakdown_j


def post(port, path, payload, timeout=120):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=strict_dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return strict_loads(response.read().decode())


class TestTrackPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_tracks"):
            TrackPolicy(max_tracks=0)
        with pytest.raises(ValueError, match="idle_ttl_s"):
            TrackPolicy(idle_ttl_s=0)
        with pytest.raises(ValueError, match="sweep_interval_s"):
            TrackPolicy(sweep_interval_s=0)
        with pytest.raises(ValueError, match="replay_log_steps"):
            TrackPolicy(replay_log_steps=-1)
        with pytest.raises(ValueError, match="max_track_bytes"):
            TrackPolicy(max_track_bytes=-1)
        assert TrackPolicy().max_tracks == 1024


class TestRequestSchemas:
    def test_open_request_round_trip(self, init):
        request = TrackOpenRequest(init=init, substrate="cim", seed=9)
        restored = TrackOpenRequest.from_json(
            strict_dumps(
                {
                    "init": init.to_dict(),
                    "substrate": "cim",
                    "seed": 9,
                }
            )
        )
        assert restored.substrate == request.substrate
        assert restored.seed == request.seed
        assert np.array_equal(restored.init.state, init.state)

    def test_open_request_rejects_unknown_fields(self, init):
        with pytest.raises((KeyError, ValueError, TypeError)):
            TrackOpenRequest.from_json(
                strict_dumps({"init": init.to_dict(), "bogus": 1})
            )

    def test_step_response_round_trip(self):
        response = TrackStepResponse(
            track_id="t",
            step_index=2,
            estimate=np.arange(4.0),
            ess=3.5,
            resampled=True,
            log_evidence=-1.25,
            spread=0.5,
            energy_j=1e-9,
            ops_executed=123,
            energy_breakdown_j={"mac": 1e-9},
            step_energy_j=5e-10,
            step_ops=50,
            substrate="cim",
        )
        restored = TrackStepResponse.from_json(
            strict_dumps(response.to_dict())
        )
        assert restored.step_index == 2
        assert np.array_equal(restored.estimate, response.estimate)
        assert restored.energy_j == response.energy_j


class TestStreamParityInProcess:
    """Acceptance: every registered substrate streams bit-for-bit."""

    @pytest.fixture(scope="class")
    def streamed(self, world, measurements, init):
        controls, depths, truths = measurements
        service = make_service(
            world, track_substrates=available_substrates()
        )

        async def drive():
            async with service:
                results = {}
                for name in available_substrates():
                    handle = await service.open_track(
                        substrate=name, init=init, seed=3
                    )
                    responses = []
                    for control, depth, truth in zip(
                        controls, depths, truths
                    ):
                        responses.append(
                            await handle.step(control, depth, truth=truth)
                        )
                    await handle.close()
                    results[name] = responses
                return results, service.stats_snapshot()

        return asyncio.run(drive())

    @pytest.mark.parametrize("name", available_substrates())
    def test_substrate_streams_bit_for_bit(
        self, streamed, world, measurements, init, name
    ):
        results, _ = streamed
        reference = reference_track_run(world, name, init, 3, measurements)
        assert_stream_matches_reference(results[name], reference)

    def test_step_indices_and_metadata(self, streamed):
        results, snapshot = streamed
        for name, responses in results.items():
            assert [r.step_index for r in responses] == list(
                range(1, N_STEPS + 1)
            )
            assert all(r.substrate == name for r in responses)
            assert all(not r.state_lost for r in responses)
            assert all(r.error_m is not None for r in responses)
        tracks = snapshot["tracks"]
        assert tracks["opened"] == len(results)
        assert tracks["closed"] == len(results)
        assert tracks["steps"] == len(results) * N_STEPS

    def test_step_scoped_metering_is_positive(self, streamed):
        results, _ = streamed
        for responses in results.values():
            assert all(r.step_energy_j > 0 for r in responses)
            assert all(r.step_ops > 0 for r in responses)


class TestCoalescing:
    def test_concurrent_tracks_share_micro_batches(
        self, world, measurements, init
    ):
        controls, depths, truths = measurements
        service = make_service(world)

        async def drive():
            async with service:
                handles = await asyncio.gather(
                    *(
                        service.open_track(
                            substrate="cim", init=init, seed=seed
                        )
                        for seed in range(8)
                    )
                )
                for k in range(N_STEPS):
                    await asyncio.gather(
                        *(
                            handle.step(
                                controls[k], depths[k], truth=truths[k]
                            )
                            for handle in handles
                        )
                    )
                return service.stats_snapshot()["tracks"]

        tracks = asyncio.run(drive())
        assert tracks["steps"] == 8 * N_STEPS
        # Concurrent steps from different tracks on the same home must
        # coalesce through the Batcher (not execute one-by-one).
        assert tracks["max_step_batch"] > 1
        assert tracks["step_batches"] < 8 * N_STEPS


class TestAdmissionAndEviction:
    def test_max_tracks_admission(self, world, init):
        service = make_service(world, tracks=TrackPolicy(max_tracks=2))

        async def drive():
            async with service:
                await service.open_track(substrate="cim", init=init, seed=0)
                await service.open_track(substrate="cim", init=init, seed=1)
                with pytest.raises(ServiceOverloaded):
                    await service.open_track(
                        substrate="cim", init=init, seed=2
                    )
                return service.stats_snapshot()["tracks"]

        tracks = asyncio.run(drive())
        assert tracks["rejected"] == 1
        assert tracks["live"] == 2

    def test_unknown_track_substrate_rejected(self, world, init):
        service = make_service(world, track_substrates=("cim",))

        async def drive():
            async with service:
                with pytest.raises(KeyError, match="digital"):
                    await service.open_track(
                        substrate="digital", init=init, seed=0
                    )

        asyncio.run(drive())

    def test_idle_ttl_eviction_gives_clear_error(
        self, world, measurements, init
    ):
        """Satellite: an evicted track's next step is a typed 'expired'
        error, never a hang or a silent fresh-state answer."""
        controls, depths, truths = measurements
        # A long sweep interval keeps the background sweeper out of the
        # way: the test drives sweep_idle() itself, deterministically.
        service = make_service(
            world,
            tracks=TrackPolicy(idle_ttl_s=0.05, sweep_interval_s=60.0),
        )

        async def drive():
            async with service:
                handle = await service.open_track(
                    substrate="cim", init=init, seed=0
                )
                await handle.step(controls[0], depths[0])
                manager = service._track_manager
                await asyncio.sleep(0.1)
                evicted = await manager.sweep_idle()
                assert evicted == 1
                with pytest.raises(TrackError) as excinfo:
                    await handle.step(controls[1], depths[1])
                assert excinfo.value.kind == "expired"
                assert "TTL" in str(excinfo.value)
                # The store-side state is gone too, not just the record.
                assert manager.live_count() == 0
                return service.stats_snapshot()["tracks"]

        tracks = asyncio.run(drive())
        assert tracks["expired"] == 1

    def test_closed_track_step_is_gone(self, world, measurements, init):
        controls, depths, _ = measurements
        service = make_service(world)

        async def drive():
            async with service:
                handle = await service.open_track(
                    substrate="cim", init=init, seed=0
                )
                await handle.close()
                with pytest.raises(TrackError) as excinfo:
                    await handle.step(controls[0], depths[0])
                assert excinfo.value.kind == "closed"
                with pytest.raises(TrackError) as unknown:
                    await service.track_step(
                        TrackStepRequest(
                            track_id="never-opened",
                            control=controls[0],
                            depth=depths[0],
                        )
                    )
                assert unknown.value.kind == "unknown"

        asyncio.run(drive())


class TestShardedTracks:
    def test_sticky_routing_and_parity(self, world, measurements, init):
        service = make_service(world, workers=2)

        async def drive():
            async with service:
                manager = service._track_manager
                opens = [
                    await manager.open(
                        TrackOpenRequest(init=init, substrate="cim", seed=s)
                    )
                    for s in range(4)
                ]
                homes = {
                    manager._tracks[o["track_id"]].home for o in opens
                }
                # Least-loaded placement spreads tracks over both shards.
                assert {home[0] for home in homes} == {0, 1}
                controls, depths, truths = measurements
                results = {}
                for o in opens:
                    record = manager._tracks[o["track_id"]]
                    first_home = record.home
                    responses = []
                    for control, depth, truth in zip(
                        controls, depths, truths
                    ):
                        responses.append(
                            await manager.step(
                                TrackStepRequest(
                                    track_id=o["track_id"],
                                    control=control,
                                    depth=depth,
                                    truth=truth,
                                )
                            )
                        )
                    # Sticky: every step of a track ran on its home.
                    assert record.home == first_home
                    results[o["seed"]] = responses
                return results

        results = asyncio.run(drive())
        for seed, responses in results.items():
            reference = reference_track_run(
                world, "cim", init, seed, measurements
            )
            assert_stream_matches_reference(responses, reference)

    def test_midstep_kill_replays_and_stays_bit_exact(
        self, world, measurements, init
    ):
        """Satellite: SIGKILL the home shard mid-step; the manager
        replays the acked log on the respawn and the stream stays
        bit-for-bit equal to the uninterrupted one-shot run."""
        controls, depths, truths = measurements
        service = make_service(world, workers=1)

        async def drive():
            async with service:
                handle = await service.open_track(
                    substrate="cim", init=init, seed=6
                )
                responses = [
                    await handle.step(controls[0], depths[0], truth=truths[0])
                ]
                victim = service._worker_pool._handles[0]
                os.kill(victim.process.pid, signal.SIGSTOP)
                task = asyncio.ensure_future(
                    handle.step(controls[1], depths[1], truth=truths[1])
                )
                for _ in range(5000):
                    if victim.inflight:
                        break
                    await asyncio.sleep(0.001)
                assert victim.inflight, "step never reached the shard"
                victim.process.kill()
                responses.append(await task)
                responses.append(
                    await handle.step(controls[2], depths[2], truth=truths[2])
                )
                return responses, service.stats_snapshot()["tracks"]

        responses, tracks = asyncio.run(drive())
        # The killed step was retried on the respawned shard after a
        # one-step replay; the stream never noticed beyond the marker.
        assert responses[1].replayed_steps == 1
        assert not responses[1].state_lost
        assert responses[2].replayed_steps == 0
        assert [r.step_index for r in responses] == [1, 2, 3]
        assert tracks["recovered_replay"] == 1
        assert tracks["recovered_reinit"] == 0
        reference = reference_track_run(world, "cim", init, 6, measurements)
        assert_stream_matches_reference(responses, reference)

    def test_replay_disabled_reinitializes_with_state_lost(
        self, world, measurements, init
    ):
        """Satellite: with no replay log the recovered track restarts
        from its init and the next response says so explicitly."""
        controls, depths, truths = measurements
        service = make_service(
            world, workers=1, tracks=TrackPolicy(replay_log_steps=0)
        )

        async def drive():
            async with service:
                handle = await service.open_track(
                    substrate="cim", init=init, seed=6
                )
                await handle.step(controls[0], depths[0], truth=truths[0])
                victim = service._worker_pool._handles[0]
                victim.process.kill()
                responses = []
                for control, depth, truth in zip(
                    controls[1:], depths[1:], truths[1:]
                ):
                    responses.append(
                        await handle.step(control, depth, truth=truth)
                    )
                return responses, service.stats_snapshot()["tracks"]

        responses, tracks = asyncio.run(drive())
        assert responses[0].state_lost is True
        assert responses[0].replayed_steps == 0
        # The filter restarted: step indices restart from 1 and the
        # post-recovery stream equals a fresh run over the fed steps.
        assert [r.step_index for r in responses] == [1, 2]
        assert all(not r.state_lost for r in responses[1:])
        assert tracks["recovered_reinit"] == 1
        reference = reference_track_run(
            world,
            "cim",
            init,
            6,
            (controls[1:], depths[1:], truths[1:]),
        )
        assert_stream_matches_reference(responses, reference)


class TestTrackHTTP:
    @pytest.fixture(scope="class")
    def context(self, world):
        service = make_service(world, tracks=TrackPolicy(max_tracks=2))
        with serve_http(service, port=0) as ctx:
            yield ctx

    def test_open_step_close_parity(
        self, context, world, measurements, init
    ):
        controls, depths, truths = measurements
        opened = post(
            context.port,
            "/track/open",
            {"init": init.to_dict(), "substrate": "cim", "seed": 17},
        )
        track_id = opened["track_id"]
        assert opened["substrate"] == "cim"
        responses = []
        for control, depth, truth in zip(controls, depths, truths):
            payload = post(
                context.port,
                "/track/step",
                {
                    "track_id": track_id,
                    "control": control.tolist(),
                    "depth": depth.tolist(),
                    "truth": truth.tolist(),
                },
            )
            responses.append(TrackStepResponse.from_dict(payload))
        closed = post(
            context.port, "/track/close", {"track_id": track_id}
        )
        assert closed["closed"] is True
        assert closed["steps"] == N_STEPS
        reference = reference_track_run(world, "cim", init, 17, measurements)
        assert_stream_matches_reference(responses, reference)

    def test_track_errors_are_typed_http_statuses(
        self, context, measurements
    ):
        controls, depths, _ = measurements
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(
                context.port,
                "/track/step",
                {
                    "track_id": "never-opened",
                    "control": controls[0].tolist(),
                    "depth": depths[0].tolist(),
                },
            )
        assert excinfo.value.code == 404
        body = strict_loads(excinfo.value.read().decode())
        assert body["kind"] == "unknown"
        assert body["retryable"] is False

    def test_admission_503_has_retry_after_and_retryable(
        self, context, init
    ):
        """Satellite: every 503 carries Retry-After + retryable:true."""
        opened = []
        for seed in range(2):
            opened.append(
                post(
                    context.port,
                    "/track/open",
                    {
                        "init": init.to_dict(),
                        "substrate": "cim",
                        "seed": seed,
                    },
                )
            )
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(
                    context.port,
                    "/track/open",
                    {
                        "init": init.to_dict(),
                        "substrate": "cim",
                        "seed": 99,
                    },
                )
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] is not None
            body = strict_loads(excinfo.value.read().decode())
            assert body["retryable"] is True
        finally:
            for entry in opened:
                post(
                    context.port,
                    "/track/close",
                    {"track_id": entry["track_id"]},
                )

    def test_healthz_reports_track_config(self, context):
        raw = urllib.request.urlopen(
            f"http://127.0.0.1:{context.port}/healthz", timeout=30
        ).read()
        health = json.loads(raw)
        assert health["status"] == "ok"
        assert health["respawning_shards"] == []
        assert health["tracks"]["max_tracks"] == 2
        assert health["tracks"]["backend"]["mode"] == "local"

    def test_stats_expose_track_counters(self, context):
        raw = urllib.request.urlopen(
            f"http://127.0.0.1:{context.port}/stats", timeout=30
        ).read()
        stats = json.loads(raw)
        assert stats["tracks"]["opened"] >= 1
        assert stats["tracks"]["steps"] >= N_STEPS


class TestDegradedHealth:
    def test_healthz_degrades_while_shard_respawns(self, world):
        """Satellite: /healthz flips to degraded (naming the respawning
        shard) after a shard death, then returns to ok."""
        service = make_service(world, workers=1)
        with serve_http(service, port=0) as context:
            url = f"http://127.0.0.1:{context.port}/healthz"
            victim = service._worker_pool._handles[0]
            victim.process.kill()
            victim.process.join(timeout=30)
            health = json.loads(
                urllib.request.urlopen(url, timeout=30).read()
            )
            assert health["status"] == "degraded"
            assert health["respawning_shards"] == [0]
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                health = json.loads(
                    urllib.request.urlopen(url, timeout=30).read()
                )
                if health["status"] == "ok":
                    break
                time.sleep(0.2)
            assert health["status"] == "ok"
            assert health["respawning_shards"] == []


class TestCLIShutdownWithTracks:
    """`repro serve --tracks --workers N` must not orphan shards while
    live tracks exist (satellite: SIGTERM path with open streams)."""

    def test_sigterm_with_live_tracks(self, world, measurements, init):
        env = dict(os.environ)
        src = os.path.join(os.getcwd(), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "1",
                "--n-iterations", "4", "--substrates", "digital",
                "--tracks", "--track-substrates", "cim",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            port = None
            deadline = time.monotonic() + 120
            assert process.stdout is not None
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if "http://" in line:
                    port = int(
                        line.split("http://")[1].split()[0].split(":")[1]
                    )
                    break
            assert port, "server never printed its address"
            controls, depths, _ = measurements
            opened = post(
                port,
                "/track/open",
                {"init": init.to_dict(), "substrate": "cim", "seed": 0},
            )
            post(
                port,
                "/track/step",
                {
                    "track_id": opened["track_id"],
                    "control": controls[0].tolist(),
                    "depth": depths[0].tolist(),
                },
            )
            stats = json.loads(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/stats", timeout=30
                ).read()
            )
            assert stats["tracks"]["live"] == 1
            worker_pids = [
                row["pid"] for row in stats["shards"]["shards"]
            ]
            assert worker_pids
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
            deadline = time.monotonic() + 10
            pending = list(worker_pids)
            while pending and time.monotonic() < deadline:
                pending = [
                    pid
                    for pid in pending
                    if _alive(pid)
                ]
                if pending:
                    time.sleep(0.05)
            assert pending == []
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


def _alive(pid):
    try:
        os.kill(pid, 0)
        return True
    except (ProcessLookupError, PermissionError):
        return False


class TestStepExceptionSafety:
    """DET004 contract: a raising step must restore the prototype ledger
    cells (the swap-in/swap-out in TrackStore._step_one), or one bad
    measurement would wire a dead track's ledgers into every other
    track's energy accounting on the shard."""

    @staticmethod
    def _failing_store(world, init, seed, monkeypatch, measurements):
        from repro.serve.tracks import TrackStore

        store = TrackStore(world, ("cim",))
        store.open("t1", "cim", init, seed)
        session, cells, _ = store._prototypes["cim"]
        before = [getattr(owner, attr) for owner, attr in cells]
        controls, depths, truths = measurements

        def boom(*args, **kwargs):
            raise RuntimeError("sensor glitch")

        with monkeypatch.context() as patched:
            patched.setattr(session.localizer, "step", boom)
            outcomes = store.step_batch(
                [("t1", controls[0], depths[0], truths[0])]
            )
        return store, cells, before, outcomes

    def test_raising_step_restores_prototype_ledgers(
        self, world, measurements, init, monkeypatch
    ):
        store, cells, before, outcomes = self._failing_store(
            world, init, 5, monkeypatch, measurements
        )
        status, payload = outcomes[0]
        assert status == "error"
        assert "sensor glitch" in payload
        after = [getattr(owner, attr) for owner, attr in cells]
        assert all(now is prev for now, prev in zip(after, before))

    def test_steps_after_failure_stay_bit_exact(
        self, world, measurements, init, monkeypatch
    ):
        store, _, _, outcomes = self._failing_store(
            world, init, 7, monkeypatch, measurements
        )
        assert outcomes[0][0] == "error"
        controls, depths, truths = measurements
        results = [
            store._step_one("t1", controls[i], depths[i], truths[i])
            for i in range(N_STEPS)
        ]
        reference = reference_track_run(world, "cim", init, 7, measurements)
        streamed = np.array([r["estimate"] for r in results])
        assert np.array_equal(streamed, reference.mean)
        final = results[-1]
        assert final["energy_j"] == reference.energy_j
        assert final["ops_executed"] == reference.ops_executed
