"""Tests for repro.bayesian.conformal (the paper's future-work extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesian.conformal import (
    AdaptiveConformalInference,
    SplitConformalRegressor,
    conformal_quantile,
)


def _linear_world(rng, n=400, noise=0.2):
    x = rng.uniform(-2, 2, size=(n, 3))
    w = np.array([[1.0, -0.5], [0.3, 1.2], [-0.7, 0.4]])
    y = x @ w + rng.normal(scale=noise, size=(n, 2))
    def predict(q):
        return np.atleast_2d(q) @ w
    return x, y, predict


class TestConformalQuantile:
    def test_known_quantile(self):
        scores = np.arange(1.0, 100.0)  # 99 scores
        # ceil(100 * 0.9) = 90 -> the 90th order statistic.
        assert conformal_quantile(scores, alpha=0.1) == 90.0

    def test_small_sample_infinite(self):
        assert conformal_quantile(np.array([1.0]), alpha=0.1) == np.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            conformal_quantile(np.array([]), 0.1)
        with pytest.raises(ValueError):
            conformal_quantile(np.array([1.0]), 1.5)

    @given(st.integers(20, 200), st.floats(0.05, 0.4))
    @settings(max_examples=25)
    def test_quantile_bounds_scores(self, n, alpha):
        rng = np.random.default_rng(n)
        scores = rng.exponential(size=n)
        q = conformal_quantile(scores, alpha)
        # at least (1 - alpha) of calibration scores are below q
        assert np.mean(scores <= q) >= 1.0 - alpha - 1e-9


class TestSplitConformal:
    def test_marginal_coverage(self, rng):
        x, y, predict = _linear_world(rng, n=800)
        regressor = SplitConformalRegressor(predict, alpha=0.1)
        regressor.calibrate(x[:400], y[:400])
        coverage = regressor.coverage(x[400:], y[400:])
        assert coverage == pytest.approx(0.9, abs=0.05)

    def test_alpha_controls_width(self, rng):
        x, y, predict = _linear_world(rng)
        widths = {}
        for alpha in (0.05, 0.3):
            regressor = SplitConformalRegressor(predict, alpha=alpha)
            regressor.calibrate(x[:200], y[:200])
            widths[alpha] = regressor.mean_interval_width(x[200:])
        assert widths[0.05] > widths[0.3]

    def test_difficulty_scaling_adapts_width(self, rng):
        x, y, predict = _linear_world(rng)
        def difficulty(q):
            return 1.0 + np.abs(np.atleast_2d(q)[:, :1]) @ np.ones((1, 2))
        regressor = SplitConformalRegressor(predict, alpha=0.1, difficulty=difficulty)
        regressor.calibrate(x[:200], y[:200])
        easy = np.zeros((1, 3))
        hard = np.array([[2.0, 0.0, 0.0]])
        _, lo_e, hi_e = regressor.intervals(easy)
        _, lo_h, hi_h = regressor.intervals(hard)
        assert (hi_h - lo_h).mean() > (hi_e - lo_e).mean()

    def test_requires_calibration(self, rng):
        _, _, predict = _linear_world(rng)
        regressor = SplitConformalRegressor(predict)
        with pytest.raises(RuntimeError):
            regressor.intervals(np.zeros((1, 3)))

    def test_perfect_predictor_zero_width(self, rng):
        x, y, predict = _linear_world(rng, noise=0.0)
        regressor = SplitConformalRegressor(predict, alpha=0.1)
        regressor.calibrate(x[:100], y[:100])
        assert regressor.mean_interval_width(x[100:]) < 1e-9


class TestAdaptiveConformal:
    def test_tracks_coverage_under_shift(self, rng):
        x, y, predict = _linear_world(rng, n=600)
        aci = AdaptiveConformalInference.from_calibration(
            predict, x[:200], y[:200], alpha=0.1, gamma=0.05
        )
        # Distribution shift: noisier targets for the stream.
        stream_x = rng.uniform(-2, 2, size=(300, 3))
        w = np.array([[1.0, -0.5], [0.3, 1.2], [-0.7, 0.4]])
        stream_y = stream_x @ w + rng.normal(scale=0.6, size=(300, 2))
        for k in range(300):
            aci.step(stream_x[k], stream_y[k])
        # Static conformal would under-cover badly (noise tripled);
        # the adaptive quantile must recover near-target coverage over
        # the stream tail.
        tail = [record["covered"] for record in aci.history[150:]]
        assert np.mean(tail) > 0.8

    def test_alpha_decreases_when_missing(self, rng):
        x, y, predict = _linear_world(rng)
        aci = AdaptiveConformalInference.from_calibration(
            predict, x[:200], y[:200], alpha=0.1, gamma=0.1
        )
        # Feed absurd targets: every interval misses -> alpha_t must fall
        # (wider intervals).
        for k in range(10):
            aci.step(x[200 + k], y[200 + k] + 100.0)
        assert aci.alpha_t < 0.1

    def test_realised_coverage_requires_steps(self, rng):
        x, y, predict = _linear_world(rng)
        aci = AdaptiveConformalInference.from_calibration(predict, x[:50], y[:50])
        with pytest.raises(RuntimeError):
            aci.realised_coverage()

    def test_gamma_validation(self, rng):
        x, y, predict = _linear_world(rng)
        regressor = SplitConformalRegressor(predict)
        regressor.calibrate(x[:50], y[:50])
        with pytest.raises(ValueError):
            AdaptiveConformalInference(regressor, np.ones((50, 2)), gamma=0.0)
