"""Integration tests for repro.core: co-design, tiling, the two engines."""

import numpy as np
import pytest

from repro.circuits import NODE_45NM, VoltageEncoder
from repro.core import (
    CIMMCDropoutEngine,
    CIMParticleFilterLocalizer,
    hardware_sigma_menu,
    program_inverter_array,
)
from repro.core.tiling import TiledInverterArrayMap, tiled_sigma_menu
from repro.maps import GaussianMixture, HMGMixture
from repro.nn import Dense, Dropout, ReLU, Sequential
from repro.sram.macro import MacroConfig


@pytest.fixture(scope="module")
def simple_mixture():
    rng = np.random.default_rng(0)
    gmm = GaussianMixture(
        [0.4, 0.6],
        [[0.0, 0.0, 1.0], [2.0, 1.0, 0.5]],
        [[0.4, 0.4, 0.3], [0.5, 0.5, 0.4]],
    )
    cloud = gmm.sample(800, rng)
    lo, hi = cloud.min(axis=0) - 0.2, cloud.max(axis=0) + 0.2
    encoder = VoltageEncoder(lo=lo, hi=hi, vdd=NODE_45NM.vdd, margin=0.08)
    menu = hardware_sigma_menu(NODE_45NM, encoder)
    mixture = HMGMixture.fit(cloud, 4, rng, sigma_menu=menu)
    return mixture, encoder, cloud, (lo, hi)


class TestCoDesign:
    def test_menu_shape(self, simple_mixture):
        _, encoder, _, _ = simple_mixture
        menu = hardware_sigma_menu(NODE_45NM, encoder)
        assert menu.shape[0] == 3
        assert np.all(np.diff(menu, axis=1) > 0)

    def test_programmed_field_tracks_mixture(self, simple_mixture):
        mixture, encoder, cloud, bounds = simple_mixture
        array, report = program_inverter_array(
            mixture, encoder, NODE_45NM, total_columns=60
        )
        assert report.total_columns >= mixture.n_components
        lo, hi = bounds
        rng = np.random.default_rng(1)
        points = rng.uniform(lo, hi, size=(300, 3))
        ideal = np.log(mixture.field(points) + 1e-30)
        measured = np.log(array.total_current(encoder.encode(points)) + 1e-30)
        corr = np.corrcoef(ideal, measured)[0, 1]
        assert corr > 0.9

    def test_adc_codes_spread(self, simple_mixture):
        mixture, encoder, cloud, bounds = simple_mixture
        array, _ = program_inverter_array(mixture, encoder, NODE_45NM, total_columns=40)
        lo, hi = bounds
        rng = np.random.default_rng(2)
        points = np.concatenate(
            [mixture.means, rng.uniform(lo, hi, size=(200, 3))], axis=0
        )
        codes = array.adc.convert(array.total_current(encoder.encode(points)))
        assert len(np.unique(codes)) >= array.adc.levels // 2

    def test_budget_too_small_rejected(self, simple_mixture):
        mixture, encoder, _, _ = simple_mixture
        with pytest.raises(ValueError):
            program_inverter_array(mixture, encoder, NODE_45NM, total_columns=2)


class TestTiling:
    def test_tiled_menu_finer(self, simple_mixture):
        _, _, cloud, bounds = simple_mixture
        lo, hi = bounds
        single = tiled_sigma_menu(NODE_45NM, lo, hi, (1, 1, 1))
        tiled = tiled_sigma_menu(NODE_45NM, lo, hi, (2, 2, 2))
        assert np.allclose(tiled, single / 2.0)

    def test_field_log_routes_all_points(self, simple_mixture):
        mixture, _, cloud, bounds = simple_mixture
        lo, hi = bounds
        tiled = TiledInverterArrayMap(
            mixture, lo, hi, NODE_45NM, tiles=(2, 2, 1), rng=np.random.default_rng(0)
        )
        rng = np.random.default_rng(3)
        points = rng.uniform(lo, hi, size=(200, 3))
        values = tiled.field_log(points, rng=rng)
        assert values.shape == (200,)
        assert np.isfinite(values).all()

    def test_tiled_field_correlates_with_mixture(self, simple_mixture):
        # The co-design contract: the mixture must be fit with the *tile*
        # width menu so no kernel outgrows its tile.
        _, _, cloud, bounds = simple_mixture
        lo, hi = bounds
        menu = tiled_sigma_menu(NODE_45NM, lo, hi, (2, 2, 1))
        mixture = HMGMixture.fit(cloud, 4, np.random.default_rng(0), sigma_menu=menu)
        tiled = TiledInverterArrayMap(
            mixture, lo, hi, NODE_45NM, tiles=(2, 2, 1), rng=np.random.default_rng(0)
        )
        rng = np.random.default_rng(4)
        points = rng.uniform(lo, hi, size=(400, 3))
        ideal = np.log(mixture.field(points) + 1e-30)
        measured = tiled.field_log(points, rng=rng)
        # 4-bit log-ADC clipping in low-density regions bounds the
        # achievable correlation over uniformly random domain points.
        assert np.corrcoef(ideal, measured)[0, 1] > 0.7

    def test_report_counts(self, simple_mixture):
        mixture, _, cloud, bounds = simple_mixture
        lo, hi = bounds
        tiled = TiledInverterArrayMap(
            mixture, lo, hi, NODE_45NM, tiles=(2, 1, 1), rng=np.random.default_rng(0)
        )
        assert tiled.report.n_active_tiles >= 1
        assert tiled.report.total_columns > 0

    def test_energy_accounting(self, simple_mixture):
        mixture, _, cloud, bounds = simple_mixture
        lo, hi = bounds
        tiled = TiledInverterArrayMap(
            mixture, lo, hi, NODE_45NM, tiles=(2, 1, 1), rng=np.random.default_rng(0)
        )
        rng = np.random.default_rng(5)
        tiled.field_log(rng.uniform(lo, hi, size=(50, 3)), rng=rng)
        assert tiled.energy_per_query() > 0
        assert tiled.merged_ledger().count("adc_conversion") == 50

    def test_tile_of_clipping(self, simple_mixture):
        mixture, _, cloud, bounds = simple_mixture
        lo, hi = bounds
        tiled = TiledInverterArrayMap(
            mixture, lo, hi, NODE_45NM, tiles=(2, 2, 2), rng=np.random.default_rng(0)
        )
        outside = np.array([[lo[0] - 5, lo[1] - 5, lo[2] - 5], [hi[0] + 5, hi[1] + 5, hi[2] + 5]])
        indices = tiled.tile_of(outside)
        assert np.array_equal(indices[0], [0, 0, 0])
        assert np.array_equal(indices[1], [1, 1, 1])


def _mc_model(rng):
    return Sequential(
        [
            Dense(12, 24, rng),
            ReLU(),
            Dropout(0.5, rng=rng),
            Dense(24, 4, rng),
        ]
    )


class TestCIMMCDropoutEngine:
    def test_prediction_statistics(self, rng):
        engine = CIMMCDropoutEngine(
            _mc_model(rng), MacroConfig(weight_bits=6), n_iterations=12, rng=rng
        )
        result = engine.predict(rng.normal(size=(3, 12)))
        assert result.mean.shape == (3, 4)
        assert result.variance.shape == (3, 4)
        assert result.samples.shape == (12, 3, 4)
        assert result.variance.mean() > 0

    def test_mean_close_to_software(self, rng):
        model = _mc_model(rng)
        engine = CIMMCDropoutEngine(
            model,
            MacroConfig(weight_bits=8, adc_noise_lsb=0.0, adc_bits=10),
            n_iterations=60,
            use_hardware_rng=False,
            rng=np.random.default_rng(1),
        )
        from repro.bayesian import MCDropoutPredictor

        x = rng.normal(size=(4, 12))
        cim = engine.predict(x)
        software = MCDropoutPredictor(
            model, n_iterations=60, rng=np.random.default_rng(2)
        ).predict(x)
        assert np.allclose(cim.mean, software.mean, atol=0.35)

    def test_reuse_reduces_ops(self, rng):
        model = _mc_model(rng)
        with_reuse = CIMMCDropoutEngine(
            model, n_iterations=16, reuse=True, rng=np.random.default_rng(3)
        ).predict(rng.normal(size=(2, 12)))
        without = CIMMCDropoutEngine(
            model, n_iterations=16, reuse=False, rng=np.random.default_rng(3)
        ).predict(rng.normal(size=(2, 12)))
        assert with_reuse.ops_executed < without.ops_executed
        assert with_reuse.reuse_savings > 0.2

    def test_ordering_helps_on_average(self, rng):
        # Ordering minimises *mask* Hamming distance; value deltas can
        # deviate slightly where activations are zero, so the guarantee is
        # statistical rather than per-instance.
        model = _mc_model(rng)
        ordered_ops, unordered_ops = [], []
        for seed in range(4):
            x = np.random.default_rng(seed).normal(size=(1, 12))
            ordered_ops.append(
                CIMMCDropoutEngine(
                    model, n_iterations=16, ordering=True, refresh_every=0,
                    use_hardware_rng=False, rng=np.random.default_rng(seed + 40),
                ).predict(x).ops_executed
            )
            unordered_ops.append(
                CIMMCDropoutEngine(
                    model, n_iterations=16, ordering=False, refresh_every=0,
                    use_hardware_rng=False, rng=np.random.default_rng(seed + 40),
                ).predict(x).ops_executed
            )
        assert np.mean(ordered_ops) <= np.mean(unordered_ops)

    def test_tops_per_watt_positive(self, rng):
        engine = CIMMCDropoutEngine(_mc_model(rng), n_iterations=5, rng=rng)
        result = engine.predict(rng.normal(size=(1, 12)))
        assert result.tops_per_watt() > 0

    def test_unmappable_model_rejected(self, rng):
        from repro.nn import LSTM

        model = Sequential([LSTM(4, 4, rng), Dropout(0.5), Dense(4, 2, rng)])
        with pytest.raises(ValueError):
            CIMMCDropoutEngine(model, rng=rng)

    def test_model_without_dropout_rejected(self, rng):
        model = Sequential([Dense(4, 2, rng)])
        with pytest.raises(ValueError):
            CIMMCDropoutEngine(model, rng=rng)

    def test_hardware_rng_masks_balanced(self, rng):
        engine = CIMMCDropoutEngine(
            _mc_model(rng), n_iterations=40, use_hardware_rng=True, rng=rng
        )
        streams = engine.draw_mask_streams(rng)
        keep_rate = streams[1].empirical_keep_rate()
        assert keep_rate == pytest.approx(0.5, abs=0.08)


class TestLocalizerSmoke:
    """Small end-to-end smoke test (full runs live in benchmarks)."""

    @pytest.fixture(scope="class")
    def world(self):
        from repro.experiments.common import build_room_world

        return build_room_world(seed=7, n_steps=6, n_cloud_points=1200, image=(24, 18))

    @pytest.mark.parametrize("backend", ["digital-float", "digital", "cim"])
    def test_backends_run_and_stay_bounded(self, backend, world):
        localizer = CIMParticleFilterLocalizer(
            world.cloud,
            world.camera,
            camera_mount=world.mount,
            backend=backend,
            n_components=16,
            n_particles=120,
            rng=np.random.default_rng(3),
        )
        run_rng = np.random.default_rng(11)
        start = world.states[0] + np.array([0.2, -0.2, 0.1, 0.1])
        localizer.initialize_tracking(
            start, np.array([0.3, 0.3, 0.2, 0.2]), run_rng
        )
        result = localizer.run(world.controls, world.depths, world.states, run_rng)
        assert result.errors.shape == (6,)
        assert result.errors[-1] < 2.0
        assert result.energy.total_energy_j() >= 0

    def test_global_initialisation(self, world):
        localizer = CIMParticleFilterLocalizer(
            world.cloud,
            world.camera,
            camera_mount=world.mount,
            backend="digital-float",
            n_components=12,
            n_particles=80,
            rng=np.random.default_rng(3),
        )
        localizer.initialize_global(np.random.default_rng(0), z_range=(0.5, 2.0))
        states = localizer.filter.particles.states
        assert states.shape == (80, 4)
        assert states[:, 2].min() >= 0.5

    def test_invalid_backend(self, world):
        with pytest.raises(ValueError):
            CIMParticleFilterLocalizer(
                world.cloud, world.camera, backend="quantum"
            )
