"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP-660 editable installs (``pip install -e .``) cannot build a wheel.  This
shim enables the legacy editable path::

    python setup.py develop

Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
