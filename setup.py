"""Packaging entry point.

The offline environment ships setuptools without the ``wheel`` package, so
PEP-660 editable installs (``pip install -e .``) cannot build a wheel.  This
script enables the legacy editable path::

    python setup.py develop

and declares the ``repro`` console script (equivalent to
``python -m repro``).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_VERSION = re.search(
    r'__version__\s*=\s*"([^"]+)"',
    Path(__file__).with_name("src").joinpath("repro", "version.py").read_text(),
).group(1)

setup(
    name="repro-cim-autonomy",
    version=_VERSION,
    description=(
        "Reproduction of Darabi et al., 'Navigating the Unknown: "
        "Uncertainty-Aware Compute-in-Memory Autonomy of Edge Robotics' "
        "(DATE 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.api.cli:main"]},
)
