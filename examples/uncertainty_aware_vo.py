"""Uncertainty-aware visual odometry (paper Fig. 3c-f).

Trains the MC-Dropout VO network on synthetic RGB-D sequences, integrates
trajectories under several inference conditions, and demonstrates that the
predictive variance flags disturbed (occluded) frames.

Run:  python examples/uncertainty_aware_vo.py
"""

import numpy as np

from repro.experiments.fig3_correlation import error_uncertainty_experiment
from repro.experiments.fig3_trajectory import vo_trajectory_experiment


def trajectories() -> None:
    print("=" * 70)
    print("VO trajectories across inference conditions, Fig. 3(c-e)")
    print("=" * 70)
    data = vo_trajectory_experiment(
        modes=(
            "deterministic-float",
            "deterministic-4bit",
            "mc-software",
            "mc-cim-4bit",
            "mc-cim-6bit",
        )
    )
    gt = data["ground_truth"]
    print(f"ground-truth path: {len(gt)} poses, "
          f"{np.linalg.norm(np.diff(gt, axis=0), axis=1).sum():.2f} m long")
    print(f"\n{'mode':>22} {'ATE rmse':>10} {'RPE trans':>10} {'final err':>10}")
    for mode, result in data["modes"].items():
        report = result["report"]
        print(
            f"{mode:>22} {report['ate_rmse_m']:>10.3f} "
            f"{report['rpe_trans_mean_m']:>10.3f} "
            f"{report['final_position_error_m']:>10.3f}"
        )
    # Print the X-Y projection the paper plots (first/last few points).
    mc = data["modes"]["mc-cim-4bit"]["positions"]
    print("\nX-Y trajectory samples (gt -> mc-cim-4bit):")
    for k in np.linspace(0, len(gt) - 1, 6).astype(int):
        print(
            f"  t={k:2d}  gt=({gt[k, 0]:+.2f}, {gt[k, 1]:+.2f})   "
            f"est=({mc[k, 0]:+.2f}, {mc[k, 1]:+.2f})"
        )


def uncertainty_correlation() -> None:
    print("\n" + "=" * 70)
    print("Error vs predictive uncertainty, Fig. 3(f)")
    print("=" * 70)
    for engine in ("software", "cim-4bit"):
        data = error_uncertainty_experiment(engine=engine)
        corr = data["correlation"]
        print(
            f"{engine:>10}: pearson r = {corr['pearson']:.3f}, "
            f"spearman rho = {corr['spearman']:.3f}, AUSE = {data['ause']:.3f}"
        )
        for level in sorted(set(data["severity"])):
            mask = data["severity"] == level
            print(
                f"    occlusion {level:.2f}: error {data['errors'][mask].mean():.3f} m, "
                f"variance {data['uncertainties'][mask].mean():.3f}"
            )


if __name__ == "__main__":
    trajectories()
    uncertainty_correlation()
