"""Quickstart: the two co-designed engines in ~60 lines each.

Builds a synthetic room, runs one CIM particle-filter localization update,
then runs CIM MC-Dropout inference on a toy network -- the minimal tour of
the public API.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.circuits.energy import format_energy
from repro.core import CIMMCDropoutEngine, CIMParticleFilterLocalizer
from repro.nn import Dense, Dropout, ReLU, Sequential
from repro.scene import DepthRenderer, PinholeCamera, make_room_scene
from repro.scene.camera import body_camera_mount
from repro.scene.trajectory import drone_orbit_states, states_to_controls
from repro.filtering.measurement import state_to_pose
from repro.sram.macro import MacroConfig


def demo_particle_filter() -> None:
    print("=" * 64)
    print("1. CIM particle-filter localization (paper Sec. II)")
    print("=" * 64)
    rng = np.random.default_rng(7)
    scene = make_room_scene(rng)
    cloud = scene.sample_point_cloud(2500, rng, noise_std=0.01)
    camera = PinholeCamera.from_fov(40, 30, fov_x_deg=70.0)
    mount = body_camera_mount(np.deg2rad(25))

    # Ground-truth flight and rendered depth frames.
    states = drone_orbit_states(np.zeros(3), radius=1.3, height=1.2, n_steps=10)
    controls = np.vstack([np.zeros(4), states_to_controls(states)])
    renderer = DepthRenderer(scene, camera)
    depths = [renderer.render(state_to_pose(s, mount)) for s in states]

    # The localizer fits the map, programs the tiled inverter arrays, and
    # wires the particle filter -- one constructor call.
    localizer = CIMParticleFilterLocalizer(
        cloud, camera, camera_mount=mount, backend="cim",
        n_components=48, n_particles=300, rng=np.random.default_rng(1),
    )
    run_rng = np.random.default_rng(2)
    start = states[0] + np.array([0.3, -0.3, 0.1, 0.15])
    localizer.initialize_tracking(start, np.array([0.4, 0.4, 0.2, 0.2]), run_rng)
    result = localizer.run(controls, depths, states, run_rng)
    for step, error in enumerate(result.errors):
        print(f"  step {step:2d}: position error = {error:.3f} m")
    energy = result.energy.total_energy_j()
    queries = result.energy.count("adc_conversion")
    print(f"  likelihood queries: {queries}, total array energy: {format_energy(energy)}")
    print(f"  energy per likelihood evaluation: {format_energy(energy / queries)}")


def demo_mc_dropout() -> None:
    print("\n" + "=" * 64)
    print("2. CIM MC-Dropout inference (paper Sec. III)")
    print("=" * 64)
    rng = np.random.default_rng(0)
    model = Sequential(
        [
            Dense(16, 32, rng),
            ReLU(),
            Dropout(0.5, rng=rng),
            Dense(32, 4, rng),
        ]
    )
    engine = CIMMCDropoutEngine(
        model,
        MacroConfig(weight_bits=4),
        n_iterations=30,
        rng=np.random.default_rng(3),
    )
    x = rng.normal(size=(2, 16))
    result = engine.predict(x)
    print(f"  predictive mean[0]     : {np.round(result.mean[0], 3)}")
    print(f"  predictive variance[0] : {np.round(result.variance[0], 3)}")
    print(f"  MACs executed          : {result.ops_executed} "
          f"({result.reuse_savings:.0%} saved by reuse+ordering)")
    print(f"  energy                 : {format_energy(result.energy.total_energy_j())}")
    print(f"  macro efficiency       : {result.tops_per_watt():.0f} TOPS/W (macro-level)")


if __name__ == "__main__":
    demo_particle_filter()
    demo_mc_dropout()
