"""Energy and efficiency study (paper Fig. 2i + Sec. III-D).

Reproduces the two headline efficiency numbers: the ~25x likelihood-energy
advantage of the 4-bit inverter-array CIM over an 8-bit digital GMM
processor, and the 4-bit vs 6-bit TOPS/W ordering of the MC-Dropout macro,
including the reuse/ordering ablation.

Run:  python examples/energy_study.py
"""

from repro.experiments.fig2_energy import likelihood_energy_comparison
from repro.experiments.tops_per_watt import efficiency_table


def particle_filter_energy() -> None:
    print("=" * 70)
    print("Likelihood-evaluation energy (Fig. 2i): 500 columns, 100 components")
    print("=" * 70)
    data = likelihood_energy_comparison()
    cim_fj = data["cim_energy_per_query_j"] * 1e15
    digital_fj = data["digital_energy_per_query_j"] * 1e15
    print(f"  4-bit HMGM inverter CIM : {cim_fj:8.1f} fJ   (paper: 374 fJ)")
    print(f"  8-bit digital GMM       : {digital_fj:8.1f} fJ")
    print(f"  ratio                   : {data['ratio']:8.1f} x  (paper: ~25x)")
    print("\n  CIM breakdown per query:")
    for op, value in data["cim_breakdown_j"].items():
        print(f"    {op:20}: {value * 1e15:7.1f} fJ")


def macro_efficiency() -> None:
    print("\n" + "=" * 70)
    print("MC-Dropout macro efficiency (Sec. III-D): 30 iterations, 16 nm")
    print("=" * 70)
    data = efficiency_table()
    header = f"{'bits':>5} {'reuse':>6} {'order':>6} {'exec frac':>10} {'TOPS/W (sys)':>13}"
    print(header)
    for row in data["rows"]:
        print(
            f"{row['weight_bits']:>5} {str(row['reuse']):>6} "
            f"{str(row['ordering']):>6} {row['executed_fraction']:>10.3f} "
            f"{row['system_tops_per_watt']:>13.2f}"
        )
    print(f"\n  paper reference: 3.04 TOPS/W @ 4-bit, ~2 TOPS/W @ 6-bit")


if __name__ == "__main__":
    particle_filter_energy()
    macro_efficiency()
