"""SRAM-immersed RNG bring-up (paper Fig. 3b).

Instantiates cross-coupled-inverter RNGs across process corners, shows the
raw (often stuck) bits, runs the bias-trim calibration, and sweeps the
column count to demonstrate mismatch filtering vs noise amplification.

Run:  python examples/rng_calibration.py
"""

import numpy as np

from repro.circuits.technology import NODE_16NM
from repro.experiments.fig3_rng import rng_statistics
from repro.sram.dropout_gen import DropoutBitGenerator
from repro.sram.rng import CrossCoupledInverterRNG


def single_instance_story() -> None:
    print("=" * 66)
    print("One RNG instance: bias budget and calibration")
    print("=" * 66)
    cell = CrossCoupledInverterRNG(NODE_16NM, rng=np.random.default_rng(5))
    budget = cell.bias_decomposition()
    for name, value in budget.items():
        print(f"  {name:28}: {value * 1e3:+.3f} mV")
    run = np.random.default_rng(6)
    raw = cell.generate(2000, run)
    print(f"  raw ones-rate (uncalibrated): {raw.mean():.3f}")
    calibration = cell.calibrate(run)
    print(
        f"  calibration: {calibration.ones_rate_before:.3f} -> "
        f"{calibration.ones_rate_after:.3f} with trim "
        f"{calibration.trim_volts * 1e3:+.3f} mV"
    )
    bits = cell.generate(20000, run).astype(float)
    print(f"  post-calibration mean {bits.mean():.4f}, "
          f"lag-1 autocorr {np.corrcoef(bits[:-1], bits[1:])[0, 1]:+.4f}")


def column_sweep() -> None:
    print("\n" + "=" * 66)
    print("Column sweep: mismatch filtering / noise amplification")
    print("=" * 66)
    stats = rng_statistics(column_sweep=(2, 4, 8, 16, 32), n_instances=10)
    print(f"{'columns':>8} {'bias before':>12} {'bias after':>12} {'mm/noise':>10}")
    for row in stats["rows"]:
        print(
            f"{row['columns_per_side']:>8} {row['bias_before']:>12.3f} "
            f"{row['bias_after']:>12.4f} {row['mismatch_to_noise']:>10.3f}"
        )


def dropout_stream_demo() -> None:
    print("\n" + "=" * 66)
    print("Dropout bitstream generation")
    print("=" * 66)
    cell = CrossCoupledInverterRNG(NODE_16NM, rng=np.random.default_rng(9))
    cell.calibrate(np.random.default_rng(10))
    for keep in (0.5, 0.7):
        generator = DropoutBitGenerator(cell, keep_probability=keep)
        mask = generator.mask(8000, np.random.default_rng(11))
        print(
            f"  keep_p={keep}: empirical rate {mask.mean():.3f}, "
            f"cycles/bit {generator.cycles_used / 8000:.1f}"
        )


if __name__ == "__main__":
    single_instance_story()
    column_sweep()
    dropout_stream_demo()
