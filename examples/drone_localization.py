"""Drone localization study: HMGM-CIM vs digital GMM backends (Fig. 2e-h).

Runs the same rendered flight through three likelihood backends and prints
the per-step error traces plus the energy story (Fig. 2i flavour), then a
global-localization demo showing the particle cloud collapsing.

Run:  python examples/drone_localization.py
"""

import numpy as np

from repro.circuits.energy import format_energy
from repro.core import CIMParticleFilterLocalizer
from repro.experiments.common import build_room_world


def tracking_comparison() -> None:
    print("=" * 70)
    print("Tracking comparison (biased prior), paper Fig. 2(f-h)")
    print("=" * 70)
    world = build_room_world(seed=7, n_steps=20)
    traces = {}
    for backend in ("digital-float", "digital", "cim"):
        localizer = CIMParticleFilterLocalizer(
            world.cloud,
            world.camera,
            camera_mount=world.mount,
            backend=backend,
            n_components=64,
            n_particles=400,
            rng=np.random.default_rng(3),
        )
        run_rng = np.random.default_rng(11)
        start = world.states[0] + np.array([0.4, -0.3, 0.15, 0.2])
        localizer.initialize_tracking(
            start, np.array([0.5, 0.5, 0.3, 0.3]), run_rng
        )
        result = localizer.run(world.controls, world.depths, world.states, run_rng)
        traces[backend] = result
    print(f"{'step':>4}", *(f"{b:>16}" for b in traces))
    for step in range(len(world.states)):
        print(
            f"{step:>4}",
            *(f"{traces[b].errors[step]:>16.3f}" for b in traces),
        )
    print("\nsteady-state error (last 8 steps):")
    for backend, result in traces.items():
        print(f"  {backend:>14}: {result.errors[-8:].mean():.3f} m")
    cim = traces["cim"]
    queries = cim.energy.count("adc_conversion")
    print(
        f"\nCIM likelihood energy: {format_energy(cim.energy.total_energy_j() / queries)}"
        f" per evaluation over {queries} evaluations"
    )


def global_localization_demo() -> None:
    print("\n" + "=" * 70)
    print("Global localization demo: particle spread over steps, Fig. 2(e)")
    print("=" * 70)
    # Global localization is the hardest regime (the paper's Fig. 2e);
    # the oracle-precision backend shows the particle-convergence story,
    # and the backend accuracy comparison lives in the tracking section.
    world = build_room_world(seed=7, n_steps=25)
    localizer = CIMParticleFilterLocalizer(
        world.cloud,
        world.camera,
        camera_mount=world.mount,
        backend="digital-float",
        n_components=64,
        n_particles=1000,
        temperature=16.0,
        rng=np.random.default_rng(3),
    )
    run_rng = np.random.default_rng(11)
    localizer.initialize_global(run_rng, z_range=(0.5, 2.0))
    for step, (control, depth) in enumerate(zip(world.controls, world.depths)):
        diagnostics = localizer.step(control, depth, run_rng)
        error = np.linalg.norm(diagnostics.estimate[:3] - world.states[step, :3])
        print(
            f"  step {step:2d}: spread {diagnostics.spread:6.3f} m   "
            f"ESS {diagnostics.ess:7.1f}   err {error:6.3f} m"
            f"{'   [resampled]' if diagnostics.resampled else ''}"
        )
    print(
        "\nNote: from a fully uniform prior the posterior may lock onto a"
        "\nstructural alias of the room (classic Monte-Carlo-localization"
        "\nbehaviour in symmetric environments) -- the spread/ESS trace above"
        "\nshows the belief collapsing either way.  The paper's accuracy"
        "\nclaim (Fig. 2f-h) concerns the tracking regime of the previous"
        "\nsection, where all backends converge to sub-half-meter error."
    )


if __name__ == "__main__":
    tracking_comparison()
    global_localization_demo()
