"""Common result schemas for the public API.

Two dataclasses carry everything the stack produces:

- :class:`InferenceResult` -- one substrate inference (MC-Dropout pass or
  a localization run): mean / variance / op counts / energy in a schema
  shared by every substrate.
- :class:`ExperimentResult` -- one experiment execution: metrics plus the
  resolved config, seed, substrate and timing metadata.

Both round-trip losslessly through JSON: numpy arrays are encoded as
tagged ``{"__ndarray__": ..., "dtype": ..., "shape": ...}`` objects so
``from_json(to_json(x))`` restores dtype and shape exactly.

Non-finite floats (``NaN``, ``Infinity``) survive the default round-trip
because Python's ``json`` both emits and parses the bare tokens -- but
those tokens are **not** valid JSON, so anything crossing a wire to
non-Python clients (the :mod:`repro.serve` HTTP endpoint) uses the
*strict* encoding instead: :func:`strict_dumps` replaces every
non-finite float with a tagged ``{"__nonfinite__": "nan"|"inf"|"-inf"}``
sentinel object and serialises with ``allow_nan=False``;
:func:`strict_loads` restores the floats exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from repro.version import __version__

_NDARRAY_TAG = "__ndarray__"


def config_hash(overrides: Mapping[str, Any] | None) -> str:
    """Short stable digest of a config-override mapping.

    Used to disambiguate result filenames and job ids: two runs of the
    same experiment/substrate/seed with different ``--set`` overrides get
    different stems instead of silently overwriting each other.  Returns
    ``""`` for no overrides so default filenames stay unchanged.
    """
    if not overrides:
        return ""
    # repro: ignore[DET006] hash input only; never parsed or sent anywhere
    canonical = json.dumps(to_jsonable(dict(overrides)), sort_keys=True)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:8]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serialisable primitives.

    Numpy arrays become tagged dicts (reversible via
    :func:`from_jsonable`); numpy scalars become Python scalars; tuples
    become lists; dataclasses become dicts.  Unknown objects fall back to
    ``str(obj)`` so report dicts never crash serialisation.
    """
    if isinstance(obj, np.ndarray):
        return {
            _NDARRAY_TAG: obj.tolist(),
            "dtype": str(obj.dtype),
            "shape": list(obj.shape),
        }
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return to_jsonable(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(value) for value in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    return str(obj)


def from_jsonable(obj: Any) -> Any:
    """Reverse :func:`to_jsonable`, restoring tagged numpy arrays."""
    if isinstance(obj, dict):
        if _NDARRAY_TAG in obj and "dtype" in obj and "shape" in obj:
            data = np.asarray(obj[_NDARRAY_TAG], dtype=np.dtype(obj["dtype"]))
            return data.reshape(obj["shape"])
        return {key: from_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [from_jsonable(value) for value in obj]
    return obj


_NONFINITE_TAG = "__nonfinite__"
_NONFINITE_ENCODE = {float("inf"): "inf", float("-inf"): "-inf"}
_NONFINITE_DECODE = {
    "nan": float("nan"),
    "inf": float("inf"),
    "-inf": float("-inf"),
}


def sanitize_nonfinite(obj: Any) -> Any:
    """Replace non-finite floats in a jsonable tree with tagged sentinels.

    Operates on the output of :func:`to_jsonable` (plain dicts / lists /
    scalars); each ``nan`` / ``inf`` / ``-inf`` float becomes
    ``{"__nonfinite__": "nan"|"inf"|"-inf"}`` so the tree serialises as
    strictly valid JSON (``json.dumps(..., allow_nan=False)``).
    """
    if isinstance(obj, float) and not np.isfinite(obj):
        tag = "nan" if np.isnan(obj) else _NONFINITE_ENCODE[obj]
        return {_NONFINITE_TAG: tag}
    if isinstance(obj, dict):
        return {key: sanitize_nonfinite(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [sanitize_nonfinite(value) for value in obj]
    return obj


def restore_nonfinite(obj: Any) -> Any:
    """Reverse :func:`sanitize_nonfinite`, restoring the tagged floats."""
    if isinstance(obj, dict):
        if set(obj) == {_NONFINITE_TAG}:
            try:
                return _NONFINITE_DECODE[obj[_NONFINITE_TAG]]
            except (KeyError, TypeError):
                raise ValueError(
                    f"unknown non-finite tag {obj[_NONFINITE_TAG]!r}"
                ) from None
        return {key: restore_nonfinite(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [restore_nonfinite(value) for value in obj]
    return obj


def strict_dumps(obj: Any, indent: int | None = None) -> str:
    """Strictly valid JSON text for ``obj`` (wire format).

    ``obj`` is passed through :func:`to_jsonable` then
    :func:`sanitize_nonfinite`, so numpy arrays become tagged dicts and
    non-finite floats become tagged sentinels; the result is guaranteed
    parseable by any JSON implementation (``allow_nan=False`` enforces
    it).
    """
    return json.dumps(
        sanitize_nonfinite(to_jsonable(obj)), indent=indent, allow_nan=False
    )


def strict_loads(text: str) -> Any:
    """Parse :func:`strict_dumps` output, restoring non-finite floats.

    Numpy-array tags are left in jsonable form for the caller's
    ``from_dict`` / :func:`from_jsonable` to restore.
    """
    return restore_nonfinite(json.loads(text))


def _optional_array(value: Any) -> np.ndarray | None:
    if value is None:
        return None
    return np.asarray(value)


@dataclass
class InferenceResult:
    """One inference through a registered substrate.

    Attributes:
        substrate: registered substrate name (e.g. ``"cim-ordered"``).
        workload: ``"mc-dropout"`` or ``"localization"``.
        mean: primary estimate -- (B, out) predictive mean for MC-Dropout,
            (T, 4) posterior-mean states for localization.
        variance: (B, out) predictive variance, or None when the workload
            does not produce one.
        samples: raw per-iteration outputs when available.
        ops_executed: operations the substrate actually performed.
        ops_naive: operations a reuse-free, mask-oblivious engine would
            perform (None when the notion does not apply).
        energy_j: total energy charged to the run.
        energy_breakdown_j: per-operation energy split.
        extras: workload-specific scalars/arrays (errors, mask order, ...).
    """

    substrate: str
    workload: str
    mean: np.ndarray
    variance: np.ndarray | None = None
    samples: np.ndarray | None = None
    ops_executed: int | None = None
    ops_naive: int | None = None
    energy_j: float = 0.0
    energy_breakdown_j: dict[str, float] = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def reuse_savings(self) -> float:
        """Fraction of naive work avoided (0 when unknown)."""
        if not self.ops_naive or self.ops_executed is None:
            return 0.0
        return 1.0 - self.ops_executed / self.ops_naive

    def to_dict(self) -> dict:
        return to_jsonable(dataclasses.asdict(self))

    def to_json(self, indent: int | None = None) -> str:
        # repro: ignore[DET006] Python-only round-trip; NaN tokens parse back
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "InferenceResult":
        data = from_jsonable(payload)
        return cls(
            substrate=data["substrate"],
            workload=data["workload"],
            mean=np.asarray(data["mean"]),
            variance=_optional_array(data.get("variance")),
            samples=_optional_array(data.get("samples")),
            ops_executed=data.get("ops_executed"),
            ops_naive=data.get("ops_naive"),
            energy_j=float(data.get("energy_j", 0.0)),
            energy_breakdown_j=data.get("energy_breakdown_j", {}),
            extras=data.get("extras", {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "InferenceResult":
        return cls.from_dict(json.loads(text))


@dataclass
class BatchResult:
    """One batched inference (``session.run_batch``) on a substrate.

    Holds one :class:`InferenceResult` per batch item plus batch-level
    accounting that has no per-item owner (e.g. the hardware RNG energy
    of drawing the shared mask streams).  Each item is bit-for-bit what a
    standalone ``session.run`` with the same pinned masks and per-item
    noise generator would produce, so any cell of a large batch can be
    reproduced in isolation.

    Attributes:
        substrate: registered substrate name.
        workload: ``"mc-dropout"`` or ``"localization"``.
        results: per-item inference results, in input order.
        mask_generation_energy_j: energy spent drawing the shared mask
            streams (amortised over the whole batch, 0 for software RNG).
        extras: batch-level metadata (item count, iteration count, ...).
    """

    substrate: str
    workload: str
    results: list[InferenceResult]
    mask_generation_energy_j: float = 0.0
    extras: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[InferenceResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> InferenceResult:
        return self.results[index]

    @property
    def total_energy_j(self) -> float:
        """Batch energy: per-item totals plus shared mask generation."""
        return (
            sum(result.energy_j for result in self.results)
            + self.mask_generation_energy_j
        )

    @property
    def total_ops_executed(self) -> int:
        return sum(result.ops_executed or 0 for result in self.results)

    def stacked_means(self) -> np.ndarray:
        """All item means concatenated along the row axis."""
        return np.concatenate([result.mean for result in self.results], axis=0)

    def to_dict(self) -> dict:
        return {
            "substrate": self.substrate,
            "workload": self.workload,
            "results": [result.to_dict() for result in self.results],
            "mask_generation_energy_j": self.mask_generation_energy_j,
            "extras": to_jsonable(self.extras),
        }

    def to_json(self, indent: int | None = None) -> str:
        # repro: ignore[DET006] Python-only round-trip; NaN tokens parse back
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "BatchResult":
        return cls(
            substrate=payload["substrate"],
            workload=payload["workload"],
            results=[
                InferenceResult.from_dict(entry)
                for entry in payload.get("results", [])
            ],
            mask_generation_energy_j=float(
                payload.get("mask_generation_energy_j", 0.0)
            ),
            extras=from_jsonable(payload.get("extras", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "BatchResult":
        return cls.from_dict(json.loads(text))


@dataclass
class ExperimentResult:
    """One experiment execution through the registry.

    Attributes:
        experiment_id: registry id (e.g. ``"E4"``).
        title: human-readable experiment title.
        seed: the seed the run was executed with.
        substrate: substrate override used, or None for the experiment's
            built-in default(s).
        config: resolved typed config as a plain dict.
        metrics: the experiment's result payload (JSON-safe).
        runtime_s: wall-clock execution time.
        version: package version that produced the result.
    """

    experiment_id: str
    title: str
    seed: int
    substrate: str | None
    config: dict
    metrics: dict
    runtime_s: float
    version: str = __version__

    def to_dict(self) -> dict:
        return to_jsonable(dataclasses.asdict(self))

    def to_json(self, indent: int | None = None) -> str:
        # repro: ignore[DET006] Python-only round-trip; NaN tokens parse back
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        data = from_jsonable(payload)
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            seed=int(data["seed"]),
            substrate=data.get("substrate"),
            config=data.get("config", {}),
            metrics=data.get("metrics", {}),
            runtime_s=float(data.get("runtime_s", 0.0)),
            version=data.get("version", __version__),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        """Write the result as pretty-printed JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(indent=2) + "\n")
        return path


__all__ = [
    "InferenceResult",
    "BatchResult",
    "ExperimentResult",
    "config_hash",
    "to_jsonable",
    "from_jsonable",
    "sanitize_nonfinite",
    "restore_nonfinite",
    "strict_dumps",
    "strict_loads",
]
