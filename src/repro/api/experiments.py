"""Registered experiment specs for every paper figure/table (E1-E11).

Each experiment is a thin, typed wrapper over the corresponding driver in
:mod:`repro.experiments`; the substrate-parametrisable ones (E3, E6, E7)
are rewired through :mod:`repro.api.substrates` sessions so any registered
backend can be substituted from the CLI (``--substrate cim-reuse``).

Run them through :func:`repro.api.registry.run_experiment` or the
``python -m repro`` CLI; importing this module populates the registry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import ExperimentContext, experiment
from repro.api.substrates import get_substrate
from repro.experiments.common import build_room_world, build_vo_world
from repro.experiments.conformal_vo import conformal_vo_experiment
from repro.experiments.fig2_energy import likelihood_energy_comparison
from repro.experiments.fig2_inverter import inverter_transfer_data
from repro.experiments.fig3_correlation import error_uncertainty_experiment
from repro.experiments.fig3_rng import rng_statistics
from repro.experiments.fig3_trajectory import vo_trajectory_experiment
from repro.experiments.map_fidelity import map_fidelity
from repro.experiments.reuse_ablation import reuse_ablation
from repro.experiments.tops_per_watt import efficiency_table

_PF_SUBSTRATES = ("digital", "digital-float", "cim", "cim-reuse", "cim-ordered")
_VO_SUBSTRATES = ("digital", "cim", "cim-reuse", "cim-ordered")

# Spawn-key namespaces of the per-experiment rng streams: (experiment
# number, purpose).  Keyed SeedSequence derivation never collides across
# base seeds; the old additive offsets (``cfg.seed + 100``/``+ 200``/
# ``+ 77``) made e.g. E3's session stream at seed=0 equal its run stream
# at seed=-100 -- the DET002 bug class PR 7 fixed in scene/dataset.py.
# The streams changed (once) at this migration and are pinned by
# regression tests in tests/test_api_registry.py.
_E3_SESSION, _E3_RUN = (3, 0), (3, 1)
_E6_SESSION = (6, 0)


def _keyed_rng(seed: int, spawn_key: tuple[int, ...]) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence(int(seed), spawn_key=spawn_key)
    )


@dataclass(frozen=True)
class InverterConfig:
    seed: int = 0
    n_grid: int = 201


@experiment(
    "E1",
    title="Fig 2b-d: inverter transfer functions",
    config=InverterConfig,
)
def run_e1(ctx: ExperimentContext) -> dict:
    """Switching-current bells, peak-shift error and tail rectilinearity."""
    data = inverter_transfer_data(n_grid=ctx.config.n_grid)
    return {
        "peak_shift_error_v": data["peak_shift_error"],
        "rectilinearity": data["rectilinearity"],
    }


@dataclass(frozen=True)
class LocalizationConfig:
    seed: int = 7
    n_steps: int = 25
    n_particles: int = 400
    n_components: int = 64
    n_cloud_points: int = 3000
    image: tuple[int, int] = (40, 30)
    substrates: tuple[str, ...] = ("digital-float", "digital", "cim")
    prior_offset: tuple[float, float, float, float] = (0.4, -0.3, 0.15, 0.2)
    prior_sigma: tuple[float, float, float, float] = (0.5, 0.5, 0.3, 0.3)


@experiment(
    "E3",
    title="Fig 2e-h: localization comparison",
    config=LocalizationConfig,
    substrates=_PF_SUBSTRATES,
)
def run_e3(ctx: ExperimentContext) -> dict:
    """Same flight through each likelihood substrate; accuracy rows.

    Reuse/ordering are MC-Dropout concepts, so the ``cim*`` substrates all
    map to the particle filter's ``"cim"`` likelihood backend; each row
    reports both the requested ``substrate`` and the physical ``backend``.
    """
    cfg = ctx.config
    world = build_room_world(
        seed=cfg.seed,
        n_steps=cfg.n_steps,
        n_cloud_points=cfg.n_cloud_points,
        image=cfg.image,
    )
    names = (ctx.substrate.name,) if ctx.substrate else cfg.substrates
    rows = []
    for name in names:
        session = get_substrate(name).localization_session(
            world.cloud,
            world.camera,
            camera_mount=world.mount,
            n_components=cfg.n_components,
            n_particles=cfg.n_particles,
            rng=_keyed_rng(cfg.seed, _E3_SESSION),
        )
        run_rng = _keyed_rng(cfg.seed, _E3_RUN)
        start = world.states[0] + np.asarray(cfg.prior_offset)
        session.initialize_tracking(start, np.asarray(cfg.prior_sigma), run_rng)
        result = session.run(
            (world.controls, world.depths, world.states), rng=run_rng
        )
        row = dict(result.extras["summary"])
        row["substrate"] = name
        row["energy_j"] = result.energy_j
        rows.append(row)
    return {"rows": rows}


@dataclass(frozen=True)
class LikelihoodEnergyConfig:
    seed: int = 7
    n_components: int = 100
    total_columns: int = 500
    n_queries: int = 2000
    adc_bits: int = 4
    digital_bits: int = 8


@experiment(
    "E4",
    title="Fig 2i: likelihood energy",
    config=LikelihoodEnergyConfig,
)
def run_e4(ctx: ExperimentContext) -> dict:
    """Per-query likelihood energy: CIM inverter array vs 8-bit digital."""
    cfg = ctx.config
    return likelihood_energy_comparison(
        n_components=cfg.n_components,
        total_columns=cfg.total_columns,
        n_queries=cfg.n_queries,
        adc_bits=cfg.adc_bits,
        digital_bits=cfg.digital_bits,
        seed=cfg.seed,
    )


@dataclass(frozen=True)
class RNGStatsConfig:
    seed: int = 0
    column_sweep: tuple[int, ...] = (2, 4, 8, 16, 32)
    n_instances: int = 12
    bits_per_instance: int = 4096


@experiment(
    "E5",
    title="Fig 3b: SRAM RNG statistics",
    config=RNGStatsConfig,
)
def run_e5(ctx: ExperimentContext) -> dict:
    """Bias / noise statistics of the SRAM-immersed RNG."""
    cfg = ctx.config
    return rng_statistics(
        column_sweep=cfg.column_sweep,
        n_instances=cfg.n_instances,
        bits_per_instance=cfg.bits_per_instance,
        seed=cfg.seed,
    )


@dataclass(frozen=True)
class VOTrajectoryConfig:
    seed: int = 1
    n_iterations: int = 30
    epochs: int = 200
    n_scenes: int = 6
    frames_per_scene: int = 40
    hidden: tuple[int, ...] = (128, 64)
    modes: tuple[str, ...] = (
        "deterministic-float",
        "deterministic-4bit",
        "mc-cim-4bit",
        "mc-cim-6bit",
    )


@experiment(
    "E6",
    title="Fig 3c-e: VO trajectories",
    config=VOTrajectoryConfig,
    substrates=_VO_SUBSTRATES,
)
def run_e6(ctx: ExperimentContext) -> dict:
    """ATE of MC-Dropout VO across inference conditions or one substrate."""
    cfg = ctx.config
    if ctx.substrate is None:
        data = vo_trajectory_experiment(
            seed=cfg.seed,
            n_iterations=cfg.n_iterations,
            modes=cfg.modes,
            epochs=cfg.epochs,
            n_scenes=cfg.n_scenes,
            frames_per_scene=cfg.frames_per_scene,
            hidden=cfg.hidden,
        )
        return {
            "ate_rmse_m": {
                mode: result["report"]["ate_rmse_m"]
                for mode, result in data["modes"].items()
            }
        }
    # Substrate override: run the held-out scene through one uniform
    # MC-Dropout session and integrate the predicted increments.
    from repro.vo.evaluation import trajectory_report
    from repro.vo.odometry import increments_from_predictions, integrate_increments

    world = build_vo_world(
        seed=cfg.seed,
        n_scenes=cfg.n_scenes,
        frames_per_scene=cfg.frames_per_scene,
        hidden=cfg.hidden,
        epochs=cfg.epochs,
    )
    session = ctx.substrate.mc_dropout_session(
        world.model,
        n_iterations=cfg.n_iterations,
        calibration_inputs=world.train.features[:128],
        rng=_keyed_rng(cfg.seed, _E6_SESSION),
    )
    result = session.run(world.val.features)
    frames = world.dataset.frames(world.val_scene_index)
    gt_poses = [frame.pose for frame in frames]
    increments = increments_from_predictions(result.mean, world.val.scaler)
    estimated = integrate_increments(gt_poses[0], increments)
    report = trajectory_report(estimated, gt_poses)
    return {
        "ate_rmse_m": {ctx.substrate.name: report["ate_rmse_m"]},
        "report": report,
        "ops_executed": result.ops_executed,
        "ops_naive": result.ops_naive,
        "reuse_savings": result.reuse_savings,
        "energy_j": result.energy_j,
        "mean_uncertainty": None
        if result.variance is None
        else float(result.variance.mean()),
    }


@dataclass(frozen=True)
class CorrelationConfig:
    seed: int = 1
    n_iterations: int = 30
    epochs: int = 200
    n_scenes: int = 6
    frames_per_scene: int = 40
    hidden: tuple[int, ...] = (128, 64)
    engine: str = "software"
    occlusion_levels: tuple[float, ...] = (0.0, 0.15, 0.3, 0.5)


@experiment(
    "E7",
    title="Fig 3f: error-uncertainty correlation",
    config=CorrelationConfig,
    substrates=_VO_SUBSTRATES,
)
def run_e7(ctx: ExperimentContext) -> dict:
    """Correlation between pose error and MC-Dropout variance."""
    cfg = ctx.config
    predict_fn = None
    engine = cfg.engine
    if ctx.substrate is not None:
        # Route the prediction through a real substrate session so the
        # substrate's reuse policy / precision actually takes effect
        # (engine strings would collapse cim-reuse/cim-ordered into one).
        engine = ctx.substrate.name
        world = build_vo_world(
            seed=cfg.seed,
            n_scenes=cfg.n_scenes,
            frames_per_scene=cfg.frames_per_scene,
            hidden=cfg.hidden,
            epochs=cfg.epochs,
        )
        session = ctx.substrate.mc_dropout_session(
            world.model,
            n_iterations=cfg.n_iterations,
            calibration_inputs=world.train.features[:128],
            rng=np.random.default_rng(cfg.seed),
        )

        def predict_fn(features):
            result = session.run(features)
            return result.mean, result.variance

    data = error_uncertainty_experiment(
        seed=cfg.seed,
        n_iterations=cfg.n_iterations,
        occlusion_levels=cfg.occlusion_levels,
        engine=engine,
        epochs=cfg.epochs,
        n_scenes=cfg.n_scenes,
        frames_per_scene=cfg.frames_per_scene,
        hidden=cfg.hidden,
        predict_fn=predict_fn,
    )
    return {
        "engine": engine,
        "correlation": data["correlation"],
        "ause": data["ause"],
    }


@dataclass(frozen=True)
class EfficiencyConfig:
    seed: int = 1
    weight_bits: tuple[int, ...] = (4, 6)
    n_iterations: int = 30
    batch: int = 8
    epochs: int = 200


@experiment(
    "E8",
    title="Sec III-D: TOPS/W table",
    config=EfficiencyConfig,
)
def run_e8(ctx: ExperimentContext) -> dict:
    """Macro efficiency across precision x (reuse, ordering)."""
    cfg = ctx.config
    return efficiency_table(
        weight_bits=cfg.weight_bits,
        n_iterations=cfg.n_iterations,
        batch=cfg.batch,
        seed=cfg.seed,
        epochs=cfg.epochs,
    )


@dataclass(frozen=True)
class ReuseAblationConfig:
    seed: int = 0
    n_inputs: int = 256
    n_outputs: int = 128
    n_iterations: int = 30
    keep_probability: float = 0.5
    n_trials: int = 5


@experiment(
    "E9",
    title="Sec III-C: reuse ablation",
    config=ReuseAblationConfig,
)
def run_e9(ctx: ExperimentContext) -> dict:
    """Executed-MAC fraction under reuse / ordering engine variants."""
    cfg = ctx.config
    return reuse_ablation(
        n_inputs=cfg.n_inputs,
        n_outputs=cfg.n_outputs,
        n_iterations=cfg.n_iterations,
        keep_probability=cfg.keep_probability,
        n_trials=cfg.n_trials,
        seed=cfg.seed,
    )


@dataclass(frozen=True)
class MapFidelityConfig:
    seed: int = 7
    n_components: int = 64
    tiles: tuple[int, int, int] = (2, 2, 2)


@experiment(
    "E10",
    title="Sec II-C: map fidelity",
    config=MapFidelityConfig,
)
def run_e10(ctx: ExperimentContext) -> dict:
    """Held-out log-likelihood of GMM vs hardware-native HMGM maps."""
    cfg = ctx.config
    return map_fidelity(
        n_components=cfg.n_components, tiles=cfg.tiles, seed=cfg.seed
    )


@dataclass(frozen=True)
class ConformalConfig:
    seed: int = 1
    alpha: float = 0.1
    n_mc_iterations: int = 30
    epochs: int = 200


@experiment(
    "E11",
    title="Sec IV: conformal extension",
    config=ConformalConfig,
)
def run_e11(ctx: ExperimentContext) -> dict:
    """Split/adaptive conformal vs MC-Dropout coverage and cost."""
    cfg = ctx.config
    return conformal_vo_experiment(
        seed=cfg.seed,
        alpha=cfg.alpha,
        n_mc_iterations=cfg.n_mc_iterations,
        epochs=cfg.epochs,
    )


# The scenario library's SCN experiment registers on import, so any
# `repro run/sweep SCN` (and compiled scenario plans in worker processes)
# resolve it through the ordinary registry path.
import repro.scenarios.runner  # noqa: E402,F401  (registration side effect)
