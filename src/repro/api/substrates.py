"""Substrate registry and uniform inference sessions.

The paper's comparisons run the *same* Bayesian workloads on
interchangeable compute substrates (digital baseline vs. CIM with reuse /
ordering).  This module gives every substrate one name, one config and one
``session.run(inputs) -> InferenceResult`` interface:

    from repro.api import get_substrate

    substrate = get_substrate("cim-ordered")
    session = substrate.mc_dropout_session(model, n_iterations=30)
    result = session.run(features)          # InferenceResult
    result.mean, result.variance, result.energy_j, result.reuse_savings

Built-in substrates:

- ``digital``       -- software / digital-datapath baseline
- ``digital-float`` -- exact float oracle (localization only)
- ``cim``           -- SRAM / inverter-array CIM, no reuse, no ordering
- ``cim-reuse``     -- CIM + compute reuse (delta evaluation)
- ``cim-ordered``   -- CIM + reuse + optimal sample ordering (full recipe)

New substrates are added with :func:`register_substrate`; experiments look
them up by name so a registered substrate is immediately runnable from the
CLI via ``--substrate``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.api.results import BatchResult, InferenceResult
from repro.bayesian.masks import MaskStream
from repro.bayesian.mc_dropout import MCDropoutPredictor
from repro.core.cim_mc_dropout import CIMMCDropoutEngine
from repro.core.cim_particle_filter import CIMParticleFilterLocalizer
from repro.energy.models import digital_mc_dropout_energy
from repro.nn.dropout import Dropout
from repro.nn.layers import Dense
from repro.nn.sequential import Sequential
from repro.sram.macro import MacroConfig


@dataclass(frozen=True)
class ReusePolicy:
    """Compute-reuse knobs of the CIM MC-Dropout engine.

    Attributes:
        reuse: drive only changed input lines via the macro delta port.
        ordering: visit dropout masks in minimum-Hamming order.
        refresh_every: full re-evaluation period under reuse (bounds
            analog error accumulation); 0 disables refresh.
    """

    reuse: bool = False
    ordering: bool = False
    refresh_every: int = 8


@dataclass(frozen=True)
class MacroOptions:
    """CIM macro precision / RNG options (subset of MacroConfig).

    Attributes:
        weight_bits: stored weight precision (paper: 4 or 6).
        input_bits: input DAC precision.
        adc_bits: column ADC precision.
        use_hardware_rng: draw dropout masks from the SRAM-immersed
            cross-coupled-inverter RNG instead of a software stream.
        calibrate_rng: run the CCI bias-trim calibration before use.
    """

    weight_bits: int = 4
    input_bits: int = 6
    adc_bits: int = 6
    use_hardware_rng: bool = True
    calibrate_rng: bool = True

    def to_macro_config(self) -> MacroConfig:
        return MacroConfig(
            weight_bits=self.weight_bits,
            input_bits=self.input_bits,
            adc_bits=self.adc_bits,
        )


@dataclass(frozen=True)
class SubstrateConfig:
    """A named, registrable compute substrate.

    Attributes:
        name: registry handle (e.g. ``"cim-reuse"``).
        kind: ``"digital"`` or ``"cim"`` -- selects the engine family.
        description: one-line summary shown by ``repro list``.
        macro: CIM macro options (ignored for digital substrates).
        reuse: CIM reuse policy (ignored for digital substrates).
        likelihood_backend: particle-filter likelihood backend this
            substrate maps to (``"cim"``, ``"digital"``, ``"digital-float"``).
        digital_bits: datapath precision of the digital baseline.
    """

    name: str
    kind: str
    description: str = ""
    macro: MacroOptions = field(default_factory=MacroOptions)
    reuse: ReusePolicy = field(default_factory=ReusePolicy)
    likelihood_backend: str = "cim"
    digital_bits: int = 8

    def __post_init__(self) -> None:
        if self.kind not in ("digital", "cim"):
            raise ValueError(f"kind must be 'digital' or 'cim', got {self.kind!r}")

    def with_macro(self, **changes: Any) -> "SubstrateConfig":
        """A copy of this substrate with modified macro options."""
        return replace(self, macro=replace(self.macro, **changes))

    def mc_dropout_session(
        self,
        model: Sequential,
        n_iterations: int = 30,
        calibration_inputs: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> "MCDropoutSession":
        """An MC-Dropout inference session over ``model``."""
        return MCDropoutSession(
            self,
            model,
            n_iterations=n_iterations,
            calibration_inputs=calibration_inputs,
            rng=rng,
        )

    def localization_session(
        self,
        map_cloud: np.ndarray,
        camera: Any,
        rng: np.random.Generator | None = None,
        **localizer_kwargs: Any,
    ) -> "LocalizationSession":
        """A particle-filter localization session over ``map_cloud``."""
        return LocalizationSession(
            self, map_cloud, camera, rng=rng, **localizer_kwargs
        )


@runtime_checkable
class Substrate(Protocol):
    """Anything that can open uniform inference sessions.

    :class:`SubstrateConfig` is the canonical implementation; third-party
    substrates only need to satisfy this protocol to be registrable.
    """

    name: str
    kind: str

    def mc_dropout_session(
        self,
        model: Sequential,
        n_iterations: int = ...,
        calibration_inputs: np.ndarray | None = ...,
        rng: np.random.Generator | None = ...,
    ) -> "InferenceSession":
        ...

    def localization_session(
        self,
        map_cloud: np.ndarray,
        camera: Any,
        rng: np.random.Generator | None = ...,
        **localizer_kwargs: Any,
    ) -> "InferenceSession":
        ...


@runtime_checkable
class InferenceSession(Protocol):
    """Uniform run interface shared by every workload session."""

    def run(self, inputs: Any, rng: np.random.Generator | None = None) -> InferenceResult:
        ...

    def run_batch(
        self, inputs: Any, rng: np.random.Generator | None = None
    ) -> BatchResult:
        ...


@dataclass(frozen=True)
class MaskPlan:
    """Pre-drawn dropout mask streams (and visit order) for a session.

    A batch of inference calls shares one mask plan: the streams are
    drawn once -- amortising software sampling, hardware RNG cycles and
    the O(T^2) ordering search -- and pinned into every item's engine
    pass.  Obtained from :meth:`MCDropoutSession.draw_masks`.

    Attributes:
        streams: per-mapped-layer streams for CIM engines (None entries
            where a stage has no dropout) or per-Dropout-layer streams
            for the digital predictor.
        order: iteration visit order (None keeps the natural order).
        generation_energy_j: hardware RNG energy spent drawing the
            streams (0 for software sampling).
    """

    streams: tuple
    order: np.ndarray | None = None
    generation_energy_j: float = 0.0


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_SUBSTRATES: dict[str, SubstrateConfig] = {}


def register_substrate(
    config: SubstrateConfig, overwrite: bool = False
) -> SubstrateConfig:
    """Register a substrate under ``config.name``; returns it.

    Raises:
        ValueError: the name is taken and ``overwrite`` is False.
    """
    key = config.name.lower()
    if key in _SUBSTRATES and not overwrite:
        raise ValueError(
            f"substrate {config.name!r} already registered "
            "(pass overwrite=True to replace)"
        )
    _SUBSTRATES[key] = config
    return config


def get_substrate(name: str | SubstrateConfig) -> SubstrateConfig:
    """Resolve a substrate by name (configs pass through unchanged)."""
    if isinstance(name, SubstrateConfig):
        return name
    key = str(name).lower()
    if key not in _SUBSTRATES:
        raise KeyError(
            f"unknown substrate {name!r}; options: {available_substrates()}"
        )
    return _SUBSTRATES[key]


def available_substrates() -> list[str]:
    """Registered substrate names, sorted."""
    return sorted(_SUBSTRATES)


register_substrate(
    SubstrateConfig(
        name="digital",
        kind="digital",
        description="software / 8-bit digital-datapath baseline",
        likelihood_backend="digital",
    )
)
register_substrate(
    SubstrateConfig(
        name="digital-float",
        kind="digital",
        description="exact float oracle (digital, no quantisation)",
        likelihood_backend="digital-float",
    )
)
register_substrate(
    SubstrateConfig(
        name="cim",
        kind="cim",
        description="CIM macro / inverter array, no reuse, no ordering",
        reuse=ReusePolicy(reuse=False, ordering=False),
    )
)
register_substrate(
    SubstrateConfig(
        name="cim-reuse",
        kind="cim",
        description="CIM + compute reuse (delta evaluation)",
        reuse=ReusePolicy(reuse=True, ordering=False),
    )
)
register_substrate(
    SubstrateConfig(
        name="cim-ordered",
        kind="cim",
        description="CIM + reuse + optimal sample ordering (full recipe)",
        reuse=ReusePolicy(reuse=True, ordering=True),
    )
)


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------


class MCDropoutSession:
    """MC-Dropout inference on one substrate.

    Digital substrates run the software reference predictor (with a
    closed-form digital-datapath energy model); CIM substrates run
    :class:`~repro.core.cim_mc_dropout.CIMMCDropoutEngine` configured from
    the substrate's macro options and reuse policy.  Given identical RNGs
    the session reproduces the wrapped engine's outputs bit-for-bit.
    """

    workload = "mc-dropout"

    def __init__(
        self,
        substrate: SubstrateConfig | str,
        model: Sequential,
        n_iterations: int = 30,
        calibration_inputs: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.substrate = get_substrate(substrate)
        self.model = model
        self.n_iterations = int(n_iterations)
        self._rng = rng or np.random.default_rng(0)
        if self.substrate.kind == "cim":
            self.engine: CIMMCDropoutEngine | MCDropoutPredictor = (
                CIMMCDropoutEngine(
                    model,
                    self.substrate.macro.to_macro_config(),
                    n_iterations=self.n_iterations,
                    use_hardware_rng=self.substrate.macro.use_hardware_rng,
                    reuse=self.substrate.reuse.reuse,
                    ordering=self.substrate.reuse.ordering,
                    refresh_every=self.substrate.reuse.refresh_every,
                    calibrate_rng=self.substrate.macro.calibrate_rng,
                    calibration_inputs=calibration_inputs,
                    rng=self._rng,
                )
            )
        else:
            self.engine = MCDropoutPredictor(
                model, n_iterations=self.n_iterations, rng=self._rng
            )

    def clone(self) -> "MCDropoutSession":
        """A cheap, independent copy of this session for pooling.

        Serving pools (:mod:`repro.serve`) hold several pre-warmed
        sessions per (substrate, model) pair so micro-batches can run
        concurrently.  Cloning copies the session state wholesale --
        mapped macros, pinned DAC/ADC calibration, the instantiated (and
        bias-trimmed) hardware RNG -- instead of re-running hardware
        instantiation and calibration, and shares no mutable state with
        the original, so clone and original produce bit-for-bit identical
        results for identical ``run()`` arguments.
        """
        return copy.deepcopy(self)

    def draw_masks(self, rng: np.random.Generator | None = None) -> MaskPlan:
        """Draw (and order) one set of mask streams for later pinning.

        The returned :class:`MaskPlan` can be passed to :meth:`run` /
        :meth:`run_batch` so many inference calls share identical masks
        without re-drawing them -- the amortisation the batch runtime
        relies on.  With the hardware RNG the plan also carries the
        generation energy, which :meth:`run_batch` accounts once at the
        batch level instead of charging it to any single item.
        """
        rng = rng if rng is not None else self._rng
        if isinstance(self.engine, CIMMCDropoutEngine):
            generator = self.engine.bit_generator
            cycles_before = generator.cycles_used if generator is not None else 0
            streams = self.engine.draw_mask_streams(rng)
            order = self.engine.order_mask_streams(streams)
            energy = (
                generator.generation_energy(
                    cycles=generator.cycles_used - cycles_before
                )
                if generator is not None
                else 0.0
            )
            return MaskPlan(
                streams=tuple(streams), order=order, generation_energy_j=energy
            )
        streams = _bernoulli_streams(self.model, self.n_iterations, rng)
        return MaskPlan(streams=tuple(streams), order=None)

    def run(
        self,
        inputs: np.ndarray,
        rng: np.random.Generator | None = None,
        masks: MaskPlan | None = None,
    ) -> InferenceResult:
        """One MC-Dropout inference over an input batch.

        Args:
            inputs: (B, in) feature batch.
            rng: per-call generator (mask drawing + analog noise); default
                is the session's own generator.
            masks: pre-drawn mask plan (see :meth:`draw_masks`) pinning
                the dropout streams instead of drawing fresh ones.
        """
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        if isinstance(self.engine, CIMMCDropoutEngine):
            # predict() scopes the macro ledgers itself, so the result is
            # strictly per-call without resetting engine state here.
            result = self.engine.predict(
                x,
                rng=rng,
                mask_streams=None if masks is None else list(masks.streams),
                mask_order=None if masks is None else masks.order,
            )
            ledger = result.energy
            return InferenceResult(
                substrate=self.substrate.name,
                workload=self.workload,
                mean=result.mean,
                variance=result.variance,
                samples=result.samples,
                ops_executed=result.ops_executed,
                ops_naive=result.ops_naive,
                energy_j=ledger.total_energy_j(),
                energy_breakdown_j={
                    op: ledger.energy(op) for op in ledger.operations
                },
                extras={
                    "mask_order": result.mask_order,
                    "tops_per_watt": result.tops_per_watt(),
                    "n_iterations": self.n_iterations,
                },
            )
        # Honour a per-call rng on the digital path too: the software
        # predictor samples masks from the model's dropout layers, so an
        # explicit rng is routed in as pinned Bernoulli streams.
        mask_streams = None
        if masks is not None:
            mask_streams = list(masks.streams)
        elif rng is not None:
            mask_streams = _bernoulli_streams(self.model, self.n_iterations, rng)
        prediction = self.engine.predict(x, mask_streams=mask_streams)
        ops = self.engine.ops_per_iteration(x.shape[0]) * self.n_iterations
        layer_sizes = _dense_layer_sizes(self.model)
        energy = digital_mc_dropout_energy(
            self.substrate.macro.to_macro_config().node,
            layer_sizes,
            bits=self.substrate.digital_bits,
            n_iterations=self.n_iterations,
            batch=x.shape[0],
        )
        return InferenceResult(
            substrate=self.substrate.name,
            workload=self.workload,
            mean=prediction.mean,
            variance=prediction.variance,
            samples=prediction.samples,
            ops_executed=ops,
            ops_naive=ops,
            energy_j=energy,
            energy_breakdown_j={"digital_mac_datapath": energy},
            extras={"n_iterations": self.n_iterations},
        )

    def run_batch(
        self,
        inputs: Any,
        rng: np.random.Generator | None = None,
        masks: MaskPlan | None = None,
        item_rngs: list[np.random.Generator] | None = None,
    ) -> BatchResult:
        """Batched MC-Dropout inference: shared masks, per-item noise.

        The mask streams (and, for ordered CIM engines, the visit order)
        are drawn **once** from ``rng`` and pinned into every item's
        engine pass, so mask generation, the ordering search and the
        session's macro mapping are amortised over the batch instead of
        rebuilt per call.  One child generator is spawned per item for
        analog read noise, which makes every cell independently
        reproducible: item ``i`` is bit-for-bit equal to::

            base = np.random.default_rng(seed)          # same seed
            plan = session.draw_masks(base)
            session.run(inputs[i], rng=base.spawn(n)[i], masks=plan)

        Args:
            inputs: sequence of ``run()`` payloads (each a (B_i, in)
                feature batch).
            rng: base generator for the shared masks and the per-item
                noise spawn; default is the session's own generator.
            masks: pre-drawn mask plan; default draws one from ``rng``.
            item_rngs: explicit per-item noise generators replacing the
                ``rng.spawn`` default -- the hook serving layers use to
                hand every coalesced request the exact generator state
                its standalone reference run would consume.

        Returns:
            A :class:`BatchResult` with one :class:`InferenceResult` per
            item plus the shared mask-generation energy.
        """
        items = list(inputs)
        rng = rng if rng is not None else self._rng
        plan = masks if masks is not None else self.draw_masks(rng)
        if item_rngs is None:
            item_rngs = rng.spawn(len(items))
        elif len(item_rngs) != len(items):
            raise ValueError(
                f"item_rngs has {len(item_rngs)} generators for "
                f"{len(items)} items"
            )
        results = [
            self.run(item, rng=item_rng, masks=plan)
            for item, item_rng in zip(items, item_rngs)
        ]
        return BatchResult(
            substrate=self.substrate.name,
            workload=self.workload,
            results=results,
            mask_generation_energy_j=plan.generation_energy_j,
            extras={
                "n_items": len(items),
                "n_iterations": self.n_iterations,
            },
        )


class LocalizationSession:
    """Particle-filter localization on one substrate.

    Wraps :class:`~repro.core.cim_particle_filter.CIMParticleFilterLocalizer`
    with the likelihood backend chosen by the substrate; with identical
    RNGs the session reproduces the bare localizer bit-for-bit.
    """

    workload = "localization"

    def __init__(
        self,
        substrate: SubstrateConfig | str,
        map_cloud: np.ndarray,
        camera: Any,
        rng: np.random.Generator | None = None,
        **localizer_kwargs: Any,
    ):
        self.substrate = get_substrate(substrate)
        self.localizer = CIMParticleFilterLocalizer(
            map_cloud,
            camera,
            backend=self.substrate.likelihood_backend,
            rng=rng,
            **localizer_kwargs,
        )

    def clone(self) -> "LocalizationSession":
        """An independent copy (programmed map arrays, filter state and
        all) sharing no mutable state with the original; see
        :meth:`MCDropoutSession.clone`."""
        return copy.deepcopy(self)

    def initialize_tracking(
        self, state: np.ndarray, sigma: np.ndarray, rng: np.random.Generator
    ) -> None:
        self.localizer.initialize_tracking(state, sigma, rng)

    def initialize_global(
        self,
        rng: np.random.Generator,
        z_range: tuple[float, float] | None = None,
    ) -> None:
        self.localizer.initialize_global(rng, z_range=z_range)

    def run(
        self,
        inputs: tuple[np.ndarray, list[np.ndarray], np.ndarray],
        rng: np.random.Generator | None = None,
    ) -> InferenceResult:
        """Run a full sequence; ``inputs`` is (controls, depths, truth)."""
        controls, depths, ground_truth = inputs
        result = self.localizer.run(
            controls, depths, ground_truth, rng or np.random.default_rng(0)
        )
        ledger = result.energy
        return InferenceResult(
            substrate=self.substrate.name,
            workload=self.workload,
            mean=result.estimates,
            variance=None,
            samples=None,
            ops_executed=ledger.total_count(),
            ops_naive=None,
            energy_j=ledger.total_energy_j(),
            energy_breakdown_j={op: ledger.energy(op) for op in ledger.operations},
            extras={
                "errors": result.errors,
                "backend": result.backend,
                "summary": result.summary_row(),
            },
        )

    def run_batch(
        self, inputs: Any, rng: np.random.Generator | None = None
    ) -> BatchResult:
        """Run a batch of sequences from a shared initial belief.

        ``inputs`` is a sequence of ``(controls, depths, truth)`` tuples.
        The filter state at batch entry (the initialised prior) is
        snapshotted and restored before every item, and one child
        generator is spawned per item, so each sequence is bit-for-bit
        what a freshly initialised session running only that sequence
        with ``rng.spawn(n)[i]`` would estimate -- the expensive map
        programming and array calibration are done once for the whole
        batch.  The localizer scopes the likelihood-backend ledger per
        run, so each result's energy covers its own sequence only (this
        also holds for tiled backends, whose merged ledger view the old
        per-item ``reset()`` could not clear).
        """
        items = list(inputs)
        rng = rng if rng is not None else np.random.default_rng(0)
        item_rngs = rng.spawn(len(items))
        pf = self.localizer.filter
        initial_particles = pf.particles
        initial_history = list(pf.history)
        results = []
        for item, item_rng in zip(items, item_rngs):
            pf.particles = initial_particles
            pf.history = list(initial_history)
            results.append(self.run(item, rng=item_rng))
        return BatchResult(
            substrate=self.substrate.name,
            workload=self.workload,
            results=results,
            extras={"n_items": len(items)},
        )


def _bernoulli_streams(
    model: Sequential, n_iterations: int, rng: np.random.Generator
) -> list[MaskStream]:
    """One Bernoulli mask stream per Dropout layer, sized by walking the
    feature width through the Sequential."""
    width = model.dense_layers()[0].weight.value.shape[0]
    streams: list[MaskStream] = []
    for layer in model.layers:
        if isinstance(layer, Dropout):
            streams.append(
                MaskStream.bernoulli(
                    n_iterations, width, layer.keep_probability, rng
                )
            )
        elif isinstance(layer, Dense):
            width = layer.weight.value.shape[1]
    return streams


def _dense_layer_sizes(model: Sequential) -> tuple[int, ...]:
    """(in, h1, ..., out) widths of a Dense network."""
    dense = model.dense_layers()
    if not dense:
        raise ValueError("model contains no Dense layers")
    sizes = [dense[0].weight.value.shape[0]]
    sizes.extend(layer.weight.value.shape[1] for layer in dense)
    return tuple(sizes)


__all__ = [
    "ReusePolicy",
    "MacroOptions",
    "SubstrateConfig",
    "Substrate",
    "InferenceSession",
    "MaskPlan",
    "MCDropoutSession",
    "LocalizationSession",
    "register_substrate",
    "get_substrate",
    "available_substrates",
]
