"""``python -m repro`` -- the structured experiment CLI.

Subcommands::

    python -m repro list [--json]
    python -m repro run E4 [E6 ...|all] [--seed N] [--substrate NAME]
                           [--set key=value ...] [--json] [--out DIR]
    python -m repro sweep E3 [--substrates digital,cim] [--seeds 0,1,2]
                             [--set key=value ...] [--workers N]
                             [--store DIR] [--json] [--out DIR]
    python -m repro report STORE [--json]
    python -m repro bench [--ids E1 E5 ...] [--repeats N] [--out PATH]

``run`` executes experiments through :mod:`repro.api.registry` and prints
metrics (or a machine-readable ``ExperimentResult`` with ``--json``).
``sweep`` compiles the grid into a :class:`~repro.runtime.Plan` and runs
it through the batch runtime -- ``--workers N`` fans the jobs out over a
process pool (results identical to serial), ``--store DIR`` streams a
structured run directory (``manifest.json`` + ``results.jsonl``), and a
failing cell records an error row instead of aborting the grid.
``report`` summarises a stored run; ``bench`` times the quick experiment
configs plus the batched-session path (``BENCH_runtime.json``) and the
CIM engine's loop-vs-sample-major fast path plus the macro's fused
``matvec_many`` (``BENCH_engine.json``), exiting non-zero if the fast
path is slower than the loop at the reference config.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api.registry import (
    get_experiment,
    list_experiments,
    run_experiment,
    save_results,
)
from repro.api.results import ExperimentResult
from repro.api.substrates import available_substrates
from repro.version import __version__


def _parse_overrides(pairs: list[str] | None) -> dict[str, str] | None:
    if not pairs:
        return None
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"--set expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        overrides[key.strip()] = value.strip()
    return overrides


def _parse_seeds(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ValueError(
            f"--seeds expects comma-separated integers, got {text!r}"
        ) from None


def _print_metrics(result: ExperimentResult) -> None:
    print(f"\n### {result.experiment_id} -- {result.title}")
    print(
        f"    seed={result.seed}"
        + (f" substrate={result.substrate}" if result.substrate else "")
        + f" runtime={result.runtime_s:.2f}s"
    )
    for key, value in result.metrics.items():
        print(f"  {key}: {value}")


def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_experiments()
    if args.json:
        payload = {
            "experiments": [
                {
                    "id": spec.id,
                    "title": spec.title,
                    "description": spec.description,
                    "substrates": list(spec.substrates),
                }
                for spec in specs
            ],
            "substrates": available_substrates(),
            "version": __version__,
        }
        print(json.dumps(payload, indent=2))
        return 0
    for spec in specs:
        marker = f"  [--substrate {','.join(spec.substrates)}]" if spec.substrates else ""
        print(f"  {spec.id:4} {spec.title}{marker}")
    print(f"\nsubstrates: {', '.join(available_substrates())}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    ids = args.ids
    if ids == ["all"]:
        ids = [spec.id for spec in list_experiments()]
    overrides = _parse_overrides(args.set)
    results = []
    for experiment_id in ids:
        results.append(
            run_experiment(
                experiment_id,
                seed=args.seed,
                substrate=args.substrate,
                overrides=overrides,
                out_dir=args.out,
            )
        )
    if args.json:
        payload = [r.to_dict() for r in results]
        print(json.dumps(payload[0] if len(payload) == 1 else payload, indent=2))
    else:
        for result in results:
            _print_metrics(result)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.runtime import ParallelExecutor, Plan, RunStore

    substrates = args.substrates.split(",") if args.substrates else None
    seeds = _parse_seeds(args.seeds) if args.seeds else None
    overrides = _parse_overrides(args.set)
    plan = Plan.compile(
        args.id, substrates=substrates, seeds=seeds, overrides=overrides
    )
    store = None
    if args.store:
        command = f"repro sweep {args.id}"
        if args.substrates:
            command += f" --substrates {args.substrates}"
        if args.seeds:
            command += f" --seeds {args.seeds}"
        for pair in args.set or []:
            command += f" --set {pair}"
        command += f" --workers {args.workers}"
        store = RunStore.create(args.store, plan=plan, command=command)
    report = ParallelExecutor(workers=args.workers).execute(plan, store=store)
    if args.out:
        save_results(report.results, args.out, overrides)
    if args.json:
        print(
            json.dumps(
                [record.to_jsonable() for record in report.records], indent=2
            )
        )
    else:
        for record in report.records:
            if record.ok:
                _print_metrics(record.result)
            else:
                last_line = record.error.strip().splitlines()[-1]
                print(f"\n### {record.job.job_id} -- FAILED: {last_line}")
        summary = report.summary()
        print(
            f"\nsweep: {summary['n_jobs']} job(s), {summary['n_ok']} ok, "
            f"{summary['n_failed']} failed in {summary['wall_time_s']:.2f}s "
            f"(workers={summary['workers']})"
        )
        if store is not None:
            print(f"store: {store.path}")
    return 0 if report.n_failed == 0 else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.runtime import RunStore

    store = RunStore.load(args.store)
    if args.json:
        payload = {
            "summary": store.summary(),
            "records": [record.to_jsonable() for record in store.records()],
        }
        print(json.dumps(payload, indent=2))
        return 0
    summary = store.summary()
    print(f"run store: {summary['path']}")
    print(
        f"  status={summary['status']} planned={summary['n_jobs_planned']} "
        f"recorded={summary['n_recorded']} ok={summary['n_ok']} "
        f"failed={summary['n_failed']}"
    )
    if summary.get("wall_time_s") is not None:
        print(
            f"  wall_time={summary['wall_time_s']:.2f}s "
            f"workers={summary.get('workers')}"
        )
    for record in store.records():
        if record.ok:
            scalars = {
                key: value
                for key, value in record.result.metrics.items()
                if isinstance(value, (int, float, str, bool))
            }
            line = " ".join(f"{k}={v}" for k, v in list(scalars.items())[:4])
            print(f"  ok     {record.job.job_id}  {record.duration_s:.2f}s  {line}")
        else:
            last_line = record.error.strip().splitlines()[-1]
            print(f"  FAILED {record.job.job_id}  {last_line}")
    return 0


# Quick configs for the perf-trajectory benchmark: the fast, world-free
# experiments (inverter transfer, likelihood energy, RNG statistics).
_BENCH_CONFIGS: dict[str, dict] = {
    "E1": {"n_grid": 101},
    "E4": {"n_queries": 200},
    "E5": {"column_sweep": (2, 4), "n_instances": 2, "bits_per_instance": 512},
}


def _bench_batch_session(n_items: int = 6, n_iterations: int = 12) -> dict:
    """Time the batched-session path against a naive run() loop."""
    import numpy as np

    from repro.api.substrates import get_substrate
    from repro.nn import Dense, Dropout, ReLU, Sequential

    rng = np.random.default_rng(0)
    model = Sequential(
        [
            Dense(32, 16, rng),
            ReLU(),
            Dropout(0.5, rng=np.random.default_rng(1)),
            Dense(16, 4, rng),
        ]
    )
    items = [rng.normal(size=(4, 32)) for _ in range(n_items)]
    session = get_substrate("cim-ordered").mc_dropout_session(
        model, n_iterations=n_iterations, rng=np.random.default_rng(2)
    )
    start = time.perf_counter()
    for item in items:
        session.run(item, rng=np.random.default_rng(3))
    loop_s = time.perf_counter() - start
    start = time.perf_counter()
    session.run_batch(items, rng=np.random.default_rng(3))
    batch_s = time.perf_counter() - start
    return {
        "substrate": "cim-ordered",
        "n_items": n_items,
        "n_iterations": n_iterations,
        "loop_s": loop_s,
        "batch_s": batch_s,
        "speedup": loop_s / batch_s if batch_s > 0 else None,
    }


# Reference config for the engine fast-path benchmark (BENCH_engine.json):
# a mid-sized two-stage network, MC depth 24, batch 8, reuse off -- the
# schedule where every iteration is independent and the sample-major path
# replaces the whole T x L Python loop.
_ENGINE_BENCH = {
    "n_inputs": 48,
    "n_hidden": 32,
    "n_outputs": 16,
    "n_iterations": 24,
    "batch": 8,
    "dropout_p": 0.5,
}


def _engine_bench_model():
    import numpy as np

    from repro.nn import Dense, Dropout, ReLU, Sequential

    cfg = _ENGINE_BENCH
    rng = np.random.default_rng(0)
    return Sequential(
        [
            Dense(cfg["n_inputs"], cfg["n_hidden"], rng),
            ReLU(),
            Dropout(cfg["dropout_p"], rng=np.random.default_rng(1)),
            Dense(cfg["n_hidden"], cfg["n_outputs"], rng),
        ]
    )


def _bench_engine_predict(repeats: int, reuse: bool, label: str) -> dict:
    """Loop vs sample-major predict timings on one engine config."""
    import numpy as np

    from repro.core.cim_mc_dropout import CIMMCDropoutEngine
    from repro.sram.macro import MacroConfig

    cfg = _ENGINE_BENCH
    x = np.random.default_rng(4).normal(size=(cfg["batch"], cfg["n_inputs"]))

    def build(fast_path: bool) -> CIMMCDropoutEngine:
        return CIMMCDropoutEngine(
            _engine_bench_model(),
            MacroConfig(),
            n_iterations=cfg["n_iterations"],
            use_hardware_rng=False,
            reuse=reuse,
            ordering=False,
            fast_path=fast_path,
            rng=np.random.default_rng(7),
        )

    loop_engine, fast_engine = build(False), build(True)
    streams = loop_engine.draw_mask_streams(np.random.default_rng(3))
    order = np.arange(cfg["n_iterations"])

    def run(engine):
        return engine.predict(
            x, rng=np.random.default_rng(5), mask_streams=streams, mask_order=order
        )

    reference, fast = run(loop_engine), run(fast_engine)  # warm-up + parity
    max_abs_diff = float(np.max(np.abs(reference.samples - fast.samples)))
    timings = {}
    for name, engine in (("loop", loop_engine), ("fast", fast_engine)):
        laps = []
        for _ in range(repeats):
            start = time.perf_counter()
            run(engine)
            laps.append(time.perf_counter() - start)
        timings[name] = min(laps)
    return {
        "case": label,
        "reuse": reuse,
        **cfg,
        "repeats": repeats,
        "loop_s": timings["loop"],
        "fast_s": timings["fast"],
        "speedup": timings["loop"] / timings["fast"] if timings["fast"] > 0 else None,
        "max_abs_diff": max_abs_diff,
        "ops_executed": fast.ops_executed,
        "ops_naive": fast.ops_naive,
    }


def _bench_macro_matvec(repeats: int) -> dict:
    """matvec loop vs fused matvec_many on one macro."""
    import numpy as np

    from repro.sram.macro import MacroConfig, SRAMCIMMacro

    cfg = _ENGINE_BENCH
    n_stacked, batch = cfg["n_iterations"], cfg["batch"]
    weight = np.random.default_rng(0).normal(size=(64, 32))
    macro = SRAMCIMMacro(weight, MacroConfig(), rng=np.random.default_rng(1))
    x = np.random.default_rng(2).normal(size=(n_stacked, batch, 64))
    macro.matvec(x[0], rng=np.random.default_rng(0))  # pin the DAC spec
    timings = {}
    for name in ("loop", "fused"):
        laps = []
        for _ in range(repeats):
            rng = np.random.default_rng(5)
            start = time.perf_counter()
            if name == "loop":
                for t in range(n_stacked):
                    macro.matvec(x[t], rng=rng)
            else:
                macro.matvec_many(x, rng=rng)
            laps.append(time.perf_counter() - start)
        timings[name] = min(laps)
    return {
        "case": "macro-matvec_many",
        "in_features": 64,
        "out_features": 32,
        "n_stacked": n_stacked,
        "batch": batch,
        "repeats": repeats,
        "loop_s": timings["loop"],
        "fast_s": timings["fused"],
        "speedup": timings["loop"] / timings["fused"] if timings["fused"] > 0 else None,
    }


def _cmd_bench(args: argparse.Namespace) -> int:
    ids = [eid.upper() for eid in (args.ids or list(_BENCH_CONFIGS))]
    benchmarks = []
    for experiment_id in ids:
        spec = get_experiment(experiment_id)
        overrides = _BENCH_CONFIGS.get(spec.id)
        times = []
        for _ in range(args.repeats):
            result = run_experiment(spec.id, seed=0, overrides=overrides)
            times.append(result.runtime_s)
        entry = {
            "experiment_id": spec.id,
            "title": spec.title,
            "overrides": overrides,
            "repeats": args.repeats,
            "mean_s": sum(times) / len(times),
            "min_s": min(times),
            "max_s": max(times),
        }
        benchmarks.append(entry)
        print(
            f"  {spec.id:4} mean={entry['mean_s']:.4f}s "
            f"min={entry['min_s']:.4f}s (x{args.repeats})"
        )
    batch = _bench_batch_session()
    print(
        f"  run_batch: loop={batch['loop_s']:.4f}s batch={batch['batch_s']:.4f}s "
        f"speedup={batch['speedup']:.2f}x"
    )
    payload = {
        "version": __version__,
        "benchmarks": benchmarks,
        "batch_session": batch,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    reference = _bench_engine_predict(
        args.repeats, reuse=False, label="engine-predict-no-reuse"
    )
    reuse_case = _bench_engine_predict(
        args.repeats, reuse=True, label="engine-predict-reuse-refresh"
    )
    macro = _bench_macro_matvec(args.repeats)
    for entry in (reference, reuse_case, macro):
        print(
            f"  {entry['case']}: loop={entry['loop_s']:.4f}s "
            f"fast={entry['fast_s']:.4f}s speedup={entry['speedup']:.2f}x"
        )
    engine_payload = {
        "version": __version__,
        "reference": reference,
        "cases": [reference, reuse_case, macro],
    }
    engine_out = Path(args.engine_out)
    engine_out.parent.mkdir(parents=True, exist_ok=True)
    engine_out.write_text(json.dumps(engine_payload, indent=2) + "\n")
    print(f"wrote {engine_out}")
    if reference["speedup"] is not None and reference["speedup"] < 1.0:
        print(
            "error: engine fast path slower than the loop path at the "
            f"reference config ({reference['speedup']:.2f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Structured runner for the paper's experiments (E1-E11).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    list_parser = sub.add_parser("list", help="list experiments and substrates")
    list_parser.add_argument("--json", action="store_true")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("ids", nargs="+", help="experiment ids (or 'all')")
    run_parser.add_argument("--seed", type=int, default=None)
    run_parser.add_argument(
        "--substrate", default=None, help="registered substrate override"
    )
    run_parser.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="config field override (repeatable)",
    )
    run_parser.add_argument("--json", action="store_true")
    run_parser.add_argument("--out", default=None, metavar="DIR")
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = sub.add_parser(
        "sweep", help="run one experiment over a substrate x seed grid"
    )
    sweep_parser.add_argument("id", help="experiment id")
    sweep_parser.add_argument(
        "--substrates", default=None, help="comma-separated substrate names"
    )
    sweep_parser.add_argument(
        "--seeds", default=None, help="comma-separated integer seeds"
    )
    sweep_parser.add_argument(
        "--set", action="append", metavar="KEY=VALUE", help="config override"
    )
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process count (1 = serial; results identical either way)",
    )
    sweep_parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="write a structured run store (manifest.json + results.jsonl)",
    )
    sweep_parser.add_argument("--json", action="store_true")
    sweep_parser.add_argument("--out", default=None, metavar="DIR")
    sweep_parser.set_defaults(handler=_cmd_sweep)

    report_parser = sub.add_parser(
        "report", help="summarise a run store written by sweep --store"
    )
    report_parser.add_argument("store", help="run store directory")
    report_parser.add_argument("--json", action="store_true")
    report_parser.set_defaults(handler=_cmd_report)

    bench_parser = sub.add_parser(
        "bench",
        help="time the quick experiment configs, the batched-session path "
        "(BENCH_runtime.json) and the engine loop-vs-fast paths "
        "(BENCH_engine.json)",
    )
    bench_parser.add_argument(
        "--ids",
        nargs="+",
        default=None,
        metavar="ID",
        help=f"experiments to time (default: {' '.join(_BENCH_CONFIGS)})",
    )
    bench_parser.add_argument("--repeats", type=int, default=3, metavar="N")
    bench_parser.add_argument(
        "--out", default="BENCH_runtime.json", metavar="PATH"
    )
    bench_parser.add_argument(
        "--engine-out",
        default="BENCH_engine.json",
        metavar="PATH",
        help="engine/macro loop-vs-fast timing output "
        "(exit 1 if the fast path is slower at the reference config)",
    )
    bench_parser.set_defaults(handler=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 0
    try:
        return args.handler(args)
    except (KeyError, ValueError, FileNotFoundError, FileExistsError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
