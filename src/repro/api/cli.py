"""``python -m repro`` -- the structured experiment CLI.

Subcommands::

    python -m repro list [--json]
    python -m repro run E4 [E6 ...|all] [--seed N] [--substrate NAME]
                           [--set key=value ...] [--json] [--out DIR]
    python -m repro sweep E3 [--substrates digital,cim] [--seeds 0,1,2]
                             [--set key=value ...] [--json] [--out DIR]

``run`` executes experiments through :mod:`repro.api.registry` and prints
metrics (or a machine-readable ``ExperimentResult`` with ``--json``);
``sweep`` runs one experiment over a substrate x seed grid.  ``--out DIR``
additionally writes one JSON file per result.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api.registry import (
    get_experiment,
    list_experiments,
    run_experiment,
    sweep_experiment,
)
from repro.api.results import ExperimentResult
from repro.api.substrates import available_substrates
from repro.version import __version__


def _parse_overrides(pairs: list[str] | None) -> dict[str, str] | None:
    if not pairs:
        return None
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"--set expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        overrides[key.strip()] = value.strip()
    return overrides


def _print_metrics(result: ExperimentResult) -> None:
    print(f"\n### {result.experiment_id} -- {result.title}")
    print(
        f"    seed={result.seed}"
        + (f" substrate={result.substrate}" if result.substrate else "")
        + f" runtime={result.runtime_s:.2f}s"
    )
    for key, value in result.metrics.items():
        print(f"  {key}: {value}")


def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_experiments()
    if args.json:
        payload = {
            "experiments": [
                {
                    "id": spec.id,
                    "title": spec.title,
                    "description": spec.description,
                    "substrates": list(spec.substrates),
                }
                for spec in specs
            ],
            "substrates": available_substrates(),
            "version": __version__,
        }
        print(json.dumps(payload, indent=2))
        return 0
    for spec in specs:
        marker = f"  [--substrate {','.join(spec.substrates)}]" if spec.substrates else ""
        print(f"  {spec.id:4} {spec.title}{marker}")
    print(f"\nsubstrates: {', '.join(available_substrates())}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    ids = args.ids
    if ids == ["all"]:
        ids = [spec.id for spec in list_experiments()]
    overrides = _parse_overrides(args.set)
    results = []
    for experiment_id in ids:
        results.append(
            run_experiment(
                experiment_id,
                seed=args.seed,
                substrate=args.substrate,
                overrides=overrides,
                out_dir=args.out,
            )
        )
    if args.json:
        payload = [r.to_dict() for r in results]
        print(json.dumps(payload[0] if len(payload) == 1 else payload, indent=2))
    else:
        for result in results:
            _print_metrics(result)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    substrates = args.substrates.split(",") if args.substrates else None
    seeds = [int(s) for s in args.seeds.split(",")] if args.seeds else None
    results = sweep_experiment(
        args.id,
        substrates=substrates,
        seeds=seeds,
        overrides=_parse_overrides(args.set),
        out_dir=args.out,
    )
    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2))
    else:
        for result in results:
            _print_metrics(result)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Structured runner for the paper's experiments (E1-E11).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    list_parser = sub.add_parser("list", help="list experiments and substrates")
    list_parser.add_argument("--json", action="store_true")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("ids", nargs="+", help="experiment ids (or 'all')")
    run_parser.add_argument("--seed", type=int, default=None)
    run_parser.add_argument(
        "--substrate", default=None, help="registered substrate override"
    )
    run_parser.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="config field override (repeatable)",
    )
    run_parser.add_argument("--json", action="store_true")
    run_parser.add_argument("--out", default=None, metavar="DIR")
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = sub.add_parser(
        "sweep", help="run one experiment over a substrate x seed grid"
    )
    sweep_parser.add_argument("id", help="experiment id")
    sweep_parser.add_argument(
        "--substrates", default=None, help="comma-separated substrate names"
    )
    sweep_parser.add_argument(
        "--seeds", default=None, help="comma-separated integer seeds"
    )
    sweep_parser.add_argument(
        "--set", action="append", metavar="KEY=VALUE", help="config override"
    )
    sweep_parser.add_argument("--json", action="store_true")
    sweep_parser.add_argument("--out", default=None, metavar="DIR")
    sweep_parser.set_defaults(handler=_cmd_sweep)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 0
    try:
        return args.handler(args)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
