"""``python -m repro`` -- the structured experiment CLI.

Subcommands::

    python -m repro list [--json]
    python -m repro run E4 [E6 ...|all] [--seed N] [--substrate NAME]
                           [--set key=value ...] [--json] [--out DIR]
    python -m repro sweep E3 [--substrates digital,cim] [--seeds 0,1,2]
                             [--set key=value ...] [--workers N]
                             [--store DIR] [--json] [--out DIR]
    python -m repro report STORE [--json]
    python -m repro scenarios list [--tag TAG] [--json]
    python -m repro scenarios run NAME [NAME ...|all]
                          [--substrates digital,cim] [--seeds 0,1]
                          [--set path.to.field=value ...] [--tiny]
                          [--workers N] [--store DIR] [--json]
    python -m repro scenarios report STORE [--json]
    python -m repro lint [PATHS ...] [--json] [--rules]
                         [--baseline PATH] [--no-baseline]
                         [--update-baseline]
    python -m repro bench [--suite core|serve|all] [--ids E1 E5 ...]
                          [--repeats N] [--out PATH]
                          [--check] [--tolerance FRAC]
    python -m repro serve [--port 8000] [--substrates cim,digital]
                          [--max-batch N] [--max-wait-ms MS] [--max-pending N]
                          [--workers N]

``run`` executes experiments through :mod:`repro.api.registry` and prints
metrics (or a machine-readable ``ExperimentResult`` with ``--json``);
failures of individual experiments are isolated -- the traceback is
printed, the remaining experiments still run, and the command exits 1.
``sweep`` compiles the grid into a :class:`~repro.runtime.Plan` and runs
it through the batch runtime -- ``--workers N`` fans the jobs out over a
process pool (results identical to serial), ``--store DIR`` streams a
structured run directory (``manifest.json`` + ``results.jsonl``), and a
failing cell records an error row instead of aborting the grid.
``lint`` runs the project's AST determinism linter
(:mod:`repro.analysis`, rules DET001-DET008) over ``src/repro`` and
compares against the committed ``lint_baseline.json`` -- exit 1 on any
non-baselined finding *or* stale baseline entry, so the violation count
only ever ratchets down; ``report`` summarises a stored run;
``scenarios`` lists, sweeps and
summarises the named scenario library (:mod:`repro.scenarios`) on the
same batch runtime, with dotted ``--set`` spec overrides and friendly
exit-2 errors for unknown names/paths; ``bench`` times the quick experiment
configs plus the batched-session path (``BENCH_runtime.json``) and the
CIM engine's loop-vs-sample-major fast path plus the macro's fused
``matvec_many`` (``BENCH_engine.json``), exiting non-zero if the fast
path is slower than the loop at the reference config; ``bench --suite
serve`` times request serving (``BENCH_serve.json``) -- sequential vs
coalesced vs sharded (worker processes) -- exiting non-zero if coalesced
serving is not faster than sequential per-request serving or sharded
serving is not faster than coalesced.  ``bench --check`` additionally
compares the fresh speedup ratios against the committed baseline files
and exits non-zero on a >``--tolerance`` throughput regression.
``serve`` stands up the :mod:`repro.serve` HTTP service on the built-in
demo model; ``--workers N`` shards execution over N spawned worker
processes with the same bit-for-bit response contract.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api.registry import (
    get_experiment,
    list_experiments,
    run_experiment,
    save_results,
)
from repro.api.results import ExperimentResult
from repro.api.substrates import available_substrates
from repro.version import __version__


def _parse_overrides(pairs: list[str] | None) -> dict[str, str] | None:
    if not pairs:
        return None
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"--set expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        overrides[key.strip()] = value.strip()
    return overrides


def _parse_seeds(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ValueError(
            f"--seeds expects comma-separated integers, got {text!r}"
        ) from None


def _print_metrics(result: ExperimentResult) -> None:
    print(f"\n### {result.experiment_id} -- {result.title}")
    print(
        f"    seed={result.seed}"
        + (f" substrate={result.substrate}" if result.substrate else "")
        + f" runtime={result.runtime_s:.2f}s"
    )
    for key, value in result.metrics.items():
        print(f"  {key}: {value}")


def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_experiments()
    if args.json:
        payload = {
            "experiments": [
                {
                    "id": spec.id,
                    "title": spec.title,
                    "description": spec.description,
                    "substrates": list(spec.substrates),
                }
                for spec in specs
            ],
            "substrates": available_substrates(),
            "version": __version__,
        }
        print(json.dumps(payload, indent=2))
        return 0
    for spec in specs:
        marker = f"  [--substrate {','.join(spec.substrates)}]" if spec.substrates else ""
        print(f"  {spec.id:4} {spec.title}{marker}")
    print(f"\nsubstrates: {', '.join(available_substrates())}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api.registry import resolve_substrate

    ids = args.ids
    if ids == ["all"]:
        ids = [spec.id for spec in list_experiments()]
    overrides = _parse_overrides(args.set)
    # Resolve ids / substrate / config up front so user errors stay
    # friendly exit-2 rejections; only *execution* failures are isolated.
    specs = [get_experiment(experiment_id) for experiment_id in ids]
    for spec in specs:
        resolve_substrate(spec, args.substrate)
        spec.make_config(overrides, args.seed)
    results = []
    failed: list[str] = []
    for spec in specs:
        try:
            results.append(
                run_experiment(
                    spec.id,
                    seed=args.seed,
                    substrate=args.substrate,
                    overrides=overrides,
                    out_dir=args.out,
                )
            )
        except Exception:
            # One failing experiment must not abort the rest of the
            # batch: print its traceback, keep running, fail at the end.
            import traceback

            traceback.print_exc(file=sys.stderr)
            print(
                f"error: experiment {spec.id} failed; continuing with the "
                "remaining experiment(s)",
                file=sys.stderr,
            )
            failed.append(spec.id)
    if args.json:
        payload = [r.to_dict() for r in results]
        # Shape follows the *request*: one requested experiment prints a
        # bare object, several always print a list, even when failures
        # thinned the results -- consumers see a stable schema.
        print(
            json.dumps(
                payload[0] if len(specs) == 1 and payload else payload,
                indent=2,
            )
        )
    else:
        for result in results:
            _print_metrics(result)
    if failed:
        print(
            f"error: {len(failed)} of {len(specs)} experiment(s) failed: "
            f"{', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.runtime import ParallelExecutor, Plan, RunStore

    substrates = args.substrates.split(",") if args.substrates else None
    seeds = _parse_seeds(args.seeds) if args.seeds else None
    overrides = _parse_overrides(args.set)
    plan = Plan.compile(
        args.id, substrates=substrates, seeds=seeds, overrides=overrides
    )
    store = None
    if args.store:
        command = f"repro sweep {args.id}"
        if args.substrates:
            command += f" --substrates {args.substrates}"
        if args.seeds:
            command += f" --seeds {args.seeds}"
        for pair in args.set or []:
            command += f" --set {pair}"
        command += f" --workers {args.workers}"
        store = RunStore.create(args.store, plan=plan, command=command)
    report = ParallelExecutor(workers=args.workers).execute(plan, store=store)
    if args.out:
        save_results(report.results, args.out, overrides)
    if args.json:
        print(
            json.dumps(
                [record.to_jsonable() for record in report.records], indent=2
            )
        )
    else:
        for record in report.records:
            if record.ok:
                _print_metrics(record.result)
            else:
                last_line = record.error.strip().splitlines()[-1]
                print(f"\n### {record.job.job_id} -- FAILED: {last_line}")
        summary = report.summary()
        print(
            f"\nsweep: {summary['n_jobs']} job(s), {summary['n_ok']} ok, "
            f"{summary['n_failed']} failed in {summary['wall_time_s']:.2f}s "
            f"(workers={summary['workers']})"
        )
        if store is not None:
            print(f"store: {store.path}")
    return 0 if report.n_failed == 0 else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.runtime import RunStore

    store = RunStore.load(args.store)
    if args.json:
        payload = {
            "summary": store.summary(),
            "records": [record.to_jsonable() for record in store.records()],
        }
        print(json.dumps(payload, indent=2))
        return 0
    summary = store.summary()
    print(f"run store: {summary['path']}")
    print(
        f"  status={summary['status']} planned={summary['n_jobs_planned']} "
        f"recorded={summary['n_recorded']} ok={summary['n_ok']} "
        f"failed={summary['n_failed']}"
    )
    if summary.get("wall_time_s") is not None:
        print(
            f"  wall_time={summary['wall_time_s']:.2f}s "
            f"workers={summary.get('workers')}"
        )
    for record in store.records():
        if record.ok:
            scalars = {
                key: value
                for key, value in record.result.metrics.items()
                if isinstance(value, (int, float, str, bool))
            }
            line = " ".join(f"{k}={v}" for k, v in list(scalars.items())[:4])
            print(f"  ok     {record.job.job_id}  {record.duration_s:.2f}s  {line}")
        else:
            last_line = record.error.strip().splitlines()[-1]
            print(f"  FAILED {record.job.job_id}  {last_line}")
    return 0


def _scenario_summary_table(rows: list[dict]) -> list[str]:
    """Fixed-width per-scenario x substrate summary lines."""
    from repro.scenarios import summarize_rows

    lines = [
        f"  {'scenario':28} {'substrate':13} {'runs':>4} {'final_m':>8} "
        f"{'mean_m':>8} {'steady_m':>9} {'conv':>4} {'energy_j':>10} "
        f"{'ops':>12}"
    ]
    for line in summarize_rows(rows):
        lines.append(
            f"  {line['scenario']:28} {line['substrate']:13} "
            f"{line['runs']:>4d} {line['final_error_m']:>8.3f} "
            f"{line['mean_error_m']:>8.3f} "
            f"{line['steady_state_error_m']:>9.3f} "
            f"{line['converged_runs']:>4d} {line['energy_j']:>10.3e} "
            f"{line['ops_executed']:>12.0f}"
        )
    return lines


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.scenarios import list_scenarios

    specs = list_scenarios(tag=args.tag)
    if args.json:
        print(
            json.dumps(
                {
                    "scenarios": [spec.to_jsonable() for spec in specs],
                    "version": __version__,
                },
                indent=2,
            )
        )
        return 0
    for spec in specs:
        tags = ",".join(spec.tags)
        print(f"  {spec.name:28} [{tags}]")
        print(f"      {spec.description}")
    print(f"\n{len(specs)} scenario(s)" + (f" tagged {args.tag!r}" if args.tag else ""))
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    from repro.runtime import ParallelExecutor, RunStore
    from repro.scenarios import compile_scenarios, scenario_names

    names = args.names
    if names == ["all"]:
        names = scenario_names()
    substrates = args.substrates.split(",") if args.substrates else None
    seeds = _parse_seeds(args.seeds) if args.seeds else None
    overrides = _parse_overrides(args.set)
    # Compilation resolves scenario names, applies the dotted --set
    # overrides and validates every spec up front -- user errors surface
    # as friendly exit-2 messages before anything runs.
    plan = compile_scenarios(
        names,
        substrates=substrates,
        seeds=seeds,
        overrides=overrides,
        tiny=args.tiny,
    )
    store = None
    if args.store:
        command = "repro scenarios run " + " ".join(names)
        if args.substrates:
            command += f" --substrates {args.substrates}"
        if args.seeds:
            command += f" --seeds {args.seeds}"
        for pair in args.set or []:
            command += f" --set {pair}"
        if args.tiny:
            command += " --tiny"
        command += f" --workers {args.workers}"
        store = RunStore.create(args.store, plan=plan, command=command)
    report = ParallelExecutor(workers=args.workers).execute(plan, store=store)
    if args.json:
        print(
            json.dumps(
                [record.to_jsonable() for record in report.records], indent=2
            )
        )
        return 0 if report.n_failed == 0 else 1
    rows = []
    for record in report.records:
        if record.ok:
            rows.append(record.result.metrics)
        else:
            last_line = record.error.strip().splitlines()[-1]
            print(f"FAILED {record.job.job_id}: {last_line}")
    if rows:
        print("\n".join(_scenario_summary_table(rows)))
    summary = report.summary()
    print(
        f"\nscenarios: {summary['n_jobs']} run(s), {summary['n_ok']} ok, "
        f"{summary['n_failed']} failed in {summary['wall_time_s']:.2f}s "
        f"(workers={summary['workers']})"
    )
    if store is not None:
        print(f"store: {store.path}")
    return 0 if report.n_failed == 0 else 1


def _cmd_scenarios_report(args: argparse.Namespace) -> int:
    from repro.runtime import RunStore
    from repro.scenarios import summarize_rows

    store = RunStore.load(args.store)
    rows = [
        record.result.metrics
        for record in store.records()
        if record.ok and record.job.experiment_id == "SCN"
    ]
    if args.json:
        print(
            json.dumps(
                {"summary": store.summary(), "scenarios": summarize_rows(rows)},
                indent=2,
            )
        )
        return 0
    summary = store.summary()
    print(f"run store: {summary['path']}")
    print(
        f"  status={summary['status']} planned={summary['n_jobs_planned']} "
        f"recorded={summary['n_recorded']} ok={summary['n_ok']} "
        f"failed={summary['n_failed']}"
    )
    if not rows:
        print("  no successful scenario (SCN) runs in this store")
        return 0
    print("\n".join(_scenario_summary_table(rows)))
    return 0


_LINT_DEFAULT_PATHS = ("src/repro",)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import Baseline, all_rules, compare, lint_paths

    if args.rules:
        if args.json:
            payload = [
                {
                    "code": rule.code,
                    "name": rule.name,
                    "rationale": rule.rationale,
                    "hint": rule.hint,
                }
                for rule in all_rules()
            ]
            print(json.dumps(payload, indent=2, allow_nan=False))
            return 0
        for rule in all_rules():
            print(f"  {rule.code}  {rule.name}")
            print(f"        {rule.rationale}")
        return 0

    paths = args.paths or list(_LINT_DEFAULT_PATHS)
    findings = lint_paths(paths)
    baseline_path = Path(args.baseline)

    if args.update_baseline:
        notes: list[str] = []
        if baseline_path.exists():
            notes = Baseline.load(baseline_path).notes
        Baseline.from_findings(findings, notes=notes).save(baseline_path)
        print(
            f"baseline updated: {baseline_path} "
            f"({len(findings)} grandfathered finding(s))"
        )
        return 0

    new, stale = findings, []
    baselined = 0
    if not args.no_baseline and baseline_path.exists():
        baseline = Baseline.load(baseline_path)
        new, stale = compare(findings, baseline)
        baselined = len(findings) - len(new)

    if args.json:
        payload = {
            "paths": [str(path) for path in paths],
            "baseline": None if args.no_baseline else str(baseline_path),
            "n_findings": len(findings),
            "n_baselined": baselined,
            "new": [finding.to_jsonable() for finding in new],
            "stale": [entry.to_jsonable() for entry in stale],
        }
        print(json.dumps(payload, indent=2, allow_nan=False))
        return 1 if new or stale else 0

    for finding in new:
        print(finding.render())
    for entry in stale:
        print(f"stale baseline entry (no longer fires): {entry.render()}")
    summary = (
        f"lint: {len(findings)} finding(s), {baselined} baselined, "
        f"{len(new)} new, {len(stale)} stale"
    )
    if new or stale:
        print(summary)
        print(
            "error: determinism lint gate failed -- fix the new "
            "finding(s), suppress with '# repro: ignore[CODE] reason', "
            "or (stale entries) run `repro lint --update-baseline`",
            file=sys.stderr,
        )
        return 1
    print(summary + " -- ok")
    return 0


# Quick configs for the perf-trajectory benchmark: the fast, world-free
# experiments (inverter transfer, likelihood energy, RNG statistics).
_BENCH_CONFIGS: dict[str, dict] = {
    "E1": {"n_grid": 101},
    "E4": {"n_queries": 200},
    "E5": {"column_sweep": (2, 4), "n_instances": 2, "bits_per_instance": 512},
}


def _bench_batch_session(n_items: int = 6, n_iterations: int = 12) -> dict:
    """Time the batched-session path against a naive run() loop."""
    import numpy as np

    from repro.api.substrates import get_substrate
    from repro.nn import Dense, Dropout, ReLU, Sequential

    rng = np.random.default_rng(0)
    model = Sequential(
        [
            Dense(32, 16, rng),
            ReLU(),
            Dropout(0.5, rng=np.random.default_rng(1)),
            Dense(16, 4, rng),
        ]
    )
    items = [rng.normal(size=(4, 32)) for _ in range(n_items)]
    session = get_substrate("cim-ordered").mc_dropout_session(
        model, n_iterations=n_iterations, rng=np.random.default_rng(2)
    )
    start = time.perf_counter()
    for item in items:
        session.run(item, rng=np.random.default_rng(3))
    loop_s = time.perf_counter() - start
    start = time.perf_counter()
    session.run_batch(items, rng=np.random.default_rng(3))
    batch_s = time.perf_counter() - start
    return {
        "substrate": "cim-ordered",
        "n_items": n_items,
        "n_iterations": n_iterations,
        "loop_s": loop_s,
        "batch_s": batch_s,
        "speedup": loop_s / batch_s if batch_s > 0 else None,
    }


# Reference config for the engine fast-path benchmark (BENCH_engine.json):
# a mid-sized two-stage network, MC depth 24, batch 8, reuse off -- the
# schedule where every iteration is independent and the sample-major path
# replaces the whole T x L Python loop.
_ENGINE_BENCH = {
    "n_inputs": 48,
    "n_hidden": 32,
    "n_outputs": 16,
    "n_iterations": 24,
    "batch": 8,
    "dropout_p": 0.5,
}


def _engine_bench_model():
    import numpy as np

    from repro.nn import Dense, Dropout, ReLU, Sequential

    cfg = _ENGINE_BENCH
    rng = np.random.default_rng(0)
    return Sequential(
        [
            Dense(cfg["n_inputs"], cfg["n_hidden"], rng),
            ReLU(),
            Dropout(cfg["dropout_p"], rng=np.random.default_rng(1)),
            Dense(cfg["n_hidden"], cfg["n_outputs"], rng),
        ]
    )


def _bench_engine_predict(repeats: int, reuse: bool, label: str) -> dict:
    """Loop vs sample-major predict timings on one engine config."""
    import numpy as np

    from repro.core.cim_mc_dropout import CIMMCDropoutEngine
    from repro.sram.macro import MacroConfig

    cfg = _ENGINE_BENCH
    x = np.random.default_rng(4).normal(size=(cfg["batch"], cfg["n_inputs"]))

    def build(fast_path: bool) -> CIMMCDropoutEngine:
        return CIMMCDropoutEngine(
            _engine_bench_model(),
            MacroConfig(),
            n_iterations=cfg["n_iterations"],
            use_hardware_rng=False,
            reuse=reuse,
            ordering=False,
            fast_path=fast_path,
            rng=np.random.default_rng(7),
        )

    loop_engine, fast_engine = build(False), build(True)
    streams = loop_engine.draw_mask_streams(np.random.default_rng(3))
    order = np.arange(cfg["n_iterations"])

    def run(engine):
        return engine.predict(
            x, rng=np.random.default_rng(5), mask_streams=streams, mask_order=order
        )

    reference, fast = run(loop_engine), run(fast_engine)  # warm-up + parity
    max_abs_diff = float(np.max(np.abs(reference.samples - fast.samples)))
    timings = {}
    for name, engine in (("loop", loop_engine), ("fast", fast_engine)):
        laps = []
        for _ in range(repeats):
            start = time.perf_counter()
            run(engine)
            laps.append(time.perf_counter() - start)
        timings[name] = min(laps)
    return {
        "case": label,
        "reuse": reuse,
        **cfg,
        "repeats": repeats,
        "loop_s": timings["loop"],
        "fast_s": timings["fast"],
        "speedup": timings["loop"] / timings["fast"] if timings["fast"] > 0 else None,
        "max_abs_diff": max_abs_diff,
        "ops_executed": fast.ops_executed,
        "ops_naive": fast.ops_naive,
    }


def _bench_macro_matvec(repeats: int) -> dict:
    """matvec loop vs fused matvec_many on one macro."""
    import numpy as np

    from repro.sram.macro import MacroConfig, SRAMCIMMacro

    cfg = _ENGINE_BENCH
    n_stacked, batch = cfg["n_iterations"], cfg["batch"]
    weight = np.random.default_rng(0).normal(size=(64, 32))
    macro = SRAMCIMMacro(weight, MacroConfig(), rng=np.random.default_rng(1))
    x = np.random.default_rng(2).normal(size=(n_stacked, batch, 64))
    macro.matvec(x[0], rng=np.random.default_rng(0))  # pin the DAC spec
    timings = {}
    for name in ("loop", "fused"):
        laps = []
        for _ in range(repeats):
            rng = np.random.default_rng(5)
            start = time.perf_counter()
            if name == "loop":
                for t in range(n_stacked):
                    macro.matvec(x[t], rng=rng)
            else:
                macro.matvec_many(x, rng=rng)
            laps.append(time.perf_counter() - start)
        timings[name] = min(laps)
    return {
        "case": "macro-matvec_many",
        "in_features": 64,
        "out_features": 32,
        "n_stacked": n_stacked,
        "batch": batch,
        "repeats": repeats,
        "loop_s": timings["loop"],
        "fast_s": timings["fused"],
        "speedup": timings["loop"] / timings["fused"] if timings["fused"] > 0 else None,
    }


# Reference config for the serving benchmark (BENCH_serve.json): the
# demo model at MC depth 32, where drawing + Hamming-ordering the mask
# streams is roughly half of each request's cost -- the share coalescing
# amortises across every same-seed request in a micro-batch.  The
# sharded case splits the same request set into workers-many micro-
# batches that execute on separate processes (separate cores).
_SERVE_BENCH = {
    "substrate": "cim-ordered",
    "n_requests": 16,
    "n_iterations": 32,
    "request_batch": 4,
    "max_batch": 16,
    "max_wait_ms": 30.0,
    "workers": 2,
    "sharded_max_batch": 8,
}


def _bench_serve(repeats: int) -> dict:
    """Requests/sec: sequential session.run vs the coalescing service."""
    import numpy as np

    from repro.runtime import BatchPolicy, QueuePolicy
    from repro.serve import (
        InferenceRequest,
        InferenceService,
        build_reference_session,
        reference_run,
    )
    from repro.serve.demo import demo_inputs, demo_model

    cfg = _SERVE_BENCH
    model = demo_model()
    x = demo_inputs(batch=cfg["request_batch"])
    requests = [
        InferenceRequest(x, substrate=cfg["substrate"], seed=0)
        for _ in range(cfg["n_requests"])
    ]

    # Sequential per-request serving: one warm session, a fresh mask
    # plan drawn and pinned per request (the reference contract).
    session = build_reference_session(
        cfg["substrate"], model, n_iterations=cfg["n_iterations"]
    )
    reference = reference_run(session, x, 0)  # warm-up + parity anchor
    direct_laps = []
    for _ in range(repeats):
        start = time.perf_counter()
        for request in requests:
            reference_run(session, request.inputs, request.seed)
        direct_laps.append(time.perf_counter() - start)

    def service_laps(max_batch: int, max_wait_ms: float, workers: int = 0):
        import asyncio

        from repro.runtime import ShardPolicy

        service = InferenceService(
            model,
            substrates=[cfg["substrate"]],
            n_iterations=cfg["n_iterations"],
            batch=BatchPolicy(max_batch=max_batch, max_wait_ms=max_wait_ms),
            queue=QueuePolicy(max_pending=cfg["n_requests"]),
            shard=ShardPolicy(workers=workers),
        )

        async def drive():
            # Steady-state throughput: warm-up and lifecycle live outside
            # the timed laps, like a long-running server.  The warm-up
            # lap uses the full request set so every shard gets touched.
            async with service:
                await asyncio.gather(
                    *(service.submit(r) for r in requests)
                )
                laps, responses = [], None
                for _ in range(repeats):
                    start = time.perf_counter()
                    responses = await asyncio.gather(
                        *(service.submit(r) for r in requests)
                    )
                    laps.append(time.perf_counter() - start)
                return laps, list(responses)

        return asyncio.run(drive())

    batch1_laps, batch1 = service_laps(max_batch=1, max_wait_ms=0.0)
    coalesced_laps, coalesced = service_laps(
        cfg["max_batch"], cfg["max_wait_ms"]
    )
    # Sharded scale-out: the same load split over worker processes --
    # smaller micro-batches, but they execute on separate cores.
    sharded_laps, sharded = service_laps(
        cfg["sharded_max_batch"], cfg["max_wait_ms"], workers=cfg["workers"]
    )
    # Full-reference parity on every served response (both modes): the
    # values *and* the per-request metering must match the pinned-mask
    # oracle exactly -- a metering bleed across coalesced requests is as
    # much a failure as a wrong mean.
    parity = max(
        float(np.max(np.abs(resp.result.mean - reference.mean)))
        for resp in batch1 + coalesced + sharded
    )
    metering_parity = all(
        resp.result.energy_j == reference.energy_j
        and resp.result.ops_executed == reference.ops_executed
        and np.array_equal(resp.result.variance, reference.variance)
        for resp in batch1 + coalesced + sharded
    )
    n = cfg["n_requests"]
    direct_s, batch1_s, coalesced_s, sharded_s = (
        min(direct_laps),
        min(batch1_laps),
        min(coalesced_laps),
        min(sharded_laps),
    )
    return {
        "case": "serve-coalescing",
        **cfg,
        "repeats": repeats,
        "direct_s": direct_s,
        "service_batch1_s": batch1_s,
        "service_coalesced_s": coalesced_s,
        "service_sharded_s": sharded_s,
        "direct_rps": n / direct_s,
        "service_batch1_rps": n / batch1_s,
        "service_coalesced_rps": n / coalesced_s,
        "service_sharded_rps": n / sharded_s,
        "speedup_vs_direct": direct_s / coalesced_s,
        "speedup_vs_batch1": batch1_s / coalesced_s,
        "speedup_sharded_vs_coalesced": coalesced_s / sharded_s,
        "mean_batch_size_coalesced": len(coalesced) and (
            sum(r.batch_size for r in coalesced) / len(coalesced)
        ),
        "mean_batch_size_sharded": len(sharded) and (
            sum(r.batch_size for r in sharded) / len(sharded)
        ),
        "parity_max_abs_diff": parity,
        "parity_metering_exact": metering_parity,
    }


# Reference config for the streaming-track benchmark (the "tracking"
# case in BENCH_serve.json): thousands of concurrent live tracks over
# the tiny demo world, each stepped measurement-by-measurement through
# the service's track path (per-track state swap over one shared
# prototype session, steps coalesced into micro-batches).  The baseline
# is the same filter stepped by a one-shot session.run() -- the ratio is
# machine-relative, so a committed baseline transfers across runners.
_TRACKING_BENCH = {
    "substrate": "cim",
    "n_tracks": 2000,
    "steps_per_track": 2,
    "parity_tracks": 4,
    "max_batch": 32,
    "max_wait_ms": 2.0,
}


def _bench_tracking() -> dict:
    """Steps/sec across thousands of live tracks vs one-shot stepping."""
    import asyncio

    import numpy as np

    from repro.runtime import BatchPolicy, TrackPolicy
    from repro.serve import InferenceService, TrackInit, reference_track_run
    from repro.serve.demo import (
        demo_model,
        demo_track_measurements,
        demo_track_world,
    )

    cfg = _TRACKING_BENCH
    world = demo_track_world()
    controls, depths, truths = demo_track_measurements(
        n_steps=cfg["steps_per_track"]
    )
    init = TrackInit(
        mode="tracking",
        state=truths[0],
        sigma=np.full(truths.shape[1], 0.05),
        z_range=None,
    )

    # Direct baseline: the same filter advanced by one-shot session.run()
    # (session build and initialization outside the timer -- steady-state
    # per-step cost, same as the service's timed region).
    session = world.build_session(cfg["substrate"])
    direct_laps = []
    for _ in range(3):
        rng = np.random.default_rng(0)
        init.apply(session, rng)
        start = time.perf_counter()
        session.run((controls, depths, truths), rng=rng)
        direct_laps.append(time.perf_counter() - start)
    direct_steps_per_s = cfg["steps_per_track"] / min(direct_laps)

    service = InferenceService(
        demo_model(),
        substrates=[cfg["substrate"]],
        batch=BatchPolicy(
            max_batch=cfg["max_batch"], max_wait_ms=cfg["max_wait_ms"]
        ),
        track_world=world,
        tracks=TrackPolicy(max_tracks=cfg["n_tracks"] + 16),
        track_substrates=[cfg["substrate"]],
    )

    async def drive():
        async with service:
            handles = await asyncio.gather(
                *(
                    service.open_track(
                        substrate=cfg["substrate"], init=init, seed=i
                    )
                    for i in range(cfg["n_tracks"])
                )
            )
            responses = [[] for _ in handles]
            start = time.perf_counter()
            for k in range(cfg["steps_per_track"]):
                step_responses = await asyncio.gather(
                    *(
                        handle.step(controls[k], depths[k], truth=truths[k])
                        for handle in handles
                    )
                )
                for bucket, response in zip(responses, step_responses):
                    bucket.append(response)
            elapsed = time.perf_counter() - start
            stats = service.stats_snapshot()["tracks"]
            return elapsed, responses, stats

    elapsed, responses, track_stats = asyncio.run(drive())
    steps_total = cfg["n_tracks"] * cfg["steps_per_track"]
    steps_per_s = steps_total / elapsed

    # Stream-determinism gate on a sample of tracks: estimates and
    # cumulative energy/ops must equal the one-shot oracle bit-for-bit.
    sample = np.linspace(
        0, cfg["n_tracks"] - 1, cfg["parity_tracks"], dtype=int
    )
    parity_exact = True
    for index in sample:
        reference = reference_track_run(
            world, cfg["substrate"], init, int(index),
            (controls, depths, truths),
        )
        streamed = responses[index]
        final = streamed[-1]
        parity_exact = parity_exact and (
            np.array_equal(
                np.array([r.estimate for r in streamed]), reference.mean
            )
            and final.energy_j == reference.energy_j
            and final.ops_executed == reference.ops_executed
            and final.energy_breakdown_j == reference.energy_breakdown_j
        )
    return {
        "case": "serve-tracking",
        **cfg,
        "steps_total": steps_total,
        "elapsed_s": elapsed,
        "steps_per_s": steps_per_s,
        "direct_steps_per_s": direct_steps_per_s,
        "throughput_vs_direct": steps_per_s / direct_steps_per_s,
        "mean_step_batch": track_stats["mean_step_batch"],
        "max_step_batch": track_stats["max_step_batch"],
        "parity_exact": parity_exact,
    }


# Reference config for the scenario-mix benchmark (the "scenario_mix"
# case in BENCH_serve.json): concurrent live tracks drawn from a weighted
# mix of scenario-library worlds (serving-sized via ScenarioSpec.tiny),
# one service per distinct world, all driven in one event loop.  This is
# the realistic-traffic leg of the serve bench: requests span *different*
# maps, dropout regimes and precisions instead of one demo world.  The
# baseline is per-scenario one-shot session.run() stepping; the ratio is
# machine-relative like every other --check metric.
_SCENARIO_MIX_BENCH = {
    "substrate": "cim",
    "mix": (
        ("room-baseline", 0.5),
        ("sensor-dropout-burst", 0.3),
        ("adc-low-precision", 0.2),
    ),
    "n_tracks": 96,
    "steps_per_track": 2,
    "max_batch": 32,
    "max_wait_ms": 2.0,
}


def _bench_scenario_mix() -> dict:
    """Steps/sec across live tracks of a weighted scenario mix."""
    import asyncio

    import numpy as np

    from repro.runtime import BatchPolicy, TrackPolicy
    from repro.scenarios import (
        ScenarioMix,
        get_scenario,
        scenario_track_setup,
        serving_profile,
    )
    from repro.serve import InferenceService, reference_track_run
    from repro.serve.demo import demo_model

    cfg = _SCENARIO_MIX_BENCH
    steps = cfg["steps_per_track"]
    mix = ScenarioMix(entries=cfg["mix"])
    assignment = mix.assign(cfg["n_tracks"], seed=0)

    # One (world, init, measurements, service) per distinct scenario: a
    # service owns exactly one TrackWorld, so a mixed fleet is a fleet of
    # services sharing the event loop -- tracks of different worlds are
    # still concurrent in flight.
    setups: dict[str, tuple] = {}
    for name, _ in cfg["mix"]:
        spec = serving_profile(get_scenario(name), n_steps=steps)
        setups[name] = scenario_track_setup(spec)

    # Direct baseline: per-scenario one-shot session.run() per-step cost,
    # weighted by how many tracks of that scenario the mix assigns.
    per_step_s: dict[str, float] = {}
    for name, (world, init, measurements) in setups.items():
        session = world.build_session(cfg["substrate"])
        laps = []
        for _ in range(3):
            rng = np.random.default_rng(0)
            init.apply(session, rng)
            start = time.perf_counter()
            session.run(measurements, rng=rng)
            laps.append(time.perf_counter() - start)
        per_step_s[name] = min(laps) / steps
    direct_total_s = sum(per_step_s[name] * steps for name in assignment)
    steps_total = len(assignment) * steps
    direct_steps_per_s = steps_total / direct_total_s

    counts = mix.counts(cfg["n_tracks"])
    services = {
        name: InferenceService(
            demo_model(),
            substrates=[cfg["substrate"]],
            batch=BatchPolicy(
                max_batch=cfg["max_batch"], max_wait_ms=cfg["max_wait_ms"]
            ),
            track_world=setups[name][0],
            tracks=TrackPolicy(max_tracks=counts[name] + 16),
            track_substrates=[cfg["substrate"]],
        )
        for name, _ in cfg["mix"]
    }

    async def drive():
        for service in services.values():
            await service.start()
        try:
            handles = await asyncio.gather(
                *(
                    services[name].open_track(
                        substrate=cfg["substrate"],
                        init=setups[name][1],
                        seed=i,
                    )
                    for i, name in enumerate(assignment)
                )
            )
            responses = [[] for _ in handles]
            start = time.perf_counter()
            for k in range(steps):
                step_responses = await asyncio.gather(
                    *(
                        handle.step(
                            setups[name][2][0][k],
                            setups[name][2][1][k],
                            truth=setups[name][2][2][k],
                        )
                        for handle, name in zip(handles, assignment)
                    )
                )
                for bucket, response in zip(responses, step_responses):
                    bucket.append(response)
            elapsed = time.perf_counter() - start
            return elapsed, responses
        finally:
            for service in services.values():
                await service.stop()

    elapsed, responses = asyncio.run(drive())
    steps_per_s = steps_total / elapsed

    # Stream-determinism gate: one sampled track per scenario must equal
    # its one-shot oracle bit-for-bit (estimates AND energy/ops), just
    # like the single-world tracking case.
    parity_exact = True
    for name in counts:
        index = assignment.index(name)
        world, init, measurements = setups[name]
        reference = reference_track_run(
            world, cfg["substrate"], init, index, measurements
        )
        streamed = responses[index]
        final = streamed[-1]
        parity_exact = parity_exact and (
            np.array_equal(
                np.array([r.estimate for r in streamed]), reference.mean
            )
            and final.energy_j == reference.energy_j
            and final.ops_executed == reference.ops_executed
            and final.energy_breakdown_j == reference.energy_breakdown_j
        )
    return {
        "case": "serve-scenario-mix",
        "substrate": cfg["substrate"],
        "n_tracks": cfg["n_tracks"],
        "steps_per_track": steps,
        "max_batch": cfg["max_batch"],
        "max_wait_ms": cfg["max_wait_ms"],
        "mix": {name: weight for name, weight in cfg["mix"]},
        "counts": counts,
        "steps_total": steps_total,
        "elapsed_s": elapsed,
        "steps_per_s": steps_per_s,
        "direct_steps_per_s": direct_steps_per_s,
        "throughput_vs_direct": steps_per_s / direct_steps_per_s,
        "parity_exact": parity_exact,
    }


def _run_serve_bench(args: argparse.Namespace) -> tuple[int, dict]:
    entry = _bench_serve(args.repeats)
    print(
        f"  {entry['case']}: direct={entry['direct_rps']:.1f} req/s "
        f"batch1={entry['service_batch1_rps']:.1f} req/s "
        f"coalesced={entry['service_coalesced_rps']:.1f} req/s "
        f"sharded(x{entry['workers']})={entry['service_sharded_rps']:.1f} "
        f"req/s ({entry['speedup_vs_direct']:.2f}x vs direct, "
        f"{entry['speedup_sharded_vs_coalesced']:.2f}x sharded vs "
        "coalesced)"
    )
    tracking = _bench_tracking()
    print(
        f"  {tracking['case']}: {tracking['n_tracks']} live tracks, "
        f"{tracking['steps_per_s']:.0f} steps/s "
        f"(direct {tracking['direct_steps_per_s']:.0f} steps/s, "
        f"{tracking['throughput_vs_direct']:.2f}x, mean step batch "
        f"{tracking['mean_step_batch']:.1f}, parity "
        f"{'exact' if tracking['parity_exact'] else 'BROKEN'})"
    )
    mix = _bench_scenario_mix()
    print(
        f"  {mix['case']}: {mix['n_tracks']} live tracks over "
        f"{len(mix['mix'])} scenarios, {mix['steps_per_s']:.0f} steps/s "
        f"(direct {mix['direct_steps_per_s']:.0f} steps/s, "
        f"{mix['throughput_vs_direct']:.2f}x, parity "
        f"{'exact' if mix['parity_exact'] else 'BROKEN'})"
    )
    payload = {
        "version": __version__,
        "serve": entry,
        "tracking": tracking,
        "scenario_mix": mix,
    }
    out = Path(args.serve_out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    if not tracking["parity_exact"]:
        print(
            "error: streamed track steps diverged from the one-shot "
            "session.run() oracle (stream-determinism contract broken)",
            file=sys.stderr,
        )
        return 1, payload
    if not mix["parity_exact"]:
        print(
            "error: scenario-mix track streams diverged from their "
            "one-shot session.run() oracles (stream-determinism contract "
            "broken)",
            file=sys.stderr,
        )
        return 1, payload
    if entry["parity_max_abs_diff"] != 0.0 or not entry["parity_metering_exact"]:
        print(
            "error: served responses diverged from the pinned-mask "
            f"reference (max |mean diff| {entry['parity_max_abs_diff']}, "
            f"metering exact: {entry['parity_metering_exact']})",
            file=sys.stderr,
        )
        return 1, payload
    if entry["speedup_vs_direct"] <= 1.0:
        print(
            "error: coalesced serving is not faster than sequential "
            f"session.run() serving ({entry['speedup_vs_direct']:.2f}x)",
            file=sys.stderr,
        )
        return 1, payload
    if entry["speedup_sharded_vs_coalesced"] <= 1.0:
        print(
            f"error: sharded serving (workers={entry['workers']}) is not "
            "faster than single-process coalesced serving "
            f"({entry['speedup_sharded_vs_coalesced']:.2f}x)",
            file=sys.stderr,
        )
        return 1, payload
    return 0, payload


# Throughput-proxy metrics compared by `repro bench --check`: machine-
# relative ratios (fast vs slow path on the same box), so a committed
# baseline from one machine transfers to CI runners.  Each entry maps a
# metric label to a path into the fresh/baseline JSON payload.
_CHECK_METRICS: dict[str, tuple[str, ...]] = {
    "engine.reference.speedup": ("engine", "reference", "speedup"),
    "serve.speedup_vs_direct": ("serve", "serve", "speedup_vs_direct"),
    "serve.speedup_sharded_vs_coalesced": (
        "serve", "serve", "speedup_sharded_vs_coalesced",
    ),
    "serve.tracking.throughput_vs_direct": (
        "serve", "tracking", "throughput_vs_direct",
    ),
    "serve.scenario_mix.throughput_vs_direct": (
        "serve", "scenario_mix", "throughput_vs_direct",
    ),
}


def _dig(payload: dict, path: tuple[str, ...]):
    node = payload
    for part in path:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _load_baselines(args: argparse.Namespace) -> dict[str, dict]:
    """Read the committed baseline files *before* the bench overwrites
    them (fresh outputs may use the same paths)."""
    baselines: dict[str, dict] = {}
    wanted = []
    if args.suite in ("core", "all"):
        wanted.append(("engine", args.baseline_engine))
    if args.suite in ("serve", "all"):
        wanted.append(("serve", args.baseline_serve))
    for kind, path in wanted:
        baseline_path = Path(path)
        if not baseline_path.exists():
            raise FileNotFoundError(
                f"bench --check needs a committed baseline at "
                f"{baseline_path} (run `repro bench` once and commit the "
                "output, or point --baseline-engine/--baseline-serve at it)"
            )
        baselines[kind] = json.loads(baseline_path.read_text())
    return baselines


def _check_regression(
    fresh: dict[str, dict], baselines: dict[str, dict], tolerance: float
) -> int:
    """Fail when a fresh throughput ratio regressed past the tolerance."""
    failures = []
    print(f"\nbench regression check (tolerance {tolerance:.0%}):")
    for label, path in _CHECK_METRICS.items():
        fresh_value = _dig(fresh, path)
        base_value = _dig(baselines, path)
        if fresh_value is None or base_value is None or base_value <= 0:
            continue  # metric absent from this suite selection / baseline
        floor = base_value * (1.0 - tolerance)
        regressed = fresh_value < floor
        print(
            f"  {label}: fresh={fresh_value:.2f} baseline={base_value:.2f} "
            f"floor={floor:.2f} {'FAIL' if regressed else 'ok'}"
        )
        if regressed:
            failures.append(label)
    if failures:
        print(
            f"error: throughput regression >{tolerance:.0%} vs committed "
            f"baseline in: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    baselines: dict[str, dict] = {}
    if args.check and not args.write_baseline:
        # Read the committed baselines up front: a missing baseline is a
        # setup error (exit 2 via main), never a silent pass.
        baselines = _load_baselines(args)
    codes = []
    fresh: dict[str, dict] = {}
    if args.suite in ("core", "all"):
        code, fresh["engine"] = _run_core_bench(args)
        codes.append(code)
    if args.suite in ("serve", "all"):
        code, fresh["serve"] = _run_serve_bench(args)
        codes.append(code)
    if args.write_baseline:
        # Regenerate the committed baselines from this run in one step
        # (only suites that ran and passed their internal gates).
        if max(codes) == 0:
            targets = {
                "engine": args.baseline_engine,
                "serve": args.baseline_serve,
            }
            for kind, payload in fresh.items():
                baseline_path = Path(targets[kind])
                baseline_path.parent.mkdir(parents=True, exist_ok=True)
                baseline_path.write_text(
                    json.dumps(payload, indent=2) + "\n"
                )
                print(f"baseline regenerated: {baseline_path}")
        else:
            print(
                "error: refusing to write baselines from a failing bench "
                "run",
                file=sys.stderr,
            )
    elif args.check:
        codes.append(_check_regression(fresh, baselines, args.tolerance))
    return max(codes)


def _run_core_bench(args: argparse.Namespace) -> tuple[int, dict]:
    ids = [eid.upper() for eid in (args.ids or list(_BENCH_CONFIGS))]
    benchmarks = []
    for experiment_id in ids:
        spec = get_experiment(experiment_id)
        overrides = _BENCH_CONFIGS.get(spec.id)
        times = []
        for _ in range(args.repeats):
            result = run_experiment(spec.id, seed=0, overrides=overrides)
            times.append(result.runtime_s)
        entry = {
            "experiment_id": spec.id,
            "title": spec.title,
            "overrides": overrides,
            "repeats": args.repeats,
            "mean_s": sum(times) / len(times),
            "min_s": min(times),
            "max_s": max(times),
        }
        benchmarks.append(entry)
        print(
            f"  {spec.id:4} mean={entry['mean_s']:.4f}s "
            f"min={entry['min_s']:.4f}s (x{args.repeats})"
        )
    batch = _bench_batch_session()
    print(
        f"  run_batch: loop={batch['loop_s']:.4f}s batch={batch['batch_s']:.4f}s "
        f"speedup={batch['speedup']:.2f}x"
    )
    payload = {
        "version": __version__,
        "benchmarks": benchmarks,
        "batch_session": batch,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    reference = _bench_engine_predict(
        args.repeats, reuse=False, label="engine-predict-no-reuse"
    )
    reuse_case = _bench_engine_predict(
        args.repeats, reuse=True, label="engine-predict-reuse-refresh"
    )
    macro = _bench_macro_matvec(args.repeats)
    for entry in (reference, reuse_case, macro):
        print(
            f"  {entry['case']}: loop={entry['loop_s']:.4f}s "
            f"fast={entry['fast_s']:.4f}s speedup={entry['speedup']:.2f}x"
        )
    engine_payload = {
        "version": __version__,
        "reference": reference,
        "cases": [reference, reuse_case, macro],
    }
    engine_out = Path(args.engine_out)
    engine_out.parent.mkdir(parents=True, exist_ok=True)
    engine_out.write_text(json.dumps(engine_payload, indent=2) + "\n")
    print(f"wrote {engine_out}")
    if reference["speedup"] is not None and reference["speedup"] < 1.0:
        print(
            "error: engine fast path slower than the loop path at the "
            f"reference config ({reference['speedup']:.2f}x)",
            file=sys.stderr,
        )
        return 1, engine_payload
    return 0, engine_payload


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.runtime import BatchPolicy, QueuePolicy, ShardPolicy, TrackPolicy
    from repro.serve import InferenceService
    from repro.serve.demo import demo_model, demo_track_world
    from repro.serve.http import serve_http

    substrates = args.substrates.split(",") if args.substrates else None
    track_world = demo_track_world() if args.tracks else None
    track_substrates = (
        args.track_substrates.split(",") if args.track_substrates else None
    )
    service = InferenceService(
        demo_model(args.model_seed),
        substrates=substrates,
        n_iterations=args.n_iterations,
        batch=BatchPolicy(
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms
        ),
        queue=QueuePolicy(max_pending=args.max_pending),
        shard=ShardPolicy(workers=args.workers),
        pool_size=args.pool_size,
        session_seed=args.session_seed,
        track_world=track_world,
        tracks=TrackPolicy(
            max_tracks=args.max_tracks, idle_ttl_s=args.track_ttl_s
        ),
        track_substrates=track_substrates,
    )

    # SIGTERM must unwind through the finally below (the default handler
    # would kill the process without running it): the service owns worker
    # shards that have to be stopped with a deadline, never orphaned.
    # (WorkerPool also registers an atexit guard as a second layer.)
    def _terminate(signum, frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    context = serve_http(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    try:
        described = service.describe()
        print(
            f"serving {', '.join(described['substrates'])} on "
            f"http://{args.host}:{context.port} "
            f"(max_batch={args.max_batch}, max_wait_ms={args.max_wait_ms}, "
            f"max_pending={args.max_pending}, pool_size={args.pool_size}, "
            f"workers={args.workers})",
            flush=True,
        )
        endpoints = "POST /infer, GET /healthz, GET /stats"
        if args.tracks:
            endpoints += (
                ", POST /track/open, POST /track/step, POST /track/close"
            )
            print(
                f"streaming tracks: demo world, max_tracks={args.max_tracks}, "
                f"idle_ttl_s={args.track_ttl_s}",
                flush=True,
            )
        print(f"endpoints: {endpoints}", flush=True)
        import threading

        threading.Event().wait()  # block until interrupted
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        context.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Structured runner for the paper's experiments (E1-E11).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    list_parser = sub.add_parser("list", help="list experiments and substrates")
    list_parser.add_argument("--json", action="store_true")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("ids", nargs="+", help="experiment ids (or 'all')")
    run_parser.add_argument("--seed", type=int, default=None)
    run_parser.add_argument(
        "--substrate", default=None, help="registered substrate override"
    )
    run_parser.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="config field override (repeatable)",
    )
    run_parser.add_argument("--json", action="store_true")
    run_parser.add_argument("--out", default=None, metavar="DIR")
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = sub.add_parser(
        "sweep", help="run one experiment over a substrate x seed grid"
    )
    sweep_parser.add_argument("id", help="experiment id")
    sweep_parser.add_argument(
        "--substrates", default=None, help="comma-separated substrate names"
    )
    sweep_parser.add_argument(
        "--seeds", default=None, help="comma-separated integer seeds"
    )
    sweep_parser.add_argument(
        "--set", action="append", metavar="KEY=VALUE", help="config override"
    )
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process count (1 = serial; results identical either way)",
    )
    sweep_parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="write a structured run store (manifest.json + results.jsonl)",
    )
    sweep_parser.add_argument("--json", action="store_true")
    sweep_parser.add_argument("--out", default=None, metavar="DIR")
    sweep_parser.set_defaults(handler=_cmd_sweep)

    report_parser = sub.add_parser(
        "report", help="summarise a run store written by sweep --store"
    )
    report_parser.add_argument("store", help="run store directory")
    report_parser.add_argument("--json", action="store_true")
    report_parser.set_defaults(handler=_cmd_report)

    scenarios_parser = sub.add_parser(
        "scenarios",
        help="list/run/report the named scenario library "
        "(declarative worlds swept over substrates x seeds)",
    )
    scenarios_sub = scenarios_parser.add_subparsers(dest="scenarios_command")

    scn_list = scenarios_sub.add_parser(
        "list", help="list the stock scenario library"
    )
    scn_list.add_argument("--tag", default=None, help="filter by tag")
    scn_list.add_argument("--json", action="store_true")
    scn_list.set_defaults(handler=_cmd_scenarios_list)

    scn_run = scenarios_sub.add_parser(
        "run", help="sweep scenarios over substrates x seeds"
    )
    scn_run.add_argument(
        "names", nargs="+", help="scenario names (or 'all')"
    )
    scn_run.add_argument(
        "--substrates", default=None, help="comma-separated substrate names"
    )
    scn_run.add_argument(
        "--seeds", default=None, help="comma-separated integer seeds"
    )
    scn_run.add_argument(
        "--set",
        action="append",
        metavar="PATH=VALUE",
        help="dotted spec override, e.g. trajectory.n_steps=8 (repeatable)",
    )
    scn_run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process count (1 = serial; results identical either way)",
    )
    scn_run.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="write a structured run store (manifest.json + results.jsonl)",
    )
    scn_run.add_argument(
        "--tiny",
        action="store_true",
        help="cap every spec to a smoke-test budget before overrides",
    )
    scn_run.add_argument("--json", action="store_true")
    scn_run.set_defaults(handler=_cmd_scenarios_run)

    scn_report = scenarios_sub.add_parser(
        "report", help="summarise a scenario run store"
    )
    scn_report.add_argument("store", help="run store directory")
    scn_report.add_argument("--json", action="store_true")
    scn_report.set_defaults(handler=_cmd_scenarios_report)

    lint_parser = sub.add_parser(
        "lint",
        help="AST determinism linter (rules DET001-DET008): exit 1 on "
        "any finding not grandfathered by lint_baseline.json, or on "
        "stale baseline entries",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files/directories to lint (default: {' '.join(_LINT_DEFAULT_PATHS)})",
    )
    lint_parser.add_argument(
        "--baseline",
        default="lint_baseline.json",
        metavar="PATH",
        help="committed baseline of grandfathered findings",
    )
    lint_parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    lint_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run's findings (the gate "
        "ratchet: run it after fixing violations so stale entries drop)",
    )
    lint_parser.add_argument(
        "--rules",
        action="store_true",
        help="print the rule table (codes, rationales) and exit",
    )
    lint_parser.add_argument("--json", action="store_true")
    lint_parser.set_defaults(handler=_cmd_lint)

    bench_parser = sub.add_parser(
        "bench",
        help="time the quick experiment configs, the batched-session path "
        "(BENCH_runtime.json), the engine loop-vs-fast paths "
        "(BENCH_engine.json) and, with --suite serve, the coalescing "
        "service (BENCH_serve.json)",
    )
    bench_parser.add_argument(
        "--suite",
        choices=("core", "serve", "all"),
        default="core",
        help="core = experiment/engine benches (the historical default); "
        "serve = request-serving throughput (exit 1 if coalescing is "
        "not faster than sequential serving); all = both",
    )
    bench_parser.add_argument(
        "--ids",
        nargs="+",
        default=None,
        metavar="ID",
        help=f"experiments to time (default: {' '.join(_BENCH_CONFIGS)})",
    )
    bench_parser.add_argument("--repeats", type=int, default=3, metavar="N")
    bench_parser.add_argument(
        "--out", default="BENCH_runtime.json", metavar="PATH"
    )
    bench_parser.add_argument(
        "--engine-out",
        default="BENCH_engine.json",
        metavar="PATH",
        help="engine/macro loop-vs-fast timing output "
        "(exit 1 if the fast path is slower at the reference config)",
    )
    bench_parser.add_argument(
        "--serve-out",
        default="BENCH_serve.json",
        metavar="PATH",
        help="serving-throughput output for --suite serve/all "
        "(exit 1 if coalescing is not faster than sequential serving, "
        "or if sharded serving is not faster than coalesced)",
    )
    bench_parser.add_argument(
        "--check",
        action="store_true",
        help="regression gate: compare the fresh speedup ratios against "
        "the committed baselines (read before the fresh files are "
        "written) and exit 1 on a regression beyond --tolerance",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        metavar="FRAC",
        help="allowed fractional throughput regression for --check "
        "(default 0.30 = 30%%)",
    )
    bench_parser.add_argument(
        "--baseline-engine",
        default="BENCH_engine.json",
        metavar="PATH",
        help="committed engine baseline compared by --check",
    )
    bench_parser.add_argument(
        "--baseline-serve",
        default="BENCH_serve.json",
        metavar="PATH",
        help="committed serving baseline compared by --check",
    )
    bench_parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the committed baselines (--baseline-engine / "
        "--baseline-serve paths) from this run in one step instead of "
        "comparing against them; refused if the run fails its internal "
        "gates.  Without it, --check still exits 2 on a missing baseline",
    )
    bench_parser.set_defaults(handler=_cmd_bench)

    serve_parser = sub.add_parser(
        "serve",
        help="serve MC-Dropout inference over HTTP "
        "(/infer, /healthz, /stats) with dynamic micro-batching",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8000)
    serve_parser.add_argument(
        "--substrates",
        default=None,
        metavar="CSV",
        help="comma-separated substrate names (default: all registered)",
    )
    serve_parser.add_argument(
        "--n-iterations", type=int, default=16, metavar="T",
        help="MC-Dropout depth of every served session",
    )
    serve_parser.add_argument(
        "--max-batch", type=int, default=8, metavar="N",
        help="largest micro-batch coalesced per dispatch (1 disables)",
    )
    serve_parser.add_argument(
        "--max-wait-ms", type=float, default=5.0, metavar="MS",
        help="longest an admitted request waits for batch company",
    )
    serve_parser.add_argument(
        "--max-pending", type=int, default=64, metavar="N",
        help="bounded admission: beyond this, /infer rejects with 503",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker shard processes; 0 (default) serves in-process, "
        "N >= 1 fans micro-batches out over N spawned shards, each with "
        "its own calibrated session pools (same bits, more cores)",
    )
    serve_parser.add_argument(
        "--pool-size", type=int, default=1, metavar="N",
        help="pre-warmed sessions per (substrate, model) pair "
        "(in-process mode; with --workers, concurrency comes from "
        "the shard count instead)",
    )
    serve_parser.add_argument(
        "--model-seed", type=int, default=0, metavar="N",
        help="seed of the built-in demo model being served",
    )
    serve_parser.add_argument(
        "--session-seed", type=int, default=0, metavar="N",
        help="hardware-instantiation seed (part of the parity contract)",
    )
    serve_parser.add_argument(
        "--tracks", action="store_true",
        help="also serve stateful streaming localization tracks over the "
        "built-in demo world (POST /track/open, /track/step, "
        "/track/close)",
    )
    serve_parser.add_argument(
        "--max-tracks", type=int, default=1024, metavar="N",
        help="bounded track admission: beyond this many live tracks, "
        "/track/open rejects with a retryable 503",
    )
    serve_parser.add_argument(
        "--track-ttl-s", type=float, default=600.0, metavar="S",
        help="idle tracks are evicted after this long without a step "
        "(the next step gets a clear 410, never a hang)",
    )
    serve_parser.add_argument(
        "--track-substrates", default=None, metavar="CSV",
        help="substrates to warm track prototypes for "
        "(default: the served --substrates)",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve_parser.set_defaults(handler=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 0
    try:
        return args.handler(args)
    except (KeyError, ValueError, FileNotFoundError, FileExistsError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
