"""Structured experiment registry.

Experiments register themselves with the :func:`experiment` decorator and
a typed config dataclass; :func:`run_experiment` resolves id + seed +
substrate + config overrides into an
:class:`~repro.api.results.ExperimentResult`:

    @dataclass(frozen=True)
    class AblationConfig:
        seed: int = 0
        n_iterations: int = 30

    @experiment("E9", title="reuse ablation", config=AblationConfig)
    def run_e9(ctx: ExperimentContext) -> dict:
        return reuse_ablation(seed=ctx.seed, n_iterations=ctx.config.n_iterations)

    result = run_experiment("E9", seed=3, overrides={"n_iterations": 10})

Experiment functions receive an :class:`ExperimentContext` (seed, seeded
RNG, resolved config, optional substrate override) and return a plain
metrics dict; the registry handles timing, sanitisation and persistence.
"""

from __future__ import annotations

import ast
import dataclasses
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.api.results import ExperimentResult, config_hash, to_jsonable
from repro.api.substrates import SubstrateConfig, get_substrate


def result_stem(
    experiment_id: str,
    substrate: str | None,
    seed: int,
    overrides: dict[str, Any] | None = None,
) -> str:
    """Filename stem for one run: ``E3-cim-seed1[-cfg<hash>]``.

    The config hash is appended only when overrides are present, so two
    runs of the same id/substrate/seed with different ``--set`` values
    land in different files instead of overwriting each other (and
    default filenames stay byte-identical to the historical scheme).
    """
    stem = experiment_id
    if substrate:
        stem += f"-{substrate}"
    stem += f"-seed{seed}"
    digest = config_hash(overrides)
    if digest:
        stem += f"-cfg{digest}"
    return stem


def resolve_substrate(
    spec: "ExperimentSpec", substrate: "str | SubstrateConfig | None"
) -> SubstrateConfig | None:
    """Resolve + validate a substrate override against an experiment spec.

    Shared by :func:`run_experiment` and plan compilation so both reject
    the same grids with the same messages.

    Raises:
        KeyError: unknown substrate name.
        ValueError: the experiment does not accept this substrate.
    """
    if substrate is None:
        return None
    resolved = get_substrate(substrate)
    if not spec.substrates:
        raise ValueError(
            f"experiment {spec.id} does not support substrate overrides"
        )
    if resolved.name not in spec.substrates:
        raise ValueError(
            f"experiment {spec.id} supports substrates "
            f"{list(spec.substrates)}, not {resolved.name!r}"
        )
    return resolved


def save_results(
    results: "list[ExperimentResult]",
    out_dir: str | Path,
    overrides: dict[str, Any] | None = None,
) -> list[Path]:
    """Write one JSON file per result using config-hashed stems."""
    out_dir = Path(out_dir)
    paths = []
    for result in results:
        stem = result_stem(
            result.experiment_id, result.substrate, result.seed, overrides
        )
        paths.append(result.save(out_dir / f"{stem}.json"))
    return paths


@dataclass
class ExperimentContext:
    """Everything an experiment function needs to run.

    Attributes:
        seed: effective seed for the run.
        rng: a generator seeded with ``seed`` (fresh per run).
        config: the experiment's typed config instance (or None).
        substrate: substrate override, or None for the built-in default.
    """

    seed: int
    rng: np.random.Generator
    config: Any = None
    substrate: SubstrateConfig | None = None


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment.

    Attributes:
        id: registry id (``"E4"``).
        title: human-readable title (matches the paper figure/table).
        fn: the experiment function ``(ExperimentContext) -> dict``.
        config_cls: typed config dataclass, or None for no knobs.
        substrates: substrate names the experiment accepts as overrides;
            empty means the experiment is not substrate-parametrisable.
        description: longer help text.
    """

    id: str
    title: str
    fn: Callable[[ExperimentContext], dict]
    config_cls: type | None = None
    substrates: tuple[str, ...] = ()
    description: str = ""

    def default_config(self) -> Any:
        return None if self.config_cls is None else self.config_cls()

    def make_config(
        self, overrides: dict[str, Any] | None = None, seed: int | None = None
    ) -> Any:
        """Resolve the typed config from defaults + overrides + seed."""
        if self.config_cls is None:
            if overrides:
                raise ValueError(
                    f"experiment {self.id} takes no config overrides"
                )
            return None
        config = self.config_cls()
        if overrides:
            config = dataclasses.replace(
                config, **_coerce_overrides(self.config_cls, overrides)
            )
        if seed is not None and any(
            f.name == "seed" for f in dataclasses.fields(self.config_cls)
        ):
            config = dataclasses.replace(config, seed=int(seed))
        return config


def _coerce_overrides(config_cls: type, overrides: dict[str, Any]) -> dict[str, Any]:
    """Coerce CLI string overrides onto dataclass field types."""
    fields = {f.name: f for f in dataclasses.fields(config_cls)}
    coerced: dict[str, Any] = {}
    for name, value in overrides.items():
        if name not in fields:
            raise ValueError(
                f"unknown config field {name!r} for {config_cls.__name__}; "
                f"options: {sorted(fields)}"
            )
        if isinstance(value, str):
            try:
                value = ast.literal_eval(value)
            except (ValueError, SyntaxError):
                pass  # keep as string (e.g. engine="software")
        default = getattr(config_cls(), name)
        if isinstance(default, tuple) and isinstance(value, list):
            value = tuple(value)
        if not _compatible(default, value):
            raise ValueError(
                f"config field {name!r} expects "
                f"{type(default).__name__}, got {value!r}"
            )
        coerced[name] = value
    return coerced


def _compatible(default: Any, value: Any) -> bool:
    """Does ``value`` fit the type the field's default implies?"""
    if default is None:
        return True
    if isinstance(default, bool):
        return isinstance(value, bool)
    if isinstance(default, int):
        return isinstance(value, int) and not isinstance(value, bool)
    if isinstance(default, float):
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, type(default))


_REGISTRY: dict[str, ExperimentSpec] = {}


def experiment(
    experiment_id: str,
    title: str,
    config: type | None = None,
    substrates: tuple[str, ...] = (),
    description: str = "",
) -> Callable[[Callable[[ExperimentContext], dict]], Callable]:
    """Decorator registering an experiment function under an id."""

    def decorator(fn: Callable[[ExperimentContext], dict]) -> Callable:
        key = experiment_id.upper()
        if key in _REGISTRY:
            raise ValueError(f"experiment {key!r} already registered")
        doc = (fn.__doc__ or "").strip()
        _REGISTRY[key] = ExperimentSpec(
            id=key,
            title=title,
            fn=fn,
            config_cls=config,
            substrates=tuple(substrates),
            description=description or (doc.splitlines()[0] if doc else ""),
        )
        return fn

    return decorator


def _ensure_registered() -> None:
    """Import the experiment definitions (idempotent)."""
    import repro.api.experiments  # noqa: F401  (registration side effect)


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Resolve an experiment id (case-insensitive).

    Raises:
        KeyError: unknown id, with the available options in the message.
    """
    _ensure_registered()
    key = str(experiment_id).upper()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"options: {[spec.id for spec in list_experiments()]}"
        )
    return _REGISTRY[key]


def list_experiments() -> list[ExperimentSpec]:
    """All registered experiments: numeric ids (E1-E11) first, in
    numeric order, then letter-only ids (SCN) alphabetically."""
    _ensure_registered()

    def sort_key(spec: ExperimentSpec) -> tuple:
        digits = "".join(c for c in spec.id if c.isdigit())
        return (0, int(digits), spec.id) if digits else (1, 0, spec.id)

    return sorted(_REGISTRY.values(), key=sort_key)


def run_experiment(
    experiment_id: str,
    seed: int | None = None,
    substrate: str | SubstrateConfig | None = None,
    overrides: dict[str, Any] | None = None,
    out_dir: str | Path | None = None,
) -> ExperimentResult:
    """Run one experiment through the registry.

    Args:
        experiment_id: registry id (case-insensitive).
        seed: overrides the config's default seed.
        substrate: re-run the experiment on this registered substrate
            (only for experiments declaring substrate support).
        overrides: config field overrides (CLI strings are coerced).
        out_dir: when given, the result JSON is written there as
            ``<id>[-<substrate>]-seed<seed>.json``.

    Returns:
        The structured :class:`ExperimentResult`.
    """
    spec = get_experiment(experiment_id)
    resolved = resolve_substrate(spec, substrate)
    config = spec.make_config(overrides, seed)
    effective_seed = (
        int(seed) if seed is not None else int(getattr(config, "seed", 0) or 0)
    )
    context = ExperimentContext(
        seed=effective_seed,
        rng=np.random.default_rng(effective_seed),
        config=config,
        substrate=resolved,
    )
    start = time.perf_counter()
    metrics = spec.fn(context)
    runtime = time.perf_counter() - start
    result = ExperimentResult(
        experiment_id=spec.id,
        title=spec.title,
        seed=effective_seed,
        substrate=None if resolved is None else resolved.name,
        config={} if config is None else to_jsonable(dataclasses.asdict(config)),
        metrics=to_jsonable(metrics),
        runtime_s=runtime,
    )
    if out_dir is not None:
        save_results([result], out_dir, overrides)
    return result


def sweep_experiment(
    experiment_id: str,
    substrates: list[str] | None = None,
    seeds: list[int] | None = None,
    overrides: dict[str, Any] | None = None,
    out_dir: str | Path | None = None,
    workers: int = 1,
    store: "Any | None" = None,
) -> list[ExperimentResult]:
    """Run one experiment over a substrate x seed grid.

    ``substrates`` / ``seeds`` default to a single entry meaning "the
    experiment's built-in default"; the cross product is compiled into a
    :class:`~repro.runtime.Plan` and executed by the batch runtime --
    serially by default, or across ``workers`` processes (the runtime
    guarantees identical results either way because every job's seed is
    explicit in its :class:`~repro.runtime.JobSpec`).

    Args:
        experiment_id: registry id.
        substrates: substrate axis (None entries mean built-in default).
        seeds: seed axis.
        overrides: config field overrides applied to every cell.
        out_dir: write one JSON file per result (config-hashed stems).
        workers: process count; ``1`` runs in-process.
        store: a :class:`~repro.runtime.RunStore` (or path) capturing the
            manifest and one JSONL record per job.

    Returns:
        The successful results in grid order.  A failing cell raises the
        captured error -- but only after the rest of the grid has
        completed and every successful result has been written to
        ``out_dir``/``store``, so partial work is never lost.
    """
    from repro.runtime import ParallelExecutor, Plan

    plan = Plan.compile(
        experiment_id, substrates=substrates, seeds=seeds, overrides=overrides
    )
    report = ParallelExecutor(workers=workers).execute(plan, store=store)
    results = report.results
    if out_dir is not None:
        save_results(results, out_dir, overrides)
    report.raise_on_error()
    return results


__all__ = [
    "ExperimentContext",
    "ExperimentSpec",
    "experiment",
    "get_experiment",
    "list_experiments",
    "resolve_substrate",
    "result_stem",
    "run_experiment",
    "save_results",
    "sweep_experiment",
]
