"""Public entry point to the reproduction stack.

This package is the single front door to everything below it:

- **Substrates** (:mod:`repro.api.substrates`): named, registered compute
  backends (``"digital"``, ``"cim"``, ``"cim-reuse"``, ``"cim-ordered"``)
  opening uniform ``session.run(inputs) -> InferenceResult`` sessions over
  the co-designed engines in :mod:`repro.core`.
- **Results** (:mod:`repro.api.results`): :class:`InferenceResult` and
  :class:`ExperimentResult` schemas that round-trip through JSON.
- **Experiments** (:mod:`repro.api.registry` /
  :mod:`repro.api.experiments`): a decorator-based registry of typed
  experiment specs (E1-E11) with seeded RNG injection, config overrides
  and substrate substitution.
- **CLI** (:mod:`repro.api.cli`):
  ``python -m repro list|run|sweep|report|bench``.

Sweep grids are executed by the batch runtime (:mod:`repro.runtime`):
plans, the parallel executor and the structured on-disk
:class:`~repro.runtime.RunStore`.

Quick start::

    from repro.api import get_substrate, run_experiment

    # run a registered experiment on a chosen backend
    result = run_experiment("E6", seed=1, substrate="cim-reuse")
    print(result.metrics["ate_rmse_m"])

    # or drive a substrate session directly
    session = get_substrate("cim-ordered").mc_dropout_session(model)
    inference = session.run(features)
"""

from repro.api.registry import (
    ExperimentContext,
    ExperimentSpec,
    experiment,
    get_experiment,
    list_experiments,
    result_stem,
    run_experiment,
    sweep_experiment,
)
from repro.api.results import (
    BatchResult,
    ExperimentResult,
    InferenceResult,
    config_hash,
    from_jsonable,
    to_jsonable,
)
from repro.api.substrates import (
    InferenceSession,
    LocalizationSession,
    MacroOptions,
    MaskPlan,
    MCDropoutSession,
    ReusePolicy,
    Substrate,
    SubstrateConfig,
    available_substrates,
    get_substrate,
    register_substrate,
)

__all__ = [
    # substrates
    "Substrate",
    "SubstrateConfig",
    "MacroOptions",
    "ReusePolicy",
    "InferenceSession",
    "MaskPlan",
    "MCDropoutSession",
    "LocalizationSession",
    "register_substrate",
    "get_substrate",
    "available_substrates",
    # results
    "InferenceResult",
    "BatchResult",
    "ExperimentResult",
    "config_hash",
    "to_jsonable",
    "from_jsonable",
    # experiments
    "ExperimentContext",
    "ExperimentSpec",
    "experiment",
    "get_experiment",
    "list_experiments",
    "result_stem",
    "run_experiment",
    "sweep_experiment",
]
