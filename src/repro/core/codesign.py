"""Map/hardware co-design: from a point-cloud map to a programmed array.

The co-design pipeline (paper Sec. II-B/C):

1. fit a conventional GMM to the map point cloud;
2. derive the hardware width menu -- the effective kernel widths (in world
   units) each inverter width code realises under the chosen
   world-to-voltage encoding;
3. convert the GMM into an HMG mixture with widths snapped to the menu and
   weights re-fit so the evaluated field matches;
4. program an inverter array: centers through the floating gates, widths
   through width codes, and weights through integer column replication with
   per-column peak-current compensation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.adc import LogarithmicADC
from repro.circuits.inverter import width_code_sigmas
from repro.circuits.inverter_array import (
    InverterArray,
    InverterColumn,
    VoltageEncoder,
)
from repro.circuits.noise import NoiseModel
from repro.circuits.technology import TechnologyNode
from repro.circuits.variability import MismatchSampler
from repro.maps.hmgm import HMGMixture


def hardware_sigma_menu(
    node: TechnologyNode, encoder: VoltageEncoder, fg_bits: int = 4
) -> np.ndarray:
    """Per-axis world-unit width menu, shape (n_axes, n_codes).

    Entry ``[a, c]`` is the kernel width (in world units along axis ``a``)
    realised by width code ``c`` under ``encoder``.
    """
    menu_volts = width_code_sigmas(node, fg_bits=fg_bits)
    scale = encoder.scale()
    return menu_volts[None, :] / scale[:, None]


def _nearest_width_codes(
    sigmas_world: np.ndarray, menu_world: np.ndarray
) -> np.ndarray:
    """Width codes (K, A) whose menu widths best match requested sigmas."""
    k, a = sigmas_world.shape
    codes = np.empty((k, a), dtype=int)
    for axis in range(a):
        codes[:, axis] = np.argmin(
            np.abs(sigmas_world[:, axis, None] - menu_world[axis][None, :]), axis=1
        )
    return codes


@dataclass(frozen=True)
class CoDesignReport:
    """Audit record of an array programming run.

    Attributes:
        n_components: mixture components programmed.
        total_columns: physical columns used (sum of replication).
        replication: per-component replication counts (K,).
        width_codes: per-component per-axis width codes (K, A).
        amplitude_error: relative RMS error between target component
            amplitudes and the amplitudes the replicated columns realise.
    """

    n_components: int
    total_columns: int
    replication: np.ndarray
    width_codes: np.ndarray
    amplitude_error: float


def program_inverter_array(
    mixture: HMGMixture,
    encoder: VoltageEncoder,
    node: TechnologyNode,
    total_columns: int = 500,
    fg_bits: int = 4,
    adc_bits: int = 4,
    input_dac_bits: int = 6,
    mismatch: MismatchSampler | None = None,
    noise: NoiseModel | None = None,
    rng: np.random.Generator | None = None,
    eval_time_s: float = 1.0e-8,
) -> tuple[InverterArray, CoDesignReport]:
    """Program an inverter array to realise an HMG mixture field.

    Mixture weights map to integer column replication.  Because wider cells
    conduct a smaller peak current, replication is computed against each
    column's *peak current* so the realised field amplitudes track the
    mixture's component amplitudes.

    Args:
        mixture: the co-designed HMG mixture (widths should already sit on
            the hardware menu; they are snapped again defensively).
        encoder: world-to-voltage map.
        node: technology node.
        total_columns: column budget (the paper's Fig. 2i uses 500).
        fg_bits: floating-gate center resolution.
        adc_bits: log-ADC resolution.
        input_dac_bits: input DAC resolution.
        mismatch: optional process-variation sampler.
        noise: optional analog noise model.
        rng: generator (required with mismatch).
        eval_time_s: analog integration time per query.

    Returns:
        (array, report).
    """
    if total_columns < mixture.n_components:
        raise ValueError(
            f"column budget {total_columns} cannot fit {mixture.n_components} components"
        )
    menu_world = hardware_sigma_menu(node, encoder, fg_bits=fg_bits)
    width_codes = _nearest_width_codes(mixture.sigmas, menu_world)
    centers_v = encoder.encode(mixture.means)

    # Probe pass: peak current of each candidate column (no mismatch/noise).
    probe_columns = [
        InverterColumn(centers_v[j], width_codes[j], replication=1)
        for j in range(mixture.n_components)
    ]
    probe = InverterArray(
        node, probe_columns, fg_bits=fg_bits, input_dac_bits=input_dac_bits
    )
    peak_currents = np.diag(probe.column_currents(centers_v))

    # Replication proportional to amplitude / peak-current, within budget.
    amplitudes = mixture.amplitudes()
    demand = amplitudes / peak_currents
    replication = np.maximum(
        1, np.rint(demand / demand.sum() * total_columns)
    ).astype(int)
    realised = replication * peak_currents
    target = amplitudes / amplitudes.sum()
    realised_norm = realised / realised.sum()
    amplitude_error = float(
        np.sqrt(np.mean((realised_norm - target) ** 2)) / (target.mean() + 1e-300)
    )

    columns = [
        InverterColumn(centers_v[j], width_codes[j], replication=int(replication[j]))
        for j in range(mixture.n_components)
    ]
    array = InverterArray(
        node,
        columns,
        fg_bits=fg_bits,
        mismatch=mismatch,
        noise=noise,
        input_dac_bits=input_dac_bits,
        eval_time_s=eval_time_s,
        rng=rng,
    )
    # ADC range calibration: size the log converter to the field's actual
    # operating range (currents at component centers for the ceiling, the
    # low percentile over the domain for the floor) so all 2**bits codes
    # resolve useful likelihood contrast instead of empty decades.
    calib_rng = rng or np.random.default_rng(0)
    domain_points = calib_rng.uniform(
        encoder.lo, encoder.hi, size=(512, mixture.means.shape[1])
    )
    calib_points = np.concatenate([mixture.means, domain_points], axis=0)
    currents = array.total_current(
        encoder.encode(calib_points), rng=calib_rng if noise is not None else None
    )
    i_max = 2.0 * float(currents.max())
    i_min = max(0.5 * float(np.percentile(currents, 2.0)), 1e-12)
    array.adc = LogarithmicADC(node, bits=adc_bits, i_min=i_min, i_max=i_max)
    report = CoDesignReport(
        n_components=mixture.n_components,
        total_columns=int(replication.sum()),
        replication=replication,
        width_codes=width_codes,
        amplitude_error=amplitude_error,
    )
    return array, report
