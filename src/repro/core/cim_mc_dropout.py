"""CIM MC-Dropout inference engine (paper Sec. III).

Maps a trained dropout network onto SRAM CIM macros and runs the T-sample
Monte-Carlo inference with the paper's three hardware hooks:

1. **SRAM-immersed dropout bits** -- masks come from the cross-coupled-
   inverter RNG harvested inside the macro (or a software Bernoulli stream
   for reference runs).
2. **Compute reuse** -- iteration t's layer products are built from
   iteration t-1's through the macro's delta port: only input lines whose
   (masked) activation changed are driven.
3. **Optimal sample ordering** -- the T masks are visited in the order that
   minimises total mask-to-mask Hamming distance, maximising reuse.

Because analog delta accumulation also accumulates read noise, the engine
re-evaluates from scratch every ``refresh_every`` iterations -- a knob the
ablation benchmarks sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bayesian.masks import MaskStream
from repro.bayesian.ordering import optimal_mask_order
from repro.circuits.energy import EnergyLedger
from repro.nn.dropout import Dropout
from repro.nn.layers import Dense, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.sequential import Sequential
from repro.sram.dropout_gen import DropoutBitGenerator
from repro.sram.macro import MacroConfig, SRAMCIMMacro
from repro.sram.rng import CrossCoupledInverterRNG

_ACTIVATIONS = (ReLU, LeakyReLU, Tanh, Sigmoid)


@dataclass
class MCDropoutResult:
    """Outcome of a CIM MC-Dropout inference.

    Attributes:
        mean: (B, out) predictive mean.
        variance: (B, out) predictive variance.
        samples: (T, B, out) per-iteration outputs.
        ops_executed: MACs the macros actually performed.
        ops_naive: MACs of a reuse-free, mask-oblivious engine.
        energy: merged energy ledger (macros + mask generation).
        mask_order: the iteration order used.
    """

    mean: np.ndarray
    variance: np.ndarray
    samples: np.ndarray
    ops_executed: int
    ops_naive: int
    energy: EnergyLedger
    mask_order: np.ndarray

    @property
    def reuse_savings(self) -> float:
        """Fraction of naive MAC work avoided."""
        if self.ops_naive == 0:
            return 0.0
        return 1.0 - self.ops_executed / self.ops_naive

    def tops_per_watt(self, ops_per_mac: int = 2) -> float:
        """Throughput efficiency: (ops_naive * ops_per_mac) / energy.

        The paper reports useful network throughput against consumed
        power, so the numerator counts the *nominal* network ops the
        inference delivered (reuse lowers the denominator instead).
        """
        energy = self.energy.total_energy_j()
        if energy <= 0:
            return 0.0
        return self.ops_naive * ops_per_mac / energy / 1.0e12


@dataclass
class _MappedLayer:
    """One network stage mapped onto hardware."""

    macro: SRAMCIMMacro
    bias: np.ndarray | None
    activation: object | None
    pre_dropout_p: float


class CIMMCDropoutEngine:
    """Runs MC-Dropout for a Dense/Dropout network on CIM macros.

    Args:
        model: trained :class:`~repro.nn.sequential.Sequential` made of
            Dense / activation / Dropout layers (conv/LSTM models must be
            run through the software predictor).
        config: macro configuration (node, weight/ADC precision).
        n_iterations: Monte-Carlo samples (paper: 30).
        use_hardware_rng: draw masks from the CCI RNG (True) or a software
            Bernoulli stream (False).
        reuse: drive only changed input lines via the macro delta port.
        ordering: visit masks in minimum-Hamming order.
        refresh_every: full re-evaluation period under reuse (bounds analog
            error accumulation); 0 disables refresh.
        calibrate_rng: run the CCI bias-trim calibration before use.
        calibration_inputs: representative inputs (e.g. training features)
            used to size each macro's column-ADC range layer by layer;
            without them a weight-statistics heuristic is used, which can
            clip hard on out-of-distribution activations.
        rng: generator for hardware instantiation and noise.
    """

    def __init__(
        self,
        model: Sequential,
        config: MacroConfig | None = None,
        n_iterations: int = 30,
        use_hardware_rng: bool = True,
        reuse: bool = True,
        ordering: bool = True,
        refresh_every: int = 8,
        calibrate_rng: bool = True,
        calibration_inputs: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ):
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        self.config = config or MacroConfig()
        self.n_iterations = int(n_iterations)
        self.reuse = bool(reuse)
        self.ordering = bool(ordering)
        self.refresh_every = int(refresh_every)
        self._rng = rng or np.random.default_rng(0)
        self.layers = self._map_model(model)
        if calibration_inputs is not None:
            self.calibrate_adc_ranges(calibration_inputs)
        self.keep_probability = self._keep_probability(model)
        self.use_hardware_rng = bool(use_hardware_rng)
        if use_hardware_rng:
            self.rng_cell = CrossCoupledInverterRNG(
                self.config.node, rng=self._rng
            )
            if calibrate_rng:
                self.rng_cell.calibrate(self._rng)
            self.bit_generator = DropoutBitGenerator(
                self.rng_cell, keep_probability=self.keep_probability
            )
        else:
            self.rng_cell = None
            self.bit_generator = None

    @staticmethod
    def _keep_probability(model: Sequential) -> float:
        dropouts = model.dropout_layers()
        if not dropouts:
            raise ValueError("model has no Dropout layers")
        keep = {layer.keep_probability for layer in dropouts}
        if len(keep) > 1:
            raise ValueError("mixed dropout rates are not supported on the macro")
        return keep.pop()

    def _map_model(self, model: Sequential) -> list[_MappedLayer]:
        """Group the flat layer list into macro stages."""
        mapped: list[_MappedLayer] = []
        pending_dropout = 0.0
        index = 0
        layers = model.layers
        while index < len(layers):
            layer = layers[index]
            if isinstance(layer, Dropout):
                pending_dropout = layer.p
                index += 1
                continue
            if isinstance(layer, Dense):
                activation = None
                if index + 1 < len(layers) and isinstance(layers[index + 1], _ACTIVATIONS):
                    activation = layers[index + 1]
                    index += 1
                macro = SRAMCIMMacro(
                    layer.weight.value, config=self.config, rng=self._rng
                )
                mapped.append(
                    _MappedLayer(
                        macro=macro,
                        bias=None if layer.bias is None else layer.bias.value.copy(),
                        activation=activation,
                        pre_dropout_p=pending_dropout,
                    )
                )
                pending_dropout = 0.0
                index += 1
                continue
            raise ValueError(
                f"layer {type(layer).__name__} cannot be mapped onto the macro"
            )
        if not mapped:
            raise ValueError("model contains no Dense layers")
        return mapped

    def calibrate_adc_ranges(self, inputs: np.ndarray) -> None:
        """Size every macro's ADC range from propagated sample activations."""
        current = np.atleast_2d(np.asarray(inputs, dtype=float))
        for layer in self.layers:
            layer.macro.recalibrate(current)
            pre = layer.macro.ideal_matvec(current)
            if layer.bias is not None:
                pre = pre + layer.bias
            current = layer.activation.forward(pre) if layer.activation else pre

    def draw_mask_streams(
        self, rng: np.random.Generator
    ) -> list[MaskStream | None]:
        """One mask stream per mapped layer (None where no dropout).

        Exposed so batch runtimes can draw the streams once and pin them
        across many :meth:`predict` calls (mask generation -- and, with
        the hardware RNG, its cycle cost -- is then amortised).
        """
        streams: list[MaskStream | None] = []
        for layer in self.layers:
            if layer.pre_dropout_p <= 0:
                streams.append(None)
                continue
            width = layer.macro.in_features
            if self.bit_generator is not None:
                streams.append(
                    MaskStream.from_hardware(
                        self.bit_generator, self.n_iterations, width, rng
                    )
                )
            else:
                streams.append(
                    MaskStream.bernoulli(
                        self.n_iterations, width, 1.0 - layer.pre_dropout_p, rng
                    )
                )
        if all(s is None for s in streams):
            raise ValueError("no dropout layer found in the mapped model")
        return streams

    def order_mask_streams(
        self, streams: list[MaskStream | None]
    ) -> np.ndarray:
        """Iteration visit order for ``streams`` under the engine's policy."""
        if not self.ordering:
            return np.arange(self.n_iterations, dtype=np.int64)
        joint = None
        for stream in streams:
            if stream is None:
                continue
            joint = stream if joint is None else joint.concatenate(stream)
        return optimal_mask_order(joint.masks)

    def _validate_streams(
        self, mask_streams: list[MaskStream | None]
    ) -> list[MaskStream | None]:
        streams = list(mask_streams)
        if len(streams) != len(self.layers):
            raise ValueError(
                f"need {len(self.layers)} mask streams (one per mapped "
                f"layer, None where no dropout), got {len(streams)}"
            )
        for stream, layer in zip(streams, self.layers):
            if stream is None:
                continue
            if stream.n_iterations != self.n_iterations:
                raise ValueError(
                    f"mask stream has {stream.n_iterations} iterations, "
                    f"engine runs {self.n_iterations}"
                )
            if stream.width != layer.macro.in_features:
                raise ValueError(
                    f"mask stream width {stream.width} != macro fan-in "
                    f"{layer.macro.in_features}"
                )
        return streams

    def predict(
        self,
        x: np.ndarray,
        rng: np.random.Generator | None = None,
        mask_streams: list[MaskStream | None] | None = None,
        mask_order: np.ndarray | None = None,
    ) -> MCDropoutResult:
        """MC-Dropout inference of (B, in) inputs on the macro stack.

        Args:
            x: (B, in) inputs.
            rng: generator for mask drawing and analog read noise.
            mask_streams: pre-drawn per-mapped-layer streams (from
                :meth:`draw_mask_streams`); default draws fresh ones.
            mask_order: pre-computed visit order for the pinned streams;
                default applies the engine's ordering policy.
        """
        rng = rng or self._rng
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if mask_streams is None:
            streams = self.draw_mask_streams(rng)
        else:
            streams = self._validate_streams(mask_streams)
        if mask_order is None:
            order = self.order_mask_streams(streams)
        else:
            order = np.asarray(mask_order, dtype=np.int64)
            if sorted(order.tolist()) != list(range(self.n_iterations)):
                raise ValueError("mask_order must be a permutation of iterations")
        ordered = [None if s is None else s.reordered(order) for s in streams]

        batch = x.shape[0]
        samples = np.empty((self.n_iterations, batch, self.layers[-1].macro.out_features))
        # Per-layer reuse state: previous products and previous masked input.
        previous_products: list[np.ndarray | None] = [None] * len(self.layers)
        previous_inputs: list[np.ndarray | None] = [None] * len(self.layers)
        ops_naive = 0
        for layer in self.layers:
            ops_naive += layer.macro.in_features * layer.macro.out_features
        ops_naive *= self.n_iterations * batch

        for t in range(self.n_iterations):
            refresh = (
                not self.reuse
                or t == 0
                or (self.refresh_every > 0 and t % self.refresh_every == 0)
            )
            activation = x
            for index, layer in enumerate(self.layers):
                stream = ordered[index]
                if stream is not None:
                    keep = stream.masks[t].astype(float)
                    masked = activation * keep[None, :] / self.keep_probability
                else:
                    masked = activation
                if refresh or previous_products[index] is None:
                    # Passing the mask lets the macro gate (and not pay for)
                    # dropped column lines, as the CL AND gates do.
                    products = layer.macro.matvec(
                        masked,
                        input_mask=None if stream is None else stream.masks[t],
                        rng=rng,
                    )
                else:
                    delta = masked - previous_inputs[index]
                    changed = np.any(np.abs(delta) > 0, axis=0)
                    products = layer.macro.matvec_delta(
                        previous_products[index], delta, changed, rng=rng
                    )
                previous_products[index] = products
                previous_inputs[index] = masked
                pre = products if layer.bias is None else products + layer.bias
                activation = (
                    layer.activation.forward(pre) if layer.activation else pre
                )
            samples[t] = activation

        energy = EnergyLedger(label="cim-mc-dropout")
        ops_executed = 0
        for layer in self.layers:
            energy.merge(layer.macro.ledger)
            ops_executed += layer.macro.ops_count()
        if self.bit_generator is not None:
            energy.add_energy(
                "dropout_bit_generation", self.bit_generator.generation_energy()
            )
        return MCDropoutResult(
            mean=samples.mean(axis=0),
            variance=samples.var(axis=0),
            samples=samples,
            ops_executed=ops_executed,
            ops_naive=ops_naive,
            energy=energy,
            mask_order=order,
        )

    def reset_energy(self) -> None:
        """Clear all macro ledgers (per-experiment accounting)."""
        for layer in self.layers:
            layer.macro.ledger.reset()
        if self.bit_generator is not None:
            self.bit_generator.cycles_used = 0
