"""CIM MC-Dropout inference engine (paper Sec. III).

Maps a trained dropout network onto SRAM CIM macros and runs the T-sample
Monte-Carlo inference with the paper's three hardware hooks:

1. **SRAM-immersed dropout bits** -- masks come from the cross-coupled-
   inverter RNG harvested inside the macro (or a software Bernoulli stream
   for reference runs).
2. **Compute reuse** -- iteration t's layer products are built from
   iteration t-1's through the macro's delta port: only input lines whose
   (masked) activation changed are driven.
3. **Optimal sample ordering** -- the T masks are visited in the order that
   minimises total mask-to-mask Hamming distance, maximising reuse.

Because analog delta accumulation also accumulates read noise, the engine
re-evaluates from scratch every ``refresh_every`` iterations -- a knob the
ablation benchmarks sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bayesian.masks import MaskStream
from repro.bayesian.ordering import optimal_mask_order
from repro.circuits.energy import EnergyLedger
from repro.nn.dropout import Dropout
from repro.nn.layers import Dense, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.sequential import Sequential
from repro.sram.dropout_gen import DropoutBitGenerator
from repro.sram.macro import MacroConfig, SRAMCIMMacro
from repro.sram.rng import CrossCoupledInverterRNG

_ACTIVATIONS = (ReLU, LeakyReLU, Tanh, Sigmoid)


@dataclass
class MCDropoutResult:
    """Outcome of a CIM MC-Dropout inference.

    All figures are strictly **per call**: the engine collects each
    call's work in scoped child ledgers (exact -- no float residue from
    differencing cumulative totals), so calling :meth:`predict`
    repeatedly on one engine returns the same ops/energy every time (the
    macros' own ledgers keep accumulating as lifetime odometers).

    Attributes:
        mean: (B, out) predictive mean.
        variance: (B, out) predictive variance.
        samples: (T, B, out) per-iteration outputs.
        ops_executed: MACs the macros performed during this call.
        ops_naive: MACs of a reuse-free, mask-oblivious engine.
        energy: this call's energy ledger (macros + mask generation).
        mask_order: the iteration order used.
    """

    mean: np.ndarray
    variance: np.ndarray
    samples: np.ndarray
    ops_executed: int
    ops_naive: int
    energy: EnergyLedger
    mask_order: np.ndarray

    @property
    def reuse_savings(self) -> float:
        """Fraction of naive MAC work avoided."""
        if self.ops_naive == 0:
            return 0.0
        return 1.0 - self.ops_executed / self.ops_naive

    def tops_per_watt(self, ops_per_mac: int = 2) -> float:
        """Throughput efficiency: (ops_naive * ops_per_mac) / energy.

        The paper reports useful network throughput against consumed
        power, so the numerator counts the *nominal* network ops the
        inference delivered (reuse lowers the denominator instead).
        """
        energy = self.energy.total_energy_j()
        if energy <= 0:
            return 0.0
        return self.ops_naive * ops_per_mac / energy / 1.0e12


@dataclass
class _MappedLayer:
    """One network stage mapped onto hardware."""

    macro: SRAMCIMMacro
    bias: np.ndarray | None
    activation: object | None
    pre_dropout_p: float


class CIMMCDropoutEngine:
    """Runs MC-Dropout for a Dense/Dropout network on CIM macros.

    Args:
        model: trained :class:`~repro.nn.sequential.Sequential` made of
            Dense / activation / Dropout layers (conv/LSTM models must be
            run through the software predictor).
        config: macro configuration (node, weight/ADC precision).
        n_iterations: Monte-Carlo samples (paper: 30).
        use_hardware_rng: draw masks from the CCI RNG (True) or a software
            Bernoulli stream (False).
        reuse: drive only changed input lines via the macro delta port.
        ordering: visit masks in minimum-Hamming order.
        refresh_every: full re-evaluation period under reuse (bounds analog
            error accumulation); 0 disables refresh.
        calibrate_rng: run the CCI bias-trim calibration before use.
        calibration_inputs: representative inputs (e.g. training features)
            used to size each macro's column-ADC range and pin its
            input-DAC range layer by layer; without them a
            weight-statistics heuristic sizes the ADC and the DAC range is
            pinned from the first driven input, either of which can clip
            hard on out-of-distribution activations.
        fast_path: evaluate independent iterations sample-major through
            :meth:`~repro.sram.macro.SRAMCIMMacro.matvec_many` (all of
            them when ``reuse`` is off, the refresh iterations otherwise).
            Results and accounting are identical to the per-iteration
            loop; disable only to time or cross-check the loop path.
        rng: generator for hardware instantiation and noise.
    """

    def __init__(
        self,
        model: Sequential,
        config: MacroConfig | None = None,
        n_iterations: int = 30,
        use_hardware_rng: bool = True,
        reuse: bool = True,
        ordering: bool = True,
        refresh_every: int = 8,
        calibrate_rng: bool = True,
        calibration_inputs: np.ndarray | None = None,
        fast_path: bool = True,
        rng: np.random.Generator | None = None,
    ):
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        self.config = config or MacroConfig()
        self.n_iterations = int(n_iterations)
        self.reuse = bool(reuse)
        self.ordering = bool(ordering)
        self.refresh_every = int(refresh_every)
        self.fast_path = bool(fast_path)
        self._rng = rng or np.random.default_rng(0)
        self.layers = self._map_model(model)
        self.keep_probability = self._keep_probability(model)
        if calibration_inputs is not None:
            self.calibrate_adc_ranges(calibration_inputs)
        self.use_hardware_rng = bool(use_hardware_rng)
        if use_hardware_rng:
            self.rng_cell = CrossCoupledInverterRNG(
                self.config.node, rng=self._rng
            )
            if calibrate_rng:
                self.rng_cell.calibrate(self._rng)
            self.bit_generator = DropoutBitGenerator(
                self.rng_cell, keep_probability=self.keep_probability
            )
        else:
            self.rng_cell = None
            self.bit_generator = None

    @staticmethod
    def _keep_probability(model: Sequential) -> float:
        dropouts = model.dropout_layers()
        if not dropouts:
            raise ValueError("model has no Dropout layers")
        keep = {layer.keep_probability for layer in dropouts}
        if len(keep) > 1:
            raise ValueError("mixed dropout rates are not supported on the macro")
        return keep.pop()

    def _map_model(self, model: Sequential) -> list[_MappedLayer]:
        """Group the flat layer list into macro stages."""
        mapped: list[_MappedLayer] = []
        pending_dropout = 0.0
        index = 0
        layers = model.layers
        while index < len(layers):
            layer = layers[index]
            if isinstance(layer, Dropout):
                pending_dropout = layer.p
                index += 1
                continue
            if isinstance(layer, Dense):
                activation = None
                if index + 1 < len(layers) and isinstance(layers[index + 1], _ACTIVATIONS):
                    activation = layers[index + 1]
                    index += 1
                macro = SRAMCIMMacro(
                    layer.weight.value, config=self.config, rng=self._rng
                )
                mapped.append(
                    _MappedLayer(
                        macro=macro,
                        bias=None if layer.bias is None else layer.bias.value.copy(),
                        activation=activation,
                        pre_dropout_p=pending_dropout,
                    )
                )
                pending_dropout = 0.0
                index += 1
                continue
            raise ValueError(
                f"layer {type(layer).__name__} cannot be mapped onto the macro"
            )
        if not mapped:
            raise ValueError("model contains no Dense layers")
        return mapped

    def calibrate_adc_ranges(self, inputs: np.ndarray) -> None:
        """Size every macro's ADC + DAC ranges from propagated activations.

        Layers fed through dropout see inputs scaled by ``1 / keep_prob``
        at run time (inverted dropout), so their DAC range gets that much
        headroom over the calibration sample.
        """
        current = np.atleast_2d(np.asarray(inputs, dtype=float))
        for layer in self.layers:
            headroom = (
                1.0 / self.keep_probability if layer.pre_dropout_p > 0 else 1.0
            )
            layer.macro.recalibrate(current, input_headroom=headroom)
            pre = layer.macro.ideal_matvec(current)
            if layer.bias is not None:
                pre = pre + layer.bias
            current = layer.activation.forward(pre) if layer.activation else pre

    def draw_mask_streams(
        self, rng: np.random.Generator
    ) -> list[MaskStream | None]:
        """One mask stream per mapped layer (None where no dropout).

        Exposed so batch runtimes can draw the streams once and pin them
        across many :meth:`predict` calls (mask generation -- and, with
        the hardware RNG, its cycle cost -- is then amortised).
        """
        streams: list[MaskStream | None] = []
        for layer in self.layers:
            if layer.pre_dropout_p <= 0:
                streams.append(None)
                continue
            width = layer.macro.in_features
            if self.bit_generator is not None:
                streams.append(
                    MaskStream.from_hardware(
                        self.bit_generator, self.n_iterations, width, rng
                    )
                )
            else:
                streams.append(
                    MaskStream.bernoulli(
                        self.n_iterations, width, 1.0 - layer.pre_dropout_p, rng
                    )
                )
        if all(s is None for s in streams):
            raise ValueError("no dropout layer found in the mapped model")
        return streams

    def order_mask_streams(
        self, streams: list[MaskStream | None]
    ) -> np.ndarray:
        """Iteration visit order for ``streams`` under the engine's policy."""
        if not self.ordering:
            return np.arange(self.n_iterations, dtype=np.int64)
        joint = None
        for stream in streams:
            if stream is None:
                continue
            joint = stream if joint is None else joint.concatenate(stream)
        if joint is None:
            raise ValueError(
                "cannot order mask streams: every stream is None (the "
                "mapped model must have at least one dropout stage)"
            )
        return optimal_mask_order(joint.masks)

    def _validate_streams(
        self, mask_streams: list[MaskStream | None]
    ) -> list[MaskStream | None]:
        streams = list(mask_streams)
        if len(streams) != len(self.layers):
            raise ValueError(
                f"need {len(self.layers)} mask streams (one per mapped "
                f"layer, None where no dropout), got {len(streams)}"
            )
        if all(stream is None for stream in streams):
            # Mirror draw_mask_streams: a mapped model always has dropout,
            # so an all-None pin is a caller bug, not a degenerate run.
            raise ValueError(
                "mask_streams are all None; pin at least one stream (the "
                "mapped model has dropout stages)"
            )
        for stream, layer in zip(streams, self.layers):
            if stream is None:
                continue
            if stream.n_iterations != self.n_iterations:
                raise ValueError(
                    f"mask stream has {stream.n_iterations} iterations, "
                    f"engine runs {self.n_iterations}"
                )
            if stream.width != layer.macro.in_features:
                raise ValueError(
                    f"mask stream width {stream.width} != macro fan-in "
                    f"{layer.macro.in_features}"
                )
        return streams

    def predict(
        self,
        x: np.ndarray,
        rng: np.random.Generator | None = None,
        mask_streams: list[MaskStream | None] | None = None,
        mask_order: np.ndarray | None = None,
    ) -> MCDropoutResult:
        """MC-Dropout inference of (B, in) inputs on the macro stack.

        The returned ops/energy cover **this call only** -- scoped child
        ledgers collect the call's work exactly, so repeated calls on one
        engine report identical per-call figures without any
        ``reset_energy()`` bookkeeping by the caller.

        Args:
            x: (B, in) inputs.
            rng: generator for mask drawing and analog read noise.
            mask_streams: pre-drawn per-mapped-layer streams (from
                :meth:`draw_mask_streams`); default draws fresh ones.
            mask_order: pre-computed visit order for the pinned streams;
                default applies the engine's ordering policy.
        """
        rng = rng or self._rng
        x = np.atleast_2d(np.asarray(x, dtype=float))
        cycles_mark = (
            self.bit_generator.cycles_used if self.bit_generator is not None else 0
        )
        if mask_streams is None:
            streams = self.draw_mask_streams(rng)
        else:
            streams = self._validate_streams(mask_streams)
        if mask_order is None:
            order = self.order_mask_streams(streams)
        else:
            order = np.asarray(mask_order, dtype=np.int64)
            if sorted(order.tolist()) != list(range(self.n_iterations)):
                raise ValueError("mask_order must be a permutation of iterations")
        ordered = [None if s is None else s.reordered(order) for s in streams]

        # Scoped child ledgers collect exactly this call's macro work;
        # the macros' cumulative ledgers keep running undisturbed.  The
        # scopes open inside the try so a raise mid-open (or anywhere in
        # the forward) still detaches every scope that did open, leaving
        # the engine reusable after the exception (DET004 contract).
        scopes = []
        try:
            for layer in self.layers:
                scopes.append(layer.macro.ledger.begin_scope())
            batch = x.shape[0]
            noise_bank = self._draw_noise_bank(rng, batch)
            refresh_steps = self._refresh_steps()
            if self.fast_path and len(refresh_steps) == self.n_iterations:
                samples, _, _ = self._forward_stacked(
                    x, ordered, refresh_steps, noise_bank, rng
                )
            else:
                samples = self._forward_loop(
                    x, ordered, refresh_steps, noise_bank, rng
                )
        finally:
            for layer, scope in zip(self.layers, scopes):
                layer.macro.ledger.end_scope(scope)

        ops_naive = 0
        for layer in self.layers:
            ops_naive += layer.macro.in_features * layer.macro.out_features
        ops_naive *= self.n_iterations * batch

        energy = EnergyLedger(label="cim-mc-dropout")
        for scope in scopes:
            energy.merge(scope)
        ops_executed = energy.count("cim_mac")
        if self.bit_generator is not None:
            energy.add_energy(
                "dropout_bit_generation",
                self.bit_generator.generation_energy(
                    cycles=self.bit_generator.cycles_used - cycles_mark
                ),
            )
        return MCDropoutResult(
            mean=samples.mean(axis=0),
            variance=samples.var(axis=0),
            samples=samples,
            ops_executed=ops_executed,
            ops_naive=ops_naive,
            energy=energy,
            mask_order=order,
        )

    def _refresh_steps(self) -> np.ndarray:
        """Iteration positions evaluated from scratch (not via the delta port)."""
        steps = np.arange(self.n_iterations, dtype=np.int64)
        if not self.reuse:
            return steps
        refresh = steps == 0
        if self.refresh_every > 0:
            refresh |= steps % self.refresh_every == 0
        return steps[refresh]

    def _draw_noise_bank(
        self, rng: np.random.Generator, batch: int
    ) -> list[np.ndarray] | None:
        """Pre-draw every read-noise variate, indexed by (iteration, layer).

        One flat draw in loop order (iteration-major, layer-inner) yields
        exactly the variates T x L sequential per-read draws would, but
        lets the engine evaluate iterations out of order -- vectorised
        refresh passes and the delta loop consume the same noise a pure
        loop would, keeping both schedules bit-for-bit equivalent.
        """
        if self.config.adc_noise_lsb <= 0:
            return None
        out_features = [layer.macro.out_features for layer in self.layers]
        width = batch * sum(out_features)
        flat = rng.normal(size=self.n_iterations * width).reshape(
            self.n_iterations, width
        )
        bank: list[np.ndarray] = []
        offset = 0
        for out in out_features:
            block = flat[:, offset : offset + batch * out]
            bank.append(block.reshape(self.n_iterations, batch, out))
            offset += batch * out
        return bank

    def _forward_stacked(
        self,
        x: np.ndarray,
        ordered: list[MaskStream | None],
        steps: np.ndarray,
        noise_bank: list[np.ndarray] | None,
        rng: np.random.Generator,
        collect: bool = False,
    ) -> tuple[np.ndarray, list[np.ndarray], list[np.ndarray]]:
        """Sample-major evaluation of independent iterations.

        Every iteration in ``steps`` is a from-scratch forward pass, so
        the whole subset runs through each macro as one stacked
        :meth:`~repro.sram.macro.SRAMCIMMacro.matvec_many` call.

        Returns:
            (outputs, masked_inputs, products): outputs is the
            final-layer activation stack; with ``collect`` the other two
            are per-layer lists of (len(steps), B, features) arrays that
            seed the delta loop's reuse state at refresh positions
            (empty lists otherwise, sparing the all-refresh hot path the
            extra live working set).
        """
        activation = np.broadcast_to(
            x, (len(steps), x.shape[0], x.shape[1])
        )
        masked_inputs: list[np.ndarray] = []
        products_stack: list[np.ndarray] = []
        for index, layer in enumerate(self.layers):
            stream = ordered[index]
            if stream is not None:
                keep = stream.masks[steps].astype(float)
                masked = activation * keep[:, None, :] / self.keep_probability
                input_masks = stream.masks[steps]
            else:
                masked = np.ascontiguousarray(activation)
                input_masks = None
            noise = None if noise_bank is None else noise_bank[index][steps]
            products = layer.macro.matvec_many(
                masked, input_masks=input_masks, rng=rng, noise=noise
            )
            if collect:
                masked_inputs.append(masked)
                products_stack.append(products)
            pre = products if layer.bias is None else products + layer.bias
            activation = (
                layer.activation.forward(pre) if layer.activation else pre
            )
        return activation, masked_inputs, products_stack

    def _forward_loop(
        self,
        x: np.ndarray,
        ordered: list[MaskStream | None],
        refresh_steps: np.ndarray,
        noise_bank: list[np.ndarray] | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-iteration loop; refresh iterations may be hoisted stacked.

        Under reuse, from-scratch (refresh) iterations are independent of
        the delta chain, so with the fast path enabled they are evaluated
        sample-major up front and their products injected into the reuse
        state as the loop passes them; delta iterations stay sequential.
        The pre-drawn noise bank makes either schedule consume identical
        variates, so hoisting does not change a single output bit.
        """
        batch = x.shape[0]
        samples = np.empty(
            (self.n_iterations, batch, self.layers[-1].macro.out_features)
        )
        hoisted: dict[int, int] = {}
        stacked_out = stacked_inputs = stacked_products = None
        if self.fast_path and len(refresh_steps) > 1:
            stacked_out, stacked_inputs, stacked_products = self._forward_stacked(
                x, ordered, refresh_steps, noise_bank, rng, collect=True
            )
            hoisted = {int(t): i for i, t in enumerate(refresh_steps)}
        refresh_set = set(int(t) for t in refresh_steps)
        previous_products: list[np.ndarray | None] = [None] * len(self.layers)
        previous_inputs: list[np.ndarray | None] = [None] * len(self.layers)
        for t in range(self.n_iterations):
            if t in hoisted:
                i = hoisted[t]
                for index in range(len(self.layers)):
                    previous_products[index] = stacked_products[index][i]
                    previous_inputs[index] = stacked_inputs[index][i]
                samples[t] = stacked_out[i]
                continue
            refresh = t in refresh_set
            activation = x
            for index, layer in enumerate(self.layers):
                stream = ordered[index]
                if stream is not None:
                    keep = stream.masks[t].astype(float)
                    masked = activation * keep[None, :] / self.keep_probability
                else:
                    masked = activation
                noise = None if noise_bank is None else noise_bank[index][t]
                if refresh or previous_products[index] is None:
                    # Passing the mask lets the macro gate (and not pay for)
                    # dropped column lines, as the CL AND gates do.
                    products = layer.macro.matvec(
                        masked,
                        input_mask=None if stream is None else stream.masks[t],
                        rng=rng,
                        noise=noise,
                    )
                else:
                    delta = masked - previous_inputs[index]
                    changed = np.any(np.abs(delta) > 0, axis=0)
                    products = layer.macro.matvec_delta(
                        previous_products[index],
                        delta,
                        changed,
                        rng=rng,
                        noise=noise,
                    )
                previous_products[index] = products
                previous_inputs[index] = masked
                pre = products if layer.bias is None else products + layer.bias
                activation = (
                    layer.activation.forward(pre) if layer.activation else pre
                )
            samples[t] = activation
        return samples

    def reset_energy(self) -> None:
        """Clear all macro ledgers and the RNG cycle counter.

        Per-call results no longer require this (predict scopes the
        ledgers itself); it remains for callers that inspect the
        cumulative macro ledgers and want to re-baseline them.
        """
        for layer in self.layers:
            layer.macro.ledger.reset()
        if self.bit_generator is not None:
            self.bit_generator.cycles_used = 0
