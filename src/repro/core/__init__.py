"""The paper's contribution: CIM / algorithm co-design layers.

Two co-designed inference stacks:

- :class:`~repro.core.cim_particle_filter.CIMParticleFilterLocalizer` --
  Monte-Carlo drone localization whose measurement likelihood is evaluated
  by a floating-gate inverter array programmed with a hardware-native HMG
  mixture map (paper Sec. II).
- :class:`~repro.core.cim_mc_dropout.CIMMCDropoutEngine` -- MC-Dropout
  Bayesian inference executed on an SRAM CIM macro with an SRAM-immersed
  RNG, compute reuse across iterations and optimised sample ordering
  (paper Sec. III).
"""

from repro.core.codesign import (
    CoDesignReport,
    hardware_sigma_menu,
    program_inverter_array,
)
from repro.core.cim_particle_filter import (
    CIMParticleFilterLocalizer,
    LocalizationResult,
)
from repro.core.cim_mc_dropout import CIMMCDropoutEngine, MCDropoutResult

__all__ = [
    "CoDesignReport",
    "hardware_sigma_menu",
    "program_inverter_array",
    "CIMParticleFilterLocalizer",
    "LocalizationResult",
    "CIMMCDropoutEngine",
    "MCDropoutResult",
]
