"""Domain-tiled inverter arrays: finer kernels from the same devices.

A single inverter array maps the whole flying domain onto one rail-to-rail
voltage swing, so the narrowest realisable kernel width is a fixed fraction
(~9% at 45 nm) of the domain extent.  Splitting the domain into tiles, each
served by its own (smaller) array with its own world-to-voltage encoder,
multiplies the effective world-resolution by the tile count per axis while
keeping the per-query cost identical: the tile index is just the digital
MSBs of the query coordinate, steering one array's DACs.

Mixture components are assigned to every tile whose (overlap-padded) box
contains their center, so kernels straddling a boundary contribute on both
sides; the duplicated columns are reported in the tiling report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.energy import EnergyLedger
from repro.circuits.inverter_array import VoltageEncoder
from repro.circuits.noise import NoiseModel
from repro.circuits.technology import TechnologyNode
from repro.circuits.variability import MismatchSampler
from repro.core.codesign import hardware_sigma_menu, program_inverter_array
from repro.maps.hmgm import HMGMixture


def tiled_sigma_menu(
    node: TechnologyNode,
    lo: np.ndarray,
    hi: np.ndarray,
    tiles: tuple[int, int, int],
    margin: float = 0.08,
    fg_bits: int = 4,
    apron_fraction: float = 0.25,
) -> np.ndarray:
    """Per-axis world-unit width menu under a tiled encoding, (3, n_codes).

    Each tile's encoder spans the tile box plus an apron on both sides (so
    kernels straddling a boundary stay representable); the menu reflects
    that slightly larger span.
    """
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    tile_size = (hi - lo) / np.asarray(tiles, dtype=float)
    span = tile_size * (1.0 + 2.0 * apron_fraction)
    encoder = VoltageEncoder(lo=lo, hi=lo + span, vdd=node.vdd, margin=margin)
    return hardware_sigma_menu(node, encoder, fg_bits=fg_bits)


@dataclass(frozen=True)
class TilingReport:
    """Audit record of a tiled programming run.

    Attributes:
        tiles: tile grid shape.
        n_active_tiles: tiles that received at least one component.
        total_columns: physical columns across all tiles.
        duplicated_components: component-tile assignments beyond one per
            component (the overlap cost).
    """

    tiles: tuple[int, int, int]
    n_active_tiles: int
    total_columns: int
    duplicated_components: int


class TiledInverterArrayMap:
    """A likelihood map served by a grid of inverter-array tiles.

    Args:
        mixture: HMG mixture (widths should sit on the *tile* menu).
        lo / hi: world bounds of the full domain.
        node: technology node.
        tiles: tile grid (nx, ny, nz).
        columns_per_component: column replication budget per component.
        overlap_sigmas: components are assigned to a tile when their center
            lies within ``overlap_sigmas * max(sigma)`` of the tile box.
        adc_bits / fg_bits / input_dac_bits / margin: hardware parameters
            (see :func:`~repro.core.codesign.program_inverter_array`).
        mismatch / noise: process variation and analog noise models.
        rng: generator for hardware instantiation.
    """

    def __init__(
        self,
        mixture: HMGMixture,
        lo: np.ndarray,
        hi: np.ndarray,
        node: TechnologyNode,
        tiles: tuple[int, int, int] = (2, 2, 2),
        columns_per_component: float = 5.0,
        overlap_sigmas: float = 2.0,
        adc_bits: int = 4,
        fg_bits: int = 4,
        input_dac_bits: int = 6,
        margin: float = 0.08,
        apron_fraction: float = 0.25,
        mismatch: MismatchSampler | None = None,
        noise: NoiseModel | None = None,
        rng: np.random.Generator | None = None,
        eval_time_s: float = 1.0e-8,
    ):
        if any(t < 1 for t in tiles):
            raise ValueError("tile counts must be >= 1")
        self.mixture = mixture
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        if np.any(self.hi <= self.lo):
            raise ValueError("hi must exceed lo")
        self.node = node
        self.tiles = tuple(int(t) for t in tiles)
        self.tile_size = (self.hi - self.lo) / np.asarray(self.tiles, dtype=float)
        self._arrays: dict[tuple[int, int, int], object] = {}
        self._encoders: dict[tuple[int, int, int], VoltageEncoder] = {}
        self.ledger = EnergyLedger(label=f"tiled-array{self.tiles}")

        # Each tile's encoder covers the tile box plus an apron, so
        # components whose center falls within the apron of a neighbouring
        # tile are programmable there too and kernels straddling a boundary
        # contribute on both sides.  The assignment reach is the smaller of
        # the kernel reach and the apron (centers beyond the apron are not
        # representable in this tile's voltage range).
        apron = float(apron_fraction) * self.tile_size
        self.apron = apron
        reach = np.minimum(
            overlap_sigmas * mixture.sigmas.max(axis=1)[:, None],
            apron[None, :],
        )
        duplicated = 0
        total_columns = 0
        for index in np.ndindex(*self.tiles):
            tile_lo = self.lo + np.asarray(index) * self.tile_size
            tile_hi = tile_lo + self.tile_size
            # Components whose kernel meaningfully reaches into this tile.
            inside = np.all(
                (mixture.means >= tile_lo - reach)
                & (mixture.means <= tile_hi + reach),
                axis=1,
            )
            if not inside.any():
                continue
            sub = HMGMixture(
                mixture.weights[inside],
                mixture.means[inside],
                mixture.sigmas[inside],
            )
            duplicated += int(inside.sum())
            encoder = VoltageEncoder(
                lo=tile_lo - apron,
                hi=tile_hi + apron,
                vdd=node.vdd,
                margin=margin,
            )
            budget = max(
                sub.n_components,
                int(round(columns_per_component * sub.n_components)),
            )
            array, _ = program_inverter_array(
                sub,
                encoder,
                node,
                total_columns=budget,
                fg_bits=fg_bits,
                adc_bits=adc_bits,
                input_dac_bits=input_dac_bits,
                mismatch=mismatch,
                noise=noise,
                rng=rng,
                eval_time_s=eval_time_s,
            )
            total_columns += int(array.replication.sum())
            self._arrays[index] = array
            self._encoders[index] = encoder
        if not self._arrays:
            raise ValueError("no tile received any mixture component")
        duplicated -= mixture.n_components
        self.report = TilingReport(
            tiles=self.tiles,
            n_active_tiles=len(self._arrays),
            total_columns=total_columns,
            duplicated_components=max(duplicated, 0),
        )
        # Log-likelihood returned for points falling in a component-free
        # tile: below every active tile's ADC floor.
        floors = [a.adc.log_likelihood(np.array([0]))[0] for a in self._arrays.values()]
        self._empty_tile_log = float(min(floors) - 1.0)

    def tile_of(self, points: np.ndarray) -> np.ndarray:
        """(N, 3) integer tile indices for world points (clipped to grid)."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        raw = np.floor((points - self.lo) / self.tile_size).astype(int)
        return np.clip(raw, 0, np.asarray(self.tiles) - 1)

    def field_log(
        self, points: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """(N,) log field values; queries are routed to their tile's array."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        indices = self.tile_of(points)
        result = np.full(points.shape[0], self._empty_tile_log)
        # Group queries by tile to keep evaluations vectorised.
        keys = (
            indices[:, 0] * (self.tiles[1] * self.tiles[2])
            + indices[:, 1] * self.tiles[2]
            + indices[:, 2]
        )
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        for group in np.split(order, boundaries):
            index = tuple(indices[group[0]])
            array = self._arrays.get(index)
            if array is None:
                continue
            encoder = self._encoders[index]
            result[group] = array.read_log_likelihood(
                points[group], encoder, rng=rng
            )
        return result

    def merged_ledger(self) -> EnergyLedger:
        """Combined energy ledger across all tile arrays."""
        merged = EnergyLedger(label=f"tiled-array{self.tiles}")
        for array in self._arrays.values():
            merged.merge(array.ledger)
        return merged

    def energy_per_query(self) -> float:
        """Mean energy per likelihood query across tiles (J)."""
        merged = self.merged_ledger()
        queries = merged.count("adc_conversion")
        if queries == 0:
            return 0.0
        return merged.total_energy_j() / queries


class TiledCIMBackend:
    """Measurement-model backend adapter for a tiled array map."""

    def __init__(self, tiled_map: TiledInverterArrayMap):
        self.tiled_map = tiled_map

    @property
    def ledger(self) -> EnergyLedger:
        return self.tiled_map.merged_ledger()

    def field_log(
        self, points: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        return self.tiled_map.field_log(points, rng=rng)
