"""CIM particle-filter drone localization (paper Sec. II).

:class:`CIMParticleFilterLocalizer` assembles the full co-designed stack:

    point-cloud map -> GMM fit -> HMG mixture (hardware widths, re-fit
    weights) -> programmed inverter array -> depth-scan measurement model
    -> SIR particle filter

and exposes the same pipeline over three interchangeable likelihood
backends so the paper's comparisons (Fig. 2e-i) are one argument away:

- ``"cim"``:           4-bit HMGM inverter-array evaluation (the proposal);
- ``"digital"``:       8-bit digital GMM processor (the baseline);
- ``"digital-float"``: exact float GMM (oracle reference).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.energy import EnergyLedger
from repro.circuits.inverter_array import VoltageEncoder
from repro.circuits.noise import NoiseModel
from repro.circuits.technology import NODE_45NM, TechnologyNode
from repro.circuits.variability import MismatchSampler
from repro.core.codesign import (
    CoDesignReport,
    program_inverter_array,
)
from repro.core.tiling import (
    TiledCIMBackend,
    TiledInverterArrayMap,
    tiled_sigma_menu,
)
from repro.filtering.measurement import (
    CIMArrayBackend,
    DepthScanMeasurementModel,
    DigitalGMMBackend,
    state_to_pose,
)
from repro.filtering.motion import OdometryMotionModel
from repro.filtering.particle_filter import ParticleFilter, StepDiagnostics
from repro.filtering.particles import ParticleSet
from repro.maps.gmm import GaussianMixture
from repro.maps.hmgm import HMGMixture
from repro.scene.camera import PinholeCamera
from repro.scene.se3 import Pose

BACKENDS = ("cim", "digital", "digital-float")


@dataclass
class LocalizationResult:
    """Outcome of a localization run.

    Attributes:
        estimates: (T, 4) posterior-mean states per step.
        errors: (T,) position errors against ground truth (m).
        diagnostics: per-step filter diagnostics.
        energy: the likelihood backend's energy ledger.
        backend: backend name.
    """

    estimates: np.ndarray
    errors: np.ndarray
    diagnostics: list[StepDiagnostics]
    energy: EnergyLedger
    backend: str

    @property
    def final_error(self) -> float:
        """Last-step position error; NaN for an empty trajectory."""
        if self.errors.size == 0:
            return float("nan")
        return float(self.errors[-1])

    def converged_step(self, threshold: float = 0.5) -> int | None:
        """First step whose error drops (and stays) below ``threshold``.

        Vectorised suffix check: the run has converged from one past the
        last above-threshold step, provided anything follows it.
        """
        below = np.asarray(self.errors) < threshold
        if below.size == 0 or not below[-1]:
            return None
        above = np.flatnonzero(~below)
        return 0 if above.size == 0 else int(above[-1]) + 1

    def summary_row(self) -> dict:
        """Flat report row: accuracy figures plus per-query energy."""
        errors = self.errors
        energy_per_query = None
        if self.backend == "cim":
            energy_per_query = self.energy.total_energy_j() / max(
                self.energy.count("adc_conversion"), 1
            )
        empty = errors.size == 0
        return {
            "backend": self.backend,
            "initial_error_m": float("nan") if empty else float(errors[0]),
            "final_error_m": self.final_error,
            "steady_state_error_m": (
                float("nan") if empty else float(errors[len(errors) // 2 :].mean())
            ),
            "energy_per_query": energy_per_query,
        }


class CIMParticleFilterLocalizer:
    """End-to-end co-designed Monte-Carlo localization.

    Args:
        map_cloud: (N, 3) world point cloud of the flying domain.
        camera: depth-camera intrinsics.
        camera_mount: camera-to-body transform (e.g. pitched down).
        node: technology node (default 45 nm as in the paper).
        n_components: mixture components in the map model.
        total_columns: inverter-array column budget (paper: 500).
        backend: "cim", "digital", or "digital-float".
        n_particles: particle count.
        adc_bits: log-ADC resolution for the CIM backend (paper: 4).
        digital_bits: datapath precision of the digital baseline (paper: 8).
        max_pixels: scan points used per measurement update.
        temperature: measurement softening (see DepthScanMeasurementModel).
        with_mismatch: sample process variation for the array.
        with_noise: add analog noise to array evaluations.
        min_sigma: GMM regularisation floor (m).
        tiles: tile grid for the CIM map ((1,1,1) = single array; the
            default (2,2,2) doubles the effective kernel resolution, see
            :mod:`repro.core.tiling`).
        fit_mode: "direct" fits the HMG mixture straight to the cloud with
            the hardware width menu (the paper's co-design); "convert"
            derives it from the GMM by width snapping + NNLS weight re-fit.
        rng: generator for map fitting and hardware instantiation.
    """

    def __init__(
        self,
        map_cloud: np.ndarray,
        camera: PinholeCamera,
        camera_mount: Pose | None = None,
        node: TechnologyNode = NODE_45NM,
        n_components: int = 48,
        total_columns: int = 500,
        backend: str = "cim",
        n_particles: int = 300,
        adc_bits: int = 4,
        digital_bits: int = 8,
        max_pixels: int = 48,
        temperature: float = 8.0,
        with_mismatch: bool = True,
        with_noise: bool = True,
        min_sigma: float = 0.08,
        tiles: tuple[int, int, int] = (2, 2, 2),
        fit_mode: str = "direct",
        rng: np.random.Generator | None = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if fit_mode not in ("direct", "convert"):
            raise ValueError("fit_mode must be 'direct' or 'convert'")
        rng = rng or np.random.default_rng(0)
        self.backend_name = backend
        self.camera = camera
        self.camera_mount = camera_mount or Pose.identity()
        self.node = node
        self.n_particles = int(n_particles)
        self.tiles = tuple(int(t) for t in tiles)
        map_cloud = np.asarray(map_cloud, dtype=float)
        self.map_cloud = map_cloud

        lo, hi = map_cloud.min(axis=0), map_cloud.max(axis=0)
        self.bounds = (lo, hi)
        pad = 0.2
        self.encoder = VoltageEncoder(
            lo=lo - pad, hi=hi + pad, vdd=node.vdd, margin=0.08
        )

        # Stage 1: conventional GMM map (shared by all backends).
        self.gmm = GaussianMixture.fit(
            map_cloud, n_components, rng, min_sigma=min_sigma
        )
        # Stage 2: co-designed HMG mixture on the (tiled) hardware width menu.
        menu = tiled_sigma_menu(node, lo - pad, hi + pad, self.tiles)
        if fit_mode == "direct":
            self.hmgm = HMGMixture.fit(
                map_cloud, n_components, rng, sigma_menu=menu
            )
        else:
            refine = map_cloud[
                rng.choice(
                    map_cloud.shape[0],
                    size=min(800, map_cloud.shape[0]),
                    replace=False,
                )
            ]
            self.hmgm = HMGMixture.from_gmm(
                self.gmm, sigma_menu=menu, refine_points=refine
            )
        # Stage 3: backend.
        self.codesign_report: CoDesignReport | None = None
        self.array = None
        self.tiled_map: TiledInverterArrayMap | None = None
        if backend == "cim":
            mismatch = MismatchSampler(node) if with_mismatch else None
            noise = NoiseModel(node) if with_noise else None
            if self.tiles == (1, 1, 1):
                self.array, self.codesign_report = program_inverter_array(
                    self.hmgm,
                    self.encoder,
                    node,
                    total_columns=total_columns,
                    adc_bits=adc_bits,
                    mismatch=mismatch,
                    noise=noise,
                    rng=rng,
                )
                field_backend = CIMArrayBackend(self.array, self.encoder)
            else:
                self.tiled_map = TiledInverterArrayMap(
                    self.hmgm,
                    lo - pad,
                    hi + pad,
                    node,
                    tiles=self.tiles,
                    columns_per_component=total_columns / max(n_components, 1),
                    adc_bits=adc_bits,
                    mismatch=mismatch,
                    noise=noise,
                    rng=rng,
                )
                field_backend = TiledCIMBackend(self.tiled_map)
        else:
            bits = None if backend == "digital-float" else digital_bits
            field_backend = DigitalGMMBackend(self.gmm, node, bits=bits)
        self.field_backend = field_backend

        # Stage 4: measurement model + particle filter.
        self.measurement_model = DepthScanMeasurementModel(
            field_backend,
            camera_mount=self.camera_mount,
            max_pixels=max_pixels,
            temperature=temperature,
        )
        calib = map_cloud[
            rng.choice(map_cloud.shape[0], size=min(400, map_cloud.shape[0]), replace=False)
        ]
        self.measurement_model.calibrate_floor(calib, rng=rng)
        span = hi - lo
        self.filter = ParticleFilter(
            OdometryMotionModel(),
            self.measurement_model,
            roughening=np.array([0.01 * span[0], 0.01 * span[1], 0.01 * span[2], 0.01]),
        )

    def initialize_global(
        self, rng: np.random.Generator, z_range: tuple[float, float] | None = None
    ) -> None:
        """Global localization: particles uniform over the map volume."""
        lo, hi = self.bounds
        z_lo, z_hi = z_range if z_range is not None else (lo[2], hi[2])
        particle_lo = np.array([lo[0], lo[1], z_lo, -np.pi])
        particle_hi = np.array([hi[0], hi[1], z_hi, np.pi])
        self.filter.initialize(
            ParticleSet.uniform(particle_lo, particle_hi, self.n_particles, rng)
        )

    def initialize_tracking(
        self,
        state: np.ndarray,
        sigma: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Pose tracking: particles around a known prior state."""
        self.filter.initialize(
            ParticleSet.gaussian(state, sigma, self.n_particles, rng)
        )

    def scan_points(self, depth: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Backproject a depth image into valid camera-frame scan points."""
        points = self.camera.backproject(depth)
        if points.shape[0] == 0:
            raise ValueError("depth image contains no valid pixels")
        return points

    def step(
        self, control: np.ndarray, depth: np.ndarray, rng: np.random.Generator
    ) -> StepDiagnostics:
        """One localization cycle from an odometry control and a depth frame."""
        scan = self.scan_points(depth, rng)
        return self.filter.step(control, scan, rng)

    def run(
        self,
        controls: np.ndarray,
        depths: list[np.ndarray],
        ground_truth: np.ndarray,
        rng: np.random.Generator,
    ) -> LocalizationResult:
        """Run a full sequence.

        Args:
            controls: (T, 4) body-frame odometry increments (control[t]
                moves state t to state t+1; pass a zero first row to align
                with frames).
            depths: T depth frames.
            ground_truth: (T, 4) true states.
            rng: generator.

        Returns:
            A :class:`LocalizationResult` whose energy ledger covers this
            sequence only (the backend's own ledger keeps accumulating).
        """
        controls = np.atleast_2d(np.asarray(controls, dtype=float))
        if controls.shape[0] != len(depths):
            raise ValueError("controls and depths length mismatch")
        energy_mark = self.field_backend.ledger.snapshot()
        diagnostics = []
        for control, depth in zip(controls, depths):
            diagnostics.append(self.step(control, depth, rng))
        estimates = np.stack([d.estimate for d in diagnostics], axis=0)
        errors = self.filter.position_errors(np.asarray(ground_truth))
        return LocalizationResult(
            estimates=estimates,
            errors=errors,
            diagnostics=diagnostics,
            energy=self.field_backend.ledger.since(energy_mark),
            backend=self.backend_name,
        )

    def camera_pose(self, state: np.ndarray) -> Pose:
        """Camera pose corresponding to a drone state."""
        return state_to_pose(state, self.camera_mount)
