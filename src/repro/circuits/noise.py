"""Analog noise models.

Two current-noise mechanisms matter for the CIM substrates:

- **shot noise** on a conducting branch: sigma_I = sqrt(2 q I B);
- **thermal (Johnson) noise** of the effective channel conductance:
  sigma_I = sqrt(4 k T g B), with g approximated as I / (n U_T) in weak
  inversion.

Both scale with the measurement bandwidth B (~ 1 / evaluation time).  The
paper leans on exactly these sources twice: as a *nuisance* in the
likelihood array, and as the harvested *entropy source* of the
SRAM-immersed RNG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.technology import (
    BOLTZMANN,
    ELECTRON_CHARGE,
    TechnologyNode,
)


@dataclass(frozen=True)
class NoiseModel:
    """Current-noise sampler for a technology node.

    Attributes:
        node: technology node (temperature, slope factor).
        bandwidth_hz: effective noise bandwidth of the evaluation.
        flicker_coefficient: optional 1/f contribution, expressed as an
            additional relative current noise (sigma/I).
    """

    node: TechnologyNode
    bandwidth_hz: float = 1.0e8
    flicker_coefficient: float = 0.0

    def shot_sigma(self, current: np.ndarray) -> np.ndarray:
        """Shot-noise sigma (A) for branch current(s)."""
        current = np.abs(np.asarray(current, dtype=float))
        return np.sqrt(2.0 * ELECTRON_CHARGE * current * self.bandwidth_hz)

    def thermal_sigma(self, current: np.ndarray) -> np.ndarray:
        """Thermal-noise sigma (A) using g ~ I / (n U_T)."""
        current = np.abs(np.asarray(current, dtype=float))
        g = current / (
            self.node.subthreshold_slope_factor * self.node.thermal_voltage
        )
        return np.sqrt(4.0 * BOLTZMANN * self.node.temperature_k * g * self.bandwidth_hz)

    def total_sigma(self, current: np.ndarray) -> np.ndarray:
        """RSS of all modelled noise mechanisms (A)."""
        current = np.asarray(current, dtype=float)
        variance = self.shot_sigma(current) ** 2 + self.thermal_sigma(current) ** 2
        if self.flicker_coefficient > 0:
            variance = variance + (self.flicker_coefficient * current) ** 2
        return np.sqrt(variance)

    def sample(self, current: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return ``current`` with one noise realisation added."""
        current = np.asarray(current, dtype=float)
        return current + rng.normal(size=current.shape) * self.total_sigma(current)
