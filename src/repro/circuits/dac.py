"""Digital-to-analog converter for the likelihood array inputs.

Projected measurement coordinates arrive as digital words; the DAC turns
them into the analog gate voltages V_X / V_Y / V_Z.  The model captures the
two effects that matter: finite resolution and static nonlinearity (INL).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.technology import TechnologyNode


class DAC:
    """A voltage-output DAC spanning [0, v_max].

    Args:
        node: technology node (energy table).
        bits: resolution.
        v_max: full-scale output voltage (defaults to the node's VDD).
        inl_lsb: 1-sigma integral nonlinearity in LSBs; a fixed per-code
            error pattern drawn once at construction.
        rng: generator for the INL pattern (required if inl_lsb > 0).
    """

    def __init__(
        self,
        node: TechnologyNode,
        bits: int = 6,
        v_max: float | None = None,
        inl_lsb: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.node = node
        self.bits = int(bits)
        self.v_max = float(v_max if v_max is not None else node.vdd)
        self.inl_lsb = float(inl_lsb)
        if self.inl_lsb > 0:
            if rng is None:
                raise ValueError("rng required when inl_lsb > 0")
            self._inl = rng.normal(scale=self.inl_lsb * self.lsb, size=self.levels)
        else:
            self._inl = np.zeros(self.levels)

    @property
    def levels(self) -> int:
        return 2**self.bits

    @property
    def lsb(self) -> float:
        return self.v_max / (self.levels - 1)

    def quantize(self, voltage: np.ndarray) -> np.ndarray:
        """Digital codes nearest to the requested voltage(s)."""
        voltage = np.asarray(voltage, dtype=float)
        codes = np.clip(voltage, 0.0, self.v_max) / self.lsb
        return np.clip(np.rint(codes), 0, self.levels - 1).astype(np.int64)

    def output(self, codes: np.ndarray) -> np.ndarray:
        """Analog output voltage(s) for integer code(s), including INL."""
        codes = np.asarray(codes)
        return codes.astype(float) * self.lsb + self._inl[codes]

    def convert(self, voltage: np.ndarray) -> np.ndarray:
        """Requested voltage(s) -> achieved analog voltage(s)."""
        return self.output(self.quantize(voltage))

    def conversion_energy(self) -> float:
        """Energy per conversion (J)."""
        return self.node.dac_energy_j
