"""The six-transistor likelihood inverter (paper Fig. 2a/b).

A complementary N/P pair in series conducts a *switching current* that peaks
where the rising NMOS branch crosses the falling PMOS branch and decays
exponentially on both sides -- a Gaussian-like bell in the gate voltage
(:class:`SwitchingCurrentCell`).  Stacking three such pairs (six transistors,
gates V_X / V_Y / V_Z) combines the per-axis bells as a harmonic mean
(:class:`LikelihoodInverter`), the paper's HMG kernel:

    I_total(v) = 1 / (1/I_X(v_x) + 1/I_Y(v_y) + 1/I_Z(v_z))

The bell *center* is programmed through floating-gate threshold shifts and
the *width* through a coarse drive-strength code (behavioural stand-in for
body-bias / device sizing), both with finite resolution -- this is exactly
the quantisation the map co-design has to absorb.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.circuits.floating_gate import FloatingGate
from repro.circuits.mosfet import MOSFET
from repro.circuits.technology import TechnologyNode

# Geometric width ladder: slope-factor multipliers selectable per cell.
WIDTH_SCALES: tuple[float, ...] = tuple(1.4**k for k in range(8))


class SwitchingCurrentCell:
    """One complementary pair: a Gaussian-like current bell in one voltage.

    Args:
        node: technology node.
        v_center: desired bell center voltage (V).
        width_code: index into :data:`WIDTH_SCALES`; wider codes broaden the
            bell by increasing the effective subthreshold slope.
        fg_bits: floating-gate programming resolution for the center.
        center_offset: additive center error from process mismatch (V).
        strength: multiplicative specific-current factor (device sizing and
            its mismatch).
    """

    def __init__(
        self,
        node: TechnologyNode,
        v_center: float,
        width_code: int = 0,
        fg_bits: int = 4,
        center_offset: float = 0.0,
        strength: float = 1.0,
    ):
        if not 0 <= width_code < len(WIDTH_SCALES):
            raise ValueError(
                f"width_code {width_code} out of range [0, {len(WIDTH_SCALES)})"
            )
        if strength <= 0:
            raise ValueError("strength must be positive")
        self.node = node
        self.width_code = int(width_code)
        self.requested_center = float(v_center)
        # The crossover sits at VDD/2 + delta where delta is the programmed
        # differential threshold shift; the floating gate quantises delta.
        delta_window = node.vdd / 2.0
        self._gate = FloatingGate(-delta_window, delta_window, bits=fg_bits)
        delta = self._gate.program(v_center - node.vdd / 2.0)
        self.achieved_center = node.vdd / 2.0 + delta + float(center_offset)
        slope = node.subthreshold_slope_factor * WIDTH_SCALES[self.width_code]
        i_spec = node.specific_current * float(strength)
        vt = node.nominal_vt
        self._nmos = MOSFET("n", vt, i_spec, slope, node.thermal_voltage)
        self._pmos = MOSFET("p", vt, i_spec, slope, node.thermal_voltage)
        # Shift both device thresholds so the crossover lands on the center.
        self._vt_shift = self.achieved_center - node.vdd / 2.0

    @property
    def center_code(self) -> int:
        """The floating-gate code storing the bell center."""
        return int(self._gate.code)

    def current(self, v: np.ndarray) -> np.ndarray:
        """Switching current (A) at gate voltage(s) ``v``."""
        v = np.asarray(v, dtype=float)
        # Shifting the input is equivalent to shifting both thresholds.
        v_eff = v - self._vt_shift
        i_n = self._nmos.current(v_eff, vdd=self.node.vdd)
        i_p = self._pmos.current(v_eff, vdd=self.node.vdd)
        return i_n * i_p / (i_n + i_p + 1e-300)

    def peak_current(self) -> float:
        """Current at the bell center (A)."""
        return float(self.current(np.array([self.achieved_center]))[0])


class LikelihoodInverter:
    """The 6T cell: three stacked pairs, one per input axis.

    The series stack combines per-axis bells as a harmonic mean, producing
    the HMG kernel with rectilinear (axis-aligned) iso-contour tails instead
    of the elliptical contours of a product-of-Gaussians (paper Fig. 2c/d).

    Args:
        cells: per-axis :class:`SwitchingCurrentCell` (typically three).
    """

    def __init__(self, cells: Sequence[SwitchingCurrentCell]):
        if not cells:
            raise ValueError("need at least one cell")
        self.cells = list(cells)

    @staticmethod
    def from_centers(
        node: TechnologyNode,
        v_centers: Sequence[float],
        width_codes: Sequence[int] | None = None,
        fg_bits: int = 4,
        center_offsets: Sequence[float] | None = None,
        strength: float = 1.0,
    ) -> "LikelihoodInverter":
        """Build an inverter programmed to given per-axis centers/widths."""
        n_axes = len(v_centers)
        if width_codes is None:
            width_codes = [0] * n_axes
        if center_offsets is None:
            center_offsets = [0.0] * n_axes
        if len(width_codes) != n_axes or len(center_offsets) != n_axes:
            raise ValueError("per-axis parameter lengths disagree")
        cells = [
            SwitchingCurrentCell(
                node,
                v_center=float(c),
                width_code=int(w),
                fg_bits=fg_bits,
                center_offset=float(o),
                strength=strength,
            )
            for c, w, o in zip(v_centers, width_codes, center_offsets)
        ]
        return LikelihoodInverter(cells)

    @property
    def n_axes(self) -> int:
        return len(self.cells)

    def current(self, voltages: np.ndarray) -> np.ndarray:
        """Stack current (A) for (N, n_axes) input voltages."""
        voltages = np.atleast_2d(np.asarray(voltages, dtype=float))
        if voltages.shape[1] != self.n_axes:
            raise ValueError(
                f"expected {self.n_axes} input axes, got {voltages.shape[1]}"
            )
        inverse_sum = np.zeros(voltages.shape[0])
        for axis, cell in enumerate(self.cells):
            inverse_sum += 1.0 / (cell.current(voltages[:, axis]) + 1e-300)
        return 1.0 / inverse_sum

    def peak_current(self) -> float:
        """Current with every axis at its bell center (A)."""
        centers = np.array([[cell.achieved_center for cell in self.cells]])
        return float(self.current(centers)[0])


def gaussian_equivalent_sigma(
    cell: SwitchingCurrentCell, n_grid: int = 2001
) -> float:
    """Effective Gaussian sigma (V) of a cell's current bell.

    Computed as the standard deviation of the normalised current profile
    over the rail-to-rail voltage range; used by the map co-design to
    translate device width codes into kernel widths in map units.
    """
    v = np.linspace(0.0, cell.node.vdd, n_grid)
    i = cell.current(v)
    total = np.trapezoid(i, v)
    if total <= 0:
        raise ValueError("cell conducts no current; cannot estimate width")
    mean = np.trapezoid(v * i, v) / total
    var = np.trapezoid((v - mean) ** 2 * i, v) / total
    return float(np.sqrt(var))


def width_code_sigmas(node: TechnologyNode, fg_bits: int = 4) -> np.ndarray:
    """Effective sigma (V) for every width code at a mid-rail center.

    This is the hardware's discrete width menu; map fitting quantises each
    component's sigma to the nearest entry.
    """
    sigmas = []
    for code in range(len(WIDTH_SCALES)):
        cell = SwitchingCurrentCell(
            node, v_center=node.vdd / 2.0, width_code=code, fg_bits=fg_bits
        )
        sigmas.append(gaussian_equivalent_sigma(cell))
    return np.asarray(sigmas)
