"""Floating-gate (charge-trap) non-volatile threshold programming.

The likelihood inverter programs the *center* of its Gaussian-like
switching-current bell by shifting device thresholds through trapped charge
(Gu et al., charge-trap transistors).  Programming resolution is finite: the
stored charge is quantised to ``bits`` levels across the programmable
window, and each write lands with a small programming error.
"""

from __future__ import annotations

import numpy as np


class FloatingGate:
    """A programmable threshold-voltage shifter.

    Args:
        vt_min: lower edge of the programmable threshold window (V).
        vt_max: upper edge of the programmable threshold window (V).
        bits: programming resolution (levels = 2**bits).
        program_noise_std: 1-sigma programming error as a fraction of one
            LSB (charge-injection inaccuracy).
        rng: generator for programming noise (optional; noiseless if absent
            and ``program_noise_std`` is 0).
    """

    def __init__(
        self,
        vt_min: float,
        vt_max: float,
        bits: int = 4,
        program_noise_std: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        if vt_max <= vt_min:
            raise ValueError("vt_max must exceed vt_min")
        if bits < 1:
            raise ValueError("bits must be >= 1")
        if program_noise_std > 0 and rng is None:
            raise ValueError("rng required when program_noise_std > 0")
        self.vt_min = float(vt_min)
        self.vt_max = float(vt_max)
        self.bits = int(bits)
        self.program_noise_std = float(program_noise_std)
        self._rng = rng
        self._code: int | None = None
        self._vt: float = float(vt_min)

    @property
    def levels(self) -> int:
        return 2**self.bits

    @property
    def lsb(self) -> float:
        """Threshold step per code (V)."""
        return (self.vt_max - self.vt_min) / (self.levels - 1)

    @property
    def code(self) -> int | None:
        """The last programmed code (None if never programmed)."""
        return self._code

    @property
    def vt(self) -> float:
        """The current (possibly noisy) threshold voltage (V)."""
        return self._vt

    def quantize(self, target_vt: float) -> int:
        """The code whose ideal threshold is nearest ``target_vt``."""
        clipped = np.clip(target_vt, self.vt_min, self.vt_max)
        return int(round((clipped - self.vt_min) / self.lsb))

    def code_to_vt(self, code: int) -> float:
        """Ideal threshold voltage for a code."""
        if not 0 <= code < self.levels:
            raise ValueError(f"code {code} out of range [0, {self.levels})")
        return self.vt_min + code * self.lsb

    def program(self, target_vt: float) -> float:
        """Program the gate as close to ``target_vt`` as the hardware allows.

        Returns:
            The achieved threshold voltage (quantised + programming noise).
        """
        code = self.quantize(target_vt)
        vt = self.code_to_vt(code)
        if self.program_noise_std > 0:
            vt += float(self._rng.normal(scale=self.program_noise_std * self.lsb))
        self._code = code
        self._vt = float(np.clip(vt, self.vt_min, self.vt_max))
        return self._vt

    def programming_error(self, target_vt: float) -> float:
        """Worst-case quantisation error for a target (ignoring noise)."""
        return abs(self.code_to_vt(self.quantize(target_vt)) - np.clip(target_vt, self.vt_min, self.vt_max))
