"""Process-variability (device mismatch) models.

Threshold-voltage mismatch follows the Pelgrom law: the 1-sigma mismatch of
a device pair shrinks with the square root of gate area.  We expose a
sampler producing per-device V_T offsets and lognormal current-factor
mismatches, used both by the likelihood inverter array (a nuisance) and by
the SRAM RNG (where summation across many ports *filters* the mismatch --
the effect the paper's Fig. 3b exploits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.technology import TechnologyNode


@dataclass(frozen=True)
class MismatchSampler:
    """Samples per-device process variations.

    Attributes:
        node: technology node providing the unit-device sigma.
        area_factor: relative gate area; V_T sigma scales as
            1/sqrt(area_factor) (Pelgrom).
        current_factor_sigma: 1-sigma of the lognormal current-gain
            mismatch (beta mismatch), typically a few percent.
    """

    node: TechnologyNode
    area_factor: float = 1.0
    current_factor_sigma: float = 0.03

    def __post_init__(self) -> None:
        if self.area_factor <= 0:
            raise ValueError("area_factor must be positive")

    @property
    def vt_sigma(self) -> float:
        """Effective 1-sigma V_T mismatch (V)."""
        return self.node.sigma_vt_mismatch / np.sqrt(self.area_factor)

    def vt_offsets(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Per-device threshold offsets (V)."""
        return rng.normal(scale=self.vt_sigma, size=shape)

    def current_factors(
        self, shape: tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """Per-device multiplicative current-gain factors (lognormal, mean ~1)."""
        if self.current_factor_sigma <= 0:
            return np.ones(shape)
        log_sigma = self.current_factor_sigma
        return rng.lognormal(mean=-0.5 * log_sigma**2, sigma=log_sigma, size=shape)

    def subthreshold_leakage(
        self,
        shape: tuple[int, ...],
        rng: np.random.Generator,
        nominal_current: float = 1.0e-10,
    ) -> np.ndarray:
        """Per-device subthreshold leakage currents (A).

        Leakage is exponential in the V_T offset (weak inversion), producing
        the heavy-tailed lognormal spread the SRAM RNG has to filter:
        ``I = I_nom * exp(-dVT / (n UT))``.
        """
        offsets = self.vt_offsets(shape, rng)
        n_ut = self.node.subthreshold_slope_factor * self.node.thermal_voltage
        return nominal_current * np.exp(-offsets / n_ut)
