"""CMOS technology nodes and per-operation energy tables.

Absolute energies are behavioural calibration constants in the range of
published numbers (Horowitz, ISSCC 2014 "Computing's energy problem" and
follow-ups, scaled for near-threshold edge operation); the experiments only
rely on their *ratios*, which follow from counted work.  Each figure in
EXPERIMENTS.md records which constants it depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

BOLTZMANN = 1.380649e-23
ELECTRON_CHARGE = 1.602176634e-19
ROOM_TEMPERATURE_K = 300.0
# kT/q at 300 K.
THERMAL_VOLTAGE = BOLTZMANN * ROOM_TEMPERATURE_K / ELECTRON_CHARGE


@dataclass(frozen=True)
class TechnologyNode:
    """A CMOS technology operating point.

    Attributes:
        name: human-readable node name.
        vdd: supply voltage (V).
        temperature_k: junction temperature (K).
        subthreshold_slope_factor: EKV slope factor n (typ. 1.2-1.5).
        specific_current: EKV specific current I_S for a unit device (A).
        nominal_vt: nominal threshold voltage magnitude (V).
        sigma_vt_mismatch: Pelgrom-style 1-sigma V_T mismatch for a unit
            device (V).
        mac_energy_j: per-precision digital MAC energy (J), keyed by bit
            width.
        add_energy_j: per-precision digital adder energy (J).
        lut_energy_j: energy of one lookup-table access (exp/log) (J).
        sram_read_energy_per_bit_j: local SRAM read energy per bit (J).
        adc_energy_per_conversion_j: ADC energy per conversion, keyed by bit
            width (J).
        dac_energy_j: DAC energy per conversion (J).
        clock_hz: nominal clock frequency for digital blocks (Hz).
    """

    name: str
    vdd: float
    temperature_k: float = ROOM_TEMPERATURE_K
    subthreshold_slope_factor: float = 1.3
    specific_current: float = 4.0e-7
    nominal_vt: float = 0.35
    sigma_vt_mismatch: float = 0.015
    mac_energy_j: dict[int, float] = field(default_factory=dict)
    add_energy_j: dict[int, float] = field(default_factory=dict)
    lut_energy_j: float = 2.0e-14
    sram_read_energy_per_bit_j: float = 5.0e-15
    adc_energy_per_conversion_j: dict[int, float] = field(default_factory=dict)
    dac_energy_j: float = 2.5e-14
    clock_hz: float = 1.0e9

    @property
    def thermal_voltage(self) -> float:
        """kT/q at the node's operating temperature (V)."""
        return BOLTZMANN * self.temperature_k / ELECTRON_CHARGE

    def mac_energy(self, bits: int) -> float:
        """Digital MAC energy at ``bits`` precision, with sub-quadratic
        interpolation between tabulated precisions."""
        return _interpolate_energy(self.mac_energy_j, bits)

    def add_energy(self, bits: int) -> float:
        """Digital adder energy at ``bits`` precision."""
        return _interpolate_energy(self.add_energy_j, bits)

    def adc_energy(self, bits: int) -> float:
        """ADC energy per conversion at ``bits`` resolution."""
        return _interpolate_energy(self.adc_energy_per_conversion_j, bits)


def _interpolate_energy(table: dict[int, float], bits: int) -> float:
    """Energy at ``bits`` from a sparse table, scaling ~quadratically.

    Digital multiplier energy grows roughly with bits^2; ADC energy roughly
    4x per 2 extra bits.  Quadratic interpolation against the nearest
    tabulated precision is accurate enough for both uses.
    """
    if not table:
        raise ValueError("empty energy table")
    if bits in table:
        return table[bits]
    nearest = min(table, key=lambda b: abs(b - bits))
    return table[nearest] * (bits / nearest) ** 2


# 45 nm node used in the particle-filter energy study (Fig. 2i).  MAC/add
# energies follow Horowitz-style numbers scaled for near-threshold edge
# operation; the 8-bit MAC / 4-bit log-ADC pair calibrates the ~25x CIM
# advantage reported by the paper.
NODE_45NM = TechnologyNode(
    name="45nm",
    vdd=1.0,
    specific_current=4.0e-7,
    nominal_vt=0.38,
    sigma_vt_mismatch=0.012,
    mac_energy_j={4: 6.0e-15, 8: 1.8e-14, 16: 6.5e-14, 32: 2.4e-13},
    add_energy_j={4: 2.0e-15, 8: 4.0e-15, 16: 9.0e-15, 32: 3.0e-14},
    lut_energy_j=1.5e-14,
    sram_read_energy_per_bit_j=4.0e-16,
    adc_energy_per_conversion_j={4: 2.0e-13, 6: 4.5e-13, 8: 1.2e-12},
    dac_energy_j=4.0e-14,
    clock_hz=5.0e8,
)

# 16 nm node used in the MC-Dropout CIM macro study (Sec. III-D: 1 GHz,
# 0.85 V).  Calibrated so a 4-bit macro lands near 3 TOPS/W and a 6-bit
# macro near 2 TOPS/W for 30-iteration MC-Dropout inference.
NODE_16NM = TechnologyNode(
    name="16nm",
    vdd=0.85,
    specific_current=6.0e-7,
    nominal_vt=0.32,
    sigma_vt_mismatch=0.018,
    mac_energy_j={4: 8.0e-15, 8: 2.8e-14, 16: 1.0e-13, 32: 3.5e-13},
    add_energy_j={4: 1.2e-15, 8: 2.4e-15, 16: 5.5e-15, 32: 1.8e-14},
    lut_energy_j=8.0e-15,
    sram_read_energy_per_bit_j=2.5e-15,
    adc_energy_per_conversion_j={4: 2.8e-14, 6: 7.8e-14, 8: 2.4e-13},
    dac_energy_j=1.2e-14,
    clock_hz=1.0e9,
)
