"""Analog-to-digital converters.

The likelihood array reads out its summed column current through a
*logarithmic* ADC (the particle filter accumulates log-likelihoods, so the
log conversion is free).  The SRAM macro uses a linear ADC per column.
Both models quantise, clip, add input-referred noise, and report conversion
energy from the technology table.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.technology import TechnologyNode


class LogarithmicADC:
    """Logarithmic current-input ADC.

    Codes are uniform in ``log(i / i_min)`` between ``i_min`` and ``i_max``.

    Args:
        node: technology node (energy table).
        bits: resolution.
        i_min: current mapped to code 0 (A).
        i_max: current mapped to full scale (A).
        noise_lsb: input-referred noise in LSBs (1-sigma).
    """

    def __init__(
        self,
        node: TechnologyNode,
        bits: int = 4,
        i_min: float = 1.0e-10,
        i_max: float = 1.0e-4,
        noise_lsb: float = 0.0,
    ):
        if i_min <= 0 or i_max <= i_min:
            raise ValueError("require 0 < i_min < i_max")
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.node = node
        self.bits = int(bits)
        self.i_min = float(i_min)
        self.i_max = float(i_max)
        self.noise_lsb = float(noise_lsb)
        self._log_span = np.log(self.i_max / self.i_min)

    @property
    def levels(self) -> int:
        return 2**self.bits

    def convert(
        self, current: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Quantise current(s) to integer codes."""
        current = np.asarray(current, dtype=float)
        clipped = np.clip(current, self.i_min, self.i_max)
        fraction = np.log(clipped / self.i_min) / self._log_span
        codes = fraction * (self.levels - 1)
        if self.noise_lsb > 0:
            if rng is None:
                raise ValueError("rng required when noise_lsb > 0")
            codes = codes + rng.normal(scale=self.noise_lsb, size=codes.shape)
        return np.clip(np.rint(codes), 0, self.levels - 1).astype(np.int64)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map codes back to representative currents (A)."""
        codes = np.asarray(codes, dtype=float)
        fraction = codes / (self.levels - 1)
        return self.i_min * np.exp(fraction * self._log_span)

    def log_likelihood(self, codes: np.ndarray) -> np.ndarray:
        """Codes as (unnormalised) log-likelihood values.

        The code *is* the log of the current up to an affine map, which is
        all a particle filter needs (normalisation cancels in the weight
        update).
        """
        codes = np.asarray(codes, dtype=float)
        return codes / (self.levels - 1) * self._log_span + np.log(self.i_min)

    def conversion_energy(self) -> float:
        """Energy per conversion (J)."""
        return self.node.adc_energy(self.bits)


class LinearADC:
    """Uniform-quantisation ADC over a [0, full_scale] input.

    Args:
        node: technology node (energy table).
        bits: resolution.
        full_scale: input value mapped to the top code.
        noise_lsb: input-referred noise in LSBs (1-sigma).
    """

    def __init__(
        self,
        node: TechnologyNode,
        bits: int = 4,
        full_scale: float = 1.0,
        noise_lsb: float = 0.0,
    ):
        if full_scale <= 0:
            raise ValueError("full_scale must be positive")
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.node = node
        self.bits = int(bits)
        self.full_scale = float(full_scale)
        self.noise_lsb = float(noise_lsb)

    @property
    def levels(self) -> int:
        return 2**self.bits

    @property
    def lsb(self) -> float:
        return self.full_scale / (self.levels - 1)

    def convert(
        self, value: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Quantise value(s) to integer codes."""
        value = np.asarray(value, dtype=float)
        codes = np.clip(value, 0.0, self.full_scale) / self.lsb
        if self.noise_lsb > 0:
            if rng is None:
                raise ValueError("rng required when noise_lsb > 0")
            codes = codes + rng.normal(scale=self.noise_lsb, size=codes.shape)
        return np.clip(np.rint(codes), 0, self.levels - 1).astype(np.int64)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map codes back to input-referred values."""
        return np.asarray(codes, dtype=float) * self.lsb

    def conversion_energy(self) -> float:
        """Energy per conversion (J)."""
        return self.node.adc_energy(self.bits)
