"""Inverter-array likelihood engine (paper Fig. 2a).

Columns of programmed :class:`~repro.circuits.inverter.LikelihoodInverter`
cells share an output line; by Kirchhoff's current law the line carries the
*sum* of the column currents, i.e. an entire mixture likelihood evaluates in
one analog step.  Mixture weights are realised by integer column
replication.  A logarithmic ADC digitises the summed current (the particle
filter consumes log-likelihoods), and DACs drive the input voltages.

The evaluation path is fully vectorised: per-column device parameters are
baked into arrays at construction so a batch of query points costs a few
broadcast numpy expressions rather than a Python loop over columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.adc import LogarithmicADC
from repro.circuits.dac import DAC
from repro.circuits.energy import EnergyLedger
from repro.circuits.inverter import WIDTH_SCALES, SwitchingCurrentCell
from repro.circuits.noise import NoiseModel
from repro.circuits.technology import TechnologyNode
from repro.circuits.variability import MismatchSampler


@dataclass(frozen=True)
class VoltageEncoder:
    """Affine map between world coordinates and gate voltages.

    Each axis of the world bounding box [lo, hi] maps onto
    [margin * vdd, (1 - margin) * vdd], keeping bell centers away from the
    rails where the switching current deforms.

    Attributes:
        lo: per-axis lower world bounds (A,).
        hi: per-axis upper world bounds (A,).
        vdd: supply voltage.
        margin: rail guard band as a fraction of vdd.
    """

    lo: np.ndarray
    hi: np.ndarray
    vdd: float
    margin: float = 0.1

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=float)
        hi = np.asarray(self.hi, dtype=float)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        if np.any(hi <= lo):
            raise ValueError("hi must exceed lo on every axis")
        if not 0.0 <= self.margin < 0.5:
            raise ValueError("margin must be in [0, 0.5)")

    @property
    def v_lo(self) -> float:
        return self.margin * self.vdd

    @property
    def v_hi(self) -> float:
        return (1.0 - self.margin) * self.vdd

    def scale(self) -> np.ndarray:
        """Volts per world unit, per axis (A,)."""
        return (self.v_hi - self.v_lo) / (self.hi - self.lo)

    def encode(self, points: np.ndarray) -> np.ndarray:
        """World points (N, A) -> gate voltages (N, A), clipped to rails."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        volts = self.v_lo + (points - self.lo) * self.scale()
        return np.clip(volts, 0.0, self.vdd)

    def decode(self, volts: np.ndarray) -> np.ndarray:
        """Gate voltages (N, A) -> world points (N, A)."""
        volts = np.atleast_2d(np.asarray(volts, dtype=float))
        return self.lo + (volts - self.v_lo) / self.scale()

    def sigma_to_volts(self, sigma_world: np.ndarray) -> np.ndarray:
        """Convert per-axis world-unit widths to voltage-domain widths."""
        return np.asarray(sigma_world, dtype=float) * self.scale()

    def volts_to_sigma(self, sigma_volts: np.ndarray) -> np.ndarray:
        """Convert voltage-domain widths back to world units."""
        return np.asarray(sigma_volts, dtype=float) / self.scale()


class InverterColumn:
    """Specification of one programmed column.

    Attributes:
        v_centers: per-axis bell centers (V).
        width_codes: per-axis width-code indices.
        replication: how many physical copies of the column are wired in
            parallel (integer mixture weight).
    """

    def __init__(
        self,
        v_centers: np.ndarray,
        width_codes: np.ndarray,
        replication: int = 1,
    ):
        self.v_centers = np.asarray(v_centers, dtype=float).reshape(-1)
        self.width_codes = np.asarray(width_codes, dtype=int).reshape(-1)
        if self.v_centers.shape != self.width_codes.shape:
            raise ValueError("v_centers / width_codes length mismatch")
        if np.any(self.width_codes < 0) or np.any(self.width_codes >= len(WIDTH_SCALES)):
            raise ValueError("width code out of range")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.replication = int(replication)


class InverterArray:
    """A bank of likelihood-inverter columns with shared current summation.

    Args:
        node: technology node.
        columns: column specifications (one per mixture component).
        fg_bits: floating-gate programming resolution.
        mismatch: process-variation sampler (optional).
        noise: analog noise model (optional).
        adc: output log-ADC (default: 4-bit log ADC sized to the array).
        input_dac_bits: resolution of the three input DACs.
        eval_time_s: analog evaluation (integration) time per query.
        rng: generator for mismatch draws (required if ``mismatch``).
    """

    def __init__(
        self,
        node: TechnologyNode,
        columns: list[InverterColumn],
        fg_bits: int = 4,
        mismatch: MismatchSampler | None = None,
        noise: NoiseModel | None = None,
        adc: LogarithmicADC | None = None,
        input_dac_bits: int = 6,
        eval_time_s: float = 1.0e-8,
        rng: np.random.Generator | None = None,
    ):
        if not columns:
            raise ValueError("need at least one column")
        n_axes = columns[0].v_centers.size
        if any(c.v_centers.size != n_axes for c in columns):
            raise ValueError("all columns must have the same number of axes")
        if mismatch is not None and rng is None:
            raise ValueError("rng required when mismatch sampling is enabled")
        self.node = node
        self.n_axes = n_axes
        self.n_columns = len(columns)
        self.eval_time_s = float(eval_time_s)
        self.noise = noise
        self.replication = np.array([c.replication for c in columns], dtype=float)

        # Build cells once to inherit the floating-gate quantisation, then
        # bake their parameters into arrays for vectorised evaluation.
        centers = np.empty((self.n_columns, n_axes))
        slopes = np.empty((self.n_columns, n_axes))
        strengths = np.ones((self.n_columns, n_axes))
        if mismatch is not None:
            center_offsets = mismatch.vt_offsets((self.n_columns, n_axes), rng)
            strengths = mismatch.current_factors((self.n_columns, n_axes), rng)
        else:
            center_offsets = np.zeros((self.n_columns, n_axes))
        for j, column in enumerate(columns):
            for axis in range(n_axes):
                cell = SwitchingCurrentCell(
                    node,
                    v_center=float(column.v_centers[axis]),
                    width_code=int(column.width_codes[axis]),
                    fg_bits=fg_bits,
                    center_offset=float(center_offsets[j, axis]),
                    strength=float(strengths[j, axis]),
                )
                centers[j, axis] = cell.achieved_center
                slopes[j, axis] = (
                    node.subthreshold_slope_factor * WIDTH_SCALES[column.width_codes[axis]]
                )
        self._centers = centers
        self._slopes = slopes
        self._i_spec = node.specific_current * strengths
        self._vt = node.nominal_vt
        self._ut = node.thermal_voltage
        self.dacs = [DAC(node, bits=input_dac_bits) for _ in range(n_axes)]
        self.adc = adc or LogarithmicADC(
            node,
            bits=4,
            i_min=1e-2 * self._typical_column_peak(),
            i_max=2.0 * float(self.replication.sum()) * self._typical_column_peak(),
        )
        self.ledger = EnergyLedger(label=f"inverter-array[{self.n_columns}x{n_axes}]")

    def _typical_column_peak(self) -> float:
        """Rough peak current of one column (A), for ADC range sizing."""
        return self.node.specific_current * np.log(2.0) ** 2 / self.n_axes

    def _ekv(self, v_drive: np.ndarray, slopes: np.ndarray, i_spec: np.ndarray) -> np.ndarray:
        x = (v_drive - self._vt) / (2.0 * slopes * self._ut)
        soft = np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))
        return i_spec * soft**2

    def column_currents(self, volts: np.ndarray) -> np.ndarray:
        """Per-column stack currents (N, C) for input voltages (N, A)."""
        volts = np.atleast_2d(np.asarray(volts, dtype=float))
        if volts.shape[1] != self.n_axes:
            raise ValueError(f"expected {self.n_axes} axes, got {volts.shape[1]}")
        vdd = self.node.vdd
        inverse_sum = np.zeros((volts.shape[0], self.n_columns))
        for axis in range(self.n_axes):
            # Effective input after the programmed threshold shift.
            v_eff = volts[:, axis, None] - (self._centers[None, :, axis] - vdd / 2.0)
            slopes = self._slopes[None, :, axis]
            i_spec = self._i_spec[None, :, axis]
            i_n = self._ekv(v_eff, slopes, i_spec)
            i_p = self._ekv(vdd - v_eff, slopes, i_spec)
            i_axis = i_n * i_p / (i_n + i_p + 1e-300)
            inverse_sum += 1.0 / (i_axis + 1e-300)
        return 1.0 / inverse_sum

    def total_current(
        self, volts: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Summed output-line current (N,) including replication and noise."""
        currents = self.column_currents(volts) @ self.replication
        if self.noise is not None:
            if rng is None:
                raise ValueError("rng required when a noise model is attached")
            currents = self.noise.sample(currents, rng)
            currents = np.maximum(currents, 0.0)
        return currents

    def read_log_likelihood(
        self,
        points: np.ndarray,
        encoder: VoltageEncoder,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Full read path: world points -> DAC -> array -> noise -> log-ADC.

        Args:
            points: (N, A) world points to evaluate.
            encoder: world-to-voltage map (must match the programming).
            rng: generator for noise (if a noise model is attached).

        Returns:
            (N,) unnormalised log-likelihood values (log of the decoded
            summed current).
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        volts = encoder.encode(points)
        for axis, dac in enumerate(self.dacs):
            volts[:, axis] = dac.convert(volts[:, axis])
        currents = self.total_current(volts, rng=rng)
        codes = self.adc.convert(currents, rng=rng)
        self._account(points.shape[0], currents)
        return self.adc.log_likelihood(codes)

    def _account(self, n_queries: int, currents: np.ndarray) -> None:
        self.ledger.add(
            "dac_conversion", n_queries * self.n_axes, self.node.dac_energy_j
        )
        self.ledger.add("adc_conversion", n_queries, self.adc.conversion_energy())
        analog = float(np.sum(currents) * self.node.vdd * self.eval_time_s)
        self.ledger.add_energy("analog_evaluation", analog, count=n_queries)

    def energy_per_query(self) -> float:
        """Mean energy per likelihood query so far (J)."""
        queries = self.ledger.count("adc_conversion")
        if queries == 0:
            return 0.0
        return self.ledger.total_energy_j() / queries
