"""EKV-style analytic MOSFET model.

The EKV interpolation gives a single smooth expression covering weak
(subthreshold, exponential) and strong (quadratic) inversion::

    I_D = I_S * ln(1 + exp((V_GS - V_T) / (2 n U_T)))^2

which is all the likelihood-inverter physics needs: the Gaussian-like
switching current of the 6T cell emerges from the series combination of a
rising NMOS branch and a falling PMOS branch of this form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.technology import TechnologyNode


def ekv_current(
    v_gs: np.ndarray,
    v_t: float,
    specific_current: float,
    slope_factor: float,
    thermal_voltage: float,
) -> np.ndarray:
    """Saturation drain current of the EKV model.

    Args:
        v_gs: gate-source voltage(s) (V).  For PMOS pass the source-gate
            voltage and the threshold magnitude.
        v_t: threshold voltage (V).
        specific_current: EKV specific current I_S (A).
        slope_factor: subthreshold slope factor n.
        thermal_voltage: kT/q (V).

    Returns:
        Drain current(s) (A), same shape as ``v_gs``.
    """
    v_gs = np.asarray(v_gs, dtype=float)
    x = (v_gs - v_t) / (2.0 * slope_factor * thermal_voltage)
    # log1p(exp(x)) evaluated stably for large |x|.
    soft = np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))
    return specific_current * soft**2


@dataclass(frozen=True)
class MOSFET:
    """A single MOSFET with fixed terminal convention.

    Attributes:
        polarity: "n" or "p".
        vt: threshold voltage magnitude (V).
        specific_current: EKV specific current (A).
        slope_factor: subthreshold slope factor n.
        thermal_voltage: kT/q (V).
    """

    polarity: str
    vt: float
    specific_current: float
    slope_factor: float
    thermal_voltage: float

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise ValueError(f"polarity must be 'n' or 'p', got {self.polarity!r}")
        if self.vt < 0:
            raise ValueError("vt is a magnitude and must be non-negative")

    @staticmethod
    def from_node(node: TechnologyNode, polarity: str, vt: float | None = None) -> "MOSFET":
        """Build a device using a technology node's parameters."""
        return MOSFET(
            polarity=polarity,
            vt=node.nominal_vt if vt is None else vt,
            specific_current=node.specific_current,
            slope_factor=node.subthreshold_slope_factor,
            thermal_voltage=node.thermal_voltage,
        )

    def current(self, v_gate: np.ndarray, vdd: float = 1.0) -> np.ndarray:
        """Saturation current for a gate voltage referenced to the rails.

        NMOS source is at ground (``V_GS = v_gate``); PMOS source is at
        ``vdd`` (``V_SG = vdd - v_gate``).
        """
        v_gate = np.asarray(v_gate, dtype=float)
        if self.polarity == "n":
            v_drive = v_gate
        else:
            v_drive = vdd - v_gate
        return ekv_current(
            v_drive, self.vt, self.specific_current, self.slope_factor, self.thermal_voltage
        )

    def with_vt(self, vt: float) -> "MOSFET":
        """Copy of this device with a different threshold voltage."""
        return MOSFET(
            self.polarity, vt, self.specific_current, self.slope_factor, self.thermal_voltage
        )
