"""Energy accounting.

Every substrate reports its work into an :class:`EnergyLedger` -- a named
multiset of (operation, count, energy) entries.  Experiment drivers merge
ledgers and print comparison tables; nothing in the package computes energy
as a side effect you cannot audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EnergyLedger:
    """Accumulates operation counts and their energy.

    Attributes:
        label: name shown in reports.
    """

    label: str = "ledger"
    _counts: dict[str, int] = field(default_factory=dict)
    _energies: dict[str, float] = field(default_factory=dict)

    def add(self, operation: str, count: int, energy_per_op_j: float) -> None:
        """Record ``count`` occurrences of ``operation``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if energy_per_op_j < 0:
            raise ValueError("energy must be non-negative")
        self._counts[operation] = self._counts.get(operation, 0) + int(count)
        self._energies[operation] = (
            self._energies.get(operation, 0.0) + count * energy_per_op_j
        )

    def add_energy(self, operation: str, total_energy_j: float, count: int = 1) -> None:
        """Record a pre-totalled energy contribution."""
        if total_energy_j < 0:
            raise ValueError("energy must be non-negative")
        self._counts[operation] = self._counts.get(operation, 0) + int(count)
        self._energies[operation] = self._energies.get(operation, 0.0) + total_energy_j

    @property
    def operations(self) -> list[str]:
        return sorted(self._counts)

    def count(self, operation: str) -> int:
        return self._counts.get(operation, 0)

    def energy(self, operation: str) -> float:
        return self._energies.get(operation, 0.0)

    def total_count(self) -> int:
        return sum(self._counts.values())

    def total_energy_j(self) -> float:
        return sum(self._energies.values())

    def merge(self, other: "EnergyLedger") -> "EnergyLedger":
        """Fold another ledger's entries into this one (returns self)."""
        for operation in other.operations:
            self._counts[operation] = self._counts.get(operation, 0) + other.count(operation)
            self._energies[operation] = self._energies.get(operation, 0.0) + other.energy(
                operation
            )
        return self

    def scaled(self, factor: float) -> "EnergyLedger":
        """A copy with all counts/energies multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        result = EnergyLedger(label=self.label)
        for operation in self.operations:
            result._counts[operation] = int(round(self.count(operation) * factor))
            result._energies[operation] = self.energy(operation) * factor
        return result

    def reset(self) -> None:
        self._counts.clear()
        self._energies.clear()

    def table(self) -> str:
        """A fixed-width text table of the ledger contents."""
        lines = [f"{self.label}", f"{'operation':<32}{'count':>12}{'energy':>14}"]
        for operation in self.operations:
            lines.append(
                f"{operation:<32}{self.count(operation):>12}"
                f"{format_energy(self.energy(operation)):>14}"
            )
        lines.append(
            f"{'TOTAL':<32}{self.total_count():>12}"
            f"{format_energy(self.total_energy_j()):>14}"
        )
        return "\n".join(lines)


def format_energy(energy_j: float) -> str:
    """Human-readable energy string (fJ / pJ / nJ / uJ / mJ / J)."""
    magnitude = abs(energy_j)
    for scale, unit in ((1e-15, "fJ"), (1e-12, "pJ"), (1e-9, "nJ"), (1e-6, "uJ"), (1e-3, "mJ")):
        if magnitude < scale * 1e3:
            return f"{energy_j / scale:.2f} {unit}"
    return f"{energy_j:.3f} J"
