"""Energy accounting.

Every substrate reports its work into an :class:`EnergyLedger` -- a named
multiset of (operation, count, energy) entries.  Experiment drivers merge
ledgers and print comparison tables; nothing in the package computes energy
as a side effect you cannot audit.

Ledgers are *cumulative* by design (a macro's ledger is its lifetime
odometer).  Callers that need strictly per-call figures scope a region,
in one of two ways:

- **Scoped child ledgers** -- :meth:`EnergyLedger.begin_scope` attaches a
  fresh child that receives a copy of every entry recorded until
  :meth:`EnergyLedger.end_scope`.  The child accumulates from zero, so
  two identical scoped regions yield bit-identical energies (no
  floating-point residue from differencing large cumulative totals).
  This is what the CIM MC-Dropout engine uses per ``predict()``.
- **Snapshot/diff** -- :meth:`EnergyLedger.snapshot` +
  :meth:`EnergyLedger.since` work on plain data, so they also scope
  ledger *views* that are rebuilt per access (e.g. the tiled array's
  merged ledger), at the cost of float-subtraction rounding::

      mark = backend.ledger.snapshot()
      ...queries...
      per_run = backend.ledger.since(mark)

Either way nobody has to ``reset()`` shared state between calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LedgerSnapshot:
    """Point-in-time copy of a ledger's tallies (see ``EnergyLedger.snapshot``)."""

    counts: dict[str, int]
    energies: dict[str, float]


@dataclass
class EnergyLedger:
    """Accumulates operation counts and their energy.

    Attributes:
        label: name shown in reports.
    """

    label: str = "ledger"
    _counts: dict[str, int] = field(default_factory=dict)
    _energies: dict[str, float] = field(default_factory=dict)
    _scopes: list["EnergyLedger"] = field(default_factory=list, repr=False)

    def _apply(self, operation: str, count: int, energy_j: float) -> None:
        self._counts[operation] = self._counts.get(operation, 0) + count
        self._energies[operation] = self._energies.get(operation, 0.0) + energy_j
        for scope in self._scopes:
            scope._apply(operation, count, energy_j)

    def add(self, operation: str, count: int, energy_per_op_j: float) -> None:
        """Record ``count`` occurrences of ``operation``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if energy_per_op_j < 0:
            raise ValueError("energy must be non-negative")
        self._apply(operation, int(count), count * energy_per_op_j)

    def add_energy(self, operation: str, total_energy_j: float, count: int = 1) -> None:
        """Record a pre-totalled energy contribution."""
        if total_energy_j < 0:
            raise ValueError("energy must be non-negative")
        self._apply(operation, int(count), total_energy_j)

    def begin_scope(self, label: str | None = None) -> "EnergyLedger":
        """Attach and return a child ledger mirroring entries from now on.

        The child starts from zero and receives every subsequent entry
        (adds and merges) until :meth:`end_scope`, giving exact per-scope
        totals.  Scopes nest; each is independent.
        """
        child = EnergyLedger(label=label if label is not None else self.label)
        self._scopes.append(child)
        return child

    def end_scope(self, child: "EnergyLedger") -> "EnergyLedger":
        """Detach a scope opened with :meth:`begin_scope`; returns it."""
        try:
            self._scopes.remove(child)
        except ValueError:
            raise ValueError("ledger scope is not active") from None
        return child

    @property
    def operations(self) -> list[str]:
        return sorted(self._counts)

    def count(self, operation: str) -> int:
        return self._counts.get(operation, 0)

    def energy(self, operation: str) -> float:
        return self._energies.get(operation, 0.0)

    def total_count(self) -> int:
        return sum(self._counts.values())

    def total_energy_j(self) -> float:
        return sum(self._energies.values())

    def merge(self, other: "EnergyLedger") -> "EnergyLedger":
        """Fold another ledger's entries into this one (returns self)."""
        for operation in other.operations:
            self._apply(operation, other.count(operation), other.energy(operation))
        return self

    def scaled(self, factor: float) -> "EnergyLedger":
        """A copy with all counts/energies multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        result = EnergyLedger(label=self.label)
        for operation in self.operations:
            result._counts[operation] = int(round(self.count(operation) * factor))
            result._energies[operation] = self.energy(operation) * factor
        return result

    def snapshot(self) -> "LedgerSnapshot":
        """An immutable point-in-time mark for :meth:`since` scoping."""
        return LedgerSnapshot(
            counts=dict(self._counts), energies=dict(self._energies)
        )

    def since(self, mark: "LedgerSnapshot") -> "EnergyLedger":
        """A new ledger holding only the work recorded after ``mark``.

        Differences are clamped at zero, so a ``reset()`` inside the
        scoped region degrades to "whatever accumulated since the reset"
        instead of going negative.
        """
        result = EnergyLedger(label=self.label)
        for operation, count in self._counts.items():
            delta_count = count - mark.counts.get(operation, 0)
            delta_energy = self._energies.get(operation, 0.0) - mark.energies.get(
                operation, 0.0
            )
            if delta_count <= 0 and delta_energy <= 0.0:
                continue
            result._counts[operation] = max(0, delta_count)
            result._energies[operation] = max(0.0, delta_energy)
        return result

    def reset(self) -> None:
        self._counts.clear()
        self._energies.clear()

    def table(self) -> str:
        """A fixed-width text table of the ledger contents."""
        lines = [f"{self.label}", f"{'operation':<32}{'count':>12}{'energy':>14}"]
        for operation in self.operations:
            lines.append(
                f"{operation:<32}{self.count(operation):>12}"
                f"{format_energy(self.energy(operation)):>14}"
            )
        lines.append(
            f"{'TOTAL':<32}{self.total_count():>12}"
            f"{format_energy(self.total_energy_j()):>14}"
        )
        return "\n".join(lines)


def format_energy(energy_j: float) -> str:
    """Human-readable energy string (fJ / pJ / nJ / uJ / mJ / J)."""
    magnitude = abs(energy_j)
    for scale, unit in ((1e-15, "fJ"), (1e-12, "pJ"), (1e-9, "nJ"), (1e-6, "uJ"), (1e-3, "mJ")):
        if magnitude < scale * 1e3:
            return f"{energy_j / scale:.2f} {unit}"
    return f"{energy_j:.3f} J"
