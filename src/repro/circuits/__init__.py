"""Analog device and circuit behavioural models.

This subpackage is the SPICE-free stand-in for the paper's 45 nm / 16 nm
circuit simulations: an EKV-style MOSFET, floating-gate threshold
programming, the six-transistor likelihood inverter whose switching current
is Gaussian-like in each gate voltage, inverter arrays with Kirchhoff
current summation, data converters, noise and process-variability models,
and an energy ledger with per-op energy tables.
"""

from repro.circuits.technology import (
    NODE_16NM,
    NODE_45NM,
    TechnologyNode,
)
from repro.circuits.mosfet import MOSFET, ekv_current
from repro.circuits.floating_gate import FloatingGate
from repro.circuits.inverter import (
    LikelihoodInverter,
    SwitchingCurrentCell,
    gaussian_equivalent_sigma,
)
from repro.circuits.inverter_array import (
    InverterColumn,
    InverterArray,
    VoltageEncoder,
)
from repro.circuits.adc import LinearADC, LogarithmicADC
from repro.circuits.dac import DAC
from repro.circuits.noise import NoiseModel
from repro.circuits.variability import MismatchSampler
from repro.circuits.energy import EnergyLedger, LedgerSnapshot

__all__ = [
    "TechnologyNode",
    "NODE_45NM",
    "NODE_16NM",
    "MOSFET",
    "ekv_current",
    "FloatingGate",
    "SwitchingCurrentCell",
    "LikelihoodInverter",
    "gaussian_equivalent_sigma",
    "InverterColumn",
    "InverterArray",
    "VoltageEncoder",
    "LogarithmicADC",
    "LinearADC",
    "DAC",
    "NoiseModel",
    "MismatchSampler",
    "EnergyLedger",
    "LedgerSnapshot",
]
