"""E11 (extension) -- Sec. IV future work: Monte-Carlo-free uncertainty.

The paper's conclusion proposes conformal inference as the edge-friendly
alternative to MC-Dropout.  This experiment wraps the *deterministic* VO
network with split-conformal intervals (one forward pass instead of 30)
and compares calibration quality and compute cost against MC-Dropout,
including an adaptive-conformal run under distribution shift (occluders).
"""

from __future__ import annotations

import numpy as np

from repro.bayesian.conformal import (
    AdaptiveConformalInference,
    SplitConformalRegressor,
)
from repro.bayesian.mc_dropout import MCDropoutPredictor
from repro.experiments.common import build_vo_world
from repro.vo.features import occlude_depth, pose_to_target


def conformal_vo_experiment(
    seed: int = 1,
    alpha: float = 0.1,
    n_mc_iterations: int = 30,
    epochs: int = 200,
) -> dict:
    """Compare conformal and MC-Dropout uncertainty on the VO task.

    Returns:
        Dict with coverage/width/compute rows for both methods, plus the
        adaptive-conformal trace under occlusion shift.
    """
    world = build_vo_world(seed=seed, epochs=epochs)
    model = world.model

    def deterministic_predict(x: np.ndarray) -> np.ndarray:
        model.eval()
        return model.forward(np.atleast_2d(x))

    # Split-conformal protocol: calibration and test must be exchangeable,
    # so both come from the held-out scene (odd/even frame pairs).  The
    # *training* scenes feed the adaptive-shift study below instead --
    # calibrating there and testing on a new scene breaks exchangeability,
    # which is exactly the regime adaptive conformal exists for.
    x_val, y_val = world.val.features, world.val.targets
    x_cal, y_cal = x_val[0::2], y_val[0::2]
    x_test, y_test = x_val[1::2], y_val[1::2]

    conformal = SplitConformalRegressor(deterministic_predict, alpha=alpha)
    conformal.calibrate(x_cal, y_cal)
    conformal_coverage = conformal.coverage(x_test, y_test)
    conformal_width = conformal.mean_interval_width(x_test)

    predictor = MCDropoutPredictor(
        model, n_iterations=n_mc_iterations, rng=np.random.default_rng(seed)
    )
    mc = predictor.predict(x_test)
    mc_stds = np.sqrt(mc.variance)
    mc_coverage = float(
        np.mean(
            (y_test >= mc.mean - 2.0 * mc_stds) & (y_test <= mc.mean + 2.0 * mc_stds)
        )
    )
    mc_width = float((4.0 * mc_stds).mean())

    # Adaptive conformal under shift: stream of occluded frames.
    pairs = world.dataset.frame_pairs(world.val_scene_index)
    occ_rng = np.random.default_rng(seed + 9)
    stream_x, stream_y = [], []
    for level in (0.0, 0.3, 0.5):
        for previous, current, relative in pairs:
            depth_prev = occlude_depth(previous.depth, level, occ_rng)
            depth_cur = occlude_depth(current.depth, level, occ_rng)
            stream_x.append(
                world.train.encoder.encode_pair(depth_prev, depth_cur)
            )
            stream_y.append(pose_to_target(relative))
    stream_x = world.train.feature_scaler.transform(np.stack(stream_x))
    stream_y = world.train.scaler.transform(np.stack(stream_y))

    static = SplitConformalRegressor(deterministic_predict, alpha=alpha)
    static.calibrate(x_cal, y_cal)
    static_coverage = static.coverage(stream_x, stream_y)

    adaptive = AdaptiveConformalInference.from_calibration(
        deterministic_predict, x_cal, y_cal, alpha=alpha, gamma=0.03
    )
    for k in range(stream_x.shape[0]):
        adaptive.step(stream_x[k], stream_y[k])
    adaptive_coverage = adaptive.realised_coverage()

    return {
        "alpha": alpha,
        "rows": [
            {
                "method": f"MC-Dropout (T={n_mc_iterations}), +-2 sigma",
                "coverage": mc_coverage,
                "mean_width": mc_width,
                "forward_passes": n_mc_iterations,
            },
            {
                "method": "split conformal",
                "coverage": conformal_coverage,
                "mean_width": conformal_width,
                "forward_passes": 1,
            },
        ],
        "shift": {
            "static_conformal_coverage": static_coverage,
            "adaptive_conformal_coverage": adaptive_coverage,
            "target_coverage": 1.0 - alpha,
        },
    }
