"""Shared experiment worlds with in-process and optional on-disk caching.

Building a room + rendering a flight, or training the VO network, takes
tens of seconds; several experiments share them, so they are memoised per
configuration key for the lifetime of the process.

A second, optional tier persists built worlds to disk (pickle files keyed
by a hash of the configuration) so *repeated CLI invocations* skip the
expensive scene render / VO training too.  Enable it either by exporting
``REPRO_WORLD_CACHE_DIR=/some/dir`` or by calling
:func:`enable_disk_cache`; :func:`clear_world_caches` and
:func:`world_cache_stats` bound and inspect both tiers.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.nn.sequential import Sequential
from repro.scene.camera import PinholeCamera, body_camera_mount
from repro.scene.dataset import SyntheticRGBDScenes
from repro.scene.render import DepthRenderer
from repro.scene.scene import Scene, make_room_scene
from repro.scene.se3 import Pose
from repro.scene.trajectory import drone_orbit_states, states_to_controls
from repro.filtering.measurement import state_to_pose
from repro.vo.model import build_vo_mlp
from repro.vo.trainer import VODataset, VOTrainer

_ROOM_CACHE: dict = {}
_VO_CACHE: dict = {}

_ENV_CACHE_DIR = "REPRO_WORLD_CACHE_DIR"
_ENV_FALLBACK = object()  # sentinel: no programmatic override, consult env
_disk_cache_override: object = _ENV_FALLBACK
_STATS = {"disk_hits": 0, "disk_misses": 0, "disk_writes": 0}


def enable_disk_cache(directory: str | os.PathLike | None) -> Path | None:
    """Point the on-disk world cache at ``directory`` (None disables it).

    Takes precedence over the ``REPRO_WORLD_CACHE_DIR`` environment
    variable -- including ``None``, which disables the disk tier even when
    the variable is set.  Returns the resolved path (created on first
    write), or None when disabled.
    """
    global _disk_cache_override
    _disk_cache_override = None if directory is None else Path(directory)
    return _disk_cache_override


def _disk_cache_dir() -> Path | None:
    if _disk_cache_override is not _ENV_FALLBACK:
        return _disk_cache_override
    env = os.environ.get(_ENV_CACHE_DIR)
    return Path(env) if env else None


def _cache_path(kind: str, key: tuple) -> Path | None:
    directory = _disk_cache_dir()
    if directory is None:
        return None
    digest = hashlib.sha256(repr((kind, key)).encode()).hexdigest()[:16]
    return directory / f"{kind}-{digest}.pkl"


def _disk_load(kind: str, key: tuple):
    """Best-effort pickle load; any failure counts as a miss."""
    path = _cache_path(kind, key)
    if path is None:
        return None
    try:
        with open(path, "rb") as handle:
            world = pickle.load(handle)
        _STATS["disk_hits"] += 1
        return world
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        _STATS["disk_misses"] += 1
        return None


def _disk_store(kind: str, key: tuple, world) -> None:
    """Best-effort pickle store; failures never break world building."""
    path = _cache_path(kind, key)
    if path is None:
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(world, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        _STATS["disk_writes"] += 1
    except (OSError, pickle.PickleError):
        pass


def clear_world_caches(disk: bool = False) -> dict:
    """Drop cached worlds so long-lived processes can bound memory.

    Args:
        disk: also delete the on-disk cache files (when a cache dir is
            configured).

    Returns:
        Counts of evicted entries: ``{"room": n, "vo": n, "disk_files": m}``.
    """
    evicted = {"room": len(_ROOM_CACHE), "vo": len(_VO_CACHE), "disk_files": 0}
    _ROOM_CACHE.clear()
    _VO_CACHE.clear()
    if disk:
        directory = _disk_cache_dir()
        if directory is not None and directory.exists():
            for path in directory.glob("*.pkl"):
                try:
                    path.unlink()
                    evicted["disk_files"] += 1
                except OSError:
                    pass
    return evicted


def world_cache_stats() -> dict:
    """Cache occupancy and disk-tier statistics (for tests / monitoring)."""
    directory = _disk_cache_dir()
    disk_files = []
    if directory is not None and directory.exists():
        disk_files = list(directory.glob("*.pkl"))
    return {
        "room_entries": len(_ROOM_CACHE),
        "vo_entries": len(_VO_CACHE),
        "disk_dir": None if directory is None else str(directory),
        "disk_files": len(disk_files),
        "disk_bytes": sum(path.stat().st_size for path in disk_files),
        **_STATS,
    }


@dataclass
class RoomWorld:
    """A room scene with a rendered drone flight.

    Attributes:
        scene: the procedural room.
        cloud: (N, 3) mapping point cloud.
        camera: depth-camera intrinsics.
        mount: camera-to-body transform.
        states: (T, 4) ground-truth drone states.
        controls: (T, 4) odometry controls aligned with frames.
        depths: T rendered depth frames.
    """

    scene: Scene
    cloud: np.ndarray
    camera: PinholeCamera
    mount: Pose
    states: np.ndarray
    controls: np.ndarray
    depths: list[np.ndarray]


def build_room_world(
    seed: int = 7,
    n_steps: int = 25,
    n_cloud_points: int = 3000,
    image: tuple[int, int] = (40, 30),
) -> RoomWorld:
    """Room + flight + rendered frames (cached per argument set)."""
    key = (seed, n_steps, n_cloud_points, tuple(image))
    if key in _ROOM_CACHE:
        return _ROOM_CACHE[key]
    cached = _disk_load("room", key)
    if cached is not None:
        _ROOM_CACHE[key] = cached
        return cached
    rng = np.random.default_rng(seed)
    scene = make_room_scene(rng)
    cloud = scene.sample_point_cloud(n_cloud_points, rng, noise_std=0.01)
    camera = PinholeCamera.from_fov(image[0], image[1], fov_x_deg=70.0)
    mount = body_camera_mount(np.deg2rad(25.0))
    states = drone_orbit_states(
        center=np.zeros(3), radius=1.3, height=1.2, n_steps=n_steps
    )
    controls = np.vstack([np.zeros(4), states_to_controls(states)])
    renderer = DepthRenderer(scene, camera)
    depths = [renderer.render(state_to_pose(s, mount)) for s in states]
    world = RoomWorld(
        scene=scene,
        cloud=cloud,
        camera=camera,
        mount=mount,
        states=states,
        controls=controls,
        depths=depths,
    )
    _ROOM_CACHE[key] = world
    _disk_store("room", key, world)
    return world


@dataclass
class VOWorld:
    """A trained VO model with its datasets.

    Attributes:
        dataset: the synthetic RGB-D dataset.
        train: training split (scenes 0..n-2).
        val: held-out split (last scene).
        model: the trained MC-Dropout MLP.
        val_scene_index: index of the held-out scene.
    """

    dataset: SyntheticRGBDScenes
    train: VODataset
    val: VODataset
    model: Sequential
    val_scene_index: int


def build_vo_world(
    seed: int = 1,
    n_scenes: int = 6,
    frames_per_scene: int = 40,
    hidden: tuple[int, ...] = (128, 64),
    dropout_p: float = 0.5,
    epochs: int = 200,
) -> VOWorld:
    """Synthetic dataset + trained VO network (cached per argument set)."""
    key = (seed, n_scenes, frames_per_scene, tuple(hidden), dropout_p, epochs)
    if key in _VO_CACHE:
        return _VO_CACHE[key]
    cached = _disk_load("vo", key)
    if cached is not None:
        _VO_CACHE[key] = cached
        return cached
    dataset = SyntheticRGBDScenes(
        n_scenes=n_scenes,
        frames_per_scene=frames_per_scene,
        seed=seed,
        depth_noise_std=0.015,
    )
    train_scenes = list(range(n_scenes - 1))
    val_scene = n_scenes - 1
    train = VODataset.from_scenes(dataset, train_scenes)
    val = VODataset.from_scenes(
        dataset,
        [val_scene],
        encoder=train.encoder,
        scaler=train.scaler,
        feature_scaler=train.feature_scaler,
    )
    rng = np.random.default_rng(seed)
    model = build_vo_mlp(
        train.features.shape[1], rng, hidden=hidden, dropout_p=dropout_p
    )
    VOTrainer(model, lr=1.0e-3).fit(train, epochs=epochs, rng=rng)
    world = VOWorld(
        dataset=dataset,
        train=train,
        val=val,
        model=model,
        val_scene_index=val_scene,
    )
    _VO_CACHE[key] = world
    _disk_store("vo", key, world)
    return world
