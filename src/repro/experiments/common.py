"""Shared experiment worlds with in-process caching.

Building a room + rendering a flight, or training the VO network, takes
tens of seconds; several experiments share them, so they are memoised per
configuration key for the lifetime of the process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.sequential import Sequential
from repro.scene.camera import PinholeCamera, body_camera_mount
from repro.scene.dataset import SyntheticRGBDScenes
from repro.scene.render import DepthRenderer
from repro.scene.scene import Scene, make_room_scene
from repro.scene.se3 import Pose
from repro.scene.trajectory import drone_orbit_states, states_to_controls
from repro.filtering.measurement import state_to_pose
from repro.vo.model import build_vo_mlp
from repro.vo.trainer import VODataset, VOTrainer

_ROOM_CACHE: dict = {}
_VO_CACHE: dict = {}


@dataclass
class RoomWorld:
    """A room scene with a rendered drone flight.

    Attributes:
        scene: the procedural room.
        cloud: (N, 3) mapping point cloud.
        camera: depth-camera intrinsics.
        mount: camera-to-body transform.
        states: (T, 4) ground-truth drone states.
        controls: (T, 4) odometry controls aligned with frames.
        depths: T rendered depth frames.
    """

    scene: Scene
    cloud: np.ndarray
    camera: PinholeCamera
    mount: Pose
    states: np.ndarray
    controls: np.ndarray
    depths: list[np.ndarray]


def build_room_world(
    seed: int = 7,
    n_steps: int = 25,
    n_cloud_points: int = 3000,
    image: tuple[int, int] = (40, 30),
) -> RoomWorld:
    """Room + flight + rendered frames (cached per argument set)."""
    key = (seed, n_steps, n_cloud_points, image)
    if key in _ROOM_CACHE:
        return _ROOM_CACHE[key]
    rng = np.random.default_rng(seed)
    scene = make_room_scene(rng)
    cloud = scene.sample_point_cloud(n_cloud_points, rng, noise_std=0.01)
    camera = PinholeCamera.from_fov(image[0], image[1], fov_x_deg=70.0)
    mount = body_camera_mount(np.deg2rad(25.0))
    states = drone_orbit_states(
        center=np.zeros(3), radius=1.3, height=1.2, n_steps=n_steps
    )
    controls = np.vstack([np.zeros(4), states_to_controls(states)])
    renderer = DepthRenderer(scene, camera)
    depths = [renderer.render(state_to_pose(s, mount)) for s in states]
    world = RoomWorld(
        scene=scene,
        cloud=cloud,
        camera=camera,
        mount=mount,
        states=states,
        controls=controls,
        depths=depths,
    )
    _ROOM_CACHE[key] = world
    return world


@dataclass
class VOWorld:
    """A trained VO model with its datasets.

    Attributes:
        dataset: the synthetic RGB-D dataset.
        train: training split (scenes 0..n-2).
        val: held-out split (last scene).
        model: the trained MC-Dropout MLP.
        val_scene_index: index of the held-out scene.
    """

    dataset: SyntheticRGBDScenes
    train: VODataset
    val: VODataset
    model: Sequential
    val_scene_index: int


def build_vo_world(
    seed: int = 1,
    n_scenes: int = 6,
    frames_per_scene: int = 40,
    hidden: tuple[int, ...] = (128, 64),
    dropout_p: float = 0.5,
    epochs: int = 200,
) -> VOWorld:
    """Synthetic dataset + trained VO network (cached per argument set)."""
    key = (seed, n_scenes, frames_per_scene, hidden, dropout_p, epochs)
    if key in _VO_CACHE:
        return _VO_CACHE[key]
    dataset = SyntheticRGBDScenes(
        n_scenes=n_scenes,
        frames_per_scene=frames_per_scene,
        seed=seed,
        depth_noise_std=0.015,
    )
    train_scenes = list(range(n_scenes - 1))
    val_scene = n_scenes - 1
    train = VODataset.from_scenes(dataset, train_scenes)
    val = VODataset.from_scenes(
        dataset,
        [val_scene],
        encoder=train.encoder,
        scaler=train.scaler,
        feature_scaler=train.feature_scaler,
    )
    rng = np.random.default_rng(seed)
    model = build_vo_mlp(
        train.features.shape[1], rng, hidden=hidden, dropout_p=dropout_p
    )
    VOTrainer(model, lr=1.0e-3).fit(train, epochs=epochs, rng=rng)
    world = VOWorld(
        dataset=dataset,
        train=train,
        val=val,
        model=model,
        val_scene_index=val_scene,
    )
    _VO_CACHE[key] = world
    return world
