"""E5 -- Fig. 3(b): SRAM-immersed RNG statistics.

Shows the two effects the paper exploits -- summation filters V_T mismatch
while amplifying temporal noise -- plus the calibration that removes the
residual bias, across a sweep of column counts and many hardware
instances.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.technology import NODE_16NM, TechnologyNode
from repro.sram.rng import CrossCoupledInverterRNG


def rng_statistics(
    column_sweep: tuple[int, ...] = (2, 4, 8, 16, 32),
    n_instances: int = 12,
    bits_per_instance: int = 4096,
    node: TechnologyNode = NODE_16NM,
    seed: int = 0,
) -> dict:
    """Bias and noise statistics across hardware instances.

    Returns:
        Dict with, per column count: mean |P(1) - 0.5| before and after
        calibration, the mismatch-to-noise voltage ratio, and lag-1
        autocorrelation after calibration.
    """
    rows = []
    for n_columns in column_sweep:
        bias_before, bias_after, ratios, autocorrs = [], [], [], []
        for instance in range(n_instances):
            cell = CrossCoupledInverterRNG(
                node,
                n_columns_per_side=n_columns,
                rng=np.random.default_rng(seed + 1000 * instance + n_columns),
            )
            run_rng = np.random.default_rng(seed + 500 + instance)
            decomposition = cell.bias_decomposition()
            ratios.append(
                abs(decomposition["mismatch_volts"])
                / decomposition["noise_sigma_volts"]
            )
            calibration = cell.calibrate(run_rng, window=bits_per_instance)
            bias_before.append(abs(calibration.ones_rate_before - 0.5))
            bias_after.append(abs(calibration.ones_rate_after - 0.5))
            bits = cell.generate(bits_per_instance, run_rng).astype(float)
            if bits.std() > 0:
                autocorrs.append(
                    float(np.corrcoef(bits[:-1], bits[1:])[0, 1])
                )
        rows.append(
            {
                "columns_per_side": n_columns,
                "bias_before": float(np.mean(bias_before)),
                "bias_after": float(np.mean(bias_after)),
                "mismatch_to_noise": float(np.mean(ratios)),
                "abs_autocorr_lag1": float(np.mean(np.abs(autocorrs)))
                if autocorrs
                else float("nan"),
            }
        )
    return {"rows": rows}
