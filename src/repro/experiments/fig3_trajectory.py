"""E6 -- Fig. 3(c-e): MC-Dropout VO trajectories vs deterministic configs.

Integrates predicted frame-to-frame increments over the held-out scene and
compares trajectories in the X-Y / Y-Z / X-Z planes against ground truth,
across inference conditions: deterministic float, deterministic quantised,
and CIM MC-Dropout at 4- and 6-bit weights.
"""

from __future__ import annotations

import numpy as np

from repro.bayesian.mc_dropout import MCDropoutPredictor
from repro.core.cim_mc_dropout import CIMMCDropoutEngine
from repro.experiments.common import build_vo_world
from repro.nn.quantization import quantize_model_weights
from repro.sram.macro import MacroConfig
from repro.vo.evaluation import trajectory_report
from repro.vo.odometry import increments_from_predictions, integrate_increments


def _copy_model(world):
    """Clone the trained model (for destructive weight quantisation)."""
    import copy

    return copy.deepcopy(world.model)


def vo_trajectory_experiment(
    seed: int = 1,
    n_iterations: int = 30,
    modes: tuple[str, ...] = (
        "deterministic-float",
        "deterministic-4bit",
        "mc-cim-4bit",
        "mc-cim-6bit",
    ),
    epochs: int = 200,
    n_scenes: int = 6,
    frames_per_scene: int = 40,
    hidden: tuple[int, ...] = (128, 64),
) -> dict:
    """Regenerate the Fig. 3(c-e) trajectory comparison.

    Returns:
        Dict with "ground_truth" positions (T, 3), per-mode estimated
        positions, per-mode trajectory metrics, and per-mode per-step
        uncertainty (MC modes only).
    """
    world = build_vo_world(
        seed=seed,
        n_scenes=n_scenes,
        frames_per_scene=frames_per_scene,
        hidden=hidden,
        epochs=epochs,
    )
    val = world.val
    frames = world.dataset.frames(world.val_scene_index)
    gt_poses = [frame.pose for frame in frames]
    start = gt_poses[0]

    results: dict = {
        "ground_truth": np.stack([p.translation for p in gt_poses], axis=0),
        "modes": {},
    }
    for mode in modes:
        uncertainty = None
        if mode == "deterministic-float":
            predictor = MCDropoutPredictor(world.model, n_iterations=1)
            predictions = predictor.deterministic(val.features)
        elif mode.startswith("deterministic-"):
            bits = int(mode.split("-")[1].replace("bit", ""))
            model = _copy_model(world)
            quantize_model_weights(model, bits)
            predictor = MCDropoutPredictor(model, n_iterations=1)
            predictions = predictor.deterministic(val.features)
        elif mode.startswith("mc-cim-"):
            bits = int(mode.split("-")[2].replace("bit", ""))
            engine = CIMMCDropoutEngine(
                world.model,
                MacroConfig(weight_bits=bits),
                n_iterations=n_iterations,
                calibration_inputs=world.train.features[:128],
                rng=np.random.default_rng(seed + 77),
            )
            mc = engine.predict(val.features)
            predictions = mc.mean
            uncertainty = mc.variance.mean(axis=1)
        elif mode == "mc-software":
            predictor = MCDropoutPredictor(
                world.model, n_iterations=n_iterations,
                rng=np.random.default_rng(seed + 78),
            )
            mc = predictor.predict(val.features)
            predictions = mc.mean
            uncertainty = mc.variance.mean(axis=1)
        else:
            raise ValueError(f"unknown mode {mode!r}")
        increments = increments_from_predictions(predictions, val.scaler)
        estimated = integrate_increments(start, increments)
        results["modes"][mode] = {
            "positions": np.stack([p.translation for p in estimated], axis=0),
            "report": trajectory_report(estimated, gt_poses),
            "uncertainty": uncertainty,
        }
    return results
