"""E10 -- Sec. II-C: HMGM map fit quality vs the conventional GMM."""

from __future__ import annotations

import numpy as np

from repro.circuits.inverter_array import VoltageEncoder
from repro.circuits.technology import NODE_45NM, TechnologyNode
from repro.core.codesign import hardware_sigma_menu
from repro.core.tiling import tiled_sigma_menu
from repro.experiments.common import build_room_world
from repro.maps.gmm import GaussianMixture
from repro.maps.hmgm import HMGMixture


def map_fidelity(
    n_components: int = 64,
    node: TechnologyNode = NODE_45NM,
    tiles: tuple[int, int, int] = (2, 2, 2),
    seed: int = 7,
) -> dict:
    """Held-out log-likelihood and field correlation of the map models.

    Compares: free GMM, width-quantised HMGM (single-array menu), and
    width-quantised HMGM under the tiled menu, on train/held-out split of
    the mapping cloud.

    Returns:
        Dict of per-model mean held-out log-likelihood plus the log-field
        correlation between each HMGM and the GMM (what the particle filter
        actually consumes).
    """
    world = build_room_world(seed=seed)
    rng = np.random.default_rng(seed)
    cloud = world.cloud
    split = rng.permutation(cloud.shape[0])
    train = cloud[split[: int(0.8 * cloud.shape[0])]]
    held = cloud[split[int(0.8 * cloud.shape[0]) :]]

    lo, hi = cloud.min(axis=0) - 0.2, cloud.max(axis=0) + 0.2
    encoder = VoltageEncoder(lo=lo, hi=hi, vdd=node.vdd, margin=0.08)
    menu_single = hardware_sigma_menu(node, encoder)
    menu_tiled = tiled_sigma_menu(node, lo, hi, tiles)

    gmm = GaussianMixture.fit(train, n_components, rng, min_sigma=0.08)
    hmgm_single = HMGMixture.fit(train, n_components, rng, sigma_menu=menu_single)
    hmgm_tiled = HMGMixture.fit(train, n_components, rng, sigma_menu=menu_tiled)

    probe = rng.uniform(lo, hi, size=(1500, 3))
    gmm_log = gmm.logpdf(probe)
    return {
        "held_out_loglik": {
            "gmm": gmm.mean_loglik(held),
            "hmgm_single": hmgm_single.mean_loglik(held),
            "hmgm_tiled": hmgm_tiled.mean_loglik(held),
        },
        "field_correlation_vs_gmm": {
            "hmgm_single": float(
                np.corrcoef(gmm_log, hmgm_single.logpdf(probe))[0, 1]
            ),
            "hmgm_tiled": float(
                np.corrcoef(gmm_log, hmgm_tiled.logpdf(probe))[0, 1]
            ),
        },
        "min_width_m": {
            "single": float(menu_single.min()),
            "tiled": float(menu_tiled.min()),
        },
    }
