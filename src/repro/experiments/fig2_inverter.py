"""E1/E2 -- Fig. 2(b-d): inverter switching-current transfer functions."""

from __future__ import annotations

import numpy as np

from repro.circuits.inverter import (
    LikelihoodInverter,
    SwitchingCurrentCell,
    gaussian_equivalent_sigma,
    width_code_sigmas,
)
from repro.circuits.technology import NODE_45NM, TechnologyNode
from repro.maps.hmg import tail_rectilinearity


def inverter_transfer_data(
    node: TechnologyNode = NODE_45NM,
    n_grid: int = 201,
    centers: tuple[float, ...] = (0.35, 0.5, 0.65),
) -> dict:
    """Regenerate the Fig. 2(b-d) data.

    Returns:
        Dict with:
        - "sweep_v": voltage grid;
        - "sweeps": per-center 1D current bells (Fig. 2b);
        - "peak_shift_error": worst |achieved - requested| peak position;
        - "grid_2d": 2D current map of a two-input stack (Fig. 2c/d);
        - "rectilinearity": (hmg_ratio, gaussian_ratio) contour box-ness
          (the quantitative "rectilinear vs elliptical tails" of Fig. 2c);
        - "width_menu_v": effective sigma per width code.
    """
    v = np.linspace(0.0, node.vdd, n_grid)
    sweeps = {}
    peak_errors = []
    for center in centers:
        cell = SwitchingCurrentCell(node, v_center=center, width_code=1)
        current = cell.current(v)
        sweeps[center] = current
        peak_errors.append(abs(v[int(np.argmax(current))] - cell.achieved_center))
    inverter = LikelihoodInverter.from_centers(
        node, [node.vdd / 2.0, node.vdd / 2.0], width_codes=[1, 1]
    )
    vx, vy = np.meshgrid(v, v, indexing="ij")
    points = np.stack([vx.reshape(-1), vy.reshape(-1)], axis=1)
    grid_2d = inverter.current(points).reshape(n_grid, n_grid)
    hmg_ratio, gauss_ratio = tail_rectilinearity(level=1e-3)
    return {
        "sweep_v": v,
        "sweeps": sweeps,
        "peak_shift_error": float(max(peak_errors)),
        "grid_2d": grid_2d,
        "rectilinearity": (hmg_ratio, gauss_ratio),
        "width_menu_v": width_code_sigmas(node),
        "sigma_code0_v": gaussian_equivalent_sigma(
            SwitchingCurrentCell(node, node.vdd / 2.0, width_code=0)
        ),
    }
