"""E7 -- Fig. 3(f): correlation between pose error and predictive variance.

Builds a mixed-difficulty test set (clean frames plus frames corrupted by
near-range occluders, the paper's "people moving through the scene"
disturbance) and scatters per-frame pose error against MC-Dropout variance.
"""

from __future__ import annotations

import numpy as np

from repro.bayesian.mc_dropout import MCDropoutPredictor
from repro.bayesian.metrics import (
    area_under_sparsification_error,
    error_uncertainty_correlation,
)
from repro.core.cim_mc_dropout import CIMMCDropoutEngine
from repro.experiments.common import build_vo_world
from repro.sram.macro import MacroConfig
from repro.vo.features import occlude_depth, pose_to_target


def error_uncertainty_experiment(
    seed: int = 1,
    n_iterations: int = 30,
    occlusion_levels: tuple[float, ...] = (0.0, 0.15, 0.3, 0.5),
    engine: str = "software",
    epochs: int = 200,
    n_scenes: int = 6,
    frames_per_scene: int = 40,
    hidden: tuple[int, ...] = (128, 64),
    predict_fn=None,
) -> dict:
    """Regenerate the Fig. 3(f) scatter and its correlation statistics.

    Args:
        engine: "software" (reference MC-Dropout) or "cim-4bit"/"cim-6bit"
            (the macro engine).
        predict_fn: optional override -- a callable mapping (N, F) features
            to a (mean, variance) pair; when given, ``engine`` is ignored
            (this is how :mod:`repro.api` substitutes substrate sessions).

    Returns:
        Dict with per-frame errors, uncertainties, severity labels, the
        correlation statistics, and the AUSE ranking metric.
    """
    world = build_vo_world(
        seed=seed,
        n_scenes=n_scenes,
        frames_per_scene=frames_per_scene,
        hidden=hidden,
        epochs=epochs,
    )
    pairs = world.dataset.frame_pairs(world.val_scene_index)
    encoder = world.train.encoder
    occ_rng = np.random.default_rng(seed + 42)

    features, targets, severity = [], [], []
    for level in occlusion_levels:
        for previous, current, relative in pairs:
            depth_prev = occlude_depth(previous.depth, level, occ_rng)
            depth_cur = occlude_depth(current.depth, level, occ_rng)
            features.append(encoder.encode_pair(depth_prev, depth_cur))
            targets.append(pose_to_target(relative))
            severity.append(level)
    features = world.train.feature_scaler.transform(np.stack(features, axis=0))
    targets = np.stack(targets, axis=0)
    severity = np.asarray(severity)

    if predict_fn is not None:
        mean, variance = predict_fn(features)
    elif engine == "software":
        predictor = MCDropoutPredictor(
            world.model, n_iterations=n_iterations, rng=np.random.default_rng(seed)
        )
        mc = predictor.predict(features)
        mean, variance = mc.mean, mc.variance
    elif engine.startswith("cim-"):
        bits = int(engine.split("-")[1].replace("bit", ""))
        cim = CIMMCDropoutEngine(
            world.model,
            MacroConfig(weight_bits=bits),
            n_iterations=n_iterations,
            calibration_inputs=world.train.features[:128],
            rng=np.random.default_rng(seed),
        )
        result = cim.predict(features)
        mean, variance = result.mean, result.variance
    else:
        raise ValueError(f"unknown engine {engine!r}")

    predicted = world.train.scaler.inverse(mean)
    errors = np.linalg.norm(predicted[:, :3] - targets[:, :3], axis=1)
    uncertainties = variance.mean(axis=1)
    correlation = error_uncertainty_correlation(errors, uncertainties)
    return {
        "errors": errors,
        "uncertainties": uncertainties,
        "severity": severity,
        "correlation": correlation,
        "ause": area_under_sparsification_error(errors, uncertainties),
    }
