"""Experiment drivers: one per paper figure/table (see DESIGN.md index).

Each driver is a plain function returning a dict of arrays/rows so the
benchmark harness, the examples, and EXPERIMENTS.md all consume the same
code path.  Shared world/model construction (with in-process caching) lives
in :mod:`repro.experiments.common`.
"""

from repro.experiments.fig2_inverter import inverter_transfer_data
from repro.experiments.fig2_localization import localization_comparison
from repro.experiments.fig2_energy import likelihood_energy_comparison
from repro.experiments.fig3_rng import rng_statistics
from repro.experiments.fig3_trajectory import vo_trajectory_experiment
from repro.experiments.fig3_correlation import error_uncertainty_experiment
from repro.experiments.tops_per_watt import efficiency_table
from repro.experiments.reuse_ablation import reuse_ablation
from repro.experiments.map_fidelity import map_fidelity

__all__ = [
    "inverter_transfer_data",
    "localization_comparison",
    "likelihood_energy_comparison",
    "rng_statistics",
    "vo_trajectory_experiment",
    "error_uncertainty_experiment",
    "efficiency_table",
    "reuse_ablation",
    "map_fidelity",
]
