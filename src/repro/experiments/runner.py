"""Legacy experiment runner -- a thin shim over :mod:`repro.api`.

The registry now lives in :mod:`repro.api.registry` (typed configs,
substrate overrides, JSON results); prefer the structured CLI::

    python -m repro list
    python -m repro run E4 --json --seed 0

This module keeps the historical surface alive: the ``EXPERIMENTS``
mapping of ``id -> (description, zero-arg callable)``, :func:`run`, and a
minimal positional CLI.  Metrics dicts now come from the structured
registry, so a few inner schemas differ from the pre-API wrappers (e.g.
E6 nests its per-mode ATE table under ``"ate_rmse_m"``). ::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner E1 E9
    python -m repro.experiments.runner all
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from repro.api.registry import list_experiments, run_experiment


def _metrics_runner(experiment_id: str) -> Callable[[], dict]:
    def _run() -> dict:
        return run_experiment(experiment_id).metrics

    return _run


# The historical surface is the paper's numbered experiments; later
# registry additions (e.g. the scenario library's SCN runner) stay off
# this legacy mapping.
EXPERIMENTS: dict[str, tuple[str, Callable[[], dict]]] = {
    spec.id: (spec.title, _metrics_runner(spec.id))
    for spec in list_experiments()
    if spec.id.startswith("E") and spec.id[1:].isdigit()
}


def run(experiment_id: str) -> dict:
    """Run one experiment by id (e.g. "E4"); returns its metrics dict."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; options: {sorted(EXPERIMENTS)}"
        )
    _, fn = EXPERIMENTS[key]
    return fn()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids (or 'all')")
    parser.add_argument("--list", action="store_true", help="list experiments")
    args = parser.parse_args(argv)
    if args.list or not args.ids:
        for key, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"  {key:4} {description}")
        return 0
    ids = sorted(EXPERIMENTS) if args.ids == ["all"] else args.ids
    for experiment_id in ids:
        key = experiment_id.upper()
        if key not in EXPERIMENTS:
            print(
                f"error: unknown experiment {experiment_id!r}; "
                f"options: {sorted(EXPERIMENTS)}",
                file=sys.stderr,
            )
            return 2
        description, _ = EXPERIMENTS[key]
        print(f"\n### {key} -- {description}")
        result = run(key)
        for name, value in result.items():
            print(f"  {name}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
