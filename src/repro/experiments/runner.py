"""Experiment registry and command-line runner.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner E1 E9
    python -m repro.experiments.runner all
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from repro.experiments.fig2_inverter import inverter_transfer_data
from repro.experiments.fig2_localization import localization_comparison, summarize
from repro.experiments.fig2_energy import likelihood_energy_comparison
from repro.experiments.fig3_rng import rng_statistics
from repro.experiments.fig3_trajectory import vo_trajectory_experiment
from repro.experiments.fig3_correlation import error_uncertainty_experiment
from repro.experiments.tops_per_watt import efficiency_table
from repro.experiments.reuse_ablation import reuse_ablation
from repro.experiments.map_fidelity import map_fidelity
from repro.experiments.conformal_vo import conformal_vo_experiment


def _run_e1() -> dict:
    data = inverter_transfer_data()
    return {
        "peak_shift_error_v": data["peak_shift_error"],
        "rectilinearity": data["rectilinearity"],
    }


def _run_e3() -> dict:
    return {"rows": summarize(localization_comparison())}


def _run_e6() -> dict:
    data = vo_trajectory_experiment()
    return {
        mode: result["report"]["ate_rmse_m"]
        for mode, result in data["modes"].items()
    }


def _run_e7() -> dict:
    data = error_uncertainty_experiment()
    return {"correlation": data["correlation"], "ause": data["ause"]}


EXPERIMENTS: dict[str, tuple[str, Callable[[], dict]]] = {
    "E1": ("Fig 2b-d: inverter transfer functions", _run_e1),
    "E3": ("Fig 2e-h: localization comparison", _run_e3),
    "E4": ("Fig 2i: likelihood energy", likelihood_energy_comparison),
    "E5": ("Fig 3b: SRAM RNG statistics", rng_statistics),
    "E6": ("Fig 3c-e: VO trajectories", _run_e6),
    "E7": ("Fig 3f: error-uncertainty correlation", _run_e7),
    "E8": ("Sec III-D: TOPS/W table", efficiency_table),
    "E9": ("Sec III-C: reuse ablation", reuse_ablation),
    "E10": ("Sec II-C: map fidelity", map_fidelity),
    "E11": ("Sec IV: conformal extension", conformal_vo_experiment),
}


def run(experiment_id: str) -> dict:
    """Run one experiment by id (e.g. "E4"); returns its result dict."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; options: {sorted(EXPERIMENTS)}"
        )
    _, fn = EXPERIMENTS[key]
    return fn()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids (or 'all')")
    parser.add_argument("--list", action="store_true", help="list experiments")
    args = parser.parse_args(argv)
    if args.list or not args.ids:
        for key, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"  {key:4} {description}")
        return 0
    ids = sorted(EXPERIMENTS) if args.ids == ["all"] else args.ids
    for experiment_id in ids:
        description, _ = EXPERIMENTS[experiment_id.upper()]
        print(f"\n### {experiment_id.upper()} -- {description}")
        result = run(experiment_id)
        for key, value in result.items():
            print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
