"""E8 -- Sec. III-D: macro efficiency (TOPS/W) at 4- and 6-bit precision.

The paper benchmarks 3.04 TOPS/W at 4-bit and ~2 TOPS/W at 6-bit for
30-iteration MC-Dropout at 16 nm / 1 GHz / 0.85 V.  Our macro model is
behavioural, so the absolute scale is set by the calibration constants in
:class:`~repro.sram.macro.MacroConfig`; the experiment reports both the
raw macro-level figure and a system-scaled figure (see EXPERIMENTS.md),
and the *ratios* across precision / reuse configurations are mechanistic.
"""

from __future__ import annotations

import numpy as np

from repro.core.cim_mc_dropout import CIMMCDropoutEngine
from repro.experiments.common import build_vo_world
from repro.sram.macro import MacroConfig

# One documented scale factor maps the behavioural macro energy to the
# paper's system-level operating point (controller, buffers, clocking and
# interconnect the behavioural model omits).  Calibrated once so the 4-bit
# reuse+ordering configuration lands at the paper's 3.04 TOPS/W.
SYSTEM_ENERGY_OVERHEAD_FACTOR = 1400.0


def efficiency_table(
    weight_bits: tuple[int, ...] = (4, 6),
    n_iterations: int = 30,
    batch: int = 8,
    configurations: tuple[tuple[bool, bool], ...] = (
        (True, True),
        (True, False),
        (False, False),
    ),
    seed: int = 1,
    epochs: int = 200,
) -> dict:
    """Sweep precision x (reuse, ordering) and report TOPS/W rows.

    Returns:
        Dict with "rows": one dict per configuration with executed-op
        fraction, macro TOPS/W, and system-scaled TOPS/W.
    """
    world = build_vo_world(seed=seed, epochs=epochs)
    inputs = world.val.features[:batch]
    rows = []
    for bits in weight_bits:
        for reuse, ordering in configurations:
            engine = CIMMCDropoutEngine(
                world.model,
                MacroConfig(weight_bits=bits),
                n_iterations=n_iterations,
                reuse=reuse,
                ordering=ordering,
                calibration_inputs=world.train.features[:128],
                rng=np.random.default_rng(seed + 5),
            )
            result = engine.predict(inputs)
            macro_tops = result.tops_per_watt()
            rows.append(
                {
                    "weight_bits": bits,
                    "reuse": reuse,
                    "ordering": ordering,
                    "executed_fraction": result.ops_executed / result.ops_naive,
                    "macro_tops_per_watt": macro_tops,
                    "system_tops_per_watt": macro_tops
                    / SYSTEM_ENERGY_OVERHEAD_FACTOR,
                    "energy_j": result.energy.total_energy_j(),
                }
            )
    return {
        "rows": rows,
        "paper": {"4bit_tops_per_watt": 3.04, "6bit_tops_per_watt": 2.0},
    }
