"""E3 -- Fig. 2(e-h): HMGM-CIM vs GMM-digital localization accuracy."""

from __future__ import annotations

import numpy as np

from repro.core.cim_particle_filter import (
    CIMParticleFilterLocalizer,
    LocalizationResult,
)
from repro.experiments.common import build_room_world


def localization_comparison(
    seed: int = 7,
    n_steps: int = 25,
    n_particles: int = 400,
    n_components: int = 64,
    backends: tuple[str, ...] = ("digital-float", "digital", "cim"),
    prior_offset: tuple[float, float, float, float] = (0.4, -0.3, 0.15, 0.2),
    prior_sigma: tuple[float, float, float, float] = (0.5, 0.5, 0.3, 0.3),
) -> dict[str, LocalizationResult]:
    """Run the same flight through each likelihood backend.

    Pose tracking from a biased, uncertain prior: the filter must pull the
    estimate onto the true trajectory and hold it, which is the regime the
    paper's Fig. 2(f-h) accuracy-parity claim concerns.

    Returns:
        backend name -> :class:`LocalizationResult`.
    """
    world = build_room_world(seed=seed, n_steps=n_steps)
    results: dict[str, LocalizationResult] = {}
    for backend in backends:
        localizer = CIMParticleFilterLocalizer(
            world.cloud,
            world.camera,
            camera_mount=world.mount,
            backend=backend,
            n_components=n_components,
            n_particles=n_particles,
            rng=np.random.default_rng(seed + 100),
        )
        run_rng = np.random.default_rng(seed + 200)
        start = world.states[0] + np.asarray(prior_offset)
        localizer.initialize_tracking(start, np.asarray(prior_sigma), run_rng)
        results[backend] = localizer.run(
            world.controls, world.depths, world.states, run_rng
        )
    return results


def summarize(results: dict[str, LocalizationResult]) -> list[dict]:
    """Flat table rows (one per backend) for reports."""
    return [result.summary_row() for result in results.values()]
