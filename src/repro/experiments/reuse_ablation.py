"""E9 -- Sec. III-C: compute-reuse and sample-ordering workload ablation.

Measures the executed-MAC fraction of the first-layer MC-Dropout workload
under four engines: naive (mask-oblivious), active-only (CL gating, no
reuse), reuse (delta evaluation), and reuse + optimal ordering -- the
paper's full recipe.
"""

from __future__ import annotations

import numpy as np

from repro.bayesian.masks import MaskStream
from repro.bayesian.ordering import (
    mask_hamming_path_length,
    optimal_mask_order,
)
from repro.bayesian.reuse import DeltaReuseEngine, masked_input_sequence


def reuse_ablation(
    n_inputs: int = 256,
    n_outputs: int = 128,
    n_iterations: int = 30,
    keep_probability: float = 0.5,
    n_trials: int = 5,
    seed: int = 0,
) -> dict:
    """Work accounting across the four engines.

    Returns:
        Dict with mean executed-op fractions (relative to naive) and the
        Hamming path-length reduction achieved by ordering.
    """
    rng = np.random.default_rng(seed)
    fractions = {"naive": [], "active_only": [], "reuse": [], "reuse_ordered": []}
    path_reduction = []
    for _ in range(n_trials):
        weight = rng.normal(size=(n_inputs, n_outputs))
        x = rng.normal(size=n_inputs)
        stream = MaskStream.bernoulli(n_iterations, n_inputs, keep_probability, rng)
        engine = DeltaReuseEngine(weight)

        inputs = masked_input_sequence(x, stream.masks)
        reference = inputs @ weight
        products, stats = engine.run(inputs)
        if not np.allclose(products, reference, atol=1e-9):
            raise AssertionError("reuse engine drifted from direct evaluation")
        fractions["naive"].append(1.0)
        fractions["active_only"].append(stats.ops_active_only / stats.ops_naive)
        fractions["reuse"].append(stats.ops_executed / stats.ops_naive)

        order = optimal_mask_order(stream.masks)
        ordered = stream.reordered(order)
        products_o, stats_o = engine.run(masked_input_sequence(x, ordered.masks))
        if not np.allclose(products_o, ordered.masks * x[None, :] @ weight, atol=1e-9):
            raise AssertionError("ordered reuse engine drifted")
        fractions["reuse_ordered"].append(stats_o.ops_executed / stats_o.ops_naive)
        path_reduction.append(
            1.0
            - mask_hamming_path_length(stream.masks, order)
            / max(mask_hamming_path_length(stream.masks), 1)
        )
    return {
        "executed_fraction": {k: float(np.mean(v)) for k, v in fractions.items()},
        "ordering_path_reduction": float(np.mean(path_reduction)),
        "keep_probability": keep_probability,
        "n_iterations": n_iterations,
    }
