"""E4 -- Fig. 2(i): likelihood-evaluation energy, CIM vs 8-bit digital.

Paper configuration: 500 inverter columns emulating 100 mixture
components at 45 nm; reported 374 fJ per likelihood evaluation, 25x below
an 8-bit digital GMM processor.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.noise import NoiseModel
from repro.circuits.technology import NODE_45NM, TechnologyNode
from repro.circuits.variability import MismatchSampler
from repro.circuits.inverter_array import VoltageEncoder
from repro.core.codesign import program_inverter_array, hardware_sigma_menu
from repro.experiments.common import build_room_world
from repro.filtering.measurement import DigitalGMMBackend
from repro.maps.gmm import GaussianMixture
from repro.maps.hmgm import HMGMixture


def likelihood_energy_comparison(
    n_components: int = 100,
    total_columns: int = 500,
    n_queries: int = 2000,
    adc_bits: int = 4,
    digital_bits: int = 8,
    node: TechnologyNode = NODE_45NM,
    seed: int = 7,
) -> dict:
    """Measure per-query energy of both likelihood engines.

    Returns:
        Dict with per-query energies (J), the CIM/digital ratio, and the
        component breakdown of the CIM path.
    """
    world = build_room_world(seed=seed)
    cloud = world.cloud
    rng = np.random.default_rng(seed)
    lo, hi = cloud.min(axis=0) - 0.2, cloud.max(axis=0) + 0.2
    encoder = VoltageEncoder(lo=lo, hi=hi, vdd=node.vdd, margin=0.08)
    menu = hardware_sigma_menu(node, encoder)
    mixture = HMGMixture.fit(cloud, n_components, rng, sigma_menu=menu)
    array, report = program_inverter_array(
        mixture,
        encoder,
        node,
        total_columns=total_columns,
        adc_bits=adc_bits,
        mismatch=MismatchSampler(node),
        noise=NoiseModel(node),
        rng=rng,
    )
    gmm = GaussianMixture.fit(cloud, n_components, rng, min_sigma=0.08)
    digital = DigitalGMMBackend(gmm, node, bits=digital_bits)

    queries = rng.uniform(lo, hi, size=(n_queries, 3))
    array.read_log_likelihood(queries, encoder, rng=rng)
    digital.field_log(queries)

    cim_energy = array.energy_per_query()
    digital_energy = digital.ledger.total_energy_j() / n_queries
    breakdown = {
        op: array.ledger.energy(op) / n_queries for op in array.ledger.operations
    }
    return {
        "cim_energy_per_query_j": cim_energy,
        "digital_energy_per_query_j": digital_energy,
        "ratio": digital_energy / cim_energy,
        "cim_breakdown_j": breakdown,
        "physical_columns": int(array.replication.sum()),
        "paper_cim_fj": 374.0,
        "paper_ratio": 25.0,
    }
