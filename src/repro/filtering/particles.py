"""Particle set: states, log-weights, and weighted statistics.

Drone pose states are 4-vectors ``(x, y, z, yaw)``: insect-scale platforms
stabilise roll/pitch with inertial feedback, so localization estimates
position and heading (the convention of the paper's prior work [10]).
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp

YAW_INDEX = 3


class ParticleSet:
    """A weighted set of state hypotheses.

    Attributes:
        states: (N, D) particle states.
        log_weights: (N,) unnormalised log-weights.
    """

    def __init__(self, states: np.ndarray, log_weights: np.ndarray | None = None):
        states = np.atleast_2d(np.asarray(states, dtype=float))
        self.states = states
        if log_weights is None:
            log_weights = np.full(states.shape[0], -np.log(states.shape[0]))
        self.log_weights = np.asarray(log_weights, dtype=float).reshape(-1)
        if self.log_weights.size != states.shape[0]:
            raise ValueError("states / log_weights length mismatch")

    @property
    def n_particles(self) -> int:
        return self.states.shape[0]

    @property
    def n_dims(self) -> int:
        return self.states.shape[1]

    @staticmethod
    def uniform(
        lo: np.ndarray,
        hi: np.ndarray,
        n_particles: int,
        rng: np.random.Generator,
    ) -> "ParticleSet":
        """Uniformly distributed particles in a box (global localization)."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if np.any(hi < lo):
            raise ValueError("hi must be >= lo")
        states = rng.uniform(lo, hi, size=(n_particles, lo.size))
        return ParticleSet(states)

    @staticmethod
    def gaussian(
        mean: np.ndarray,
        sigma: np.ndarray,
        n_particles: int,
        rng: np.random.Generator,
    ) -> "ParticleSet":
        """Gaussian-distributed particles (tracking with a pose prior)."""
        mean = np.asarray(mean, dtype=float)
        sigma = np.asarray(sigma, dtype=float)
        states = mean + rng.normal(size=(n_particles, mean.size)) * sigma
        return ParticleSet(states)

    def normalized_weights(self) -> np.ndarray:
        """Weights normalised to sum to 1 (never NaN: falls back to uniform)."""
        shifted = self.log_weights - self.log_weights.max()
        weights = np.exp(shifted)
        total = weights.sum()
        if not np.isfinite(total) or total <= 0:
            return np.full(self.n_particles, 1.0 / self.n_particles)
        return weights / total

    def log_evidence(self) -> float:
        """log mean weight -- the incremental measurement evidence."""
        return float(logsumexp(self.log_weights) - np.log(self.n_particles))

    def effective_sample_size(self) -> float:
        """ESS = 1 / sum(w^2) of the normalised weights."""
        weights = self.normalized_weights()
        return float(1.0 / np.sum(weights**2))

    def mean_estimate(self, yaw_index: int | None = YAW_INDEX) -> np.ndarray:
        """Weighted mean state; the yaw dimension uses a circular mean."""
        weights = self.normalized_weights()
        mean = weights @ self.states
        if yaw_index is not None and yaw_index < self.n_dims:
            yaws = self.states[:, yaw_index]
            mean[yaw_index] = np.arctan2(
                weights @ np.sin(yaws), weights @ np.cos(yaws)
            )
        return mean

    def map_estimate(self) -> np.ndarray:
        """The state of the highest-weight particle."""
        return self.states[int(np.argmax(self.log_weights))].copy()

    def weighted_covariance(self) -> np.ndarray:
        """Weighted sample covariance of the states (D, D)."""
        weights = self.normalized_weights()
        mean = weights @ self.states
        centered = self.states - mean
        return (centered * weights[:, None]).T @ centered

    def position_spread(self) -> float:
        """RMS weighted spread of the position (first 3) dimensions."""
        cov = self.weighted_covariance()
        d = min(3, self.n_dims)
        return float(np.sqrt(np.trace(cov[:d, :d])))

    def reweighted(self, delta_log_weights: np.ndarray) -> "ParticleSet":
        """A copy with log-weights incremented by per-particle deltas."""
        delta = np.asarray(delta_log_weights, dtype=float).reshape(-1)
        if delta.size != self.n_particles:
            raise ValueError("delta length mismatch")
        return ParticleSet(self.states.copy(), self.log_weights + delta)

    def resampled(self, indices: np.ndarray) -> "ParticleSet":
        """A copy holding ``states[indices]`` with uniform weights."""
        indices = np.asarray(indices, dtype=np.int64)
        return ParticleSet(self.states[indices].copy())
