"""Probabilistic motion models P(x_t | u_t, x_{t-1}).

States are ``(x, y, z, yaw)``; controls are body-frame increments
``(d_forward, d_lateral, d_up, d_yaw)``.  Noise is injected per particle so
the predicted set represents motion uncertainty (paper Eq. 1a).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.filtering.particles import YAW_INDEX, ParticleSet


def wrap_angle(angle: np.ndarray) -> np.ndarray:
    """Wrap angle(s) to (-pi, pi]."""
    return np.mod(np.asarray(angle) + np.pi, 2.0 * np.pi) - np.pi


class MotionModel(abc.ABC):
    """Base motion model."""

    @abc.abstractmethod
    def propagate(
        self, particles: ParticleSet, control: np.ndarray, rng: np.random.Generator
    ) -> ParticleSet:
        """Sample x_t ~ P(. | u_t, x_{t-1}) for every particle."""


class OdometryMotionModel(MotionModel):
    """Body-frame odometry increments with additive Gaussian noise.

    Args:
        translation_noise: 1-sigma noise per translation axis (m), applied
            on top of a noise floor proportional to the commanded motion.
        yaw_noise: 1-sigma heading noise (rad).
        proportional_noise: extra noise as a fraction of the increment
            magnitude (wheel-slip / airflow analogue).
    """

    def __init__(
        self,
        translation_noise: float = 0.02,
        yaw_noise: float = 0.01,
        proportional_noise: float = 0.1,
    ):
        if translation_noise < 0 or yaw_noise < 0 or proportional_noise < 0:
            raise ValueError("noise parameters must be non-negative")
        self.translation_noise = float(translation_noise)
        self.yaw_noise = float(yaw_noise)
        self.proportional_noise = float(proportional_noise)

    def propagate(
        self, particles: ParticleSet, control: np.ndarray, rng: np.random.Generator
    ) -> ParticleSet:
        control = np.asarray(control, dtype=float).reshape(-1)
        if control.size != 4:
            raise ValueError("control must be (d_forward, d_lateral, d_up, d_yaw)")
        states = particles.states.copy()
        n = particles.n_particles
        d_body = control[:3]
        translation_sigma = (
            self.translation_noise + self.proportional_noise * np.abs(d_body)
        )
        yaw_sigma = self.yaw_noise + self.proportional_noise * abs(control[3])
        noisy_body = d_body + rng.normal(size=(n, 3)) * translation_sigma
        noisy_dyaw = control[3] + rng.normal(size=n) * yaw_sigma
        yaw = states[:, YAW_INDEX]
        cos_y, sin_y = np.cos(yaw), np.sin(yaw)
        # Rotate the body-frame increment into the world frame per particle.
        states[:, 0] += cos_y * noisy_body[:, 0] - sin_y * noisy_body[:, 1]
        states[:, 1] += sin_y * noisy_body[:, 0] + cos_y * noisy_body[:, 1]
        states[:, 2] += noisy_body[:, 2]
        states[:, YAW_INDEX] = wrap_angle(yaw + noisy_dyaw)
        return ParticleSet(states, particles.log_weights.copy())


class RandomWalkMotionModel(MotionModel):
    """Pure diffusion (no control), for ablation and roughening.

    Args:
        translation_sigma: 1-sigma position diffusion per step (m).
        yaw_sigma: 1-sigma heading diffusion per step (rad).
    """

    def __init__(self, translation_sigma: float = 0.05, yaw_sigma: float = 0.02):
        if translation_sigma < 0 or yaw_sigma < 0:
            raise ValueError("sigmas must be non-negative")
        self.translation_sigma = float(translation_sigma)
        self.yaw_sigma = float(yaw_sigma)

    def propagate(
        self, particles: ParticleSet, control: np.ndarray, rng: np.random.Generator
    ) -> ParticleSet:
        states = particles.states.copy()
        states[:, :3] += rng.normal(size=(particles.n_particles, 3)) * self.translation_sigma
        states[:, YAW_INDEX] = wrap_angle(
            states[:, YAW_INDEX] + rng.normal(size=particles.n_particles) * self.yaw_sigma
        )
        return ParticleSet(states, particles.log_weights.copy())
