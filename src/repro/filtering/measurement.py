"""Depth-scan measurement models P(z_t | x_t) over mixture maps.

A scan of N non-zero depth pixels is backprojected into the camera frame
once; for every particle the points are moved into the world frame and the
map field is evaluated at each projected point (paper Sec. II-C).  The map
field comes from a pluggable backend:

- :class:`DigitalGMMBackend`: the conventional digital GMM processor (exact
  float or precision-limited), with op-level energy accounting.
- :class:`CIMArrayBackend`: the inverter-array likelihood engine, with DAC /
  log-ADC quantisation, analog noise, and its own energy ledger.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.circuits.energy import EnergyLedger
from repro.circuits.inverter_array import InverterArray, VoltageEncoder
from repro.circuits.technology import TechnologyNode
from repro.filtering.particles import YAW_INDEX, ParticleSet
from repro.maps.gmm import GaussianMixture
from repro.scene.se3 import Pose, rotation_z


def state_to_pose(state: np.ndarray, camera_mount: Pose | None = None) -> Pose:
    """Convert a (x, y, z, yaw) state into a camera pose.

    Args:
        state: 4-vector drone state.
        camera_mount: fixed camera-to-body transform (default identity).

    Returns:
        The camera pose in the world frame.
    """
    state = np.asarray(state, dtype=float).reshape(-1)
    body = Pose(rotation_z(float(state[YAW_INDEX])), state[:3])
    if camera_mount is None:
        return body
    return body.compose(camera_mount)


class MapFieldBackend(abc.ABC):
    """Evaluates the (unnormalised) log map field at world points."""

    @abc.abstractmethod
    def field_log(
        self, points: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """(Q,) log field values at (Q, 3) world points."""

    @property
    @abc.abstractmethod
    def ledger(self) -> EnergyLedger:
        """Energy ledger accumulated over all queries."""


class DigitalGMMBackend(MapFieldBackend):
    """Digital evaluation of a GMM map (the paper's baseline processor).

    Args:
        gmm: the map model.
        node: technology node for energy accounting.
        bits: datapath precision; ``None`` means exact float (no
            quantisation), an integer quantises the log-density output to a
            2**bits-level grid over ``dynamic_range`` (fixed-point pipeline).
        dynamic_range: log-density span represented by the fixed-point
            datapath (natural-log units).
    """

    def __init__(
        self,
        gmm: GaussianMixture,
        node: TechnologyNode,
        bits: int | None = 8,
        dynamic_range: float = 30.0,
    ):
        self.gmm = gmm
        self.node = node
        self.bits = bits
        self.dynamic_range = float(dynamic_range)
        self._ledger = EnergyLedger(label=f"digital-gmm[{gmm.n_components}comp]")
        self._log_ceiling: float | None = None

    @property
    def ledger(self) -> EnergyLedger:
        return self._ledger

    def field_log(
        self, points: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        values = self.gmm.logpdf(points)
        self._account(points.shape[0])
        if self.bits is None:
            return values
        if self._log_ceiling is None:
            # Fix the converter ceiling at the map's peak density scale.
            self._log_ceiling = float(
                self.gmm.logpdf(self.gmm.means).max()
            )
        levels = 2**self.bits - 1
        step = self.dynamic_range / levels
        clipped = np.clip(
            values, self._log_ceiling - self.dynamic_range, self._log_ceiling
        )
        return np.round((clipped - self._log_ceiling) / step) * step + self._log_ceiling

    def _account(self, n_queries: int) -> None:
        """Per query: K * (3 MAC for z^2, 1 exp LUT, 1 weight MAC, 1 acc)."""
        k = self.gmm.n_components
        bits = self.bits if self.bits is not None else 32
        self._ledger.add("mac", n_queries * 4 * k, self.node.mac_energy(bits))
        self._ledger.add("exp_lut", n_queries * k, self.node.lut_energy_j)
        self._ledger.add("accumulate", n_queries * k, self.node.add_energy(bits))
        # Fetch component parameters (7 words of `bits` each) from local SRAM.
        self._ledger.add(
            "sram_read_bit",
            n_queries * 7 * k * bits,
            self.node.sram_read_energy_per_bit_j,
        )

    def energy_per_query(self) -> float:
        queries = self._ledger.count("exp_lut") // max(self.gmm.n_components, 1)
        if queries == 0:
            return 0.0
        return self._ledger.total_energy_j() / queries


class CIMArrayBackend(MapFieldBackend):
    """Inverter-array evaluation of an HMG mixture map.

    Args:
        array: a programmed :class:`InverterArray`.
        encoder: the world-to-voltage map used when programming the array.
    """

    def __init__(self, array: InverterArray, encoder: VoltageEncoder):
        self.array = array
        self.encoder = encoder

    @property
    def ledger(self) -> EnergyLedger:
        return self.array.ledger

    def field_log(
        self, points: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        return self.array.read_log_likelihood(points, self.encoder, rng=rng)


class DepthScanMeasurementModel:
    """Likelihood of a depth scan under a map field backend.

    The per-particle log-likelihood is::

        log L(x) = (1 / T) * sum_i log( (1 - eps) * p_i(x) + eps * floor )

    where ``p_i`` is the map field at scan point i projected through the
    particle pose, ``floor`` is an auto-calibrated outlier level, and ``T``
    is a temperature controlling weight concentration (larger T = softer
    weights, compensating for the independence approximation across pixels).

    Args:
        backend: map field backend.
        camera_mount: camera-to-body transform.
        max_pixels: scan points subsampled per update.
        outlier_fraction: eps in the mixture with the floor level.
        temperature: T >= 1 softening factor.
    """

    def __init__(
        self,
        backend: MapFieldBackend,
        camera_mount: Pose | None = None,
        max_pixels: int = 48,
        outlier_fraction: float = 0.05,
        temperature: float = 4.0,
    ):
        if not 0.0 <= outlier_fraction < 1.0:
            raise ValueError("outlier_fraction must be in [0, 1)")
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        if max_pixels < 1:
            raise ValueError("max_pixels must be >= 1")
        self.backend = backend
        self.camera_mount = camera_mount or Pose.identity()
        self.max_pixels = int(max_pixels)
        self.outlier_fraction = float(outlier_fraction)
        self.temperature = float(temperature)
        self._log_floor: float | None = None

    def calibrate_floor(
        self, map_points: np.ndarray, rng: np.random.Generator | None = None
    ) -> float:
        """Set the outlier floor from field values at true surface points.

        The floor is the 5th percentile of the field on in-map points: scan
        points that project well off the map then contribute a bounded
        penalty instead of -inf.
        """
        values = self.backend.field_log(np.atleast_2d(map_points), rng=rng)
        self._log_floor = float(np.percentile(values, 5.0))
        return self._log_floor

    def subsample_scan(
        self, scan_points_cam: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Uniformly subsample scan points to ``max_pixels``."""
        scan = np.atleast_2d(np.asarray(scan_points_cam, dtype=float))
        if scan.shape[0] <= self.max_pixels:
            return scan
        idx = rng.choice(scan.shape[0], size=self.max_pixels, replace=False)
        return scan[idx]

    def log_likelihoods(
        self,
        particles: ParticleSet,
        scan_points_cam: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-particle scan log-likelihoods, shape (N,).

        Args:
            particles: particle set (states (N, 4)).
            scan_points_cam: (M, 3) valid scan points in the camera frame.
            rng: generator (scan subsampling, backend noise).
        """
        if self._log_floor is None:
            raise RuntimeError("call calibrate_floor() before log_likelihoods()")
        scan = self.subsample_scan(scan_points_cam, rng)
        mounted = self.camera_mount.transform_points(scan)
        states = particles.states
        n, m = states.shape[0], mounted.shape[0]
        yaw = states[:, YAW_INDEX]
        cos_y, sin_y = np.cos(yaw), np.sin(yaw)
        world = np.empty((n, m, 3))
        world[:, :, 0] = (
            cos_y[:, None] * mounted[None, :, 0]
            - sin_y[:, None] * mounted[None, :, 1]
            + states[:, None, 0]
        )
        world[:, :, 1] = (
            sin_y[:, None] * mounted[None, :, 0]
            + cos_y[:, None] * mounted[None, :, 1]
            + states[:, None, 1]
        )
        world[:, :, 2] = mounted[None, :, 2] + states[:, None, 2]
        field = self.backend.field_log(world.reshape(-1, 3), rng=rng).reshape(n, m)
        # Robust mixture with the floor, computed stably in the log domain.
        log_in = field + np.log1p(-self.outlier_fraction)
        log_out = self._log_floor + np.log(self.outlier_fraction + 1e-300)
        per_pixel = np.logaddexp(log_in, log_out)
        return per_pixel.sum(axis=1) / self.temperature
