"""Bayesian filtering: particle filters, motion/measurement models, EKF.

Implements the recursive Bayes update of paper Eq. (1): a prediction step
through a probabilistic motion model and a correction step weighting
hypotheses by measurement likelihood, realised with a sampling (particle)
representation.  Measurement likelihoods are pluggable: an exact digital
GMM backend, a precision-limited digital backend, or the CIM inverter-array
backend.
"""

from repro.filtering.particles import ParticleSet
from repro.filtering.motion import (
    MotionModel,
    OdometryMotionModel,
    RandomWalkMotionModel,
)
from repro.filtering.measurement import (
    CIMArrayBackend,
    DepthScanMeasurementModel,
    DigitalGMMBackend,
    MapFieldBackend,
)
from repro.filtering.resampling import (
    effective_sample_size,
    multinomial_resample,
    residual_resample,
    stratified_resample,
    systematic_resample,
)
from repro.filtering.particle_filter import ParticleFilter
from repro.filtering.kalman import ExtendedKalmanFilter

__all__ = [
    "ParticleSet",
    "MotionModel",
    "OdometryMotionModel",
    "RandomWalkMotionModel",
    "MapFieldBackend",
    "DigitalGMMBackend",
    "CIMArrayBackend",
    "DepthScanMeasurementModel",
    "effective_sample_size",
    "systematic_resample",
    "multinomial_resample",
    "stratified_resample",
    "residual_resample",
    "ParticleFilter",
    "ExtendedKalmanFilter",
]
