"""Resampling schemes for sequential importance resampling.

All functions take normalised weights and return parent indices of the new
particle set.  Systematic resampling is the default (lowest variance at
O(N) cost); multinomial / stratified / residual are provided for ablation.
"""

from __future__ import annotations

import numpy as np


def _check_weights(weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=float).reshape(-1)
    if weights.size == 0:
        raise ValueError("weights are empty")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValueError("weights must sum to a positive finite value")
    return weights / total


def effective_sample_size(weights: np.ndarray) -> float:
    """ESS = 1 / sum(w^2) for normalised weights."""
    weights = _check_weights(weights)
    return float(1.0 / np.sum(weights**2))


def multinomial_resample(
    weights: np.ndarray, rng: np.random.Generator, n_out: int | None = None
) -> np.ndarray:
    """Independent draws from the categorical weight distribution."""
    weights = _check_weights(weights)
    n_out = n_out or weights.size
    return rng.choice(weights.size, size=n_out, replace=True, p=weights)


def systematic_resample(
    weights: np.ndarray, rng: np.random.Generator, n_out: int | None = None
) -> np.ndarray:
    """One uniform offset, N evenly spaced pointers (lowest variance)."""
    weights = _check_weights(weights)
    n_out = n_out or weights.size
    positions = (rng.uniform() + np.arange(n_out)) / n_out
    return np.searchsorted(np.cumsum(weights), positions).clip(0, weights.size - 1)


def stratified_resample(
    weights: np.ndarray, rng: np.random.Generator, n_out: int | None = None
) -> np.ndarray:
    """One uniform draw per stratum of width 1/N."""
    weights = _check_weights(weights)
    n_out = n_out or weights.size
    positions = (rng.uniform(size=n_out) + np.arange(n_out)) / n_out
    return np.searchsorted(np.cumsum(weights), positions).clip(0, weights.size - 1)


def residual_resample(
    weights: np.ndarray, rng: np.random.Generator, n_out: int | None = None
) -> np.ndarray:
    """Deterministic copies of floor(N w), multinomial on the residual."""
    weights = _check_weights(weights)
    n_out = n_out or weights.size
    counts = np.floor(n_out * weights).astype(np.int64)
    deterministic = np.repeat(np.arange(weights.size), counts)
    n_rest = n_out - deterministic.size
    if n_rest > 0:
        residual = n_out * weights - counts
        total = residual.sum()
        if total <= 0:
            rest = rng.choice(weights.size, size=n_rest, replace=True)
        else:
            rest = rng.choice(weights.size, size=n_rest, replace=True, p=residual / total)
        indices = np.concatenate([deterministic, rest])
    else:
        indices = deterministic[:n_out]
    return rng.permutation(indices)


RESAMPLERS = {
    "systematic": systematic_resample,
    "multinomial": multinomial_resample,
    "stratified": stratified_resample,
    "residual": residual_resample,
}
