"""Sequential importance resampling (SIR) particle filter.

Implements the recursive Bayes update of paper Eq. (1a)/(1b): propagate the
particle set through the motion model, reweight by measurement likelihood,
and resample when the effective sample size collapses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.filtering.measurement import DepthScanMeasurementModel
from repro.filtering.motion import MotionModel
from repro.filtering.particles import ParticleSet
from repro.filtering.resampling import RESAMPLERS


@dataclass
class StepDiagnostics:
    """Per-step filter diagnostics.

    Attributes:
        estimate: posterior mean state.
        ess: effective sample size after the weight update.
        resampled: whether resampling was triggered.
        log_evidence: incremental measurement evidence.
        spread: RMS position spread of the posterior.
    """

    estimate: np.ndarray
    ess: float
    resampled: bool
    log_evidence: float
    spread: float


class ParticleFilter:
    """SIR Monte-Carlo localization filter.

    Args:
        motion_model: the prediction-step model.
        measurement_model: the correction-step model.
        resampler: one of "systematic", "multinomial", "stratified",
            "residual".
        resample_threshold: resample when ESS / N falls below this.
        roughening: per-axis post-resampling jitter sigmas (D,), fighting
            sample impoverishment (None disables).
    """

    def __init__(
        self,
        motion_model: MotionModel,
        measurement_model: DepthScanMeasurementModel,
        resampler: str = "systematic",
        resample_threshold: float = 0.5,
        roughening: np.ndarray | None = None,
    ):
        if resampler not in RESAMPLERS:
            raise ValueError(
                f"unknown resampler {resampler!r}; options: {sorted(RESAMPLERS)}"
            )
        if not 0.0 < resample_threshold <= 1.0:
            raise ValueError("resample_threshold must be in (0, 1]")
        self.motion_model = motion_model
        self.measurement_model = measurement_model
        self.resample = RESAMPLERS[resampler]
        self.resample_threshold = float(resample_threshold)
        self.roughening = (
            None if roughening is None else np.asarray(roughening, dtype=float)
        )
        self.particles: ParticleSet | None = None
        self.history: list[StepDiagnostics] = []

    def initialize(self, particles: ParticleSet) -> None:
        """Install the initial particle set (uniform or prior-based)."""
        self.particles = particles
        self.history = []

    def step(
        self,
        control: np.ndarray,
        scan_points_cam: np.ndarray,
        rng: np.random.Generator,
    ) -> StepDiagnostics:
        """One predict-update-resample cycle.

        Args:
            control: body-frame odometry increment (4,).
            scan_points_cam: (M, 3) valid scan points in the camera frame.
            rng: random generator.

        Returns:
            Step diagnostics (posterior estimate, ESS, ...).
        """
        if self.particles is None:
            raise RuntimeError("call initialize() before step()")
        predicted = self.motion_model.propagate(self.particles, control, rng)
        log_lik = self.measurement_model.log_likelihoods(
            predicted, scan_points_cam, rng
        )
        updated = predicted.reweighted(log_lik - log_lik.max())
        ess = updated.effective_sample_size()
        resampled = ess < self.resample_threshold * updated.n_particles
        log_evidence = updated.log_evidence()
        if resampled:
            indices = self.resample(updated.normalized_weights(), rng)
            updated = updated.resampled(indices)
            if self.roughening is not None:
                jitter = rng.normal(size=updated.states.shape) * self.roughening
                updated = ParticleSet(
                    updated.states + jitter, updated.log_weights.copy()
                )
        self.particles = updated
        diagnostics = StepDiagnostics(
            estimate=updated.mean_estimate(),
            ess=ess,
            resampled=resampled,
            log_evidence=log_evidence,
            spread=updated.position_spread(),
        )
        self.history.append(diagnostics)
        return diagnostics

    def estimate(self) -> np.ndarray:
        """Current posterior-mean state."""
        if self.particles is None:
            raise RuntimeError("filter not initialised")
        return self.particles.mean_estimate()

    def position_errors(self, ground_truth: np.ndarray) -> np.ndarray:
        """Per-step position error against a (T, >=3) ground-truth array."""
        ground_truth = np.atleast_2d(np.asarray(ground_truth, dtype=float))
        if len(self.history) != ground_truth.shape[0]:
            raise ValueError("history length != ground truth length")
        estimates = np.stack([h.estimate[:3] for h in self.history], axis=0)
        return np.linalg.norm(estimates - ground_truth[:, :3], axis=1)
