"""Extended Kalman filter baseline.

A generic EKF used as the parametric-filter baseline against the particle
filter: it handles mild nonlinearity but cannot represent the multi-modal
beliefs that arise during global localization, which is the regime where
the paper's sampling-based approach (and its CIM acceleration) matters.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

StateFn = Callable[[np.ndarray, np.ndarray], np.ndarray]
JacobianFn = Callable[[np.ndarray, np.ndarray], np.ndarray]
MeasureFn = Callable[[np.ndarray], np.ndarray]
MeasureJacobianFn = Callable[[np.ndarray], np.ndarray]


class ExtendedKalmanFilter:
    """EKF with user-supplied models and Jacobians.

    Args:
        f: state transition ``f(x, u) -> x'``.
        f_jacobian: d f / d x at (x, u), shape (D, D).
        h: measurement function ``h(x) -> z``.
        h_jacobian: d h / d x at x, shape (M, D).
        process_noise: Q, shape (D, D).
        measurement_noise: R, shape (M, M).
    """

    def __init__(
        self,
        f: StateFn,
        f_jacobian: JacobianFn,
        h: MeasureFn,
        h_jacobian: MeasureJacobianFn,
        process_noise: np.ndarray,
        measurement_noise: np.ndarray,
    ):
        self.f = f
        self.f_jacobian = f_jacobian
        self.h = h
        self.h_jacobian = h_jacobian
        self.process_noise = np.asarray(process_noise, dtype=float)
        self.measurement_noise = np.asarray(measurement_noise, dtype=float)
        self.state: np.ndarray | None = None
        self.covariance: np.ndarray | None = None

    def initialize(self, state: np.ndarray, covariance: np.ndarray) -> None:
        """Set the initial belief N(state, covariance)."""
        self.state = np.asarray(state, dtype=float).copy()
        self.covariance = np.asarray(covariance, dtype=float).copy()

    def predict(self, control: np.ndarray) -> None:
        """Propagate the belief through the motion model."""
        self._check_initialised()
        jacobian = self.f_jacobian(self.state, control)
        self.state = self.f(self.state, control)
        self.covariance = (
            jacobian @ self.covariance @ jacobian.T + self.process_noise
        )

    def update(self, measurement: np.ndarray) -> np.ndarray:
        """Fuse a measurement; returns the innovation."""
        self._check_initialised()
        measurement = np.asarray(measurement, dtype=float)
        h_jac = self.h_jacobian(self.state)
        predicted = self.h(self.state)
        innovation = measurement - predicted
        s = h_jac @ self.covariance @ h_jac.T + self.measurement_noise
        gain = self.covariance @ h_jac.T @ np.linalg.solve(s, np.eye(s.shape[0]))
        self.state = self.state + gain @ innovation
        identity = np.eye(self.covariance.shape[0])
        # Joseph form for numerical symmetry/PSD preservation.
        factor = identity - gain @ h_jac
        self.covariance = (
            factor @ self.covariance @ factor.T
            + gain @ self.measurement_noise @ gain.T
        )
        return innovation

    def _check_initialised(self) -> None:
        if self.state is None or self.covariance is None:
            raise RuntimeError("call initialize() first")
