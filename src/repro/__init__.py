"""repro: uncertainty-aware compute-in-memory autonomy for edge robotics.

Reproduction of Darabi et al., "Navigating the Unknown: Uncertainty-Aware
Compute-in-Memory Autonomy of Edge Robotics" (DATE 2024, arXiv:2401.17481).

The package is organised as a stack of substrates with a co-design layer on
top:

- :mod:`repro.circuits`  -- analog device/circuit behavioural models (EKV
  MOSFET, floating-gate 6T inverters, inverter arrays, ADC/DAC, noise,
  process variability, per-op energy).
- :mod:`repro.sram`      -- 8T-SRAM compute-in-memory macro, bit lines, the
  SRAM-immersed cross-coupled-inverter RNG and dropout bit generation.
- :mod:`repro.maps`      -- point clouds, Gaussian mixture maps and the
  hardware-native Harmonic-Mean-of-Gaussian (HMG) mixture maps.
- :mod:`repro.filtering` -- particle filtering (SIR), motion/measurement
  models, resampling schemes, and an EKF baseline.
- :mod:`repro.scene`     -- SE(3) math, procedural tabletop scenes, pinhole
  depth camera, sphere-tracing renderer, synthetic RGB-D dataset.
- :mod:`repro.nn`        -- a from-scratch numpy neural-network framework
  (layers, backprop, optimizers, dropout with external masks, quantization).
- :mod:`repro.bayesian`  -- MC-Dropout inference, compute-reuse engine,
  sample-ordering optimisation, uncertainty metrics.
- :mod:`repro.vo`        -- visual odometry pipeline (features, model,
  training, trajectory integration, ATE/RPE evaluation).
- :mod:`repro.energy`    -- op counting and energy/TOPS/W models for the
  digital baselines and the CIM substrates.
- :mod:`repro.core`      -- the paper's contribution: co-designed
  CIM particle-filter localization and CIM MC-Dropout visual odometry.
- :mod:`repro.experiments` -- one driver per paper figure/table.
- :mod:`repro.api`       -- the public entry point: named substrate
  registry with uniform inference sessions, the typed experiment registry
  (E1-E11), JSON-round-trippable result schemas, and the
  ``python -m repro`` CLI.
- :mod:`repro.runtime`   -- batch-first execution layer: sweep plans,
  the parallel executor, and the structured on-disk run store.

Most callers should start at :mod:`repro.api`::

    from repro.api import get_substrate, run_experiment
"""

from repro.version import __version__

__all__ = ["__version__", "api", "runtime"]


def __getattr__(name: str):
    # Lazy so `import repro` stays light; `repro.api` / `repro.runtime`
    # pull in the full stack.
    if name == "api":
        import repro.api as api

        return api
    if name == "runtime":
        import repro.runtime as runtime

        return runtime
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
