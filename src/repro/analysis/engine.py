"""Lint driver: file discovery, suppression comments, rule dispatch.

``lint_paths`` walks ``.py`` files, parses each once and runs every
registered rule over the tree.  Inline suppressions follow the form::

    risky_call()  # repro: ignore[DET003] metadata-only timestamp

A comment-only suppression line applies to the *next* line instead, so
long statements stay under the line-length budget::

    # repro: ignore[DET006] Python-only payload, never crosses a wire
    return json.dumps(self.to_dict(), indent=indent)

The reason is mandatory -- a suppression without one does not suppress
and instead raises an ``LNT001`` finding, so silencing a determinism
rule always leaves an auditable justification in the diff.  A file that
does not parse yields an ``LNT002`` finding instead of crashing the run
(the gate still fails: a syntax error is never "clean").
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.analysis.findings import Finding, sort_findings
from repro.analysis.rules import RULES, ModuleSource, Rule

# Framework diagnostic codes (documented alongside the DET rules).
SUPPRESSION_NEEDS_REASON = "LNT001"
PARSE_ERROR = "LNT002"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore\[([A-Za-z0-9_\s,]+)\]\s*(.*)$"
)


def parse_suppressions(
    lines: Sequence[str], path: str
) -> tuple[dict[int, frozenset[str]], list[Finding]]:
    """Per-line suppression codes plus findings for malformed ones."""
    suppressions: dict[int, frozenset[str]] = {}
    findings: list[Finding] = []
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group(1).split(",") if code.strip()
        )
        reason = match.group(2).strip()
        if not reason:
            findings.append(
                Finding(
                    rule=SUPPRESSION_NEEDS_REASON,
                    path=path,
                    line=lineno,
                    col=max(0, line.find("#")),
                    message=(
                        "suppression without a reason (write "
                        "'# repro: ignore[CODE] why it is safe')"
                    ),
                    hint="state why the finding does not apply here",
                    text=line.strip(),
                )
            )
            continue
        if codes:
            # A comment-only line shields the next line; a trailing
            # comment shields its own.
            comment_only = line.lstrip().startswith("#")
            target = lineno + 1 if comment_only else lineno
            suppressions[target] = suppressions.get(target, frozenset()) | codes
    return suppressions, findings


def lint_source(
    source: str, path: str, rules: Mapping[str, Rule] | None = None
) -> list[Finding]:
    """Lint one module's source text (the unit tests' entry point)."""
    active = dict(RULES if rules is None else rules)
    lines = tuple(source.splitlines())
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                rule=PARSE_ERROR,
                path=path,
                line=int(error.lineno or 1),
                col=int(error.offset or 0),
                message=f"file does not parse: {error.msg}",
                hint="fix the syntax error",
                text=(error.text or "").strip(),
            )
        ]
    module = ModuleSource(path=path, tree=tree, lines=lines)
    raw: list[Finding] = []
    for code in sorted(active):
        raw.extend(active[code].check(module))
    suppressions, suppression_findings = parse_suppressions(lines, path)
    kept = [
        finding
        for finding in raw
        if finding.rule not in suppressions.get(finding.line, frozenset())
    ]
    return sort_findings(kept + suppression_findings)


def iter_python_files(paths: Sequence[str | Path]) -> Iterable[Path]:
    """Expand the path arguments to concrete ``.py`` files, sorted."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.is_file():
            yield path
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")


def relative_path(path: Path, root: Path) -> str:
    """POSIX path relative to ``root`` (baseline keys must not depend on
    the machine's absolute checkout location)."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[str | Path],
    root: str | Path | None = None,
    rules: Mapping[str, Rule] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; findings in report order.

    Args:
        paths: files and/or directories.
        root: base for the relative paths findings carry (default: cwd).
        rules: rule subset override (default: the full registry).
    """
    base = Path.cwd() if root is None else Path(root)
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        rel = relative_path(file_path, base)
        findings.extend(
            lint_source(file_path.read_text(), rel, rules=rules)
        )
    return sort_findings(findings)
