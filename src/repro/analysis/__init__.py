"""Static analysis for the repo's determinism contracts (``repro lint``).

Every layer since PR 2 stakes correctness on bit-for-bit contracts --
serial == parallel sweeps, fast == loop engine paths, streamed ==
one-shot tracks, crash-recovery parity.  The bug class that breaks them
keeps recurring at the *seed and side-effect* level (additive seed
offsets, wall-clock in result paths, leaked ledger scopes), which ruff
and mypy cannot see.  This package is the project-specific AST linter
that can:

- :mod:`repro.analysis.rules` -- the DET001-DET008 rule set with codes,
  rationales and fix hints.
- :mod:`repro.analysis.engine` -- file walking, rule dispatch and inline
  ``# repro: ignore[CODE] reason`` suppressions (reason mandatory).
- :mod:`repro.analysis.baseline` -- the committed ``lint_baseline.json``
  that grandfathers pre-existing findings so the CI gate is "no new
  violations, no stale grandfathers".

Entry points: ``repro lint`` (CLI), :func:`lint_paths` (library).
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    BaselineEntry,
    compare,
)
from repro.analysis.engine import (
    PARSE_ERROR,
    SUPPRESSION_NEEDS_REASON,
    lint_paths,
    lint_source,
    parse_suppressions,
)
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.rules import RULES, ModuleSource, Rule, all_rules

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE",
    "Finding",
    "ModuleSource",
    "PARSE_ERROR",
    "RULES",
    "Rule",
    "SUPPRESSION_NEEDS_REASON",
    "all_rules",
    "compare",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "sort_findings",
]
