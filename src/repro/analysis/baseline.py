"""Committed lint baseline: grandfather existing findings, gate new ones.

The gate is "no new violations": findings recorded in the baseline file
(``lint_baseline.json`` at the repo root) are tolerated, anything else
fails.  Entries match on ``(rule, path, source-line text)`` -- not line
numbers -- so editing a file above a grandfathered violation does not
break the build.  The comparison is multiset-aware: two identical lines
need two baseline entries.

A baseline entry that no longer fires is *stale* and also fails the
gate: once a violation is fixed, ``repro lint --update-baseline`` must
shrink the file, so the baseline only ever ratchets down.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.findings import Finding, sort_findings

BASELINE_VERSION = 1
DEFAULT_BASELINE = "lint_baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding (line kept for humans, not matching)."""

    rule: str
    path: str
    line: int
    text: str

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.text)

    def render(self) -> str:
        return f"{self.path}:{self.line} {self.rule} {self.text}"

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "text": self.text,
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "BaselineEntry":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload.get("line", 0)),
            text=str(payload.get("text", "")),
        )


@dataclass
class Baseline:
    """The committed set of grandfathered findings plus tracking notes."""

    entries: list[BaselineEntry] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        payload = json.loads(Path(path).read_text())
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ValueError(
                f"baseline file {path} is not a lint baseline "
                "(expected an object with a 'findings' list)"
            )
        return cls(
            entries=[
                BaselineEntry.from_jsonable(entry)
                for entry in payload["findings"]
            ],
            notes=[str(note) for note in payload.get("notes", [])],
        )

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], notes: Sequence[str] = ()
    ) -> "Baseline":
        return cls(
            entries=[
                BaselineEntry(
                    rule=f.rule, path=f.path, line=f.line, text=f.text
                )
                for f in sort_findings(list(findings))
            ],
            notes=list(notes),
        )

    def save(self, path: str | Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "notes": self.notes,
            "findings": [entry.to_jsonable() for entry in self.entries],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False, allow_nan=False)
            + "\n"
        )


def compare(
    findings: Sequence[Finding], baseline: Baseline
) -> tuple[list[Finding], list[BaselineEntry]]:
    """Split findings against the baseline.

    Returns ``(new, stale)``: findings not covered by a baseline entry,
    and baseline entries no fresh finding matched.  Matching is by
    ``(rule, path, text)`` key with multiset counting -- if the baseline
    records one occurrence of a line that now appears twice, the second
    occurrence is new.
    """
    covered = Counter(entry.key() for entry in baseline.entries)
    fresh = Counter(f.key() for f in findings)

    new: list[Finding] = []
    seen: Counter = Counter()
    for finding in sort_findings(list(findings)):
        seen[finding.key()] += 1
        if seen[finding.key()] > covered.get(finding.key(), 0):
            new.append(finding)

    stale: list[BaselineEntry] = []
    used: Counter = Counter()
    for entry in baseline.entries:
        used[entry.key()] += 1
        if used[entry.key()] > fresh.get(entry.key(), 0):
            stale.append(entry)
    return new, stale
