"""The determinism rule set (DET001-DET008).

Every layer of this repo stakes correctness on bit-for-bit contracts
(serial == parallel sweeps, fast == loop engine paths, streamed ==
one-shot tracks, crash-recovery parity).  ruff/mypy cannot see those
domain invariants; these rules can.  Each rule is a small AST check with
a code, a one-line rationale (shown by ``repro lint --rules``) and a fix
hint carried on every finding.

Rules are registered in :data:`RULES` via the :func:`register` decorator;
:func:`repro.analysis.engine.lint_paths` runs all of them per module.

The checks are deliberately syntactic (call-site line of sight, no data
flow): they catch the recurring bug classes -- e.g. the PR 7
``seed + 1000 * scene_index`` stream collision -- without a type checker.
Anything a rule cannot prove is left alone; anything it flags that is
genuinely fine takes an inline ``# repro: ignore[CODE] reason``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.findings import Finding


@dataclass(frozen=True)
class ModuleSource:
    """One parsed module as the rules see it.

    Attributes:
        path: POSIX path relative to the lint root (the baseline key).
        tree: parsed AST.
        lines: raw source lines (1-based access via ``line(n)``).
    """

    path: str
    tree: ast.Module
    lines: tuple[str, ...]

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class: metadata plus a per-module ``check``."""

    code: str = ""
    name: str = ""
    rationale: str = ""
    hint: str = ""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleSource, node: ast.AST, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=self.code,
            path=module.path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint,
            text=module.line(lineno),
        )


RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    rule = cls()
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return cls


def all_rules() -> list[Rule]:
    return [RULES[code] for code in sorted(RULES)]


_NP_RANDOM_PREFIXES = ("np.random.", "numpy.random.")
_RNG_CTORS = ("default_rng", "SeedSequence", "RandomState")


def _call_tail(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _is_rng_ctor_call(name: str | None) -> bool:
    """A call that turns a seed into a stream (any import spelling)."""
    if name is None:
        return False
    return _call_tail(name) in _RNG_CTORS


@register
class UnseededRandomRule(Rule):
    code = "DET001"
    name = "unseeded-rng"
    rationale = (
        "bare default_rng() / legacy np.random.* samplers draw from OS "
        "entropy or hidden global state, so two identical runs diverge"
    )
    hint = "pass an explicit seed or thread a Generator from the caller"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if _call_tail(name) == "default_rng" and (
                name == "default_rng" or name.startswith(_NP_RANDOM_PREFIXES)
            ):
                if not node.args and not node.keywords:
                    yield self.finding(
                        module, node, "bare default_rng() is entropy-seeded"
                    )
            elif name.startswith(_NP_RANDOM_PREFIXES):
                tail = _call_tail(name)
                # Lowercase attributes of np.random are the legacy
                # global-state samplers (normal, rand, seed, shuffle...);
                # capitalised ones are explicit classes and stay legal.
                if tail[:1].islower() and tail not in _RNG_CTORS:
                    yield self.finding(
                        module,
                        node,
                        f"np.random.{tail}() uses the hidden global stream",
                    )


def _has_variable_leaf(node: ast.AST) -> bool:
    for leaf in ast.walk(node):
        if isinstance(leaf, (ast.Name, ast.Attribute)):
            return True
    return False


@register
class SeedArithmeticRule(Rule):
    code = "DET002"
    name = "seed-arithmetic"
    rationale = (
        "additive/multiplicative seed offsets (seed + k, k * index) "
        "collide across base seeds -- the PR 7 scene/dataset.py bug class"
    )
    hint = (
        "derive streams with np.random.SeedSequence(seed, "
        "spawn_key=(...)) instead of arithmetic on the seed"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_rng_ctor_call(dotted_name(node.func)):
                continue
            for arg in node.args:
                binop = self._arithmetic_over_variables(arg)
                if binop is not None:
                    yield self.finding(
                        module,
                        node,
                        f"seed arithmetic feeds "
                        f"{_call_tail(dotted_name(node.func) or '')}()",
                    )
                    break

    @staticmethod
    def _arithmetic_over_variables(arg: ast.AST) -> ast.BinOp | None:
        """The first +/-/* BinOp in ``arg`` that involves a variable.

        Constant-only arithmetic (``default_rng(1 << 20)``) is fine; an
        offset of *anything runtime-valued* is the collision class.
        """
        for node in ast.walk(arg):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult)
            ):
                if _has_variable_leaf(node):
                    return node
        return None


_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "date.today",
}


@register
class WallClockRule(Rule):
    code = "DET003"
    name = "wallclock-or-global-random"
    rationale = (
        "time.time()/datetime.now()/random.* flowing into result-bearing "
        "code makes reruns unreproducible; timestamps belong in metadata"
    )
    hint = (
        "use a seeded Generator / perf_counter for durations; if this is "
        "a metadata-only path, suppress with a reason"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _WALLCLOCK_CALLS:
                yield self.finding(
                    module, node, f"wall-clock call {name}()"
                )
            elif name.startswith("random."):
                yield self.finding(
                    module,
                    node,
                    f"stdlib {name}() uses the hidden global stream",
                )


def _calls_method(tree_nodes: list[ast.stmt], method: str) -> bool:
    for stmt in tree_nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
            ):
                return True
    return False


@register
class UnbalancedScopeRule(Rule):
    code = "DET004"
    name = "unbalanced-ledger-scope"
    rationale = (
        "EnergyLedger.begin_scope() without end_scope() on every path "
        "leaks a child that silently double-counts all later work"
    )
    hint = (
        "open the scope inside (or immediately before) a try whose "
        "finally calls end_scope()"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        yield from self._check_scope(module, module.tree.body)

    def _check_scope(
        self, module: ModuleSource, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        """One function (or module) scope: begin_scope calls are OK only
        if the same scope has a try whose finally reaches end_scope."""
        begins: list[ast.Call] = []
        protected = False
        nested: list[list[ast.stmt]] = []

        def collect(node: ast.AST) -> None:
            nonlocal protected
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def is its own scope, audited separately.
                nested.append(node.body)
                return
            if isinstance(node, ast.Lambda):
                return
            if isinstance(node, ast.Try) and _calls_method(
                node.finalbody, "end_scope"
            ):
                protected = True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "begin_scope"
            ):
                begins.append(node)
            for child in ast.iter_child_nodes(node):
                collect(child)

        for stmt in body:
            collect(stmt)
        if begins and not protected:
            for call in begins:
                yield self.finding(
                    module,
                    call,
                    "begin_scope() without a try/finally end_scope() in "
                    "this function",
                )
        for sub in nested:
            yield from self._check_scope(module, sub)


_DUMPS_CALLS = {"json.dumps", "json.dump"}


def _is_wire_dump_call(name: str | None) -> bool:
    return name is not None and (
        name in _DUMPS_CALLS or _call_tail(name) == "strict_dumps"
    )


@register
class UnorderedWirePayloadRule(Rule):
    code = "DET005"
    name = "unordered-wire-iteration"
    rationale = (
        "set iteration order is hash-randomised across processes, so a "
        "set feeding json.dumps()/wire payloads breaks byte-identity"
    )
    hint = "wrap the set in sorted(...) before it reaches the payload"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_wire_dump_call(dotted_name(node.func)):
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                yield from self._unordered_nodes(module, arg)

    def _unordered_nodes(
        self, module: ModuleSource, node: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name == "sorted":
                return  # sorted(...) normalises whatever is inside
            if name in ("set", "frozenset"):
                yield self.finding(
                    module, node, "set() result feeds a wire payload"
                )
        if isinstance(node, (ast.Set, ast.SetComp)):
            yield self.finding(
                module, node, "set literal/comprehension feeds a wire payload"
            )
        for child in ast.iter_child_nodes(node):
            yield from self._unordered_nodes(module, child)


@register
class NonStrictJSONRule(Rule):
    code = "DET006"
    name = "non-strict-json"
    rationale = (
        "json.dumps() without allow_nan=False emits bare NaN/Infinity "
        "tokens that are not JSON and corrupt wire payloads"
    )
    hint = (
        "use repro.api.results.strict_dumps (tagged non-finite "
        "sentinels) or pass allow_nan=False"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) not in _DUMPS_CALLS:
                continue
            if not self._strict(node):
                yield self.finding(
                    module,
                    node,
                    "json.dumps()/dump() without allow_nan=False",
                )

    @staticmethod
    def _strict(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if (
                keyword.arg == "allow_nan"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            ):
                return True
        return False


_BLOCKING_CALLS = {
    "time.sleep",
    "socket.create_connection",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "urllib.request.urlopen",
}
_BLOCKING_PREFIXES = ("requests.", "http.client.")


@register
class BlockingInAsyncRule(Rule):
    code = "DET007"
    name = "blocking-call-in-async"
    rationale = (
        "time.sleep()/sync HTTP inside async def stalls the event loop, "
        "so every in-flight request (and batch deadline) hangs with it"
    )
    hint = (
        "await asyncio.sleep(...) or run the blocking call in an "
        "executor (loop.run_in_executor)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        rule = self

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.stack: list[bool] = []  # nearest def is async?
                self.found: list[Finding] = []

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self.stack.append(False)
                self.generic_visit(node)
                self.stack.pop()

            def visit_AsyncFunctionDef(
                self, node: ast.AsyncFunctionDef
            ) -> None:
                self.stack.append(True)
                self.generic_visit(node)
                self.stack.pop()

            def visit_Call(self, node: ast.Call) -> None:
                if self.stack and self.stack[-1]:
                    name = dotted_name(node.func)
                    if name is not None and (
                        name in _BLOCKING_CALLS
                        or name.startswith(_BLOCKING_PREFIXES)
                    ):
                        self.found.append(
                            rule.finding(
                                module,
                                node,
                                f"blocking {name}() inside async def",
                            )
                        )
                self.generic_visit(node)

        visitor = Visitor()
        visitor.visit(module.tree)
        yield from visitor.found


@register
class MutableDefaultRule(Rule):
    code = "DET008"
    name = "mutable-default-argument"
    rationale = (
        "a mutable default ([] / {} / set()) is shared across calls, so "
        "one caller's mutation leaks into every later call"
    )
    hint = "default to None and create the container inside the function"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue  # private helpers may pin defaults deliberately
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in public "
                        f"{'async ' if isinstance(node, ast.AsyncFunctionDef) else ''}"
                        f"def {node.name}()",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name in ("list", "dict", "set")
        return False
