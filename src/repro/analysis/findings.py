"""Lint findings: the unit of output of the determinism linter.

A :class:`Finding` pins a rule violation to ``path:line:col`` and carries
the offending source line text.  The *text* (not the line number) is what
the committed baseline matches on, so a file edit above a grandfathered
violation does not spuriously turn it into a "new" finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        rule: rule code (``DET001`` ... ``DET008``, ``LNT0xx`` for
            framework diagnostics such as malformed suppressions).
        path: file path, POSIX-style, relative to the lint root.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        message: what is wrong, in one sentence.
        hint: how to fix it (or how to suppress it with a reason).
        text: the stripped source line -- the baseline-matching key.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    text: str

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers drift, source text rarely does."""
        return (self.rule, self.path, self.text)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """One human-readable report line."""
        suffix = f"  (fix: {self.hint})" if self.hint else ""
        return f"{self.location()} {self.rule} {self.message}{suffix}"

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "text": self.text,
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload.get("col", 0)),
            message=str(payload.get("message", "")),
            hint=str(payload.get("hint", "")),
            text=str(payload.get("text", "")),
        )


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable report order: by location, then rule code."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
