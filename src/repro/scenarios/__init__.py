"""Scenario library + declarative world builder.

Typed :class:`ScenarioSpec` descriptions of complete localization
scenarios (map, trajectory, sensors, noise, precision, init policy) with
strict JSON round-trip, a stock library of 20+ named scenarios, a
builder compiling specs onto the existing scene/maps/filtering stack,
Plan/JobSpec sweep compilation, and traffic mixes for the serve layer.

    from repro.scenarios import get_scenario, run_scenario

    spec = get_scenario("sensor-dropout-burst")
    metrics = run_scenario(spec, substrate="cim", seed=0)

CLI: ``repro scenarios list|run|report``.
"""

from repro.scenarios.library import (
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from repro.scenarios.runner import (
    ScenarioRunConfig,
    apply_overrides,
    compile_scenarios,
    run_scenario,
    summarize_rows,
)
from repro.scenarios.spec import (
    InitSpec,
    MapSpec,
    NoiseSpec,
    PrecisionSpec,
    ScenarioSpec,
    SensorSpec,
    TrajectorySpec,
)
from repro.scenarios.traffic import (
    ScenarioMix,
    scenario_track_setup,
    scenario_track_world,
    serving_profile,
    track_init,
)
from repro.scenarios.world import (
    ScenarioWorld,
    build_session,
    build_world,
    initialize,
    scenario_world,
    session_seed,
)

__all__ = [
    "InitSpec",
    "MapSpec",
    "NoiseSpec",
    "PrecisionSpec",
    "ScenarioMix",
    "ScenarioRunConfig",
    "ScenarioSpec",
    "ScenarioWorld",
    "SensorSpec",
    "TrajectorySpec",
    "apply_overrides",
    "build_session",
    "build_world",
    "compile_scenarios",
    "get_scenario",
    "initialize",
    "list_scenarios",
    "register_scenario",
    "run_scenario",
    "scenario_names",
    "scenario_track_setup",
    "scenario_track_world",
    "scenario_world",
    "serving_profile",
    "session_seed",
    "summarize_rows",
    "track_init",
]
