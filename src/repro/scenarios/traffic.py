"""Scenario-driven traffic for the serve layer.

A :class:`ScenarioMix` is a weighted set of library scenarios; it
deterministically apportions N concurrent track sessions across its
entries (largest-remainder counts + a seeded shuffle), which is how the
serve bench -- and, later, ``repro loadtest`` -- draws realistic traffic
from the scenario catalogue instead of hammering one hand-built world.

Scenario -> serving bridges: :func:`scenario_track_world` packages a
scenario's world as the picklable :class:`~repro.serve.tracks.TrackWorld`
the track manager ships to shards, built so that sessions are
bit-identical to :func:`repro.scenarios.world.build_session` -- the
stream determinism contract (``reference_track_run``) therefore holds
for scenario-fed services unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.serve.tracks import TrackWorld
from repro.serve.types import TrackInit
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.world import (
    ScenarioWorld,
    scenario_localizer_kwargs,
    scenario_world,
    session_seed,
)

__all__ = [
    "ScenarioMix",
    "scenario_track_setup",
    "scenario_track_world",
    "serving_profile",
    "track_init",
]


@dataclass(frozen=True)
class ScenarioMix:
    """A weighted mix of scenario names.

    Attributes:
        entries: ``(name, weight)`` pairs; weights are relative and must
            be positive.
    """

    entries: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("a scenario mix needs at least one entry")
        names = [name for name, _ in self.entries]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scenario in mix: {names}")
        for name, weight in self.entries:
            if not weight > 0:
                raise ValueError(
                    f"mix weight for {name!r} must be > 0, got {weight}"
                )

    def counts(self, n: int) -> dict[str, int]:
        """Apportion ``n`` slots by weight (largest-remainder method).

        Deterministic, exact (counts sum to ``n``), and stable: ties on
        the fractional remainder break by entry order.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        total = sum(weight for _, weight in self.entries)
        quotas = [n * weight / total for _, weight in self.entries]
        counts = [int(q) for q in quotas]
        leftover = n - sum(counts)
        by_remainder = sorted(
            range(len(quotas)), key=lambda i: quotas[i] - counts[i], reverse=True
        )
        for i in by_remainder[:leftover]:
            counts[i] += 1
        return {name: c for (name, _), c in zip(self.entries, counts)}

    def assign(self, n: int, seed: int = 0) -> list[str]:
        """Assign ``n`` track slots to scenario names, shuffled.

        The counts come from :meth:`counts`; the interleaving is a seeded
        permutation so concurrent tracks of different scenarios mix in
        flight (exercising cross-world batching) while the whole
        assignment stays reproducible.
        """
        block = [
            name for name, count in self.counts(n).items() for _ in range(count)
        ]
        order = np.random.default_rng(int(seed)).permutation(len(block))
        return [block[i] for i in order]


def serving_profile(spec: ScenarioSpec, n_steps: int | None = None) -> ScenarioSpec:
    """A serving-sized variant of a scenario.

    Serving benches step many concurrent tracks for a few steps each, so
    the world is shrunk with :meth:`ScenarioSpec.tiny` (small frames,
    few components -- the same size class as the serve demo world) and
    optionally re-lengthened to ``n_steps``.
    """
    small = spec.tiny()
    if n_steps is not None:
        small = dataclasses.replace(
            small,
            trajectory=dataclasses.replace(small.trajectory, n_steps=n_steps),
        )
    return small.validate()


def scenario_track_world(
    spec: ScenarioSpec, world: ScenarioWorld | None = None
) -> TrackWorld:
    """Package a scenario as a serve-layer :class:`TrackWorld`.

    ``TrackWorld.build_session`` seeds its rng with ``session_seed`` and
    passes ``localizer_kwargs`` straight through, so sessions it builds
    are bit-identical to ``repro.scenarios.world.build_session`` -- the
    serve determinism oracle applies to scenario traffic unchanged.
    """
    if world is None:
        world = scenario_world(spec)
    return TrackWorld(
        map_cloud=world.cloud,
        camera=world.camera,
        session_seed=session_seed(spec),
        localizer_kwargs={
            "camera_mount": world.mount,
            **scenario_localizer_kwargs(spec),
        },
    )


def track_init(spec: ScenarioSpec, world: ScenarioWorld) -> TrackInit:
    """The spec's init policy as a wire-safe :class:`TrackInit`."""
    if spec.init.mode == "global":
        return TrackInit(mode="global", z_range=spec.init.z_range)
    return TrackInit(
        mode="tracking",
        state=world.states[0] + np.asarray(spec.init.offset),
        sigma=np.asarray(spec.init.sigma),
    )


def scenario_track_setup(
    spec: ScenarioSpec,
) -> tuple[TrackWorld, TrackInit, tuple[np.ndarray, list[np.ndarray], np.ndarray]]:
    """Everything a served scenario track needs.

    Returns ``(track_world, init, (controls, depths, truth))`` -- open a
    track with the init, feed it the measurement stream, and compare
    against ``reference_track_run`` with the same tuple.
    """
    world = scenario_world(spec)
    measurements = (world.controls, world.depths, world.states)
    return scenario_track_world(spec, world), track_init(spec, world), measurements
