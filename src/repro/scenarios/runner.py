"""Run scenarios on the Plan/JobSpec batch runtime.

One registered experiment -- ``SCN`` -- executes *any* scenario: the
scenario's canonical JSON travels inside the job's config overrides, so a
scenario sweep is an ordinary :class:`~repro.runtime.Plan` that
``ParallelExecutor`` runs serially or across processes with the existing
bit-identity guarantee (worlds are memoised deterministically per
process; nothing about a job depends on executor state).

:func:`compile_scenarios` is the seam later subsystems (codesign
autotuner, loadtest) build on: names x substrates x seeds in, one
validated concatenated plan out.
"""

from __future__ import annotations

import ast
import dataclasses
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import difflib

import numpy as np

from repro.api.registry import ExperimentContext, experiment
from repro.runtime.plan import JobSpec, Plan
from repro.scenarios.library import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.world import build_session, initialize, scenario_world

__all__ = [
    "ScenarioRunConfig",
    "apply_overrides",
    "compile_scenarios",
    "run_scenario",
    "summarize_rows",
]

_SCENARIO_SUBSTRATES = (
    "digital",
    "digital-float",
    "cim",
    "cim-reuse",
    "cim-ordered",
)

# Error threshold (m) for the converged_step metric -- matches
# LocalizationResult.converged_step's default.
_CONVERGENCE_THRESHOLD = 0.5


@dataclass(frozen=True)
class ScenarioRunConfig:
    """Config of the ``SCN`` experiment.

    Attributes:
        seed: run seed (prior draw, motion sampling, resampling).
        scenario: library name, used when ``spec`` is empty.
        spec: canonical scenario JSON; when non-empty it *is* the
            scenario (this is how compiled plans pin the exact spec,
            overrides and all, into each job).
    """

    seed: int = 0
    scenario: str = "room-baseline"
    spec: str = ""


def run_scenario(
    spec: ScenarioSpec, substrate: str = "digital", seed: int = 0
) -> dict:
    """One end-to-end scenario run; returns a flat metrics dict."""
    spec.validate()
    world = scenario_world(spec)
    session = build_session(spec, substrate, world=world)
    rng = np.random.default_rng(int(seed))
    initialize(spec, world, session, rng)
    result = session.run((world.controls, world.depths, world.states), rng=rng)
    errors = np.asarray(result.extras["errors"], dtype=float)
    summary = dict(result.extras["summary"])
    n_steps = int(world.states.shape[0])
    below = errors < _CONVERGENCE_THRESHOLD
    converged = None
    if below.size and below[-1]:
        above = np.flatnonzero(~below)
        converged = 0 if above.size == 0 else int(above[-1]) + 1
    return {
        "scenario": spec.name,
        "tags": list(spec.tags),
        "substrate": substrate,
        "backend": result.extras["backend"],
        "n_steps": n_steps,
        "dropped_steps": len(world.dropped_steps),
        "initial_error_m": summary["initial_error_m"],
        "final_error_m": summary["final_error_m"],
        "mean_error_m": float(errors.mean()) if errors.size else float("nan"),
        "steady_state_error_m": summary["steady_state_error_m"],
        "converged_step": converged,
        "energy_j": float(result.energy_j),
        "energy_per_step_j": float(result.energy_j) / max(n_steps, 1),
        "ops_executed": int(result.ops_executed),
    }


@experiment(
    "SCN",
    title="Scenario library run",
    config=ScenarioRunConfig,
    substrates=_SCENARIO_SUBSTRATES,
)
def run_scn(ctx: ExperimentContext) -> dict:
    """Run one library (or inline-JSON) scenario on one substrate."""
    cfg = ctx.config
    if cfg.spec:
        spec = ScenarioSpec.from_json(cfg.spec)
    else:
        spec = get_scenario(cfg.scenario)
    substrate = ctx.substrate.name if ctx.substrate else "digital"
    return run_scenario(spec, substrate=substrate, seed=ctx.seed)


def apply_overrides(
    spec: ScenarioSpec, overrides: Mapping[str, str] | None
) -> ScenarioSpec:
    """Apply dotted-path ``--set`` overrides to a scenario spec.

    Keys address nested fields (``trajectory.n_steps``,
    ``noise.depth_noise_std``, top-level ``n_particles``); string values
    are coerced like experiment config overrides.  Unknown paths raise
    ``ValueError`` with a did-you-mean suggestion; the result is
    re-validated.
    """
    if not overrides:
        return spec
    for path, value in overrides.items():
        parts = path.split(".")
        target = spec
        crumbs: list[tuple[Any, str]] = []
        for depth, part in enumerate(parts):
            options = [f.name for f in dataclasses.fields(target)]
            if part not in options:
                prefix = ".".join(parts[:depth])
                close = difflib.get_close_matches(part, options, n=1, cutoff=0.5)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                where = f" in {prefix!r}" if prefix else ""
                raise ValueError(
                    f"unknown scenario field {part!r}{where}{hint}; "
                    f"options: {sorted(options)}"
                )
            crumbs.append((target, part))
            target = getattr(target, part)
        if dataclasses.is_dataclass(target):
            raise ValueError(
                f"scenario field {path!r} is a section, not a value; "
                f"set one of its fields: "
                f"{sorted(f.name for f in dataclasses.fields(target))}"
            )
        coerced = _coerce_value(target, value, path)
        # Rebuild the nested frozen dataclasses from the leaf outward;
        # the final replacement target is the spec itself.
        for owner, part in reversed(crumbs):
            coerced = dataclasses.replace(owner, **{part: coerced})
        spec = coerced
    return spec.validate()


def _coerce_value(current: Any, value: Any, path: str) -> Any:
    if isinstance(value, str):
        try:
            value = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            pass  # keep as string (e.g. profile="hover")
    if isinstance(value, list):
        value = tuple(value)
    if current is None:
        # Optional field (init.z_range): accept None or a 2-tuple.
        if value is not None and not (
            isinstance(value, tuple) and len(value) == 2
        ):
            raise ValueError(
                f"scenario field {path!r} expects None or a 2-tuple, "
                f"got {value!r}"
            )
        return value
    if isinstance(current, bool):
        if not isinstance(value, bool):
            raise ValueError(
                f"scenario field {path!r} expects bool, got {value!r}"
            )
        return value
    if isinstance(current, int) and not isinstance(current, bool):
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(
                f"scenario field {path!r} expects int, got {value!r}"
            )
        return value
    if isinstance(current, float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"scenario field {path!r} expects float, got {value!r}"
            )
        return float(value)
    if not isinstance(value, type(current)):
        raise ValueError(
            f"scenario field {path!r} expects {type(current).__name__}, "
            f"got {value!r}"
        )
    return value


def compile_scenarios(
    names: Sequence[str],
    substrates: Sequence[str] | None = None,
    seeds: Sequence[int] | None = None,
    overrides: Mapping[str, str] | None = None,
    specs: Iterable[ScenarioSpec] | None = None,
    tiny: bool = False,
) -> Plan:
    """Compile scenarios x substrates x seeds into one validated Plan.

    Each scenario resolves from the library (or ``specs``, matched by
    name), receives the dotted ``--set`` overrides (after the optional
    ``tiny`` budget cap), and is pinned into its jobs as canonical
    JSON -- so executor workers rebuild the exact spec without
    consulting the library.

    Raises:
        KeyError: unknown scenario name (with a did-you-mean hint).
        ValueError: bad override path/value, or an invalid spec.
    """
    if not names:
        raise ValueError("no scenarios given")
    catalogue = {spec.name: spec for spec in specs} if specs is not None else None
    jobs: list[JobSpec] = []
    for name in names:
        if catalogue is not None:
            if name not in catalogue:
                raise KeyError(
                    f"unknown scenario {name!r}; options: {sorted(catalogue)}"
                )
            spec = catalogue[name]
        else:
            spec = get_scenario(name)
        if tiny:
            spec = spec.tiny()
        spec = apply_overrides(spec, overrides)
        sub_plan = Plan.compile(
            "SCN",
            substrates=substrates,
            seeds=seeds,
            overrides={"scenario": spec.name, "spec": spec.to_json()},
        )
        for job in sub_plan:
            jobs.append(dataclasses.replace(job, index=len(jobs)))
    return Plan(jobs=tuple(jobs))


def summarize_rows(rows: Iterable[Mapping[str, Any]]) -> list[dict]:
    """Aggregate per-job metric rows into scenario x substrate lines.

    ``rows`` are ``SCN`` metrics dicts (one per job); the output has one
    line per (scenario, substrate) with seed counts and means -- the
    table ``repro scenarios report`` prints.
    """
    grouped: dict[tuple[str, str], list[Mapping[str, Any]]] = {}
    for row in rows:
        key = (str(row.get("scenario")), str(row.get("substrate")))
        grouped.setdefault(key, []).append(row)

    def _mean(group: list[Mapping[str, Any]], field: str) -> float:
        values = [float(r[field]) for r in group if r.get(field) is not None]
        return float(np.mean(values)) if values else float("nan")

    summary = []
    for (scenario, substrate), group in sorted(grouped.items()):
        converged = [
            r["converged_step"]
            for r in group
            if r.get("converged_step") is not None
        ]
        summary.append(
            {
                "scenario": scenario,
                "substrate": substrate,
                "runs": len(group),
                "final_error_m": _mean(group, "final_error_m"),
                "mean_error_m": _mean(group, "mean_error_m"),
                "steady_state_error_m": _mean(group, "steady_state_error_m"),
                "converged_runs": len(converged),
                "energy_j": _mean(group, "energy_j"),
                "ops_executed": _mean(group, "ops_executed"),
            }
        )
    return summary
