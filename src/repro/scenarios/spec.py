"""Typed, validated scenario specifications with strict JSON round-trip.

A :class:`ScenarioSpec` is a *declarative world description* for the
paper's flagship workload (particle-filter localization): map family and
fitting budget, trajectory profile, sensor suite and subsampling, noise
regime, sensor-dropout schedule, precision overrides and the duration /
seed policy.  It carries **no** execution state -- the builder in
:mod:`repro.scenarios.world` compiles a spec into the existing
``scene`` / ``maps`` / ``filtering`` stack, and
:mod:`repro.scenarios.runner` compiles spec grids onto the
Plan/JobSpec runtime.

The JSON contract is strict both ways:

- :meth:`ScenarioSpec.to_json` is canonical (sorted keys, compact
  separators), so equal specs serialize to byte-identical text.
- :meth:`ScenarioSpec.from_json` rejects unknown fields and wrong types
  with a field-path error instead of silently dropping them, and
  round-trips canonical text bit-exactly:
  ``to_json(from_json(text)) == text`` and
  ``from_json(to_json(spec)) == spec``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "InitSpec",
    "MapSpec",
    "NoiseSpec",
    "PrecisionSpec",
    "ScenarioSpec",
    "SensorSpec",
    "TrajectorySpec",
]

MAP_FAMILIES = ("room", "tabletop")
TRAJECTORY_PROFILES = ("orbit", "figure8", "hover")
FIT_MODES = ("direct", "convert")
INIT_MODES = ("tracking", "global")


@dataclass(frozen=True)
class MapSpec:
    """Map family and fitting configuration.

    Attributes:
        family: scene generator family (``"room"`` or ``"tabletop"``).
        size: room side length / table-top side length (m).
        height: room ceiling height / table-top height (m).
        clutter: furniture count (room) or object count (tabletop).
        cloud_points: mapping point-cloud size fed to the fitters.
        cloud_noise_std: scanner noise of the mapping cloud (m).
        n_components: mixture components of the map model.
        fit_mode: ``"direct"`` fits the HMG mixture straight to the
            cloud; ``"convert"`` derives it from the GMM by width
            snapping + weight re-fit (the misfit path).
        min_sigma: GMM regularisation floor (m).
        tiles: CIM tile grid ((1, 1, 1) = single array).
        total_columns: inverter-array column budget.
    """

    family: str = "room"
    size: float = 4.0
    height: float = 2.6
    clutter: int = 5
    cloud_points: int = 3000
    cloud_noise_std: float = 0.01
    n_components: int = 48
    fit_mode: str = "direct"
    min_sigma: float = 0.08
    tiles: tuple[int, int, int] = (2, 2, 2)
    total_columns: int = 500


@dataclass(frozen=True)
class TrajectorySpec:
    """Flight profile of the (simulated) drone.

    Attributes:
        profile: ``"orbit"`` (circle, heading tangent), ``"figure8"``
            (Gerono lemniscate) or ``"hover"`` (station keeping with a
            small deterministic bob).
        n_steps: sequence duration in filter steps.
        radius: orbit radius / figure-8 half-width / hover offset (m).
        height: mean flight height (m).
        sweep_rad: total swept parameter angle.
        height_wobble: sinusoidal height variation amplitude (m).
        start_angle: initial azimuth (rad).
    """

    profile: str = "orbit"
    n_steps: int = 20
    radius: float = 1.3
    height: float = 1.2
    sweep_rad: float = 6.283185307179586
    height_wobble: float = 0.15
    start_angle: float = 0.0


@dataclass(frozen=True)
class SensorSpec:
    """Depth-sensor suite, subsampling and dropout schedule.

    A step ``t`` is inside a dropout burst when ``dropout_steps > 0``
    and ``(t - dropout_start) % dropout_period`` (or ``t -
    dropout_start`` when ``dropout_period == 0``, i.e. a single burst)
    falls in ``[0, dropout_steps)``; in such steps ``dropout_fraction``
    of the valid pixels are blanked to NaN (a handful always survive so
    the measurement model keeps a scan).

    Attributes:
        width / height: depth image resolution.
        fov_x_deg: horizontal field of view.
        pitch_deg: camera mount pitch below the horizon (deg).
        max_pixels: scan points used per measurement update.
        dropout_fraction: fraction of valid pixels blanked in a burst.
        dropout_start: first step of the (first) burst.
        dropout_steps: burst length in steps (0 disables dropout).
        dropout_period: burst repetition period (0 = single burst).
    """

    width: int = 32
    height: int = 24
    fov_x_deg: float = 70.0
    pitch_deg: float = 25.0
    max_pixels: int = 48
    dropout_fraction: float = 0.0
    dropout_start: int = 0
    dropout_steps: int = 0
    dropout_period: int = 0


@dataclass(frozen=True)
class NoiseSpec:
    """Noise regime: sensor, odometry and analog-hardware noise.

    Attributes:
        depth_noise_std: relative depth noise (sigma = std * depth).
        odometry_noise: additive control noise std (per component).
        odometry_bias: constant forward-axis control bias (m/step) --
            the drift generator for long-duration scenarios.
        with_mismatch: sample process variation for the CIM array.
        with_noise: add analog read noise to CIM evaluations.
    """

    depth_noise_std: float = 0.0
    odometry_noise: float = 0.0
    odometry_bias: float = 0.0
    with_mismatch: bool = True
    with_noise: bool = True


@dataclass(frozen=True)
class PrecisionSpec:
    """Precision overrides of the likelihood backends.

    Attributes:
        adc_bits: log-ADC resolution of the CIM backend.
        digital_bits: datapath precision of the digital baseline.
        temperature: measurement softening temperature.
    """

    adc_bits: int = 4
    digital_bits: int = 8
    temperature: float = 8.0


@dataclass(frozen=True)
class InitSpec:
    """Filter initialization policy.

    Attributes:
        mode: ``"tracking"`` (prior around the true start pose) or
            ``"global"`` (uniform over the map volume -- GPS-denied).
        offset: prior mean offset from the true start state (tracking).
        sigma: prior standard deviations (tracking).
        z_range: optional height bounds for global initialization.
    """

    mode: str = "tracking"
    offset: tuple[float, float, float, float] = (0.4, -0.3, 0.15, 0.2)
    sigma: tuple[float, float, float, float] = (0.5, 0.5, 0.3, 0.3)
    z_range: tuple[float, float] | None = None


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario.

    Attributes:
        name: registry handle (kebab-case).
        description: one-line summary shown by ``repro scenarios list``.
        tags: free-form labels for filtering (``--tag``).
        world_seed: seed of the *world* (scene layout, cloud, sensor
            noise, dropout pattern, map fitting, hardware
            instantiation).  Per-run randomness -- the filter's prior
            draw, motion sampling, resampling -- comes from the job
            seed instead, so one scenario world supports many
            independent runs.
        n_particles: particle count of the filter.
        map / trajectory / sensor / noise / precision / init: the
            section specs above.
    """

    name: str = ""
    description: str = ""
    tags: tuple[str, ...] = ()
    world_seed: int = 7
    n_particles: int = 300
    map: MapSpec = field(default_factory=MapSpec)
    trajectory: TrajectorySpec = field(default_factory=TrajectorySpec)
    sensor: SensorSpec = field(default_factory=SensorSpec)
    noise: NoiseSpec = field(default_factory=NoiseSpec)
    precision: PrecisionSpec = field(default_factory=PrecisionSpec)
    init: InitSpec = field(default_factory=InitSpec)

    # -- validation --------------------------------------------------------

    def validate(self) -> "ScenarioSpec":
        """Check every field; raises ``ValueError`` with a field path."""
        _require(bool(self.name), "name", "must be non-empty")
        _require(
            all(c.isalnum() or c in "-_" for c in self.name)
            and self.name[0].isalnum(),
            "name",
            f"must be kebab-case (letters, digits, '-', '_'), got {self.name!r}",
        )
        _require(self.world_seed >= 0, "world_seed", "must be >= 0")
        _require(self.n_particles >= 1, "n_particles", "must be >= 1")

        m = self.map
        _require(
            m.family in MAP_FAMILIES,
            "map.family",
            f"must be one of {MAP_FAMILIES}, got {m.family!r}",
        )
        _require(m.size > 0, "map.size", "must be > 0")
        _require(m.height > 0, "map.height", "must be > 0")
        _require(m.clutter >= 0, "map.clutter", "must be >= 0")
        _require(m.cloud_points >= 16, "map.cloud_points", "must be >= 16")
        _require(m.cloud_noise_std >= 0, "map.cloud_noise_std", "must be >= 0")
        _require(m.n_components >= 1, "map.n_components", "must be >= 1")
        _require(
            m.fit_mode in FIT_MODES,
            "map.fit_mode",
            f"must be one of {FIT_MODES}, got {m.fit_mode!r}",
        )
        _require(m.min_sigma > 0, "map.min_sigma", "must be > 0")
        _require(
            len(m.tiles) == 3 and all(t >= 1 for t in m.tiles),
            "map.tiles",
            f"must be three counts >= 1, got {m.tiles!r}",
        )
        _require(m.total_columns >= 1, "map.total_columns", "must be >= 1")

        t = self.trajectory
        _require(
            t.profile in TRAJECTORY_PROFILES,
            "trajectory.profile",
            f"must be one of {TRAJECTORY_PROFILES}, got {t.profile!r}",
        )
        _require(t.n_steps >= 1, "trajectory.n_steps", "must be >= 1")
        _require(t.radius > 0, "trajectory.radius", "must be > 0")
        _require(t.height > 0, "trajectory.height", "must be > 0")
        _require(t.sweep_rad > 0, "trajectory.sweep_rad", "must be > 0")
        _require(
            t.height_wobble >= 0, "trajectory.height_wobble", "must be >= 0"
        )

        s = self.sensor
        _require(s.width >= 4, "sensor.width", "must be >= 4")
        _require(s.height >= 4, "sensor.height", "must be >= 4")
        _require(
            10.0 <= s.fov_x_deg <= 170.0,
            "sensor.fov_x_deg",
            "must be in [10, 170]",
        )
        _require(
            -89.0 <= s.pitch_deg <= 89.0,
            "sensor.pitch_deg",
            "must be in [-89, 89]",
        )
        _require(s.max_pixels >= 1, "sensor.max_pixels", "must be >= 1")
        _require(
            0.0 <= s.dropout_fraction <= 0.95,
            "sensor.dropout_fraction",
            "must be in [0, 0.95]",
        )
        _require(s.dropout_start >= 0, "sensor.dropout_start", "must be >= 0")
        _require(s.dropout_steps >= 0, "sensor.dropout_steps", "must be >= 0")
        _require(
            s.dropout_period == 0 or s.dropout_period >= s.dropout_steps,
            "sensor.dropout_period",
            "must be 0 (single burst) or >= dropout_steps",
        )
        if s.dropout_steps > 0:
            _require(
                s.dropout_fraction > 0,
                "sensor.dropout_fraction",
                "must be > 0 when dropout_steps > 0",
            )

        n = self.noise
        _require(n.depth_noise_std >= 0, "noise.depth_noise_std", "must be >= 0")
        _require(n.odometry_noise >= 0, "noise.odometry_noise", "must be >= 0")

        p = self.precision
        _require(1 <= p.adc_bits <= 12, "precision.adc_bits", "must be in [1, 12]")
        _require(
            1 <= p.digital_bits <= 32,
            "precision.digital_bits",
            "must be in [1, 32]",
        )
        _require(p.temperature > 0, "precision.temperature", "must be > 0")

        i = self.init
        _require(
            i.mode in INIT_MODES,
            "init.mode",
            f"must be one of {INIT_MODES}, got {i.mode!r}",
        )
        _require(len(i.offset) == 4, "init.offset", "must have 4 components")
        _require(
            len(i.sigma) == 4 and all(v > 0 for v in i.sigma),
            "init.sigma",
            "must have 4 positive components",
        )
        if i.z_range is not None:
            _require(
                len(i.z_range) == 2 and i.z_range[0] < i.z_range[1],
                "init.z_range",
                "must be (low, high) with low < high",
            )
        return self

    # -- budget shrinking --------------------------------------------------

    def tiny(self) -> "ScenarioSpec":
        """A budget-capped copy for smokes and property tests.

        Caps only the *cost* axes (steps, pixels, points, components,
        particles, tiles) while preserving the scenario's character --
        noise regime, precision, init policy and the dropout schedule
        (shifted into the shortened sequence) survive.
        """
        t = self.trajectory
        s = self.sensor
        n_steps = min(t.n_steps, 4)
        dropout_steps = min(s.dropout_steps, 2)
        dropout_start = (
            min(s.dropout_start, 1) if dropout_steps > 0 else s.dropout_start
        )
        dropout_period = (
            0
            if s.dropout_period == 0
            else max(min(s.dropout_period, 3), dropout_steps)
        )
        return dataclasses.replace(
            self,
            n_particles=min(self.n_particles, 48),
            map=dataclasses.replace(
                self.map,
                cloud_points=min(self.map.cloud_points, 300),
                n_components=min(self.map.n_components, 6),
                total_columns=min(self.map.total_columns, 60),
                tiles=(1, 1, 1),
            ),
            trajectory=dataclasses.replace(t, n_steps=n_steps),
            sensor=dataclasses.replace(
                s,
                width=min(s.width, 16),
                height=min(s.height, 12),
                max_pixels=min(s.max_pixels, 16),
                dropout_start=dropout_start,
                dropout_steps=dropout_steps,
                dropout_period=dropout_period,
            ),
        )

    # -- strict JSON -------------------------------------------------------

    def to_jsonable(self) -> dict:
        """Nested plain-JSON payload (tuples as lists)."""
        return _to_jsonable(self)

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators."""
        # repro: ignore[DET006] validate() pins every float finite first
        return json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Strict parse: unknown fields and wrong types raise."""
        spec = _from_payload(cls, payload, path="")
        return spec.validate()

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"scenario spec is not valid JSON: {error}") from None
        return cls.from_jsonable(payload)


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise ValueError(f"scenario spec field {path!r} {message}")


def _to_jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, tuple):
        return [_to_jsonable(item) for item in value]
    return value


def _from_payload(cls: type, payload: Any, path: str) -> Any:
    """Build a spec dataclass from a JSON payload, strictly."""
    label = path or cls.__name__
    if not isinstance(payload, Mapping):
        raise ValueError(
            f"scenario spec section {label!r} must be an object, "
            f"got {type(payload).__name__}"
        )
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - set(fields))
    if unknown:
        raise ValueError(
            f"unknown scenario spec field(s) {unknown} in {label!r}; "
            f"options: {sorted(fields)}"
        )
    kwargs: dict[str, Any] = {}
    for name, f in fields.items():
        if name not in payload:
            continue
        sub = f"{path}.{name}" if path else name
        kwargs[name] = _coerce_field(f, payload[name], sub)
    return cls(**kwargs)


def _field_default(f: dataclasses.Field) -> Any:
    if f.default is not dataclasses.MISSING:
        return f.default
    return f.default_factory()  # type: ignore[misc]


def _coerce_field(f: dataclasses.Field, value: Any, path: str) -> Any:
    default = _field_default(f)
    if dataclasses.is_dataclass(default):
        return _from_payload(type(default), value, path)
    # Optional 2-tuple (init.z_range is the only such field).
    if default is None:
        if value is None:
            return None
        if isinstance(value, (list, tuple)) and len(value) == 2:
            return (_as_float(value[0], path), _as_float(value[1], path))
        raise ValueError(
            f"scenario spec field {path!r} must be null or a 2-element "
            f"array, got {value!r}"
        )
    if isinstance(default, tuple):
        if not isinstance(value, (list, tuple)):
            raise ValueError(
                f"scenario spec field {path!r} must be an array, got {value!r}"
            )
        element = default[0] if default else ""
        if isinstance(element, bool):
            raise ValueError(f"unsupported tuple field {path!r}")
        if isinstance(element, int):
            return tuple(_as_int(item, path) for item in value)
        if isinstance(element, float):
            return tuple(_as_float(item, path) for item in value)
        return tuple(_as_str(item, path) for item in value)
    if isinstance(default, bool):
        if not isinstance(value, bool):
            raise ValueError(
                f"scenario spec field {path!r} must be a boolean, got {value!r}"
            )
        return value
    if isinstance(default, int):
        return _as_int(value, path)
    if isinstance(default, float):
        return _as_float(value, path)
    return _as_str(value, path)


def _as_int(value: Any, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"scenario spec field {path!r} must be an integer, got {value!r}"
        )
    return value


def _as_float(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"scenario spec field {path!r} must be a number, got {value!r}"
        )
    return float(value)


def _as_str(value: Any, path: str) -> str:
    if not isinstance(value, str):
        raise ValueError(
            f"scenario spec field {path!r} must be a string, got {value!r}"
        )
    return value
