"""Compile a :class:`ScenarioSpec` into a concrete simulated world.

The builder is a thin declarative front over the existing stack -- scenes
come from :mod:`repro.scene.scene`, rendering from
:mod:`repro.scene.render`, sessions from the substrate registry -- so a
scenario run exercises exactly the code paths of the hand-assembled
experiments; there is no parallel execution path.

Determinism contract: every random choice of the *world* (scene layout,
mapping cloud, sensor noise, dropout pattern, odometry corruption, map
fitting + hardware instantiation) derives from ``spec.world_seed`` via
``np.random.SeedSequence(world_seed, spawn_key=(purpose,))``, so worlds
are reproducible, independent across purposes, and identical no matter
which order the pieces are built in.  Per-run randomness (prior draw,
motion sampling, resampling) comes from the job seed instead -- one world,
many independent runs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.api.substrates import LocalizationSession, get_substrate
from repro.scene.camera import PinholeCamera, body_camera_mount
from repro.scene.render import DepthRenderer
from repro.scene.scene import Scene, make_room_scene, make_tabletop_scene
from repro.scene.se3 import Pose
from repro.scene.trajectory import drone_orbit_states, states_to_controls
from repro.filtering.measurement import state_to_pose
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "ScenarioWorld",
    "build_session",
    "build_world",
    "initialize",
    "scenario_localizer_kwargs",
    "scenario_world",
    "session_seed",
]

# spawn_key purposes of the world seed (frozen contract -- changing these
# renumbers every stock scenario's world).
_PURPOSE_SCENE = 0
_PURPOSE_CLOUD = 1
_PURPOSE_DEPTH_NOISE = 2
_PURPOSE_DROPOUT = 3
_PURPOSE_ODOMETRY = 4
_PURPOSE_SESSION = 10

# Dropout never blanks below this many valid pixels, so the measurement
# model always keeps a scan.
_MIN_VALID_PIXELS = 4


def _world_rng(spec: ScenarioSpec, purpose: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence(spec.world_seed, spawn_key=(purpose,))
    )


def session_seed(spec: ScenarioSpec) -> int:
    """Integer seed for the session rng (map fit + hardware instantiation).

    Exposed as a plain int so serving-layer :class:`TrackWorld` objects --
    which carry ``session_seed`` across process boundaries -- build
    sessions bit-identical to :func:`build_session`.
    """
    seq = np.random.SeedSequence(spec.world_seed, spawn_key=(_PURPOSE_SESSION,))
    return int(seq.generate_state(1, dtype=np.uint64)[0])


@dataclass
class ScenarioWorld:
    """A built scenario: scene, rendered flight and measurement stream.

    Attributes:
        spec: the validated spec this world was built from.
        scene: the procedural scene.
        cloud: (N, 3) mapping point cloud (what the map model is fit to).
        camera: depth-camera intrinsics.
        mount: camera-to-body transform.
        states: (T, 4) ground-truth drone states.
        controls: (T, 4) odometry controls aligned with frames (row 0 is
            zero), including the spec's odometry noise/bias corruption.
        depths: T rendered depth frames (noise + dropout applied).
        dropped_steps: step indices where sensor dropout was applied.
    """

    spec: ScenarioSpec
    scene: Scene
    cloud: np.ndarray
    camera: PinholeCamera
    mount: Pose
    states: np.ndarray
    controls: np.ndarray
    depths: list[np.ndarray]
    dropped_steps: tuple[int, ...]


def _profile_states(spec: ScenarioSpec) -> np.ndarray:
    """(T, 4) ground-truth states for the spec's trajectory profile."""
    t = spec.trajectory
    center = np.zeros(3)
    if spec.map.family == "tabletop":
        # Fly above the table top rather than through it.
        center = np.array([0.0, 0.0, 0.35])
    if t.profile == "orbit":
        return drone_orbit_states(
            center=center,
            radius=t.radius,
            height=t.height,
            n_steps=t.n_steps,
            sweep_rad=t.sweep_rad,
            height_wobble=t.height_wobble,
            start_angle=t.start_angle,
        )
    n = t.n_steps
    phase = np.linspace(0.0, 2.0 * np.pi, n) if n > 1 else np.zeros(1)
    states = np.empty((n, 4))
    if t.profile == "figure8":
        # Gerono lemniscate scaled by the radius, heading tangent.
        u = t.start_angle + np.linspace(0.0, t.sweep_rad, n)
        states[:, 0] = center[0] + t.radius * np.sin(u)
        states[:, 1] = center[1] + 0.6 * t.radius * np.sin(u) * np.cos(u)
        states[:, 2] = center[2] + t.height + t.height_wobble * np.sin(2.0 * phase)
        dx = t.radius * np.cos(u)
        dy = 0.6 * t.radius * np.cos(2.0 * u)
        states[:, 3] = np.arctan2(dy, dx)
        return states
    # hover: station keeping at (radius, 0, height) with a small
    # deterministic bob, heading fixed on the scene center.
    bob = 0.05
    states[:, 0] = center[0] + t.radius + bob * np.sin(phase)
    states[:, 1] = center[1] + bob * np.cos(phase)
    states[:, 2] = center[2] + t.height + t.height_wobble * np.sin(2.0 * phase)
    states[:, 3] = np.arctan2(center[1] - states[:, 1], center[0] - states[:, 0])
    return states


def _dropout_steps(spec: ScenarioSpec) -> tuple[int, ...]:
    """Step indices inside a dropout burst (see :class:`SensorSpec`)."""
    s = spec.sensor
    if s.dropout_steps <= 0:
        return ()
    steps = []
    for t in range(spec.trajectory.n_steps):
        offset = t - s.dropout_start
        if offset < 0:
            continue
        if s.dropout_period > 0:
            offset = offset % s.dropout_period
        if offset < s.dropout_steps:
            steps.append(t)
    return tuple(steps)


def _apply_dropout(
    depth: np.ndarray, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Blank ``fraction`` of the valid pixels to NaN, keeping a minimum."""
    flat = depth.reshape(-1).copy()
    valid = np.flatnonzero(np.isfinite(flat))
    n_blank = min(
        int(round(fraction * valid.size)),
        max(valid.size - _MIN_VALID_PIXELS, 0),
    )
    if n_blank > 0:
        blank = rng.choice(valid, size=n_blank, replace=False)
        flat[blank] = np.nan
    return flat.reshape(depth.shape)


def build_world(spec: ScenarioSpec) -> ScenarioWorld:
    """Build the full world for a (validated) spec; deterministic."""
    spec.validate()
    m, t, s, n = spec.map, spec.trajectory, spec.sensor, spec.noise

    scene_rng = _world_rng(spec, _PURPOSE_SCENE)
    if m.family == "room":
        scene = make_room_scene(
            scene_rng,
            room_size=m.size,
            room_height=m.height,
            n_furniture=m.clutter,
        )
    else:
        scene = make_tabletop_scene(
            scene_rng,
            n_objects=m.clutter,
            table_size=m.size,
            table_height=m.height,
        )
    cloud = scene.sample_point_cloud(
        m.cloud_points,
        _world_rng(spec, _PURPOSE_CLOUD),
        noise_std=m.cloud_noise_std,
    )
    camera = PinholeCamera.from_fov(s.width, s.height, fov_x_deg=s.fov_x_deg)
    mount = body_camera_mount(np.deg2rad(s.pitch_deg))

    states = _profile_states(spec)
    if states.shape[0] >= 2:
        clean_controls = states_to_controls(states)
        odometry_rng = _world_rng(spec, _PURPOSE_ODOMETRY)
        if n.odometry_noise > 0:
            clean_controls = clean_controls + odometry_rng.normal(
                scale=n.odometry_noise, size=clean_controls.shape
            )
        if n.odometry_bias != 0.0:
            clean_controls[:, 0] += n.odometry_bias
        controls = np.vstack([np.zeros(4), clean_controls])
    else:
        controls = np.zeros((1, 4))

    renderer = DepthRenderer(scene, camera)
    noise_rng = _world_rng(spec, _PURPOSE_DEPTH_NOISE)
    dropout_rng = _world_rng(spec, _PURPOSE_DROPOUT)
    dropped = set(_dropout_steps(spec))
    depths = []
    for step, state in enumerate(states):
        depth = renderer.render(
            state_to_pose(state, mount),
            depth_noise_std=n.depth_noise_std,
            rng=noise_rng if n.depth_noise_std > 0 else None,
        )
        if step in dropped:
            depth = _apply_dropout(depth, s.dropout_fraction, dropout_rng)
        depths.append(depth)

    return ScenarioWorld(
        spec=spec,
        scene=scene,
        cloud=cloud,
        camera=camera,
        mount=mount,
        states=states,
        controls=controls,
        depths=depths,
        dropped_steps=tuple(sorted(dropped)),
    )


# In-process world memo: building a world (scene render above all) costs
# seconds while a sweep revisits the same spec once per substrate x seed.
# Keyed by canonical JSON (so equal specs share an entry across processes'
# lifetimes deterministically); small LRU bound keeps sweep memory flat.
_WORLD_CACHE: OrderedDict[str, ScenarioWorld] = OrderedDict()
_WORLD_CACHE_MAX = 8


def scenario_world(spec: ScenarioSpec) -> ScenarioWorld:
    """Memoised :func:`build_world` (per-process, LRU-bounded)."""
    key = spec.to_json()
    cached = _WORLD_CACHE.get(key)
    if cached is not None:
        _WORLD_CACHE.move_to_end(key)
        return cached
    world = build_world(spec)
    _WORLD_CACHE[key] = world
    while len(_WORLD_CACHE) > _WORLD_CACHE_MAX:
        _WORLD_CACHE.popitem(last=False)
    return world


def scenario_localizer_kwargs(spec: ScenarioSpec) -> dict[str, Any]:
    """Localizer kwargs a spec maps to (shared with serve TrackWorlds)."""
    return {
        "n_components": spec.map.n_components,
        "total_columns": spec.map.total_columns,
        "n_particles": spec.n_particles,
        "adc_bits": spec.precision.adc_bits,
        "digital_bits": spec.precision.digital_bits,
        "max_pixels": spec.sensor.max_pixels,
        "temperature": spec.precision.temperature,
        "with_mismatch": spec.noise.with_mismatch,
        "with_noise": spec.noise.with_noise,
        "min_sigma": spec.map.min_sigma,
        "tiles": spec.map.tiles,
        "fit_mode": spec.map.fit_mode,
    }


def build_session(
    spec: ScenarioSpec,
    substrate: str,
    world: ScenarioWorld | None = None,
) -> LocalizationSession:
    """Open a localization session for the scenario on ``substrate``.

    The session rng seeds from :func:`session_seed`, so map fitting and
    hardware instantiation depend only on the world seed -- every job of a
    sweep (and every serve-layer TrackWorld) sees the same arrays.
    """
    if world is None:
        world = scenario_world(spec)
    return get_substrate(substrate).localization_session(
        world.cloud,
        world.camera,
        camera_mount=world.mount,
        rng=np.random.default_rng(session_seed(spec)),
        **scenario_localizer_kwargs(spec),
    )


def initialize(
    spec: ScenarioSpec,
    world: ScenarioWorld,
    session: LocalizationSession,
    rng: np.random.Generator,
) -> None:
    """Apply the spec's init policy to a fresh session."""
    if spec.init.mode == "global":
        session.initialize_global(rng, z_range=spec.init.z_range)
        return
    start = world.states[0] + np.asarray(spec.init.offset)
    session.initialize_tracking(start, np.asarray(spec.init.sigma), rng)
