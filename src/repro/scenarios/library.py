"""Registry + stock library of named scenarios.

Every scenario is a validated :class:`ScenarioSpec` registered under its
``name`` with free-form tags for filtering.  The stock library below
spans the axes the paper's evaluation cares about -- map families and
fitting budgets, flight profiles, sensor degradation, odometry
corruption, precision regimes and initialization policies -- so sweeps,
benches and the serve traffic mixes all draw from one catalogue.
"""

from __future__ import annotations

import difflib

from repro.scenarios.spec import (
    InitSpec,
    MapSpec,
    NoiseSpec,
    PrecisionSpec,
    ScenarioSpec,
    SensorSpec,
    TrajectorySpec,
)

__all__ = [
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "scenario_names",
]

_SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(
    spec: ScenarioSpec, overwrite: bool = False
) -> ScenarioSpec:
    """Validate and register ``spec`` under ``spec.name``; returns it.

    Raises:
        ValueError: the spec is invalid, or the name is taken and
            ``overwrite`` is False.
    """
    spec.validate()
    if spec.name in _SCENARIOS and not overwrite:
        raise ValueError(
            f"scenario {spec.name!r} already registered "
            "(pass overwrite=True to replace)"
        )
    _SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name.

    Raises:
        KeyError: unknown name; the message carries a did-you-mean
            suggestion plus the full option list.
    """
    spec = _SCENARIOS.get(name)
    if spec is not None:
        return spec
    close = difflib.get_close_matches(name, _SCENARIOS, n=1, cutoff=0.5)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    raise KeyError(
        f"unknown scenario {name!r}{hint}; options: {scenario_names()}"
    )


def scenario_names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_SCENARIOS)


def list_scenarios(tag: str | None = None) -> list[ScenarioSpec]:
    """Registered scenarios (sorted by name), optionally filtered by tag."""
    specs = [_SCENARIOS[name] for name in scenario_names()]
    if tag is None:
        return specs
    return [spec for spec in specs if tag in spec.tags]


# ---------------------------------------------------------------------------
# Stock library
# ---------------------------------------------------------------------------

def _stock(spec: ScenarioSpec) -> ScenarioSpec:
    return register_scenario(spec)


_stock(ScenarioSpec(
    name="room-baseline",
    description="nominal indoor room orbit; the paper's reference flight",
    tags=("room", "nominal", "serving"),
))

_stock(ScenarioSpec(
    name="warehouse-cluttered",
    description="large cluttered warehouse floor, dense furniture field",
    tags=("room", "clutter", "large-map"),
    world_seed=11,
    map=MapSpec(size=8.0, height=4.5, clutter=14, cloud_points=5000,
                n_components=64, total_columns=700),
    trajectory=TrajectorySpec(radius=2.8, height=1.8, n_steps=30),
))

_stock(ScenarioSpec(
    name="warehouse-sparse",
    description="warehouse-scale map with almost no landmarks",
    tags=("room", "sparse", "large-map", "hard"),
    world_seed=12,
    map=MapSpec(size=8.0, height=4.5, clutter=1, cloud_points=2500,
                n_components=32, total_columns=500),
    trajectory=TrajectorySpec(radius=2.5, height=1.6, n_steps=30),
))

_stock(ScenarioSpec(
    name="urban-canyon-gps-denied",
    description="GPS-denied canyon: global init, tall walls, tight orbit",
    tags=("room", "global-init", "hard"),
    world_seed=13,
    map=MapSpec(size=5.0, height=6.0, clutter=8),
    trajectory=TrajectorySpec(radius=1.1, height=2.2, n_steps=30),
    init=InitSpec(mode="global", z_range=(1.0, 3.5)),
))

_stock(ScenarioSpec(
    name="sensor-dropout-burst",
    description="one mid-flight burst blanking 70% of depth pixels",
    tags=("room", "dropout", "degraded", "serving"),
    world_seed=14,
    sensor=SensorSpec(dropout_fraction=0.7, dropout_start=8,
                      dropout_steps=5),
))

_stock(ScenarioSpec(
    name="sensor-dropout-periodic",
    description="periodic 2-step dropout bursts every 6 steps (50% pixels)",
    tags=("room", "dropout", "degraded"),
    world_seed=15,
    trajectory=TrajectorySpec(n_steps=30),
    sensor=SensorSpec(dropout_fraction=0.5, dropout_start=4,
                      dropout_steps=2, dropout_period=6),
))

_stock(ScenarioSpec(
    name="sensor-degraded-lowres",
    description="tiny low-FOV depth sensor with few scan points",
    tags=("room", "degraded", "sensor"),
    world_seed=16,
    sensor=SensorSpec(width=16, height=12, fov_x_deg=50.0, max_pixels=16),
))

_stock(ScenarioSpec(
    name="night-noisy-sensor",
    description="heavy multiplicative depth noise (night / low reflectance)",
    tags=("room", "noise", "degraded"),
    world_seed=17,
    noise=NoiseSpec(depth_noise_std=0.06),
))

_stock(ScenarioSpec(
    name="adc-low-precision",
    description="2-bit log-ADC CIM regime (paper's precision floor)",
    tags=("room", "precision", "serving"),
    world_seed=18,
    precision=PrecisionSpec(adc_bits=2),
))

_stock(ScenarioSpec(
    name="adc-high-precision",
    description="8-bit log-ADC CIM regime (precision headroom)",
    tags=("room", "precision"),
    world_seed=19,
    precision=PrecisionSpec(adc_bits=8),
))

_stock(ScenarioSpec(
    name="digital-low-precision",
    description="4-bit digital datapath baseline stress",
    tags=("room", "precision", "digital"),
    world_seed=20,
    precision=PrecisionSpec(digital_bits=4),
))

_stock(ScenarioSpec(
    name="map-misfit-sparse",
    description="map model starved to 8 components on a cluttered room",
    tags=("room", "misfit", "hard"),
    world_seed=21,
    map=MapSpec(clutter=8, n_components=8),
))

_stock(ScenarioSpec(
    name="map-misfit-converted",
    description="width-snapped converted HMGM fit instead of direct",
    tags=("room", "misfit"),
    world_seed=22,
    map=MapSpec(fit_mode="convert"),
))

_stock(ScenarioSpec(
    name="map-adversarial-clutter",
    description="dense clutter + coarse noisy mapping cloud",
    tags=("room", "misfit", "clutter", "hard"),
    world_seed=23,
    map=MapSpec(clutter=12, cloud_points=1200, cloud_noise_std=0.05,
                min_sigma=0.12),
))

_stock(ScenarioSpec(
    name="long-duration-drift",
    description="60-step double orbit with a forward odometry bias",
    tags=("room", "drift", "long"),
    world_seed=24,
    trajectory=TrajectorySpec(n_steps=60, sweep_rad=12.566370614359172),
    noise=NoiseSpec(odometry_bias=0.02),
))

_stock(ScenarioSpec(
    name="odometry-biased",
    description="constant forward odometry bias (miscalibrated IMU)",
    tags=("room", "odometry", "degraded"),
    world_seed=25,
    noise=NoiseSpec(odometry_bias=0.05),
))

_stock(ScenarioSpec(
    name="odometry-noisy",
    description="heavy white odometry noise on every control",
    tags=("room", "odometry", "degraded"),
    world_seed=26,
    noise=NoiseSpec(odometry_noise=0.05),
))

_stock(ScenarioSpec(
    name="hover-station-keeping",
    description="near-stationary hover; belief must not wander",
    tags=("room", "hover"),
    world_seed=27,
    trajectory=TrajectorySpec(profile="hover", n_steps=25, radius=0.9,
                              height=1.0, height_wobble=0.05),
))

_stock(ScenarioSpec(
    name="figure8-aggressive",
    description="fast figure-8 with sharp heading reversals",
    tags=("room", "aggressive"),
    world_seed=28,
    trajectory=TrajectorySpec(profile="figure8", n_steps=35, radius=1.5,
                              height=1.3, height_wobble=0.25),
))

_stock(ScenarioSpec(
    name="global-relocalization",
    description="uniform global init on the nominal room (kidnapped robot)",
    tags=("room", "global-init", "hard"),
    world_seed=29,
    init=InitSpec(mode="global"),
))

_stock(ScenarioSpec(
    name="tabletop-inspection",
    description="RGB-D-Scenes-style tabletop orbit at close range",
    tags=("tabletop", "nominal"),
    world_seed=30,
    map=MapSpec(family="tabletop", size=1.2, height=0.7, clutter=4,
                cloud_points=2000, n_components=32, min_sigma=0.04),
    trajectory=TrajectorySpec(radius=0.9, height=0.6, n_steps=25,
                              height_wobble=0.08),
    sensor=SensorSpec(pitch_deg=35.0),
    init=InitSpec(offset=(0.15, -0.1, 0.05, 0.1),
                  sigma=(0.2, 0.2, 0.1, 0.2)),
))

_stock(ScenarioSpec(
    name="clean-oracle",
    description="noise-free world: no mismatch, no analog noise",
    tags=("room", "oracle"),
    world_seed=31,
    map=MapSpec(cloud_noise_std=0.0),
    noise=NoiseSpec(with_mismatch=False, with_noise=False),
))

_stock(ScenarioSpec(
    name="low-altitude-skim",
    description="skimming the floor: oblique returns, steep pitch",
    tags=("room", "aggressive", "sensor"),
    world_seed=32,
    trajectory=TrajectorySpec(radius=1.6, height=0.4, height_wobble=0.05),
    sensor=SensorSpec(pitch_deg=45.0),
))

_stock(ScenarioSpec(
    name="particle-starved",
    description="60-particle filter on the nominal room (compute floor)",
    tags=("room", "budget", "hard"),
    world_seed=33,
    n_particles=60,
))
