"""Loss functions: each returns (loss, gradient w.r.t. predictions)."""

from __future__ import annotations

import numpy as np


class MSELoss:
    """Mean squared error over all elements."""

    def __call__(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ValueError("prediction / target shape mismatch")
        diff = predictions - targets
        loss = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.size
        return loss, grad


class L1Loss:
    """Mean absolute error over all elements."""

    def __call__(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ValueError("prediction / target shape mismatch")
        diff = predictions - targets
        loss = float(np.mean(np.abs(diff)))
        grad = np.sign(diff) / diff.size
        return loss, grad


class GaussianNLLLoss:
    """Heteroscedastic Gaussian negative log-likelihood.

    Predictions are (B, 2D): the first D columns are means, the last D are
    log-variances (the aleatoric-uncertainty head of Kendall-style models).
    """

    def __init__(self, min_log_var: float = -10.0, max_log_var: float = 10.0):
        self.min_log_var = float(min_log_var)
        self.max_log_var = float(max_log_var)

    def __call__(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        predictions = np.atleast_2d(np.asarray(predictions, dtype=float))
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        d = targets.shape[1]
        if predictions.shape[1] != 2 * d:
            raise ValueError("predictions must be (B, 2*D) for (B, D) targets")
        mean = predictions[:, :d]
        log_var = np.clip(predictions[:, d:], self.min_log_var, self.max_log_var)
        inv_var = np.exp(-log_var)
        diff = mean - targets
        n = targets.size
        loss = float(np.sum(0.5 * (diff**2 * inv_var + log_var)) / n)
        grad = np.empty_like(predictions)
        grad[:, :d] = diff * inv_var / n
        grad[:, d:] = 0.5 * (1.0 - diff**2 * inv_var) / n
        # Clipped entries receive no gradient.
        clipped = (predictions[:, d:] <= self.min_log_var) | (
            predictions[:, d:] >= self.max_log_var
        )
        grad[:, d:][clipped] = 0.0
        return loss, grad


class SoftmaxCrossEntropyLoss:
    """Cross entropy with integrated softmax (targets are class indices)."""

    def __call__(
        self, logits: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        logits = np.atleast_2d(np.asarray(logits, dtype=float))
        targets = np.asarray(targets, dtype=np.int64).reshape(-1)
        if targets.shape[0] != logits.shape[0]:
            raise ValueError("batch size mismatch")
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        batch = logits.shape[0]
        eps = 1e-12
        loss = float(-np.mean(np.log(probs[np.arange(batch), targets] + eps)))
        grad = probs.copy()
        grad[np.arange(batch), targets] -= 1.0
        return loss, grad / batch
