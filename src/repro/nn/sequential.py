"""Sequential container."""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.nn.dropout import Dropout
from repro.nn.layers import Dense
from repro.nn.module import Module, Parameter


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, layers: Sequence[Module]):
        super().__init__()
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)

    def children(self) -> list[Module]:
        return list(self.layers)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def dense_layers(self) -> list[Dense]:
        """All Dense layers, in order (used by the CIM weight mapper)."""
        return [layer for layer in self.layers if isinstance(layer, Dense)]

    def dropout_layers(self) -> list[Dropout]:
        """All Dropout layers, in order (used by the mask scheduler)."""
        return [layer for layer in self.layers if isinstance(layer, Dropout)]
