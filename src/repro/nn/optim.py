"""Optimizers."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """Stochastic gradient descent with optional momentum and weight decay.

    Args:
        parameters: the parameters to update.
        lr: learning rate.
        momentum: classical momentum coefficient.
        weight_decay: L2 penalty coefficient.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1.0e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.parameters = list(parameters)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = parameter.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * parameter.value
            velocity *= self.momentum
            velocity -= self.lr * grad
            parameter.value += velocity

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()


class Adam:
    """Adam optimizer (Kingma & Ba).

    Args:
        parameters: the parameters to update.
        lr: learning rate.
        betas: exponential decay rates for the moment estimates.
        eps: numerical stabiliser.
        weight_decay: L2 penalty coefficient.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1.0e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1.0e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.parameters = list(parameters)
        self.lr = float(lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * parameter.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()
