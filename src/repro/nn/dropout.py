"""Dropout with externally controllable masks.

Standard frameworks sample dropout masks internally; the CIM engine needs
to (a) supply masks produced by the SRAM RNG and (b) *replay* a known mask
sequence for the compute-reuse schedule.  ``Dropout`` therefore accepts an
explicit mask per forward pass, falling back to internal Bernoulli sampling
when none is pinned.

In MC-Dropout the layer stays stochastic at inference time; that is
controlled by ``mc_mode`` rather than the train/eval flag so deterministic
evaluation of the same network remains one switch away.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Dropout(Module):
    """Inverted dropout.

    Args:
        p: drop probability (paper uses 0.5).
        rng: generator for internally sampled masks.
        mc_mode: keep dropping at evaluation time (MC-Dropout inference).
    """

    def __init__(
        self,
        p: float = 0.5,
        rng: np.random.Generator | None = None,
        mc_mode: bool = False,
    ):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("p must be in [0, 1)")
        self.p = float(p)
        self.mc_mode = bool(mc_mode)
        self._rng = rng or np.random.default_rng(0)
        self._pinned_mask: np.ndarray | None = None
        self._mask: np.ndarray | None = None

    @property
    def keep_probability(self) -> float:
        return 1.0 - self.p

    def pin_mask(self, mask: np.ndarray | None) -> None:
        """Pin an external keep-mask (1 = keep) for subsequent passes.

        The mask must broadcast against the layer input; pass ``None`` to
        return to internal sampling.
        """
        if mask is None:
            self._pinned_mask = None
            return
        mask = np.asarray(mask)
        if not np.isin(mask, (0, 1)).all():
            raise ValueError("mask entries must be 0/1")
        self._pinned_mask = mask.astype(float)

    @property
    def active(self) -> bool:
        """Whether dropout is applied in the current mode."""
        return (self.training or self.mc_mode) and self.p > 0.0

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if not self.active:
            self._mask = None
            return x
        if self._pinned_mask is not None:
            mask = np.broadcast_to(self._pinned_mask, x.shape).astype(float)
        else:
            mask = (self._rng.random(x.shape) >= self.p).astype(float)
        self._mask = mask
        return x * mask / self.keep_probability

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return np.asarray(grad_output, dtype=float)
        return grad_output * self._mask / self.keep_probability

    def last_mask(self) -> np.ndarray | None:
        """The mask used by the most recent forward pass (or None)."""
        return self._mask
