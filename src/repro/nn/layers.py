"""Dense and activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.init import xavier_uniform
from repro.nn.module import Module, Parameter


class Dense(Module):
    """Fully connected layer ``y = x @ W + b``.

    Args:
        in_features: input width.
        out_features: output width.
        rng: generator for Xavier initialisation.
        bias: include a bias vector.
        name: diagnostic name.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        name: str = "",
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(
            xavier_uniform((in_features, out_features), rng), name=f"{name}.W"
        )
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.b") if bias else None
        self._input: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.in_features:
            raise ValueError(f"expected {self.in_features} features, got {x.shape[1]}")
        self._input = x
        y = x @ self.weight.value
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward before forward")
        grad_output = np.atleast_2d(np.asarray(grad_output, dtype=float))
        self.weight.grad += self._input.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward")
        return np.where(self._mask, grad_output, 0.0)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        if negative_slope < 0:
            raise ValueError("negative_slope must be non-negative")
        self.negative_slope = float(negative_slope)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward")
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(np.asarray(x, dtype=float))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward before forward")
        return grad_output * (1.0 - self._output**2)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._output = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward before forward")
        return grad_output * self._output * (1.0 - self._output)


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward before forward")
        return np.asarray(grad_output, dtype=float).reshape(self._shape)
