"""Weight initialisers."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform init: U(+-gain * sqrt(6 / (fan_in + fan_out)))."""
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal init: N(0, sqrt(2 / fan_in)) (for ReLU nets)."""
    fan_in, _ = _fans(shape)
    return rng.normal(scale=np.sqrt(2.0 / fan_in), size=shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Conv kernels (out, in, kh, kw): receptive field multiplies the fans.
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
