"""Module and Parameter base types."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Attributes:
        value: the parameter array.
        grad: accumulated gradient (same shape), zeroed by the optimizer.
        name: optional diagnostic name.
    """

    def __init__(self, value: np.ndarray, name: str = ""):
        self.value = np.asarray(value, dtype=float)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter({self.name or 'unnamed'}, shape={self.value.shape})"


class Module:
    """Base class for layers.

    Subclasses implement ``forward`` (caching what ``backward`` needs) and
    ``backward`` (accumulating parameter gradients, returning the input
    gradient).  ``training`` toggles train/eval behaviour (dropout).
    """

    def __init__(self) -> None:
        self.training = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module (and children)."""
        return []

    def train(self) -> "Module":
        """Enter training mode (recursively)."""
        self._set_training(True)
        return self

    def eval(self) -> "Module":
        """Enter evaluation mode (recursively)."""
        self._set_training(False)
        return self

    def _set_training(self, flag: bool) -> None:
        self.training = flag
        for child in self.children():
            child._set_training(flag)

    def children(self) -> list["Module"]:
        """Direct sub-modules (override in containers)."""
        return []

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def n_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(int(np.prod(p.shape)) for p in self.parameters())
