"""2D convolution and pooling (im2col implementation).

Input layout is channels-first: (batch, channels, height, width).
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import he_normal
from repro.nn.module import Module, Parameter


def _im2col(
    x: np.ndarray, kernel: int, stride: int
) -> tuple[np.ndarray, int, int]:
    """Unfold (B, C, H, W) into (B, out_h * out_w, C * k * k) patches."""
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    strides = x.strides
    shape = (batch, channels, out_h, out_w, kernel, kernel)
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=shape,
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h * out_w, channels * kernel * kernel
    )
    return np.ascontiguousarray(cols), out_h, out_w


class Conv2d(Module):
    """2D convolution (valid padding unless ``padding`` is given).

    Args:
        in_channels / out_channels: channel counts.
        kernel_size: square kernel side.
        rng: generator for He initialisation.
        stride: spatial stride.
        padding: symmetric zero padding.
        bias: include per-channel bias.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        name: str = "",
    ):
        super().__init__()
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("bad conv hyper-parameters")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.weight = Parameter(
            he_normal((out_channels, in_channels, kernel_size, kernel_size), rng),
            name=f"{name}.W",
        )
        self.bias = Parameter(np.zeros(out_channels), name=f"{name}.b") if bias else None
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None
        self._out_hw: tuple[int, int] | None = None

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(f"expected (B, {self.in_channels}, H, W), got {x.shape}")
        if self.padding > 0:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (self.padding, self.padding), (self.padding, self.padding)),
            )
        self._x_shape = x.shape
        cols, out_h, out_w = _im2col(x, self.kernel_size, self.stride)
        self._cols = cols
        self._out_hw = (out_h, out_w)
        w_flat = self.weight.value.reshape(self.out_channels, -1)
        out = cols @ w_flat.T
        if self.bias is not None:
            out = out + self.bias.value
        return out.transpose(0, 2, 1).reshape(x.shape[0], self.out_channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None:
            raise RuntimeError("backward before forward")
        batch = grad_output.shape[0]
        out_h, out_w = self._out_hw
        grad = (
            np.asarray(grad_output, dtype=float)
            .reshape(batch, self.out_channels, out_h * out_w)
            .transpose(0, 2, 1)
        )
        w_flat = self.weight.value.reshape(self.out_channels, -1)
        self.weight.grad += (
            np.einsum("bpo,bpk->ok", grad, self._cols)
        ).reshape(self.weight.value.shape)
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0, 1))
        grad_cols = grad @ w_flat
        # Fold the column gradient back onto the (padded) input.
        _, channels, height, width = self._x_shape
        grad_x = np.zeros((batch, channels, height, width))
        k, s = self.kernel_size, self.stride
        patch = grad_cols.reshape(batch, out_h, out_w, channels, k, k)
        for i in range(out_h):
            for j in range(out_w):
                grad_x[:, :, i * s : i * s + k, j * s : j * s + k] += patch[:, i, j]
        if self.padding > 0:
            grad_x = grad_x[
                :, :, self.padding : height - self.padding, self.padding : width - self.padding
            ]
        return grad_x


class MaxPool2d(Module):
    """Max pooling with square window and matching stride."""

    def __init__(self, kernel_size: int = 2):
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = int(kernel_size)
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        batch, channels, height, width = x.shape
        k = self.kernel_size
        out_h, out_w = height // k, width // k
        trimmed = x[:, :, : out_h * k, : out_w * k]
        self._x_shape = x.shape
        windows = trimmed.reshape(batch, channels, out_h, k, out_w, k)
        windows = windows.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, out_h, out_w, k * k
        )
        self._argmax = windows.argmax(axis=-1)
        return windows.max(axis=-1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._argmax is None:
            raise RuntimeError("backward before forward")
        batch, channels, height, width = self._x_shape
        k = self.kernel_size
        out_h, out_w = height // k, width // k
        grad_windows = np.zeros((batch, channels, out_h, out_w, k * k))
        b, c, i, j = np.indices((batch, channels, out_h, out_w))
        grad_windows[b, c, i, j, self._argmax] = grad_output
        grad_x = np.zeros((batch, channels, height, width))
        grad_x[:, :, : out_h * k, : out_w * k] = (
            grad_windows.reshape(batch, channels, out_h, out_w, k, k)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(batch, channels, out_h * k, out_w * k)
        )
        return grad_x
