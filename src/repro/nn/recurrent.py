"""LSTM layer with full backpropagation through time.

Included because the VO literature the paper builds on (PoseLSTM, DeepVO)
models sequential dependencies between frames; the sequence variant of the
VO pipeline uses this layer.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import xavier_uniform
from repro.nn.module import Module, Parameter


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class LSTM(Module):
    """A single-layer LSTM over (batch, time, features) sequences.

    Returns the full hidden-state sequence (batch, time, hidden); stack a
    Dense head on the last step for sequence regression.

    Args:
        input_size: feature width.
        hidden_size: hidden-state width.
        rng: generator for initialisation.
        return_sequence: if False, forward returns only the last hidden
            state (batch, hidden).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        return_sequence: bool = True,
        name: str = "lstm",
    ):
        super().__init__()
        if input_size < 1 or hidden_size < 1:
            raise ValueError("sizes must be positive")
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        self.return_sequence = bool(return_sequence)
        # Gate order: input, forget, cell, output (i, f, g, o).
        self.w_x = Parameter(
            xavier_uniform((input_size, 4 * hidden_size), rng), name=f"{name}.Wx"
        )
        self.w_h = Parameter(
            xavier_uniform((hidden_size, 4 * hidden_size), rng), name=f"{name}.Wh"
        )
        bias = np.zeros(4 * hidden_size)
        # Forget-gate bias starts at 1 (standard trick for gradient flow).
        bias[hidden_size : 2 * hidden_size] = 1.0
        self.bias = Parameter(bias, name=f"{name}.b")
        self._cache: dict | None = None

    def parameters(self) -> list[Parameter]:
        return [self.w_x, self.w_h, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(f"expected (B, T, {self.input_size}), got {x.shape}")
        batch, steps, _ = x.shape
        h = np.zeros((batch, self.hidden_size))
        c = np.zeros((batch, self.hidden_size))
        hs = np.empty((batch, steps, self.hidden_size))
        cache = {"x": x, "h": [], "c": [], "gates": [], "c_prev": [], "h_prev": []}
        for t in range(steps):
            pre = x[:, t] @ self.w_x.value + h @ self.w_h.value + self.bias.value
            i = _sigmoid(pre[:, : self.hidden_size])
            f = _sigmoid(pre[:, self.hidden_size : 2 * self.hidden_size])
            g = np.tanh(pre[:, 2 * self.hidden_size : 3 * self.hidden_size])
            o = _sigmoid(pre[:, 3 * self.hidden_size :])
            cache["c_prev"].append(c)
            cache["h_prev"].append(h)
            c = f * c + i * g
            h = o * np.tanh(c)
            hs[:, t] = h
            cache["gates"].append((i, f, g, o))
            cache["c"].append(c)
            cache["h"].append(h)
        self._cache = cache
        return hs if self.return_sequence else hs[:, -1]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        cache = self._cache
        x = cache["x"]
        batch, steps, _ = x.shape
        grad_output = np.asarray(grad_output, dtype=float)
        if not self.return_sequence:
            full = np.zeros((batch, steps, self.hidden_size))
            full[:, -1] = grad_output
            grad_output = full
        grad_x = np.zeros_like(x)
        dh_next = np.zeros((batch, self.hidden_size))
        dc_next = np.zeros((batch, self.hidden_size))
        for t in reversed(range(steps)):
            i, f, g, o = cache["gates"][t]
            c = cache["c"][t]
            c_prev = cache["c_prev"][t]
            h_prev = cache["h_prev"][t]
            dh = grad_output[:, t] + dh_next
            tanh_c = np.tanh(c)
            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c**2) + dc_next
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dc_next = dc * f
            d_pre = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g**2),
                    do * o * (1.0 - o),
                ],
                axis=1,
            )
            self.w_x.grad += x[:, t].T @ d_pre
            self.w_h.grad += h_prev.T @ d_pre
            self.bias.grad += d_pre.sum(axis=0)
            grad_x[:, t] = d_pre @ self.w_x.value.T
            dh_next = d_pre @ self.w_h.value.T
        return grad_x
