"""A from-scratch numpy neural-network framework.

Built because the CIM MC-Dropout engine needs surgical control over things
deep-learning frameworks hide: externally supplied dropout masks (they come
from the SRAM RNG), per-layer fixed-point weight quantisation (the macro
stores 4/6-bit weights), and access to per-layer matrix-vector products (the
compute-reuse engine replays them incrementally).

Layers implement explicit ``forward``/``backward`` passes (no autograd);
gradients are verified against finite differences in the test suite.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    Dense,
    Flatten,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.conv import Conv2d, MaxPool2d
from repro.nn.recurrent import LSTM
from repro.nn.dropout import Dropout
from repro.nn.sequential import Sequential
from repro.nn.losses import (
    GaussianNLLLoss,
    L1Loss,
    MSELoss,
    SoftmaxCrossEntropyLoss,
)
from repro.nn.optim import SGD, Adam
from repro.nn.init import he_normal, xavier_uniform
from repro.nn.quantization import (
    QuantizationSpec,
    dequantize,
    quantize,
    quantize_model_weights,
)
from repro.nn.serialization import load_state, save_state

__all__ = [
    "Module",
    "Parameter",
    "Dense",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Conv2d",
    "MaxPool2d",
    "LSTM",
    "Dropout",
    "Sequential",
    "MSELoss",
    "L1Loss",
    "GaussianNLLLoss",
    "SoftmaxCrossEntropyLoss",
    "SGD",
    "Adam",
    "xavier_uniform",
    "he_normal",
    "QuantizationSpec",
    "quantize",
    "dequantize",
    "quantize_model_weights",
    "save_state",
    "load_state",
]
