"""Uniform fixed-point quantisation (the CIM macro's number format).

Symmetric signed quantisation around zero: values are snapped to the grid
``scale * k`` for integer codes ``k`` in ``[-(2^(b-1) - 1), 2^(b-1) - 1]``.
The macro stores weights this way; activations are quantised by the input
DAC path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizationSpec:
    """A symmetric uniform quantiser.

    Attributes:
        bits: total bit width (1 sign bit included).
        max_value: the full-scale magnitude mapped to the top code.
    """

    bits: int
    max_value: float

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise ValueError("need at least 2 bits for signed quantisation")
        if self.max_value <= 0:
            raise ValueError("max_value must be positive")

    @property
    def levels(self) -> int:
        """Positive code count (codes run -levels..+levels)."""
        return 2 ** (self.bits - 1) - 1

    @property
    def scale(self) -> float:
        """Value of one LSB."""
        return self.max_value / self.levels

    @staticmethod
    def for_tensor(tensor: np.ndarray, bits: int) -> "QuantizationSpec":
        """Spec whose full scale covers the tensor's max magnitude."""
        max_value = float(np.max(np.abs(tensor)))
        if max_value == 0:
            max_value = 1.0
        return QuantizationSpec(bits=bits, max_value=max_value)


def quantize(tensor: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Integer codes for a tensor (clipped to the representable range)."""
    tensor = np.asarray(tensor, dtype=float)
    codes = np.rint(tensor / spec.scale)
    return np.clip(codes, -spec.levels, spec.levels).astype(np.int64)


def dequantize(codes: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Real values represented by integer codes."""
    return np.asarray(codes, dtype=float) * spec.scale


def quantization_error(tensor: np.ndarray, spec: QuantizationSpec) -> float:
    """RMS quantisation error of representing ``tensor`` under ``spec``."""
    reconstructed = dequantize(quantize(tensor, spec), spec)
    return float(np.sqrt(np.mean((tensor - reconstructed) ** 2)))


def quantize_model_weights(model, bits: int) -> dict[str, QuantizationSpec]:
    """Quantise every parameter of a model in place (fake quantisation).

    Each parameter gets its own full-scale calibration.  Returns the spec
    used per parameter name, so callers can reproduce the mapping on the
    macro.
    """
    specs: dict[str, QuantizationSpec] = {}
    for index, parameter in enumerate(model.parameters()):
        spec = QuantizationSpec.for_tensor(parameter.value, bits)
        parameter.value = dequantize(quantize(parameter.value, spec), spec)
        specs[parameter.name or f"param{index}"] = spec
    return specs
