"""Model state save/load (npz)."""

from __future__ import annotations

import os

import numpy as np


def save_state(model, path: str) -> None:
    """Save all parameters of ``model`` to an ``.npz`` file."""
    arrays = {}
    for index, parameter in enumerate(model.parameters()):
        key = f"{index:03d}:{parameter.name or 'param'}"
        arrays[key] = parameter.value
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **arrays)


def load_state(model, path: str) -> None:
    """Load parameters saved by :func:`save_state` into ``model``.

    Parameters are matched positionally; shapes must agree.
    """
    data = np.load(path)
    keys = sorted(data.files)
    parameters = model.parameters()
    if len(keys) != len(parameters):
        raise ValueError(
            f"checkpoint has {len(keys)} arrays, model has {len(parameters)} parameters"
        )
    for key, parameter in zip(keys, parameters):
        value = data[key]
        if value.shape != parameter.value.shape:
            raise ValueError(
                f"shape mismatch for {key}: {value.shape} vs {parameter.value.shape}"
            )
        parameter.value = value.astype(float)
