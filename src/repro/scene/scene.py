"""Composable 3D scenes built from SDF primitives.

A :class:`Scene` is a union of primitives; its SDF is the pointwise minimum.
``make_tabletop_scene`` procedurally generates scenes with the flavour of the
RGB-D Scenes Dataset v2 used by the paper: a table top carrying a handful of
household-object-sized primitives above a floor plane.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.scene.primitives import Box, Cylinder, Plane, Primitive, Sphere


class Scene:
    """A union of SDF primitives with point-cloud sampling utilities."""

    def __init__(self, primitives: Sequence[Primitive], name: str = "scene"):
        if not primitives:
            raise ValueError("a scene needs at least one primitive")
        self._primitives = list(primitives)
        self.name = name

    @property
    def primitives(self) -> list[Primitive]:
        return list(self._primitives)

    def distance(self, points: np.ndarray) -> np.ndarray:
        """Scene SDF: minimum over primitive SDFs, shape (N,)."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        distances = np.stack([p.distance(points) for p in self._primitives], axis=0)
        return distances.min(axis=0)

    def normals(self, points: np.ndarray, eps: float = 1e-4) -> np.ndarray:
        """Estimate outward surface normals via central finite differences."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        grad = np.zeros_like(points)
        for axis in range(3):
            offset = np.zeros(3)
            offset[axis] = eps
            grad[:, axis] = self.distance(points + offset) - self.distance(points - offset)
        norms = np.linalg.norm(grad, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return grad / norms

    def sample_point_cloud(
        self,
        n_points: int,
        rng: np.random.Generator,
        noise_std: float = 0.0,
        weights: Sequence[float] | None = None,
    ) -> np.ndarray:
        """Sample a synthetic scanner point cloud from all primitive surfaces.

        Args:
            n_points: total number of points.
            rng: random generator.
            noise_std: isotropic Gaussian sensor noise added to each point.
            weights: relative sampling weight per primitive (default: by
                bounding radius, a cheap area proxy).

        Returns:
            (n_points, 3) array of surface samples.
        """
        if weights is None:
            weights = [p.bounding_radius() ** 2 for p in self._primitives]
        weights = np.asarray(weights, dtype=float)
        weights = weights / weights.sum()
        counts = rng.multinomial(n_points, weights)
        parts = [
            prim.sample_surface(int(count), rng)
            for prim, count in zip(self._primitives, counts)
            if count > 0
        ]
        cloud = np.concatenate(parts, axis=0)
        if noise_std > 0:
            cloud = cloud + rng.normal(scale=noise_std, size=cloud.shape)
        return cloud

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounds (lo, hi) containing all primitive centers+radii."""
        centers = np.stack([p.center() for p in self._primitives], axis=0)
        radii = np.array([p.bounding_radius() for p in self._primitives])
        lo = (centers - radii[:, None]).min(axis=0)
        hi = (centers + radii[:, None]).max(axis=0)
        return lo, hi

    def centroid(self) -> np.ndarray:
        """Mean of primitive centers; a convenient camera look-at target."""
        centers = np.stack([p.center() for p in self._primitives], axis=0)
        return centers.mean(axis=0)


def make_room_scene(
    rng: np.random.Generator,
    room_size: float = 4.0,
    room_height: float = 2.6,
    n_furniture: int = 5,
    name: str | None = None,
) -> Scene:
    """Procedurally generate a room-scale indoor scene for drone localization.

    The insect-scale drone of the paper flies through indoor rooms; the map
    structures at this scale (walls, furniture) are 0.3-2 m across, matching
    the widths the inverter-array kernels can realise.

    Args:
        rng: random generator controlling the layout.
        room_size: side length of the (square) room in meters.
        room_height: ceiling height.
        n_furniture: number of furniture-sized boxes/cylinders.
        name: optional scene name.

    Returns:
        A :class:`Scene` with floor, two walls and furniture.
    """
    if n_furniture < 0:
        raise ValueError("n_furniture must be non-negative")
    half = room_size / 2.0
    primitives: list[Primitive] = [
        Plane([0.0, 0.0, 1.0], 0.0, patch_center=[0.0, 0.0, 0.0], patch_radius=half),
        # Two walls (finite boxes keep the SDF bounded for sphere tracing).
        Box(center=[-half, 0.0, room_height / 2], extents=[0.1, room_size, room_height]),
        Box(center=[0.0, -half, room_height / 2], extents=[room_size, 0.1, room_height]),
    ]
    for _ in range(n_furniture):
        xy = rng.uniform(-half + 0.5, half - 0.5, size=2)
        kind = rng.choice(["box", "tall_box", "cylinder"])
        if kind == "box":
            extents = rng.uniform([0.4, 0.4, 0.3], [1.2, 1.2, 0.9])
            primitives.append(Box([xy[0], xy[1], extents[2] / 2.0], extents))
        elif kind == "tall_box":
            extents = rng.uniform([0.3, 0.3, 1.2], [0.8, 0.8, 2.0])
            primitives.append(Box([xy[0], xy[1], extents[2] / 2.0], extents))
        else:
            radius = float(rng.uniform(0.15, 0.4))
            height = float(rng.uniform(0.5, 1.4))
            primitives.append(Cylinder([xy[0], xy[1], height / 2.0], radius, height))
    return Scene(primitives, name=name or f"room-{n_furniture}items")


def make_tabletop_scene(
    rng: np.random.Generator,
    n_objects: int = 4,
    table_size: float = 1.2,
    table_height: float = 0.7,
    with_floor: bool = True,
    name: str | None = None,
) -> Scene:
    """Procedurally generate a tabletop scene (RGB-D Scenes v2 flavour).

    The scene has a box table whose top surface sits at ``table_height``,
    ``n_objects`` small primitives (boxes / spheres / cylinders of household
    object scale) resting on the table, and optionally a floor plane.

    Args:
        rng: random generator controlling the layout.
        n_objects: number of objects placed on the table.
        table_size: side length of the (square) table top in meters.
        table_height: height of the table-top surface above the floor.
        with_floor: include a floor plane at z = 0.
        name: optional scene name.

    Returns:
        A :class:`Scene`.
    """
    if n_objects < 0:
        raise ValueError("n_objects must be non-negative")
    primitives: list[Primitive] = []
    top_thickness = 0.05
    table_top_z = table_height
    primitives.append(
        Box(
            center=[0.0, 0.0, table_top_z - top_thickness / 2.0],
            extents=[table_size, table_size, top_thickness],
        )
    )
    # A single box pedestal keeps the SDF cheap while looking table-like.
    primitives.append(
        Box(
            center=[0.0, 0.0, (table_top_z - top_thickness) / 2.0],
            extents=[0.15, 0.15, table_top_z - top_thickness],
        )
    )
    placement_half = table_size / 2.0 - 0.15
    for _ in range(n_objects):
        xy = rng.uniform(-placement_half, placement_half, size=2)
        kind = rng.choice(["box", "sphere", "cylinder"])
        if kind == "box":
            extents = rng.uniform(0.06, 0.18, size=3)
            center = [xy[0], xy[1], table_top_z + extents[2] / 2.0]
            primitives.append(Box(center, extents))
        elif kind == "sphere":
            radius = float(rng.uniform(0.04, 0.09))
            primitives.append(Sphere([xy[0], xy[1], table_top_z + radius], radius))
        else:
            radius = float(rng.uniform(0.03, 0.06))
            height = float(rng.uniform(0.08, 0.22))
            primitives.append(Cylinder([xy[0], xy[1], table_top_z + height / 2.0], radius, height))
    if with_floor:
        primitives.append(
            Plane(
                normal=[0.0, 0.0, 1.0],
                offset=0.0,
                patch_center=[0.0, 0.0, 0.0],
                patch_radius=2.5,
            )
        )
    return Scene(primitives, name=name or f"tabletop-{n_objects}obj")
