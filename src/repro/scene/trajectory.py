"""Smooth camera trajectories for synthetic RGB-D sequences.

The paper's dataset (RGB-D Scenes v2) consists of a handheld sensor orbiting
tabletop scenes; :func:`orbit_trajectory` reproduces that flavour, while
:func:`lissajous_trajectory` provides a richer 3D flight path for the drone
experiments.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.scene.se3 import Pose


def look_at(eye: np.ndarray, target: np.ndarray, world_up: np.ndarray | None = None) -> Pose:
    """Camera pose at ``eye`` looking toward ``target``.

    Uses the CV camera convention (+Z forward, +X right, +Y down).

    Args:
        eye: camera position in world frame.
        target: world point the optical axis passes through.
        world_up: world up direction (default +Z).

    Returns:
        A :class:`Pose` mapping camera frame to world frame.
    """
    eye = np.asarray(eye, dtype=float)
    target = np.asarray(target, dtype=float)
    if world_up is None:
        world_up = np.array([0.0, 0.0, 1.0])
    forward = target - eye
    norm = np.linalg.norm(forward)
    if norm < 1e-12:
        raise ValueError("eye and target coincide")
    forward = forward / norm
    right = np.cross(forward, world_up)
    right_norm = np.linalg.norm(right)
    if right_norm < 1e-9:
        # Looking straight up/down: pick an arbitrary right vector.
        right = np.cross(forward, np.array([1.0, 0.0, 0.0]))
        right_norm = np.linalg.norm(right)
    right = right / right_norm
    down = np.cross(forward, right)
    rotation = np.stack([right, down, forward], axis=1)
    return Pose(rotation, eye)


class Trajectory:
    """A discrete sequence of camera poses with timestamps."""

    def __init__(self, poses: Sequence[Pose], timestamps: Sequence[float] | None = None):
        if not poses:
            raise ValueError("trajectory needs at least one pose")
        self._poses = list(poses)
        if timestamps is None:
            timestamps = np.arange(len(poses), dtype=float)
        self._timestamps = np.asarray(timestamps, dtype=float)
        if self._timestamps.ndim != 1 or len(self._timestamps) != len(self._poses):
            raise ValueError(
                f"timestamps must be a 1-D sequence matching the "
                f"{len(self._poses)} pose(s), got shape "
                f"{self._timestamps.shape}"
            )
        if not np.all(np.isfinite(self._timestamps)):
            raise ValueError("timestamps must be finite (no NaN/Inf)")
        if np.any(np.diff(self._timestamps) <= 0):
            raise ValueError(
                "timestamps must be strictly increasing, got "
                f"{self._timestamps.tolist()}"
            )

    def __len__(self) -> int:
        return len(self._poses)

    def __getitem__(self, index: int) -> Pose:
        return self._poses[index]

    def __iter__(self):
        return iter(self._poses)

    @property
    def timestamps(self) -> np.ndarray:
        return self._timestamps.copy()

    def positions(self) -> np.ndarray:
        """(N, 3) array of camera positions."""
        return np.stack([p.translation for p in self._poses], axis=0)

    def relative_increments(self) -> list[Pose]:
        """Frame-to-frame odometry increments ``T_{t-1}^{-1} @ T_t``."""
        return [
            self._poses[i].relative_to(self._poses[i - 1])
            for i in range(1, len(self._poses))
        ]

    def total_length(self) -> float:
        """Total path length of the positions polyline."""
        positions = self.positions()
        return float(np.linalg.norm(np.diff(positions, axis=0), axis=1).sum())


def orbit_trajectory(
    target: np.ndarray,
    radius: float,
    height: float,
    n_poses: int,
    sweep_rad: float = 2.0 * np.pi,
    height_wobble: float = 0.0,
    radius_wobble: float = 0.0,
    start_angle: float = 0.0,
    dt: float = 1.0 / 30.0,
    speed_jitter: float = 0.0,
    rng: np.random.Generator | None = None,
) -> Trajectory:
    """Camera orbit around ``target`` (RGB-D Scenes style handheld sweep).

    Args:
        target: look-at point (e.g. scene centroid).
        radius: nominal orbit radius in the XY plane.
        height: camera height above the target.
        n_poses: number of poses.
        sweep_rad: total swept angle.
        height_wobble: sinusoidal height variation amplitude.
        radius_wobble: sinusoidal radius variation amplitude.
        start_angle: initial azimuth.
        dt: time between frames (seconds).
        speed_jitter: relative per-step variation of the angular speed
            (handheld-motion irregularity -- gives VO nets something to
            regress beyond a constant increment).
        rng: generator for the speed jitter (required if jitter > 0).
    """
    if n_poses < 1:
        raise ValueError("n_poses must be >= 1")
    if speed_jitter > 0 and rng is None:
        raise ValueError("rng required when speed_jitter > 0")
    target = np.asarray(target, dtype=float)
    if speed_jitter > 0 and n_poses > 1:
        steps = np.full(n_poses - 1, sweep_rad / (n_poses - 1))
        steps = steps * np.clip(
            1.0 + rng.normal(scale=speed_jitter, size=steps.size), 0.1, None
        )
        steps = steps * (sweep_rad / steps.sum())
        angles = start_angle + np.concatenate([[0.0], np.cumsum(steps)])
    else:
        angles = start_angle + np.linspace(0.0, sweep_rad, n_poses)
    poses = []
    for k, angle in enumerate(angles):
        phase = 2.0 * np.pi * k / max(n_poses - 1, 1)
        r = radius + radius_wobble * np.sin(3.0 * phase)
        h = height + height_wobble * np.sin(2.0 * phase)
        eye = target + np.array([r * np.cos(angle), r * np.sin(angle), h])
        poses.append(look_at(eye, target))
    timestamps = dt * np.arange(n_poses)
    return Trajectory(poses, timestamps)


def drone_orbit_states(
    center: np.ndarray,
    radius: float,
    height: float,
    n_steps: int,
    sweep_rad: float = 2.0 * np.pi,
    height_wobble: float = 0.15,
    start_angle: float = 0.0,
) -> np.ndarray:
    """Drone flight as (T, 4) ``(x, y, z, yaw)`` states for localization.

    The drone circles ``center`` with its heading tangent to the path (yaw
    follows the direction of travel), the state parameterisation used by
    the particle filter.  Convert to camera poses with
    :func:`repro.filtering.measurement.state_to_pose` plus a fixed camera
    mount.

    Args:
        center: orbit center (3,).
        radius: orbit radius (m).
        height: mean flight height (m).
        n_steps: number of states.
        sweep_rad: total swept angle.
        height_wobble: sinusoidal height variation amplitude (m).
        start_angle: initial azimuth (rad).
    """
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    center = np.asarray(center, dtype=float)
    angles = start_angle + np.linspace(0.0, sweep_rad, n_steps)
    states = np.empty((n_steps, 4))
    states[:, 0] = center[0] + radius * np.cos(angles)
    states[:, 1] = center[1] + radius * np.sin(angles)
    phase = np.linspace(0.0, 2.0 * np.pi, n_steps)
    states[:, 2] = center[2] + height + height_wobble * np.sin(2.0 * phase)
    # Heading tangent to the circle (counter-clockwise travel).
    states[:, 3] = np.mod(angles + np.pi / 2.0 + np.pi, 2.0 * np.pi) - np.pi
    return states


def states_to_controls(states: np.ndarray) -> np.ndarray:
    """Body-frame odometry controls between consecutive (T, 4) states.

    Returns (T-1, 4) rows ``(d_forward, d_lateral, d_up, d_yaw)`` -- the
    noiseless controls a motion model perturbs.
    """
    states = np.atleast_2d(np.asarray(states, dtype=float))
    if states.shape[0] < 2:
        raise ValueError("need at least two states")
    controls = np.empty((states.shape[0] - 1, 4))
    for t in range(1, states.shape[0]):
        yaw = states[t - 1, 3]
        delta_world = states[t, :3] - states[t - 1, :3]
        cos_y, sin_y = np.cos(yaw), np.sin(yaw)
        controls[t - 1, 0] = cos_y * delta_world[0] + sin_y * delta_world[1]
        controls[t - 1, 1] = -sin_y * delta_world[0] + cos_y * delta_world[1]
        controls[t - 1, 2] = delta_world[2]
        dyaw = states[t, 3] - states[t - 1, 3]
        controls[t - 1, 3] = np.mod(dyaw + np.pi, 2.0 * np.pi) - np.pi
    return controls


def lissajous_trajectory(
    center: np.ndarray,
    amplitude: np.ndarray,
    n_poses: int,
    freq: tuple[float, float, float] = (1.0, 2.0, 3.0),
    look_target: np.ndarray | None = None,
    dt: float = 1.0 / 30.0,
) -> Trajectory:
    """A 3D Lissajous flight path, look-at a fixed target (drone flavour).

    Args:
        center: center of the Lissajous figure.
        amplitude: per-axis amplitudes (3,).
        n_poses: number of poses.
        freq: per-axis angular frequency multipliers.
        look_target: look-at point (default: ``center``).
        dt: time between frames.
    """
    if n_poses < 1:
        raise ValueError("n_poses must be >= 1")
    center = np.asarray(center, dtype=float)
    amplitude = np.asarray(amplitude, dtype=float)
    if look_target is None:
        look_target = center
    look_target = np.asarray(look_target, dtype=float)
    t = np.linspace(0.0, 2.0 * np.pi, n_poses)
    poses = []
    for tk in t:
        eye = center + amplitude * np.array(
            [np.sin(freq[0] * tk), np.sin(freq[1] * tk + np.pi / 3), np.sin(freq[2] * tk + np.pi / 5)]
        )
        if np.linalg.norm(eye - look_target) < 1e-9:
            eye = eye + np.array([1e-6, 0.0, 0.0])
        poses.append(look_at(eye, look_target))
    timestamps = dt * np.arange(n_poses)
    return Trajectory(poses, timestamps)
