"""Signed-distance-field (SDF) primitives for procedural scenes.

Each primitive exposes:

- ``distance(points)``: vectorised signed distance from (N, 3) points to the
  surface (negative inside), used by the sphere-tracing renderer.
- ``sample_surface(n, rng)``: n points sampled on the surface, used to build
  synthetic "Kinect" point clouds for map fitting.
"""

from __future__ import annotations

import abc

import numpy as np


class Primitive(abc.ABC):
    """Base class for SDF primitives."""

    @abc.abstractmethod
    def distance(self, points: np.ndarray) -> np.ndarray:
        """Signed distance from (N, 3) points to the primitive surface."""

    @abc.abstractmethod
    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample n points uniformly-ish on the surface, shape (n, 3)."""

    @abc.abstractmethod
    def bounding_radius(self) -> float:
        """Radius of a sphere (around :meth:`center`) containing the surface."""

    @abc.abstractmethod
    def center(self) -> np.ndarray:
        """A representative center point of the primitive."""


class Sphere(Primitive):
    """A sphere given by center and radius."""

    def __init__(self, center: np.ndarray, radius: float):
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        self._center = np.asarray(center, dtype=float).reshape(3)
        self._radius = float(radius)

    @property
    def radius(self) -> float:
        return self._radius

    def distance(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return np.linalg.norm(points - self._center, axis=-1) - self._radius

    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        directions = rng.normal(size=(n, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        return self._center + self._radius * directions

    def bounding_radius(self) -> float:
        return self._radius

    def center(self) -> np.ndarray:
        return self._center.copy()


class Box(Primitive):
    """An axis-aligned box given by center and full extents (ex, ey, ez)."""

    def __init__(self, center: np.ndarray, extents: np.ndarray):
        self._center = np.asarray(center, dtype=float).reshape(3)
        self._half = np.asarray(extents, dtype=float).reshape(3) / 2.0
        if np.any(self._half <= 0):
            raise ValueError(f"extents must be positive, got {extents}")

    @property
    def extents(self) -> np.ndarray:
        return 2.0 * self._half

    def distance(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        q = np.abs(points - self._center) - self._half
        outside = np.linalg.norm(np.maximum(q, 0.0), axis=-1)
        inside = np.minimum(np.max(q, axis=-1), 0.0)
        return outside + inside

    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        ex, ey, ez = 2.0 * self._half
        # Face areas for +-x, +-y, +-z pairs.
        areas = np.array([ey * ez, ey * ez, ex * ez, ex * ez, ex * ey, ex * ey])
        face = rng.choice(6, size=n, p=areas / areas.sum())
        u = rng.uniform(-1.0, 1.0, size=(n, 3)) * self._half
        points = u.copy()
        axis = face // 2
        sign = np.where(face % 2 == 0, 1.0, -1.0)
        points[np.arange(n), axis] = sign * self._half[axis]
        return points + self._center

    def bounding_radius(self) -> float:
        return float(np.linalg.norm(self._half))

    def center(self) -> np.ndarray:
        return self._center.copy()


class Cylinder(Primitive):
    """A vertical (Z-aligned) capped cylinder: center, radius, height."""

    def __init__(self, center: np.ndarray, radius: float, height: float):
        if radius <= 0 or height <= 0:
            raise ValueError("radius and height must be positive")
        self._center = np.asarray(center, dtype=float).reshape(3)
        self._radius = float(radius)
        self._half_height = float(height) / 2.0

    @property
    def radius(self) -> float:
        return self._radius

    @property
    def height(self) -> float:
        return 2.0 * self._half_height

    def distance(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        local = points - self._center
        radial = np.linalg.norm(local[:, :2], axis=-1) - self._radius
        axial = np.abs(local[:, 2]) - self._half_height
        q = np.stack([radial, axial], axis=-1)
        outside = np.linalg.norm(np.maximum(q, 0.0), axis=-1)
        inside = np.minimum(np.max(q, axis=-1), 0.0)
        return outside + inside

    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        side_area = 2.0 * np.pi * self._radius * 2.0 * self._half_height
        cap_area = np.pi * self._radius**2
        probs = np.array([side_area, cap_area, cap_area])
        probs = probs / probs.sum()
        which = rng.choice(3, size=n, p=probs)
        theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
        points = np.zeros((n, 3))
        side = which == 0
        points[side, 0] = self._radius * np.cos(theta[side])
        points[side, 1] = self._radius * np.sin(theta[side])
        points[side, 2] = rng.uniform(-self._half_height, self._half_height, size=side.sum())
        for cap_index, z_sign in ((1, 1.0), (2, -1.0)):
            cap = which == cap_index
            r = self._radius * np.sqrt(rng.uniform(0.0, 1.0, size=cap.sum()))
            points[cap, 0] = r * np.cos(theta[cap])
            points[cap, 1] = r * np.sin(theta[cap])
            points[cap, 2] = z_sign * self._half_height
        return points + self._center

    def bounding_radius(self) -> float:
        return float(np.hypot(self._radius, self._half_height))

    def center(self) -> np.ndarray:
        return self._center.copy()


class Plane(Primitive):
    """An infinite plane ``normal . p = offset`` (SDF positive on normal side).

    ``sample_surface`` draws from a disc of ``patch_radius`` around the point
    of the plane closest to ``patch_center``.
    """

    def __init__(
        self,
        normal: np.ndarray,
        offset: float,
        patch_center: np.ndarray | None = None,
        patch_radius: float = 2.0,
    ):
        normal = np.asarray(normal, dtype=float).reshape(3)
        norm = np.linalg.norm(normal)
        if norm == 0:
            raise ValueError("plane normal must be non-zero")
        self._normal = normal / norm
        self._offset = float(offset) / norm
        if patch_center is None:
            patch_center = self._offset * self._normal
        self._patch_center = self._project(np.asarray(patch_center, dtype=float))
        self._patch_radius = float(patch_radius)

    def _project(self, point: np.ndarray) -> np.ndarray:
        return point - (point @ self._normal - self._offset) * self._normal

    def distance(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return points @ self._normal - self._offset

    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        # Build an orthonormal basis (u, v) of the plane.
        helper = np.array([1.0, 0.0, 0.0])
        if abs(self._normal @ helper) > 0.9:
            helper = np.array([0.0, 1.0, 0.0])
        u = np.cross(self._normal, helper)
        u /= np.linalg.norm(u)
        v = np.cross(self._normal, u)
        radii = self._patch_radius * np.sqrt(rng.uniform(0.0, 1.0, size=n))
        theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
        return (
            self._patch_center
            + radii[:, None] * np.cos(theta)[:, None] * u
            + radii[:, None] * np.sin(theta)[:, None] * v
        )

    def bounding_radius(self) -> float:
        return self._patch_radius

    def center(self) -> np.ndarray:
        return self._patch_center.copy()
