"""Rigid-body (SE(3)) pose math.

All rotations are represented as 3x3 orthonormal matrices internally; helpers
convert to/from XYZ Euler angles and unit quaternions.  A :class:`Pose` maps
points from its local frame to the world frame: ``p_world = R @ p_local + t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_EPS = 1e-12


def rotation_x(angle: float) -> np.ndarray:
    """Rotation matrix about the +X axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])


def rotation_y(angle: float) -> np.ndarray:
    """Rotation matrix about the +Y axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def rotation_z(angle: float) -> np.ndarray:
    """Rotation matrix about the +Z axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def euler_to_matrix(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """Compose an XYZ (roll-pitch-yaw) Euler triple into a rotation matrix.

    Convention: ``R = Rz(yaw) @ Ry(pitch) @ Rx(roll)`` (intrinsic x-y-z).
    """
    return rotation_z(yaw) @ rotation_y(pitch) @ rotation_x(roll)


def matrix_to_euler(rotation: np.ndarray) -> tuple[float, float, float]:
    """Recover (roll, pitch, yaw) from a rotation matrix.

    Inverse of :func:`euler_to_matrix`.  At the gimbal-lock singularity
    (|pitch| = pi/2) the roll is arbitrarily set to zero.
    """
    rotation = np.asarray(rotation, dtype=float)
    sin_pitch = -rotation[2, 0]
    sin_pitch = np.clip(sin_pitch, -1.0, 1.0)
    pitch = float(np.arcsin(sin_pitch))
    if abs(sin_pitch) < 1.0 - 1e-9:
        roll = float(np.arctan2(rotation[2, 1], rotation[2, 2]))
        yaw = float(np.arctan2(rotation[1, 0], rotation[0, 0]))
    else:
        roll = 0.0
        yaw = float(np.arctan2(-rotation[0, 1], rotation[1, 1]))
    return roll, pitch, yaw


def quaternion_to_matrix(quaternion: np.ndarray) -> np.ndarray:
    """Convert a (w, x, y, z) quaternion to a rotation matrix.

    The quaternion is normalised first, so any non-zero 4-vector is valid.
    """
    q = np.asarray(quaternion, dtype=float)
    norm = np.linalg.norm(q)
    if norm < _EPS:
        raise ValueError("zero-norm quaternion cannot be normalised")
    w, x, y, z = q / norm
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def matrix_to_quaternion(rotation: np.ndarray) -> np.ndarray:
    """Convert a rotation matrix to a (w, x, y, z) unit quaternion, w >= 0."""
    m = np.asarray(rotation, dtype=float)
    trace = m[0, 0] + m[1, 1] + m[2, 2]
    if trace > 0.0:
        s = 2.0 * np.sqrt(trace + 1.0)
        w = 0.25 * s
        x = (m[2, 1] - m[1, 2]) / s
        y = (m[0, 2] - m[2, 0]) / s
        z = (m[1, 0] - m[0, 1]) / s
    elif m[0, 0] >= m[1, 1] and m[0, 0] >= m[2, 2]:
        s = 2.0 * np.sqrt(1.0 + m[0, 0] - m[1, 1] - m[2, 2])
        w = (m[2, 1] - m[1, 2]) / s
        x = 0.25 * s
        y = (m[0, 1] + m[1, 0]) / s
        z = (m[0, 2] + m[2, 0]) / s
    elif m[1, 1] >= m[2, 2]:
        s = 2.0 * np.sqrt(1.0 + m[1, 1] - m[0, 0] - m[2, 2])
        w = (m[0, 2] - m[2, 0]) / s
        x = (m[0, 1] + m[1, 0]) / s
        y = 0.25 * s
        z = (m[1, 2] + m[2, 1]) / s
    else:
        s = 2.0 * np.sqrt(1.0 + m[2, 2] - m[0, 0] - m[1, 1])
        w = (m[1, 0] - m[0, 1]) / s
        x = (m[0, 2] + m[2, 0]) / s
        y = (m[1, 2] + m[2, 1]) / s
        z = 0.25 * s
    quat = np.array([w, x, y, z])
    quat /= np.linalg.norm(quat)
    if quat[0] < 0:
        quat = -quat
    return quat


def rotation_angle(rotation: np.ndarray) -> float:
    """Geodesic angle (radians, in [0, pi]) of a rotation matrix."""
    m = np.asarray(rotation, dtype=float)
    # atan2(|skew part|, trace-derived cos): arccos((tr-1)/2) alone loses
    # all precision near identity (cos(1e-8) rounds to 1.0 -> angle 0).
    sin_term = 0.5 * np.sqrt(
        (m[2, 1] - m[1, 2]) ** 2
        + (m[0, 2] - m[2, 0]) ** 2
        + (m[1, 0] - m[0, 1]) ** 2
    )
    cos_term = 0.5 * (float(np.trace(m)) - 1.0)
    return float(np.arctan2(sin_term, cos_term))


def _project_to_so3(matrix: np.ndarray) -> np.ndarray:
    """Project a near-rotation matrix onto SO(3) via SVD."""
    u, _, vt = np.linalg.svd(matrix)
    rotation = u @ vt
    if np.linalg.det(rotation) < 0:
        u[:, -1] = -u[:, -1]
        rotation = u @ vt
    return rotation


@dataclass(frozen=True)
class Pose:
    """A rigid transform mapping local coordinates to world coordinates.

    Attributes:
        rotation: 3x3 orthonormal matrix.
        translation: length-3 vector (the local origin in world frame).
    """

    rotation: np.ndarray = field(default_factory=lambda: np.eye(3))
    translation: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def __post_init__(self) -> None:
        rotation = np.asarray(self.rotation, dtype=float).reshape(3, 3)
        translation = np.asarray(self.translation, dtype=float).reshape(3)
        object.__setattr__(self, "rotation", rotation)
        object.__setattr__(self, "translation", translation)

    @staticmethod
    def identity() -> "Pose":
        """The identity transform."""
        return Pose()

    @staticmethod
    def from_euler(
        position: np.ndarray, roll: float = 0.0, pitch: float = 0.0, yaw: float = 0.0
    ) -> "Pose":
        """Build a pose from a position and XYZ Euler angles."""
        return Pose(euler_to_matrix(roll, pitch, yaw), np.asarray(position, dtype=float))

    @staticmethod
    def from_matrix(matrix: np.ndarray) -> "Pose":
        """Build a pose from a 4x4 homogeneous transform matrix."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (4, 4):
            raise ValueError(f"expected 4x4 matrix, got {matrix.shape}")
        return Pose(matrix[:3, :3], matrix[:3, 3])

    def as_matrix(self) -> np.ndarray:
        """Return the 4x4 homogeneous transform matrix."""
        matrix = np.eye(4)
        matrix[:3, :3] = self.rotation
        matrix[:3, 3] = self.translation
        return matrix

    def compose(self, other: "Pose") -> "Pose":
        """Compose with another pose: ``self @ other`` (apply other first)."""
        return Pose(
            self.rotation @ other.rotation,
            self.rotation @ other.translation + self.translation,
        )

    def __matmul__(self, other: "Pose") -> "Pose":
        return self.compose(other)

    def inverse(self) -> "Pose":
        """The inverse transform."""
        rotation_t = self.rotation.T
        return Pose(rotation_t, -rotation_t @ self.translation)

    def relative_to(self, reference: "Pose") -> "Pose":
        """Express this pose in the frame of ``reference``.

        ``reference @ result == self``; the usual frame-to-frame odometry
        increment between consecutive camera poses.
        """
        return reference.inverse().compose(self)

    def transform_points(self, points: np.ndarray) -> np.ndarray:
        """Map an (N, 3) array of local points into the world frame."""
        points = np.asarray(points, dtype=float)
        return points @ self.rotation.T + self.translation

    def inverse_transform_points(self, points: np.ndarray) -> np.ndarray:
        """Map an (N, 3) array of world points into the local frame."""
        points = np.asarray(points, dtype=float)
        return (points - self.translation) @ self.rotation

    def rotate_vectors(self, vectors: np.ndarray) -> np.ndarray:
        """Rotate (N, 3) direction vectors into the world frame (no shift)."""
        return np.asarray(vectors, dtype=float) @ self.rotation.T

    def euler(self) -> tuple[float, float, float]:
        """Return (roll, pitch, yaw) of the rotation part."""
        return matrix_to_euler(self.rotation)

    def quaternion(self) -> np.ndarray:
        """Return the (w, x, y, z) quaternion of the rotation part."""
        return matrix_to_quaternion(self.rotation)

    def orthonormalized(self) -> "Pose":
        """Return a copy with the rotation re-projected onto SO(3).

        Useful after long chains of composed increments where floating-point
        drift accumulates.
        """
        return Pose(_project_to_so3(self.rotation), self.translation)

    def distance_to(self, other: "Pose") -> tuple[float, float]:
        """Return (translation distance, rotation angle) to another pose."""
        delta = self.inverse().compose(other)
        return float(np.linalg.norm(delta.translation)), rotation_angle(delta.rotation)

    def is_valid(self, tolerance: float = 1e-6) -> bool:
        """Check that the rotation part is orthonormal with determinant +1."""
        should_be_identity = self.rotation @ self.rotation.T
        orthonormal = bool(np.allclose(should_be_identity, np.eye(3), atol=tolerance))
        return orthonormal and abs(float(np.linalg.det(self.rotation)) - 1.0) < tolerance
