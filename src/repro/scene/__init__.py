"""Synthetic 3D scene substrate.

Stands in for the RGB-D Scenes Dataset v2 used in the paper: procedural
tabletop scenes built from signed-distance-field primitives, a pinhole depth
camera, a sphere-tracing depth renderer, smooth orbit trajectories, and a
dataset wrapper that yields (depth frame, ground-truth pose) sequences.
"""

from repro.scene.se3 import (
    Pose,
    euler_to_matrix,
    matrix_to_euler,
    matrix_to_quaternion,
    quaternion_to_matrix,
    rotation_angle,
    rotation_x,
    rotation_y,
    rotation_z,
)
from repro.scene.primitives import (
    Box,
    Cylinder,
    Plane,
    Primitive,
    Sphere,
)
from repro.scene.scene import Scene, make_room_scene, make_tabletop_scene
from repro.scene.camera import PinholeCamera
from repro.scene.render import DepthRenderer
from repro.scene.trajectory import (
    Trajectory,
    lissajous_trajectory,
    orbit_trajectory,
)
from repro.scene.dataset import RGBDFrame, SyntheticRGBDScenes

__all__ = [
    "Pose",
    "euler_to_matrix",
    "matrix_to_euler",
    "matrix_to_quaternion",
    "quaternion_to_matrix",
    "rotation_angle",
    "rotation_x",
    "rotation_y",
    "rotation_z",
    "Primitive",
    "Box",
    "Sphere",
    "Cylinder",
    "Plane",
    "Scene",
    "make_room_scene",
    "make_tabletop_scene",
    "PinholeCamera",
    "DepthRenderer",
    "Trajectory",
    "orbit_trajectory",
    "lissajous_trajectory",
    "RGBDFrame",
    "SyntheticRGBDScenes",
]
