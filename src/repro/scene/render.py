"""Sphere-tracing depth renderer.

Renders z-depth images of a :class:`~repro.scene.scene.Scene` from a
:class:`~repro.scene.camera.PinholeCamera` at a given pose, by marching each
pixel ray through the scene SDF.  This is the synthetic stand-in for the
Kinect depth sensor used by the paper's dataset.
"""

from __future__ import annotations

import numpy as np

from repro.scene.camera import PinholeCamera
from repro.scene.scene import Scene
from repro.scene.se3 import Pose


class DepthRenderer:
    """Vectorised sphere-tracing renderer.

    Args:
        scene: the scene to render.
        camera: pinhole intrinsics.
        max_range: rays are terminated (depth = NaN) beyond this distance.
        max_steps: sphere-tracing iteration cap.
        hit_epsilon: surface-hit tolerance in meters.
    """

    def __init__(
        self,
        scene: Scene,
        camera: PinholeCamera,
        max_range: float = 8.0,
        max_steps: int = 64,
        hit_epsilon: float = 1e-3,
    ):
        if max_range <= 0:
            raise ValueError("max_range must be positive")
        self.scene = scene
        self.camera = camera
        self.max_range = float(max_range)
        self.max_steps = int(max_steps)
        self.hit_epsilon = float(hit_epsilon)
        self._rays_cam = camera.ray_directions().reshape(-1, 3)

    def render(
        self,
        pose: Pose,
        depth_noise_std: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Render a (H, W) z-depth image from ``pose``.

        Missed rays (no surface within ``max_range``) are NaN, mimicking the
        invalid-depth pixels of a real RGB-D sensor.

        Args:
            pose: camera pose (camera frame -> world frame).
            depth_noise_std: multiplicative-ish sensor noise; the std of the
                additive Gaussian grows linearly with depth, as in real
                structured-light sensors (sigma = std * depth).
            rng: generator for the sensor noise (required if noise > 0).
        """
        origins = np.broadcast_to(pose.translation, self._rays_cam.shape)
        directions = pose.rotate_vectors(self._rays_cam)
        t = self._march(origins, directions)
        # Convert ray length to z-depth (distance along the optical axis).
        cosines = self._rays_cam[:, 2]
        depth = t * cosines
        if depth_noise_std > 0:
            if rng is None:
                raise ValueError("rng is required when depth_noise_std > 0")
            noise = rng.normal(size=depth.shape) * depth_noise_std * np.nan_to_num(depth, nan=0.0)
            depth = depth + noise
        return depth.reshape(self.camera.height, self.camera.width)

    def _march(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """Sphere-trace rays; returns ray parameter t (NaN for misses)."""
        n = origins.shape[0]
        t = np.zeros(n)
        active = np.ones(n, dtype=bool)
        hit = np.zeros(n, dtype=bool)
        for _ in range(self.max_steps):
            if not active.any():
                break
            points = origins[active] + t[active, None] * directions[active]
            d = self.scene.distance(points)
            newly_hit = d < self.hit_epsilon
            active_idx = np.flatnonzero(active)
            hit[active_idx[newly_hit]] = True
            # Guard against zero/negative SDF steps stalling the march.
            t[active_idx] += np.maximum(d, self.hit_epsilon * 0.5)
            out_of_range = t[active_idx] > self.max_range
            active[active_idx[newly_hit | out_of_range]] = False
        result = np.where(hit, t, np.nan)
        return result

    def render_with_normals(self, pose: Pose) -> tuple[np.ndarray, np.ndarray]:
        """Render depth and a lambertian-shaded intensity image.

        The intensity image is the dot product of the surface normal with the
        view direction (head-light shading), a cheap monochrome stand-in for
        the RGB channel of an RGB-D sensor.

        Returns:
            (depth, intensity), both (H, W); intensity is 0 where depth is NaN.
        """
        depth = self.render(pose)
        flat_depth = depth.reshape(-1)
        valid = np.isfinite(flat_depth)
        intensity = np.zeros_like(flat_depth)
        if valid.any():
            rays = self._rays_cam[valid]
            t = flat_depth[valid] / rays[:, 2]
            points = pose.translation + t[:, None] * pose.rotate_vectors(rays)
            normals = self.scene.normals(points)
            view = -pose.rotate_vectors(rays)
            intensity[valid] = np.clip(np.sum(normals * view, axis=1), 0.0, 1.0)
        return depth, intensity.reshape(self.camera.height, self.camera.width)
