"""Pinhole depth camera model.

Camera frame convention (standard computer vision): +Z forward along the
optical axis, +X right, +Y down.  A camera :class:`~repro.scene.se3.Pose`
maps camera-frame points to world-frame points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scene.se3 import Pose


def body_camera_mount(pitch_down: float = 0.0) -> Pose:
    """Camera-to-body mount for a forward-looking camera.

    Maps the CV camera frame (+Z optical axis, +X right, +Y down) onto a
    robot body frame (+X forward, +Y left, +Z up): the optical axis points
    along the body heading, optionally pitched down by ``pitch_down``
    radians (typical for a drone watching the ground ahead).
    """
    # Columns are the camera axes (right, down, forward) in the body frame.
    base = np.array(
        [
            [0.0, 0.0, 1.0],
            [-1.0, 0.0, 0.0],
            [0.0, -1.0, 0.0],
        ]
    )
    # Pitching down is a negative rotation about the camera's X (right)
    # axis: it tilts the optical axis toward the camera's +Y (down) side.
    c, s = np.cos(-pitch_down), np.sin(-pitch_down)
    pitch = np.array([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])
    return Pose(base @ pitch, np.zeros(3))


@dataclass(frozen=True)
class PinholeCamera:
    """Pinhole intrinsics.

    Attributes:
        width: image width in pixels.
        height: image height in pixels.
        fx, fy: focal lengths in pixels.
        cx, cy: principal point in pixels.
    """

    width: int
    height: int
    fx: float
    fy: float
    cx: float
    cy: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.fx <= 0 or self.fy <= 0:
            raise ValueError("focal lengths must be positive")

    @staticmethod
    def from_fov(width: int, height: int, fov_x_deg: float = 60.0) -> "PinholeCamera":
        """Build intrinsics from a horizontal field of view.

        The vertical focal length matches the horizontal one (square pixels)
        and the principal point is the image center.
        """
        fov_x = np.deg2rad(fov_x_deg)
        fx = (width / 2.0) / np.tan(fov_x / 2.0)
        return PinholeCamera(
            width=width,
            height=height,
            fx=fx,
            fy=fx,
            cx=(width - 1) / 2.0,
            cy=(height - 1) / 2.0,
        )

    def intrinsic_matrix(self) -> np.ndarray:
        """The 3x3 intrinsic matrix K."""
        return np.array(
            [[self.fx, 0.0, self.cx], [0.0, self.fy, self.cy], [0.0, 0.0, 1.0]]
        )

    def pixel_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Meshgrid of pixel coordinates (u, v), each of shape (H, W)."""
        u = np.arange(self.width, dtype=float)
        v = np.arange(self.height, dtype=float)
        return np.meshgrid(u, v)

    def ray_directions(self) -> np.ndarray:
        """Unit ray directions in the camera frame, shape (H, W, 3)."""
        u, v = self.pixel_grid()
        x = (u - self.cx) / self.fx
        y = (v - self.cy) / self.fy
        z = np.ones_like(x)
        rays = np.stack([x, y, z], axis=-1)
        rays /= np.linalg.norm(rays, axis=-1, keepdims=True)
        return rays

    def backproject(self, depth: np.ndarray, stride: int = 1) -> np.ndarray:
        """Lift a depth image to camera-frame 3D points.

        Args:
            depth: (H, W) array of *z-depths* (distance along the optical
                axis).  Non-finite or non-positive entries are skipped.
            stride: subsample the pixel grid by this factor.

        Returns:
            (N, 3) array of camera-frame points for valid pixels.
        """
        depth = np.asarray(depth, dtype=float)
        if depth.shape != (self.height, self.width):
            raise ValueError(
                f"depth shape {depth.shape} != camera ({self.height}, {self.width})"
            )
        u, v = self.pixel_grid()
        u = u[::stride, ::stride]
        v = v[::stride, ::stride]
        d = depth[::stride, ::stride]
        valid = np.isfinite(d) & (d > 0)
        d = d[valid]
        x = (u[valid] - self.cx) / self.fx * d
        y = (v[valid] - self.cy) / self.fy * d
        return np.stack([x, y, d], axis=-1)

    def project(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project camera-frame points to pixel coordinates.

        Args:
            points: (N, 3) camera-frame points.

        Returns:
            (pixels, valid): (N, 2) array of (u, v) and a boolean mask of
            points that land inside the image with positive depth.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        z = points[:, 2]
        safe_z = np.where(z > 0, z, np.nan)
        u = self.fx * points[:, 0] / safe_z + self.cx
        v = self.fy * points[:, 1] / safe_z + self.cy
        pixels = np.stack([u, v], axis=-1)
        # Half-pixel convention: a point projecting anywhere within the
        # area of a border pixel is in view.
        valid = (
            (z > 0)
            & (u >= -0.5)
            & (u <= self.width - 0.5)
            & (v >= -0.5)
            & (v <= self.height - 0.5)
        )
        return pixels, valid

    def scan_to_world(self, depth: np.ndarray, pose: Pose, stride: int = 1) -> np.ndarray:
        """Backproject a depth image and move the points to the world frame."""
        return pose.transform_points(self.backproject(depth, stride=stride))
