"""Synthetic RGB-D scene dataset (stand-in for RGB-D Scenes Dataset v2).

The real dataset provides 14 tabletop scenes recorded with a Kinect, with
per-frame ground-truth camera poses.  :class:`SyntheticRGBDScenes` generates
the same artefacts procedurally: per-scene point clouds (for map fitting) and
pose-annotated depth/intensity frame sequences from an orbiting camera.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scene.camera import PinholeCamera
from repro.scene.render import DepthRenderer
from repro.scene.scene import Scene, make_tabletop_scene
from repro.scene.se3 import Pose
from repro.scene.trajectory import Trajectory, orbit_trajectory


@dataclass(frozen=True)
class RGBDFrame:
    """A single dataset frame.

    Attributes:
        depth: (H, W) z-depth image, NaN at invalid pixels.
        intensity: (H, W) monochrome shading image in [0, 1].
        pose: ground-truth camera pose (camera -> world).
        timestamp: frame time in seconds.
        index: frame index within the sequence.
    """

    depth: np.ndarray
    intensity: np.ndarray
    pose: Pose
    timestamp: float
    index: int

    @property
    def valid_fraction(self) -> float:
        """Fraction of pixels with a valid (finite) depth."""
        return float(np.isfinite(self.depth).mean())


class SyntheticRGBDScenes:
    """Procedural RGB-D scene dataset.

    Args:
        n_scenes: number of distinct tabletop scenes.
        camera: pinhole intrinsics (default 48x36, 60 deg FOV -- small images
            keep rendering and network training laptop-fast while preserving
            the geometry of the problem).
        frames_per_scene: sequence length per scene.
        seed: base seed; per-scene/per-purpose generators derive from it
            via ``np.random.SeedSequence`` spawn keys, so datasets with
            different base seeds never share streams (the old
            ``seed + 1000 * scene_index`` offsets collided whenever two
            base seeds differed by a multiple of 1000).
        depth_noise_std: relative depth noise (sigma = std * depth).
        orbit_radius / orbit_height: camera orbit parameters.
    """

    def __init__(
        self,
        n_scenes: int = 3,
        camera: PinholeCamera | None = None,
        frames_per_scene: int = 40,
        seed: int = 0,
        depth_noise_std: float = 0.0,
        orbit_radius: float = 1.8,
        orbit_height: float = 0.9,
        n_objects: int = 4,
        speed_jitter: float = 0.35,
    ):
        if n_scenes < 1:
            raise ValueError("n_scenes must be >= 1")
        self.speed_jitter = float(speed_jitter)
        self.camera = camera or PinholeCamera.from_fov(48, 36, fov_x_deg=60.0)
        self.n_scenes = int(n_scenes)
        self.frames_per_scene = int(frames_per_scene)
        self.seed = int(seed)
        self.depth_noise_std = float(depth_noise_std)
        self.orbit_radius = float(orbit_radius)
        self.orbit_height = float(orbit_height)
        self.n_objects = int(n_objects)
        self._scenes: dict[int, Scene] = {}
        self._trajectories: dict[int, Trajectory] = {}

    # Purposes of the per-scene generators (spawn-key components).  Keyed
    # derivation is collision-free across base seeds AND independent of
    # the order the lazily-cached artefacts are first built in.
    _RNG_SCENE = 0
    _RNG_TRAJECTORY = 1
    _RNG_POINT_CLOUD = 2
    _RNG_FRAMES = 3

    def _rng(self, scene_index: int, purpose: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(scene_index, purpose))
        )

    def scene(self, scene_index: int) -> Scene:
        """The (cached) procedural scene for ``scene_index``."""
        self._check_index(scene_index)
        if scene_index not in self._scenes:
            rng = self._rng(scene_index, self._RNG_SCENE)
            self._scenes[scene_index] = make_tabletop_scene(
                rng, n_objects=self.n_objects, name=f"synthetic-{scene_index:02d}"
            )
        return self._scenes[scene_index]

    def trajectory(self, scene_index: int) -> Trajectory:
        """The ground-truth camera trajectory for ``scene_index``."""
        self._check_index(scene_index)
        if scene_index not in self._trajectories:
            scene = self.scene(scene_index)
            rng = self._rng(scene_index, self._RNG_TRAJECTORY)
            target = scene.centroid()
            # Look slightly above the table centroid so objects fill the frame.
            target = target + np.array([0.0, 0.0, 0.15])
            self._trajectories[scene_index] = orbit_trajectory(
                target=target,
                radius=self.orbit_radius * float(rng.uniform(0.9, 1.1)),
                height=self.orbit_height * float(rng.uniform(0.9, 1.1)),
                n_poses=self.frames_per_scene,
                sweep_rad=float(rng.uniform(1.5 * np.pi, 2.0 * np.pi)),
                height_wobble=0.08,
                radius_wobble=0.08,
                start_angle=float(rng.uniform(0.0, 2.0 * np.pi)),
                speed_jitter=self.speed_jitter,
                rng=rng,
            )
        return self._trajectories[scene_index]

    def point_cloud(
        self, scene_index: int, n_points: int = 4000, noise_std: float = 0.004
    ) -> np.ndarray:
        """A synthetic scanner point cloud of the scene (for map fitting)."""
        scene = self.scene(scene_index)
        rng = self._rng(scene_index, self._RNG_POINT_CLOUD)
        return scene.sample_point_cloud(n_points, rng, noise_std=noise_std)

    def frames(self, scene_index: int) -> list[RGBDFrame]:
        """Render the full pose-annotated frame sequence for a scene."""
        scene = self.scene(scene_index)
        trajectory = self.trajectory(scene_index)
        renderer = DepthRenderer(scene, self.camera)
        rng = self._rng(scene_index, self._RNG_FRAMES)
        frames = []
        for index, (pose, timestamp) in enumerate(zip(trajectory, trajectory.timestamps)):
            depth, intensity = renderer.render_with_normals(pose)
            if self.depth_noise_std > 0:
                noise = rng.normal(size=depth.shape) * self.depth_noise_std
                depth = depth * (1.0 + noise)
            frames.append(
                RGBDFrame(
                    depth=depth,
                    intensity=intensity,
                    pose=pose,
                    timestamp=float(timestamp),
                    index=index,
                )
            )
        return frames

    def frame_pairs(
        self, scene_index: int
    ) -> list[tuple[RGBDFrame, RGBDFrame, Pose]]:
        """Consecutive frame pairs with their ground-truth relative pose.

        The relative pose maps frame t coordinates into frame t-1 coordinates
        (the standard VO regression target).
        """
        frames = self.frames(scene_index)
        pairs = []
        for previous, current in zip(frames[:-1], frames[1:]):
            relative = current.pose.relative_to(previous.pose)
            pairs.append((previous, current, relative))
        return pairs

    def _check_index(self, scene_index: int) -> None:
        if not 0 <= scene_index < self.n_scenes:
            raise IndexError(
                f"scene index {scene_index} out of range [0, {self.n_scenes})"
            )
