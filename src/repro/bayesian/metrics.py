"""Uncertainty-quality metrics (paper Fig. 3f).

The paper's headline uncertainty claim is the correlation between the
predictive variance of MC-Dropout and the actual pose error: the model
*knows when it is wrong*.  These metrics quantify that claim.
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def error_uncertainty_correlation(
    errors: np.ndarray, uncertainties: np.ndarray
) -> dict[str, float]:
    """Pearson and Spearman correlation between error and uncertainty.

    Args:
        errors: (N,) per-sample prediction errors.
        uncertainties: (N,) per-sample predictive variances (or stds).

    Returns:
        Dict with "pearson", "spearman" and their p-values.
    """
    errors = np.asarray(errors, dtype=float).reshape(-1)
    uncertainties = np.asarray(uncertainties, dtype=float).reshape(-1)
    if errors.size != uncertainties.size:
        raise ValueError("length mismatch")
    if errors.size < 3:
        raise ValueError("need at least 3 samples")
    pearson = stats.pearsonr(errors, uncertainties)
    spearman = stats.spearmanr(errors, uncertainties)
    return {
        "pearson": float(pearson.statistic),
        "pearson_p": float(pearson.pvalue),
        "spearman": float(spearman.statistic),
        "spearman_p": float(spearman.pvalue),
    }


def interval_coverage(
    errors: np.ndarray, stds: np.ndarray, k: float = 2.0
) -> float:
    """Fraction of samples whose |error| falls within k predicted stds.

    For calibrated Gaussian uncertainty, k=2 should cover ~95%.
    """
    errors = np.abs(np.asarray(errors, dtype=float).reshape(-1))
    stds = np.asarray(stds, dtype=float).reshape(-1)
    if errors.size != stds.size:
        raise ValueError("length mismatch")
    return float(np.mean(errors <= k * stds))


def area_under_sparsification_error(
    errors: np.ndarray, uncertainties: np.ndarray, n_fractions: int = 20
) -> float:
    """AUSE: how well uncertainty ranks error (0 = perfect ranking).

    Removes the most-uncertain fraction of samples and tracks the mean
    error of the remainder, compared against the oracle that removes by
    true error; the area between the two sparsification curves is the
    AUSE.  Lower is better.
    """
    errors = np.asarray(errors, dtype=float).reshape(-1)
    uncertainties = np.asarray(uncertainties, dtype=float).reshape(-1)
    n = errors.size
    if n < 4:
        raise ValueError("need at least 4 samples")
    by_uncertainty = np.argsort(-uncertainties)
    by_error = np.argsort(-errors)
    base = errors.mean()
    if base == 0:
        return 0.0
    gaps = []
    for fraction in np.linspace(0.0, 0.9, n_fractions):
        keep = n - int(np.floor(fraction * n))
        model_err = errors[by_uncertainty[-keep:]].mean() if keep else 0.0
        oracle_err = errors[by_error[-keep:]].mean() if keep else 0.0
        gaps.append((model_err - oracle_err) / base)
    return float(np.trapezoid(gaps, dx=1.0 / (n_fractions - 1)))
