"""Software MC-Dropout predictor (the algorithmic reference).

Runs T stochastic forward passes with dropout active at inference time (Gal
& Ghahramani); the sample mean is the prediction and the sample variance is
the model (epistemic) uncertainty.  Masks can be pinned externally so the
hardware engine and this reference produce comparable iterates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bayesian.masks import MaskStream
from repro.nn.sequential import Sequential


@dataclass(frozen=True)
class MCPrediction:
    """Result of an MC-Dropout inference.

    Attributes:
        mean: (B, out) predictive mean.
        variance: (B, out) per-output predictive variance.
        samples: (T, B, out) raw iteration outputs.
    """

    mean: np.ndarray
    variance: np.ndarray
    samples: np.ndarray

    @property
    def n_iterations(self) -> int:
        return self.samples.shape[0]

    def total_uncertainty(self) -> np.ndarray:
        """(B,) scalar uncertainty: mean variance across outputs."""
        return self.variance.mean(axis=1)


class MCDropoutPredictor:
    """MC-Dropout wrapper around a :class:`~repro.nn.sequential.Sequential`.

    Args:
        model: a trained network containing Dropout layers.
        n_iterations: Monte-Carlo sample count (paper sweeps ~30).
        rng: generator for internally sampled masks.
    """

    def __init__(
        self,
        model: Sequential,
        n_iterations: int = 30,
        rng: np.random.Generator | None = None,
    ):
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        self.model = model
        self.n_iterations = int(n_iterations)
        self._rng = rng or np.random.default_rng(0)
        self.dropouts = model.dropout_layers()
        if not self.dropouts:
            raise ValueError("model has no Dropout layers; MC-Dropout is inert")

    def predict(
        self,
        x: np.ndarray,
        mask_streams: list[MaskStream] | None = None,
    ) -> MCPrediction:
        """Run T stochastic passes.

        Args:
            x: (B, in) inputs.
            mask_streams: optional per-dropout-layer streams (hardware
                masks); default is internal Bernoulli sampling.

        Returns:
            The MC prediction (mean / variance / samples).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if mask_streams is not None and len(mask_streams) != len(self.dropouts):
            raise ValueError(
                f"need {len(self.dropouts)} mask streams, got {len(mask_streams)}"
            )
        self.model.eval()
        for layer in self.dropouts:
            layer.mc_mode = True
        try:
            samples = []
            for t in range(self.n_iterations):
                if mask_streams is not None:
                    for layer, stream in zip(self.dropouts, mask_streams):
                        layer.pin_mask(stream.masks[t])
                samples.append(self.model.forward(x))
            stacked = np.stack(samples, axis=0)
        finally:
            for layer in self.dropouts:
                layer.pin_mask(None)
                layer.mc_mode = False
        return MCPrediction(
            mean=stacked.mean(axis=0),
            variance=stacked.var(axis=0),
            samples=stacked,
        )

    def deterministic(self, x: np.ndarray) -> np.ndarray:
        """The plain (dropout-off) forward pass for comparison."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self.model.eval()
        return self.model.forward(x)

    def ops_per_iteration(self, batch: int = 1) -> int:
        """Nominal dense MACs one MC iteration performs on ``batch`` inputs.

        The software path executes every weight each pass (no reuse, no
        mask gating), so this is the exact work count -- the digital
        reference against which the CIM engine's executed-op fraction is
        reported.
        """
        if batch < 1:
            raise ValueError("batch must be positive")
        weights = 0
        for layer in self.model.dense_layers():
            fan_in, fan_out = layer.weight.value.shape
            weights += fan_in * fan_out
        return batch * weights
