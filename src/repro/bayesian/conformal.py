"""Conformal prediction: Monte-Carlo-free uncertainty (paper Sec. IV).

The paper's conclusion flags MC-based uncertainty as resource-hungry and
points to conformal inference as the edge-friendly alternative (refs [12],
[28]).  This module implements both flavours used in that literature:

- :class:`SplitConformalRegressor` -- distribution-free prediction
  intervals from a held-out calibration set, wrapping *any* point
  predictor (one forward pass at inference time instead of ~30).
- :class:`AdaptiveConformalInference` -- the Gibbs & Candes online update
  that retunes the miscoverage level under distribution shift, exactly the
  dynamic-environment setting the paper motivates.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

PredictFn = Callable[[np.ndarray], np.ndarray]


def conformal_quantile(scores: np.ndarray, alpha: float) -> float:
    """The (1 - alpha) split-conformal quantile with finite-sample correction.

    Args:
        scores: (N,) nonconformity scores from the calibration set.
        alpha: target miscoverage in (0, 1).

    Returns:
        The ceil((N + 1)(1 - alpha)) / N empirical quantile.
    """
    scores = np.asarray(scores, dtype=float).reshape(-1)
    n = scores.size
    if n == 0:
        raise ValueError("empty calibration set")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    rank = int(np.ceil((n + 1) * (1.0 - alpha)))
    if rank > n:
        return float(np.inf)
    return float(np.sort(scores)[rank - 1])


class SplitConformalRegressor:
    """Split-conformal intervals around a multi-output point predictor.

    Nonconformity score: the per-output absolute residual, optionally
    normalised by a difficulty estimate (e.g. MC-Dropout variance or any
    heuristic), which makes intervals locally adaptive.

    Args:
        predict: maps (B, in) inputs to (B, out) point predictions.
        alpha: target miscoverage (0.1 = 90% intervals).
        difficulty: optional function mapping inputs to (B, out) positive
            difficulty scales; residuals are divided by it before
            calibration and intervals multiplied by it at prediction time.
    """

    def __init__(
        self,
        predict: PredictFn,
        alpha: float = 0.1,
        difficulty: PredictFn | None = None,
    ):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.predict = predict
        self.alpha = float(alpha)
        self.difficulty = difficulty
        self._quantiles: np.ndarray | None = None

    def _scales(self, x: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        if self.difficulty is None:
            return np.ones(shape)
        scales = np.asarray(self.difficulty(x), dtype=float)
        return np.maximum(scales, 1e-9)

    def calibrate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Fit per-output conformal quantiles from a calibration split.

        Returns:
            (out,) array of quantiles.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.atleast_2d(np.asarray(y, dtype=float))
        predictions = np.atleast_2d(self.predict(x))
        if predictions.shape != y.shape:
            raise ValueError("prediction / target shape mismatch")
        residuals = np.abs(predictions - y) / self._scales(x, y.shape)
        self._quantiles = np.array(
            [conformal_quantile(residuals[:, j], self.alpha) for j in range(y.shape[1])]
        )
        return self._quantiles

    def intervals(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Point predictions with (lower, upper) interval bounds.

        Returns:
            (prediction, lower, upper), each (B, out).
        """
        if self._quantiles is None:
            raise RuntimeError("call calibrate() before intervals()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        predictions = np.atleast_2d(self.predict(x))
        half_width = self._quantiles[None, :] * self._scales(x, predictions.shape)
        return predictions, predictions - half_width, predictions + half_width

    def coverage(self, x: np.ndarray, y: np.ndarray) -> float:
        """Empirical joint-per-output coverage on a test set."""
        _, lower, upper = self.intervals(x)
        y = np.atleast_2d(np.asarray(y, dtype=float))
        inside = (y >= lower) & (y <= upper)
        return float(inside.mean())

    def mean_interval_width(self, x: np.ndarray) -> float:
        """Average interval width (sharpness; lower is better at fixed
        coverage)."""
        _, lower, upper = self.intervals(x)
        return float((upper - lower).mean())


class AdaptiveConformalInference:
    """Online miscoverage tracking under distribution shift (Gibbs-Candes).

    Maintains an effective alpha_t updated after each observation::

        alpha_{t+1} = alpha_t + gamma * (alpha - err_t)

    where err_t is 1 when the interval missed.  Under shift this walks the
    quantile until the realised coverage matches the target.

    Args:
        regressor: a calibrated :class:`SplitConformalRegressor`; its
            calibration scores are reused to re-quantile at each alpha_t.
        scores: the (N, out) calibration residual matrix (stored from a
            calibrate() call -- see :meth:`from_calibration`).
        gamma: adaptation rate.
    """

    def __init__(
        self,
        regressor: SplitConformalRegressor,
        scores: np.ndarray,
        gamma: float = 0.02,
    ):
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.regressor = regressor
        self.scores = np.atleast_2d(np.asarray(scores, dtype=float))
        self.gamma = float(gamma)
        self.alpha_t = regressor.alpha
        self.history: list[dict] = []

    @staticmethod
    def from_calibration(
        predict: PredictFn,
        x_cal: np.ndarray,
        y_cal: np.ndarray,
        alpha: float = 0.1,
        gamma: float = 0.02,
        difficulty: PredictFn | None = None,
    ) -> "AdaptiveConformalInference":
        """Build the online tracker from a calibration split."""
        regressor = SplitConformalRegressor(predict, alpha=alpha, difficulty=difficulty)
        regressor.calibrate(x_cal, y_cal)
        x_cal = np.atleast_2d(np.asarray(x_cal, dtype=float))
        y_cal = np.atleast_2d(np.asarray(y_cal, dtype=float))
        residuals = np.abs(regressor.predict(x_cal) - y_cal) / regressor._scales(
            x_cal, y_cal.shape
        )
        return AdaptiveConformalInference(regressor, residuals, gamma=gamma)

    def _current_quantiles(self) -> np.ndarray:
        alpha = float(np.clip(self.alpha_t, 1e-4, 1.0 - 1e-4))
        return np.array(
            [
                conformal_quantile(self.scores[:, j], alpha)
                for j in range(self.scores.shape[1])
            ]
        )

    def step(self, x: np.ndarray, y: np.ndarray) -> dict:
        """Predict an interval for one observation, then adapt alpha.

        Returns:
            Dict with the interval, whether it covered, and alpha_t.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).reshape(1, -1)
        quantiles = self._current_quantiles()
        prediction = np.atleast_2d(self.regressor.predict(x))
        scales = self.regressor._scales(x, prediction.shape)
        lower = prediction - quantiles[None, :] * scales
        upper = prediction + quantiles[None, :] * scales
        covered = bool(np.all((y >= lower) & (y <= upper)))
        error = 0.0 if covered else 1.0
        self.alpha_t = self.alpha_t + self.gamma * (self.regressor.alpha - error)
        record = {
            "prediction": prediction[0],
            "lower": lower[0],
            "upper": upper[0],
            "covered": covered,
            "alpha_t": self.alpha_t,
        }
        self.history.append(record)
        return record

    def realised_coverage(self) -> float:
        """Coverage over all observed steps so far."""
        if not self.history:
            raise RuntimeError("no steps observed")
        return float(np.mean([record["covered"] for record in self.history]))
