"""Deep evidential regression: the paper's second future-work direction.

Sec. IV names evidential learning (Sensoy et al. / Amini et al.) alongside
conformal inference as a Monte-Carlo-free uncertainty path.  A network head
outputs the parameters of a Normal-Inverse-Gamma (NIG) evidential
distribution per target dimension -- (gamma, nu, alpha, beta) -- from which
a single forward pass yields the prediction and *both* uncertainty kinds::

    prediction          = gamma
    aleatoric variance  = beta / (alpha - 1)
    epistemic variance  = beta / (nu * (alpha - 1))

:class:`EvidentialLoss` implements the NIG negative log-likelihood plus the
evidence regulariser with analytic gradients (verified against finite
differences in the tests), operating on raw network outputs through
softplus links so any :mod:`repro.nn` model can grow an evidential head.
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma, gammaln

_EPS = 1e-6


def _softplus(x: np.ndarray) -> np.ndarray:
    return np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def split_evidential_outputs(
    raw: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Map raw (B, 4D) network outputs to NIG parameters (each (B, D)).

    gamma is unconstrained; nu > 0, alpha > 1, beta > 0 via softplus links.
    """
    raw = np.atleast_2d(np.asarray(raw, dtype=float))
    if raw.shape[1] % 4 != 0:
        raise ValueError("evidential head width must be a multiple of 4")
    d = raw.shape[1] // 4
    gamma = raw[:, :d]
    nu = _softplus(raw[:, d : 2 * d]) + _EPS
    alpha = _softplus(raw[:, 2 * d : 3 * d]) + 1.0 + _EPS
    beta = _softplus(raw[:, 3 * d :]) + _EPS
    return gamma, nu, alpha, beta


def evidential_prediction(raw: np.ndarray) -> dict[str, np.ndarray]:
    """Point prediction and uncertainty decomposition from raw outputs.

    Returns:
        Dict with "mean", "aleatoric", "epistemic" (each (B, D)).
    """
    gamma, nu, alpha, beta = split_evidential_outputs(raw)
    aleatoric = beta / (alpha - 1.0)
    epistemic = beta / (nu * (alpha - 1.0))
    return {"mean": gamma, "aleatoric": aleatoric, "epistemic": epistemic}


class EvidentialLoss:
    """NIG negative log-likelihood + evidence regulariser (Amini et al.).

    Args:
        regularizer: weight of the |error| * (2 nu + alpha) evidence
            penalty that shrinks confidence on wrong predictions.
    """

    def __init__(self, regularizer: float = 0.01):
        if regularizer < 0:
            raise ValueError("regularizer must be non-negative")
        self.regularizer = float(regularizer)

    def __call__(
        self, raw: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Loss and gradient w.r.t. the raw (pre-link) outputs."""
        raw = np.atleast_2d(np.asarray(raw, dtype=float))
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        d = targets.shape[1]
        if raw.shape[1] != 4 * d:
            raise ValueError("raw width must be 4x the target width")
        gamma, nu, alpha, beta = split_evidential_outputs(raw)
        error = targets - gamma
        omega = 2.0 * beta * (1.0 + nu)
        s = error**2 * nu + omega

        nll = (
            0.5 * np.log(np.pi / nu)
            - alpha * np.log(omega)
            + (alpha + 0.5) * np.log(s)
            + gammaln(alpha)
            - gammaln(alpha + 0.5)
        )
        reg = np.abs(error) * (2.0 * nu + alpha)
        n = targets.size
        loss = float((nll + self.regularizer * reg).sum() / n)

        # Analytic gradients w.r.t. the NIG parameters.
        d_gamma = (alpha + 0.5) * (-2.0 * error * nu) / s
        d_gamma += self.regularizer * (-np.sign(error)) * (2.0 * nu + alpha)
        d_nu = (
            -0.5 / nu
            - alpha * (2.0 * beta) / omega
            + (alpha + 0.5) * (error**2 + 2.0 * beta) / s
        )
        d_nu += self.regularizer * 2.0 * np.abs(error)
        d_alpha = (
            -np.log(omega) + np.log(s) + digamma(alpha) - digamma(alpha + 0.5)
        )
        d_alpha += self.regularizer * np.abs(error)
        d_beta = (
            -alpha * 2.0 * (1.0 + nu) / omega
            + (alpha + 0.5) * 2.0 * (1.0 + nu) / s
        )

        # Chain through the softplus links back to the raw outputs.
        grad = np.empty_like(raw)
        grad[:, :d] = d_gamma
        grad[:, d : 2 * d] = d_nu * _sigmoid(raw[:, d : 2 * d])
        grad[:, 2 * d : 3 * d] = d_alpha * _sigmoid(raw[:, 2 * d : 3 * d])
        grad[:, 3 * d :] = d_beta * _sigmoid(raw[:, 3 * d :])
        return loss, grad / n
