"""Optimal MC-sample ordering (paper Sec. III-C).

MC-Dropout iterations are exchangeable, so the engine may visit the T
pre-generated masks in any order.  Compute reuse pays per *changed* neuron
between consecutive iterations, so the best order minimises the total
Hamming path length through the mask set -- an open traveling-salesman
path.  A greedy nearest-neighbour pass (optionally polished by 2-opt, or
networkx's TSP approximation) recovers most of the available savings.
"""

from __future__ import annotations

import numpy as np


def _hamming_matrix(masks: np.ndarray) -> np.ndarray:
    masks = np.asarray(masks)
    diff = masks[:, None, :] != masks[None, :, :]
    return diff.sum(axis=2)


def mask_hamming_path_length(masks: np.ndarray, order: np.ndarray | None = None) -> int:
    """Total Hamming distance along consecutive masks in ``order``."""
    masks = np.asarray(masks)
    if order is not None:
        masks = masks[np.asarray(order, dtype=np.int64)]
    return int((masks[1:] != masks[:-1]).sum())


def greedy_mask_order(masks: np.ndarray, start: int = 0) -> np.ndarray:
    """Greedy nearest-neighbour order over the mask Hamming graph."""
    masks = np.asarray(masks)
    n = masks.shape[0]
    if not 0 <= start < n:
        raise ValueError("start out of range")
    distances = _hamming_matrix(masks)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    order[0] = start
    visited[start] = True
    for k in range(1, n):
        row = distances[order[k - 1]].astype(float)
        row[visited] = np.inf
        order[k] = int(np.argmin(row))
        visited[order[k]] = True
    return order


def _two_opt(order: np.ndarray, distances: np.ndarray, max_rounds: int = 4) -> np.ndarray:
    """2-opt improvement on an open path."""
    order = order.copy()
    n = order.size
    for _ in range(max_rounds):
        improved = False
        for i in range(n - 2):
            for j in range(i + 2, n):
                a, b = order[i], order[i + 1]
                c = order[j]
                d = order[j + 1] if j + 1 < n else None
                removed = distances[a, b] + (distances[c, d] if d is not None else 0)
                added = distances[a, c] + (distances[b, d] if d is not None else 0)
                if added < removed:
                    order[i + 1 : j + 1] = order[i + 1 : j + 1][::-1]
                    improved = True
        if not improved:
            break
    return order


def optimal_mask_order(
    masks: np.ndarray,
    method: str = "greedy-2opt",
) -> np.ndarray:
    """Order the masks to (approximately) minimise the Hamming path.

    Args:
        masks: (T, width) joint mask matrix (concatenate layers first).
        method: "greedy", "greedy-2opt" (default), or "tsp" (networkx
            threshold-accepting TSP approximation).

    Returns:
        A permutation of range(T).
    """
    masks = np.asarray(masks)
    n = masks.shape[0]
    if n <= 2:
        return np.arange(n, dtype=np.int64)
    if method == "greedy":
        # Best greedy tour over a few start points; the identity order is
        # kept as a candidate so the result is never worse than no
        # reordering at all.
        candidates = [greedy_mask_order(masks, start) for start in range(min(n, 4))]
        candidates.append(np.arange(n, dtype=np.int64))
        lengths = [mask_hamming_path_length(masks, c) for c in candidates]
        return candidates[int(np.argmin(lengths))]
    if method == "greedy-2opt":
        order = optimal_mask_order(masks, method="greedy")
        improved = _two_opt(order, _hamming_matrix(masks))
        if mask_hamming_path_length(masks, improved) <= mask_hamming_path_length(
            masks, order
        ):
            return improved
        return order
    if method == "tsp":
        import networkx as nx

        distances = _hamming_matrix(masks)
        graph = nx.Graph()
        for i in range(n):
            for j in range(i + 1, n):
                graph.add_edge(i, j, weight=int(distances[i, j]))
        cycle = nx.approximation.traveling_salesman_problem(
            graph, weight="weight", cycle=True
        )
        cycle = cycle[:-1]  # drop the repeated endpoint
        # Cut the cycle at its heaviest edge to form the best open path.
        edge_weights = [
            distances[cycle[k], cycle[(k + 1) % n]] for k in range(n)
        ]
        cut = int(np.argmax(edge_weights))
        path = cycle[cut + 1 :] + cycle[: cut + 1]
        return np.asarray(path, dtype=np.int64)
    raise ValueError(f"unknown method {method!r}")
