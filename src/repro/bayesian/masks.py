"""Dropout mask streams.

A mask stream is the (T, width) matrix of keep-masks for T Monte-Carlo
iterations of one dropout layer.  Streams come either from numpy (software
reference) or from the SRAM-immersed hardware RNG
(:class:`repro.sram.dropout_gen.DropoutBitGenerator`).
"""

from __future__ import annotations

import numpy as np


class MaskStream:
    """Keep-masks for T MC iterations of one dropout layer.

    Attributes:
        masks: (T, width) uint8 array, 1 = keep.
        keep_probability: nominal keep rate.
    """

    def __init__(self, masks: np.ndarray, keep_probability: float):
        masks = np.asarray(masks)
        if masks.ndim != 2:
            raise ValueError("masks must be (T, width)")
        if not np.isin(masks, (0, 1)).all():
            raise ValueError("mask entries must be 0/1")
        if not 0.0 < keep_probability < 1.0:
            raise ValueError("keep_probability must be in (0, 1)")
        self.masks = masks.astype(np.uint8)
        self.keep_probability = float(keep_probability)

    @property
    def n_iterations(self) -> int:
        return self.masks.shape[0]

    @property
    def width(self) -> int:
        return self.masks.shape[1]

    @staticmethod
    def bernoulli(
        n_iterations: int,
        width: int,
        keep_probability: float,
        rng: np.random.Generator,
    ) -> "MaskStream":
        """Software-sampled Bernoulli stream."""
        masks = (rng.random((n_iterations, width)) < keep_probability).astype(np.uint8)
        return MaskStream(masks, keep_probability)

    @staticmethod
    def from_hardware(
        generator,
        n_iterations: int,
        width: int,
        rng: np.random.Generator,
    ) -> "MaskStream":
        """Stream drawn from a hardware DropoutBitGenerator."""
        masks = np.stack(
            [generator.mask(width, rng) for _ in range(n_iterations)], axis=0
        )
        return MaskStream(masks, generator.keep_probability)

    def reordered(self, order: np.ndarray) -> "MaskStream":
        """The same masks visited in a different order."""
        order = np.asarray(order, dtype=np.int64)
        if sorted(order.tolist()) != list(range(self.n_iterations)):
            raise ValueError("order must be a permutation of iterations")
        return MaskStream(self.masks[order], self.keep_probability)

    def hamming_distances(self) -> np.ndarray:
        """(T-1,) Hamming distances between consecutive masks."""
        return (self.masks[1:] != self.masks[:-1]).sum(axis=1)

    def empirical_keep_rate(self) -> float:
        return float(self.masks.mean())

    def concatenate(self, other: "MaskStream") -> "MaskStream":
        """Concatenate along the width axis (multi-layer joint stream)."""
        if other.n_iterations != self.n_iterations:
            raise ValueError("iteration count mismatch")
        return MaskStream(
            np.concatenate([self.masks, other.masks], axis=1),
            self.keep_probability,
        )
