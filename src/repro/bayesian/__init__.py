"""Bayesian deep-learning inference machinery (paper Sec. III).

MC-Dropout variational inference plus the two workload optimisations the
paper's CIM engine is built around: *compute reuse* between consecutive
iterations (only neurons whose dropout state changed are re-evaluated) and
*sample ordering* (sequencing the Monte-Carlo masks to minimise mask-to-
mask Hamming distance, maximising what reuse can skip).
"""

from repro.bayesian.masks import MaskStream
from repro.bayesian.mc_dropout import MCDropoutPredictor, MCPrediction
from repro.bayesian.reuse import DeltaReuseEngine, ReuseStats
from repro.bayesian.ordering import (
    greedy_mask_order,
    mask_hamming_path_length,
    optimal_mask_order,
)
from repro.bayesian.metrics import (
    area_under_sparsification_error,
    error_uncertainty_correlation,
    interval_coverage,
)
from repro.bayesian.conformal import (
    AdaptiveConformalInference,
    SplitConformalRegressor,
    conformal_quantile,
)
from repro.bayesian.evidential import (
    EvidentialLoss,
    evidential_prediction,
    split_evidential_outputs,
)

__all__ = [
    "MaskStream",
    "MCDropoutPredictor",
    "MCPrediction",
    "DeltaReuseEngine",
    "ReuseStats",
    "greedy_mask_order",
    "optimal_mask_order",
    "mask_hamming_path_length",
    "error_uncertainty_correlation",
    "interval_coverage",
    "area_under_sparsification_error",
    "conformal_quantile",
    "SplitConformalRegressor",
    "AdaptiveConformalInference",
    "EvidentialLoss",
    "evidential_prediction",
    "split_evidential_outputs",
]
