"""Compute reuse across MC-Dropout iterations (paper Sec. III-C).

Consecutive iterations share input neurons, so the matrix-vector product of
iteration i can be built from iteration i-1::

    P_i = P_{i-1} + W x I_A_i - W x I_D_i

where I_A are inputs active now but not before and I_D the converse.  The
:class:`DeltaReuseEngine` generalises this to *value* deltas -- it replays a
sequence of (masked) input vectors, updating the product only through
columns whose input actually changed -- which stays exact for hidden layers
where surviving neurons may still change value.  Executed work is counted
per column touched, the quantity the CIM macro's energy scales with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ReuseStats:
    """Work accounting for a reuse run.

    Attributes:
        ops_executed: MACs actually performed.
        ops_naive: MACs a mask-oblivious engine would perform
            (T x in x out).
        ops_active_only: MACs of an engine that skips dropped inputs but
            does not reuse across iterations.
        columns_touched: input-column updates actually evaluated.
    """

    ops_executed: int
    ops_naive: int
    ops_active_only: int
    columns_touched: int

    @property
    def savings_vs_naive(self) -> float:
        """Fraction of naive work avoided."""
        if self.ops_naive == 0:
            return 0.0
        return 1.0 - self.ops_executed / self.ops_naive

    @property
    def savings_vs_active(self) -> float:
        """Fraction of mask-aware (but reuse-free) work avoided."""
        if self.ops_active_only == 0:
            return 0.0
        return 1.0 - self.ops_executed / self.ops_active_only


class DeltaReuseEngine:
    """Incremental matrix-vector products over an iteration sequence.

    Args:
        weight: (in_features, out_features) weight matrix.
        tolerance: absolute input-change threshold below which a column is
            considered unchanged (0 = exact).
    """

    def __init__(self, weight: np.ndarray, tolerance: float = 0.0):
        weight = np.asarray(weight, dtype=float)
        if weight.ndim != 2:
            raise ValueError("weight must be 2D (in, out)")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.weight = weight
        self.tolerance = float(tolerance)

    def run(self, inputs: np.ndarray) -> tuple[np.ndarray, ReuseStats]:
        """Replay a (T, in) sequence of masked input vectors.

        Returns:
            (products, stats): products is (T, out) with
            ``products[t] == inputs[t] @ weight`` (up to tolerance-induced
            drift), stats counts the executed work.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        n_iter, n_in = inputs.shape
        if n_in != self.weight.shape[0]:
            raise ValueError("input width does not match weight")
        n_out = self.weight.shape[1]
        products = np.empty((n_iter, n_out))
        columns_touched = 0
        ops_active = 0

        # Iteration 0: full evaluation over its active columns.
        active0 = np.abs(inputs[0]) > self.tolerance
        columns_touched += int(active0.sum())
        ops_active += int(active0.sum())
        current = inputs[0].copy()
        products[0] = current @ self.weight
        for t in range(1, n_iter):
            delta = inputs[t] - current
            changed = np.abs(delta) > self.tolerance
            columns_touched += int(changed.sum())
            ops_active += int((np.abs(inputs[t]) > self.tolerance).sum())
            if changed.any():
                products[t] = products[t - 1] + delta[changed] @ self.weight[changed]
            else:
                products[t] = products[t - 1]
            current = inputs[t].copy()
        stats = ReuseStats(
            ops_executed=columns_touched * n_out,
            ops_naive=n_iter * n_in * n_out,
            ops_active_only=ops_active * n_out,
            columns_touched=columns_touched,
        )
        return products, stats


def masked_input_sequence(x: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Apply (T, in) keep-masks to a single (in,) input vector.

    The result is the (T, in) sequence the first network layer sees across
    MC iterations (inverted-dropout scaling excluded -- scaling commutes
    with the product and is applied downstream).
    """
    x = np.asarray(x, dtype=float).reshape(1, -1)
    masks = np.asarray(masks, dtype=float)
    if masks.shape[1] != x.shape[1]:
        raise ValueError("mask width does not match input")
    return masks * x
