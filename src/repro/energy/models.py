"""Closed-form per-operation energy models.

Each function mirrors the op accounting of the corresponding runtime
backend; tests assert the two agree, so these formulas are safe for
design-space sweeps without instantiating hardware.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.technology import TechnologyNode
from repro.sram.macro import MacroConfig


def digital_gmm_energy(
    node: TechnologyNode,
    n_components: int,
    bits: int = 8,
    n_queries: int = 1,
) -> float:
    """Energy (J) of digital GMM likelihood evaluation.

    Per query and component: 4 MACs (3 for the squared z-scores, 1 for the
    weight), 1 exponential LUT access, 1 accumulate, and 7 parameter words
    fetched from local SRAM (mirrors
    :class:`repro.filtering.measurement.DigitalGMMBackend`).
    """
    if n_components < 1 or n_queries < 1:
        raise ValueError("counts must be positive")
    per_component = (
        4.0 * node.mac_energy(bits)
        + node.lut_energy_j
        + node.add_energy(bits)
        + 7.0 * bits * node.sram_read_energy_per_bit_j
    )
    return n_queries * n_components * per_component


def cim_likelihood_energy(
    node: TechnologyNode,
    adc_bits: int = 4,
    n_axes: int = 3,
    mean_array_current_a: float = 1.0e-5,
    eval_time_s: float = 1.0e-8,
    n_queries: int = 1,
) -> float:
    """Energy (J) of inverter-array likelihood evaluation.

    Per query: one DAC conversion per input axis, one log-ADC conversion,
    and the analog burn ``I_array * VDD * t_eval`` (mirrors
    :class:`repro.circuits.inverter_array.InverterArray`).
    """
    if n_queries < 1 or n_axes < 1:
        raise ValueError("counts must be positive")
    per_query = (
        n_axes * node.dac_energy_j
        + node.adc_energy(adc_bits)
        + mean_array_current_a * node.vdd * eval_time_s
    )
    return n_queries * per_query


def digital_nn_energy(
    node: TechnologyNode,
    layer_sizes: tuple[int, ...],
    bits: int = 8,
    n_inferences: int = 1,
) -> float:
    """Energy (J) of a dense network inference on a digital MAC datapath.

    Counts one MAC per weight plus weight fetches from local SRAM.

    Args:
        layer_sizes: (in, h1, ..., out) widths.
    """
    if len(layer_sizes) < 2:
        raise ValueError("need at least input and output widths")
    total = 0.0
    for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
        macs = fan_in * fan_out
        total += macs * (
            node.mac_energy(bits) + bits * node.sram_read_energy_per_bit_j
        )
    return n_inferences * total


def cim_mc_dropout_energy(
    config: MacroConfig,
    layer_sizes: tuple[int, ...],
    n_iterations: int = 30,
    keep_probability: float = 0.5,
    reuse: bool = True,
    refresh_every: int = 8,
    n_inferences: int = 1,
) -> float:
    """Predicted energy (J) of CIM MC-Dropout inference.

    Mirrors :class:`repro.core.cim_mc_dropout.CIMMCDropoutEngine` in
    expectation: the dropout-free first layer is evaluated on refreshes
    only; dropout layers pay the mask-change rate ``2 p (1 - p)`` per
    delta step and the keep rate ``p`` per refresh.

    Args:
        config: macro configuration (per-op energies, precisions).
        layer_sizes: (in, h1, ..., out) widths; dropout is assumed before
            every layer except the first (the shipped VO topology).
    """
    if len(layer_sizes) < 2:
        raise ValueError("need at least input and output widths")
    if not 0.0 < keep_probability < 1.0:
        raise ValueError("keep_probability must be in (0, 1)")
    node = config.node
    refreshes = (
        n_iterations
        if not reuse
        else int(np.ceil(n_iterations / refresh_every))
        if refresh_every > 0
        else 1
    )
    deltas = n_iterations - refreshes if reuse else 0
    change_rate = 2.0 * keep_probability * (1.0 - keep_probability)
    total = 0.0
    for index, (fan_in, fan_out) in enumerate(
        zip(layer_sizes[:-1], layer_sizes[1:])
    ):
        has_dropout = index > 0
        if has_dropout:
            active_refresh = keep_probability * fan_in
            active_delta = change_rate * fan_in
            adc_reads = (refreshes + deltas) * fan_out
        else:
            # The input layer sees the same vector every iteration: delta
            # steps drive no lines and trigger no conversions.
            active_refresh = float(fan_in)
            active_delta = 0.0
            adc_reads = refreshes * fan_out
        macs = refreshes * active_refresh * fan_out + deltas * active_delta * fan_out
        dacs = refreshes * active_refresh + deltas * active_delta
        total += (
            macs * config.mac_energy()
            + dacs * node.dac_energy_j
            + adc_reads * node.adc_energy(config.adc_bits)
        )
    return n_inferences * total


def digital_mc_dropout_energy(
    node: TechnologyNode,
    layer_sizes: tuple[int, ...],
    bits: int = 8,
    n_iterations: int = 30,
    batch: int = 1,
) -> float:
    """Energy (J) of T-sample MC-Dropout on the digital MAC datapath.

    The digital baseline cannot reuse work across iterations, so the cost
    is exactly ``n_iterations * batch`` full forward passes (mirrors the
    accounting :class:`repro.api.substrates.MCDropoutSession` reports for
    the ``"digital"`` substrate).
    """
    if n_iterations < 1 or batch < 1:
        raise ValueError("counts must be positive")
    return digital_nn_energy(
        node, layer_sizes, bits=bits, n_inferences=n_iterations * batch
    )
