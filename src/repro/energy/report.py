"""Energy comparison reporting."""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.energy import format_energy


@dataclass(frozen=True)
class EnergyComparison:
    """A named pair of energies with their ratio.

    Attributes:
        label: what is being compared.
        baseline_j: the reference (e.g. digital) energy.
        proposed_j: the proposed (e.g. CIM) energy.
    """

    label: str
    baseline_j: float
    proposed_j: float

    @property
    def ratio(self) -> float:
        """baseline / proposed: >1 means the proposal wins."""
        if self.proposed_j <= 0:
            return float("inf")
        return self.baseline_j / self.proposed_j

    def row(self) -> dict:
        return {
            "comparison": self.label,
            "baseline": format_energy(self.baseline_j),
            "proposed": format_energy(self.proposed_j),
            "ratio": round(self.ratio, 1),
        }


def comparison_table(comparisons: list[EnergyComparison]) -> str:
    """Fixed-width text table of energy comparisons."""
    if not comparisons:
        return "(no comparisons)"
    lines = [
        f"{'comparison':<40}{'baseline':>12}{'proposed':>12}{'ratio':>8}"
    ]
    for comparison in comparisons:
        row = comparison.row()
        lines.append(
            f"{row['comparison']:<40}{row['baseline']:>12}"
            f"{row['proposed']:>12}{row['ratio']:>8}"
        )
    return "\n".join(lines)
