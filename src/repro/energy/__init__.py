"""Analytic energy/efficiency models and report helpers.

The substrates meter their own energy at runtime (every backend carries an
:class:`~repro.circuits.energy.EnergyLedger`); this package provides the
closed-form counterparts used for design-space exploration -- predicting
energy *before* building a backend -- plus comparison-report helpers.  The
analytic models are validated against the metered ledgers in the test
suite.
"""

from repro.energy.models import (
    cim_likelihood_energy,
    cim_mc_dropout_energy,
    digital_gmm_energy,
    digital_mc_dropout_energy,
    digital_nn_energy,
)
from repro.energy.report import comparison_table, EnergyComparison

__all__ = [
    "digital_gmm_energy",
    "cim_likelihood_energy",
    "digital_nn_energy",
    "cim_mc_dropout_energy",
    "digital_mc_dropout_energy",
    "EnergyComparison",
    "comparison_table",
]
