"""Bit-line aggregation: leakage summation and noise integration.

When write word lines are deactivated, every write port on a column leaks
into the bit line.  Summing many ports *filters* the (static, per-device)
V_T mismatch -- the relative spread of the total falls as 1/sqrt(M) -- and
*accumulates* the (temporal) shot noise of every port.  These are the two
effects the SRAM-immersed RNG exploits (paper Fig. 3b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.technology import ELECTRON_CHARGE, TechnologyNode
from repro.circuits.variability import MismatchSampler


@dataclass
class BitLineModel:
    """Aggregated leakage/noise behaviour of one SRAM column group.

    Attributes:
        node: technology node.
        n_ports: number of write ports hanging on the line.
        nominal_leakage: per-port nominal leakage current (A).
        static_leakages: per-port leakage currents with frozen mismatch (A).
        capacitance: bit-line capacitance (F).
    """

    node: TechnologyNode
    n_ports: int
    nominal_leakage: float
    static_leakages: np.ndarray
    capacitance: float = 20.0e-15

    @staticmethod
    def sample(
        node: TechnologyNode,
        n_ports: int,
        rng: np.random.Generator,
        nominal_leakage: float = 1.0e-10,
        mismatch: MismatchSampler | None = None,
        capacitance: float = 20.0e-15,
    ) -> "BitLineModel":
        """Draw a bit line with per-port lognormal leakage mismatch."""
        if n_ports < 1:
            raise ValueError("n_ports must be >= 1")
        mismatch = mismatch or MismatchSampler(node)
        leakages = mismatch.subthreshold_leakage(
            (n_ports,), rng, nominal_current=nominal_leakage
        )
        return BitLineModel(
            node=node,
            n_ports=n_ports,
            nominal_leakage=float(nominal_leakage),
            static_leakages=leakages,
            capacitance=float(capacitance),
        )

    def total_leakage(self) -> float:
        """Static total leakage current (A)."""
        return float(self.static_leakages.sum())

    def relative_mismatch(self) -> float:
        """|total - expected| / expected: shrinks as 1/sqrt(M)."""
        expected = self.n_ports * self.nominal_leakage
        return abs(self.total_leakage() - expected) / expected

    def integrated_charge(
        self, window_s: float, rng: np.random.Generator
    ) -> float:
        """Charge (C) drained in ``window_s``, with integrated shot noise.

        Shot-noise charge variance over a window T is ``2 q I T`` summed
        over ports (independent sources add in variance).
        """
        if window_s <= 0:
            raise ValueError("window must be positive")
        mean = self.total_leakage() * window_s
        sigma = np.sqrt(
            2.0 * ELECTRON_CHARGE * self.total_leakage() * window_s
        )
        return float(mean + rng.normal() * sigma)

    def discharge_voltage(self, window_s: float, rng: np.random.Generator) -> float:
        """Bit-line voltage droop (V) over a discharge window."""
        return self.integrated_charge(window_s, rng) / self.capacitance
