"""The 8T SRAM bit cell with separate storage and product ports.

A 6T latch holds the bit; two extra transistors form a decoupled product
port (paper Fig. 3a inset): when the read/compute line is asserted and the
stored bit is 1, the port sinks a unit current into the column line.  The
cell-level model exists for unit physics and the RNG leakage path; the
macro evaluates whole arrays vectorised without instantiating cells.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.technology import TechnologyNode


class EightTransistorCell:
    """One 8T SRAM cell.

    Args:
        node: technology node.
        unit_current: product-port ON current (A).
        leakage_nominal: product-port OFF (leakage) current (A).
        vt_offset: threshold mismatch of the port device (V), shifting the
            leakage exponentially.
    """

    def __init__(
        self,
        node: TechnologyNode,
        unit_current: float = 5.0e-6,
        leakage_nominal: float = 1.0e-10,
        vt_offset: float = 0.0,
    ):
        if unit_current <= 0 or leakage_nominal <= 0:
            raise ValueError("currents must be positive")
        self.node = node
        self.unit_current = float(unit_current)
        self.vt_offset = float(vt_offset)
        n_ut = node.subthreshold_slope_factor * node.thermal_voltage
        self.leakage = float(leakage_nominal * np.exp(-vt_offset / n_ut))
        self._bit = 0

    @property
    def bit(self) -> int:
        return self._bit

    def write(self, bit: int) -> None:
        """Write a bit through the storage port."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        self._bit = int(bit)

    def product_current(self, input_bit: int, row_active: bool = True) -> float:
        """Column current contribution for one compute cycle (A).

        The product port implements ``stored AND input AND row_active``:
        a conducting cell sinks ``unit_current``; all other combinations
        leak ``leakage``.
        """
        if input_bit not in (0, 1):
            raise ValueError("input_bit must be 0 or 1")
        if self._bit and input_bit and row_active:
            return self.unit_current
        return self.leakage

    def write_port_leakage(self) -> float:
        """Leakage injected into the bit line when write word lines are off.

        This is the entropy-source current the RNG harvests.
        """
        return self.leakage
