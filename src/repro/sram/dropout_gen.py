"""Dropout bitstream generation from the SRAM-immersed RNG.

MC-Dropout needs a fresh Bernoulli mask per input vector per iteration; the
paper makes the high-speed generation of these bits a first-class hardware
concern (paper Sec. III-C).  :class:`DropoutBitGenerator` turns raw CCI
bits into keep/drop masks at an arbitrary keep probability and tracks the
cycle cost, so experiments can account for generation overhead and for the
quality loss of an *uncalibrated* RNG.
"""

from __future__ import annotations

import numpy as np

from repro.sram.rng import CrossCoupledInverterRNG


class DropoutBitGenerator:
    """Generates dropout masks from a CCI RNG.

    For ``keep_probability`` 0.5 each mask bit is one raw RNG bit; other
    probabilities compare a ``resolution_bits``-deep uniform built from
    consecutive raw bits against the threshold (cost: ``resolution_bits``
    cycles per mask bit).

    Args:
        rng_cell: the hardware RNG.
        keep_probability: probability a neuron is kept (1 - dropout rate).
        resolution_bits: raw bits per mask bit when p != 0.5.
    """

    def __init__(
        self,
        rng_cell: CrossCoupledInverterRNG,
        keep_probability: float = 0.5,
        resolution_bits: int = 8,
    ):
        if not 0.0 < keep_probability < 1.0:
            raise ValueError("keep_probability must be in (0, 1)")
        if resolution_bits < 1:
            raise ValueError("resolution_bits must be >= 1")
        self.rng_cell = rng_cell
        self.keep_probability = float(keep_probability)
        self.resolution_bits = int(resolution_bits)
        self.cycles_used = 0

    def raw_bits(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """n raw RNG bits, accounting the cycles."""
        self.cycles_used += n
        return self.rng_cell.generate(n, rng)

    def mask(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """A keep-mask of n bits (1 = keep), Bernoulli(keep_probability)."""
        if self.keep_probability == 0.5:
            return self.raw_bits(n, rng)
        raw = self.raw_bits(n * self.resolution_bits, rng)
        weights = 2.0 ** -(1 + np.arange(self.resolution_bits))
        uniforms = raw.reshape(n, self.resolution_bits) @ weights
        return (uniforms < self.keep_probability).astype(np.uint8)

    def iteration_masks(
        self,
        n_iterations: int,
        n_inputs: int,
        n_outputs: int,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Input and output masks for a full MC-Dropout run.

        Returns:
            (input_masks, output_masks) of shapes (T, n_inputs) and
            (T, n_outputs), dtype uint8.
        """
        input_masks = np.stack(
            [self.mask(n_inputs, rng) for _ in range(n_iterations)], axis=0
        )
        output_masks = np.stack(
            [self.mask(n_outputs, rng) for _ in range(n_iterations)], axis=0
        )
        return input_masks, output_masks

    def generation_energy(
        self, energy_per_cycle_j: float = 5.0e-15, cycles: int | None = None
    ) -> float:
        """Mask-generation energy (J) of ``cycles`` (default: all so far).

        Callers metering a scoped region pass the region's cycle delta
        (``cycles_used`` is an exact integer odometer), which avoids the
        rounding residue of subtracting two cumulative energies.
        """
        return (self.cycles_used if cycles is None else cycles) * energy_per_cycle_j
