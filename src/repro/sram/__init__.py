"""8T-SRAM compute-in-memory macro and the SRAM-immersed RNG.

The paper's Sec. III hardware: a CIM macro that stores quantised weight
matrices and computes matrix-vector products on its bit lines, with AND
gates on the column/row peripherals for MC-Dropout masking, and a
cross-coupled-inverter random number generator that harvests write-port
leakage noise to produce the dropout bitstreams without a dedicated RNG
block.
"""

from repro.sram.cell import EightTransistorCell
from repro.sram.bitline import BitLineModel
from repro.sram.macro import MacroConfig, SRAMCIMMacro
from repro.sram.rng import CrossCoupledInverterRNG, RNGCalibration
from repro.sram.dropout_gen import DropoutBitGenerator

__all__ = [
    "EightTransistorCell",
    "BitLineModel",
    "MacroConfig",
    "SRAMCIMMacro",
    "CrossCoupledInverterRNG",
    "RNGCalibration",
    "DropoutBitGenerator",
]
