"""The SRAM-immersed cross-coupled-inverter RNG (paper Fig. 3b).

Equal groups of SRAM columns hang on the two ends of a cross-coupled
inverter (CCI).  Both ends are precharged, then discharged by the columns'
write-port leakage for half a clock cycle; at the clock transition the CCI
regenerates the differential into a digital bit.  The decision input is::

    dV = (Q_left - Q_right) / C  +  comparator offset

where each side's drained charge carries a *static* part (summed leakage
with frozen V_T mismatch -- filtered as 1/sqrt(M)) and a *temporal* part
(integrated shot noise of every port -- grows with sqrt(M)).  More columns
therefore push the bit decision from mismatch-dominated (a stuck, biased
bit) to noise-dominated (a usable random bit), which is the effect the
paper exploits.  Residual bias is removed by a calibration phase that
measures the 1s-rate over a serial window and trims a compensation offset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.technology import TechnologyNode
from repro.circuits.variability import MismatchSampler
from repro.sram.bitline import BitLineModel


@dataclass
class RNGCalibration:
    """Result of a calibration run.

    Attributes:
        ones_rate_before: empirical P(1) before trimming.
        ones_rate_after: empirical P(1) after trimming.
        trim_volts: applied compensation offset (V).
        window: number of calibration bits observed.
    """

    ones_rate_before: float
    ones_rate_after: float
    trim_volts: float
    window: int


class CrossCoupledInverterRNG:
    """A stochastic behavioural model of the CCI RNG.

    Args:
        node: technology node.
        n_columns_per_side: SRAM columns attached to each CCI end.
        rows_per_column: write ports per column.
        clock_hz: clock frequency; the discharge window is half a period.
        comparator_offset_sigma: 1-sigma of the CCI's own input offset (V).
        capacitance: per-side lumped capacitance (F).
        nominal_leakage: per-port nominal leakage (A).
        rng: generator used to *instantiate* the hardware (frozen mismatch
            and comparator offset).
    """

    def __init__(
        self,
        node: TechnologyNode,
        n_columns_per_side: int = 16,
        rows_per_column: int = 64,
        clock_hz: float | None = None,
        comparator_offset_sigma: float = 4.0e-3,
        capacitance: float = 5.0e-15,
        nominal_leakage: float = 5.0e-10,
        rng: np.random.Generator | None = None,
    ):
        if n_columns_per_side < 1 or rows_per_column < 1:
            raise ValueError("need at least one column and one row")
        rng = rng or np.random.default_rng(0)
        self.node = node
        self.n_columns_per_side = int(n_columns_per_side)
        self.rows_per_column = int(rows_per_column)
        self.clock_hz = float(clock_hz or node.clock_hz)
        self.window_s = 0.5 / self.clock_hz
        self.capacitance = float(capacitance)
        n_ports = self.n_columns_per_side * self.rows_per_column
        mismatch = MismatchSampler(node)
        self.left = BitLineModel.sample(
            node, n_ports, rng, nominal_leakage, mismatch, capacitance
        )
        self.right = BitLineModel.sample(
            node, n_ports, rng, nominal_leakage, mismatch, capacitance
        )
        self.comparator_offset = float(rng.normal(scale=comparator_offset_sigma))
        self.trim_volts = 0.0

    @property
    def n_ports_per_side(self) -> int:
        return self.n_columns_per_side * self.rows_per_column

    def static_differential(self) -> float:
        """Deterministic part of the decision voltage (V): mismatch + offset."""
        delta_i = self.left.total_leakage() - self.right.total_leakage()
        return (
            delta_i * self.window_s / self.capacitance
            + self.comparator_offset
            - self.trim_volts
        )

    def noise_sigma(self) -> float:
        """1-sigma of the per-cycle decision noise (V)."""
        from repro.circuits.technology import ELECTRON_CHARGE

        total_current = self.left.total_leakage() + self.right.total_leakage()
        charge_sigma = np.sqrt(
            2.0 * ELECTRON_CHARGE * total_current * self.window_s
        )
        return float(charge_sigma / self.capacitance)

    def ideal_ones_probability(self) -> float:
        """Analytic P(1) = Phi(static / noise) of this instance."""
        from scipy.stats import norm

        return float(norm.cdf(self.static_differential() / self.noise_sigma()))

    def generate(self, n_bits: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n_bits`` raw bits (uint8 array)."""
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        static = self.static_differential()
        sigma = self.noise_sigma()
        decisions = static + rng.normal(scale=sigma, size=n_bits)
        return (decisions > 0.0).astype(np.uint8)

    def calibrate(
        self, rng: np.random.Generator, window: int = 4096, rounds: int = 3
    ) -> RNGCalibration:
        """Serial calibration: measure the 1s-rate, trim the static offset.

        The trim emulates a small programmable offset DAC on one CCI end;
        each round recovers the implied static offset from the observed
        rate by an inverse-Gaussian step (what a binary-search trim loop
        converges to).  Multiple rounds handle a heavily stuck start,
        where the first rate estimate clips at the window resolution.
        """
        from scipy.stats import norm

        before = float(self.generate(window, rng).mean())
        sigma = self.noise_sigma()
        after = before
        for _ in range(max(rounds, 1)):
            clipped = np.clip(after, 1.0 / window, 1.0 - 1.0 / window)
            self.trim_volts += float(norm.ppf(clipped)) * sigma
            after = float(self.generate(window, rng).mean())
        return RNGCalibration(
            ones_rate_before=before,
            ones_rate_after=after,
            trim_volts=self.trim_volts,
            window=window,
        )

    def bias_decomposition(self) -> dict[str, float]:
        """Diagnostic: the decision-voltage budget of this instance (V)."""
        delta_i = self.left.total_leakage() - self.right.total_leakage()
        return {
            "mismatch_volts": delta_i * self.window_s / self.capacitance,
            "comparator_offset_volts": self.comparator_offset,
            "trim_volts": self.trim_volts,
            "noise_sigma_volts": self.noise_sigma(),
        }
